//! Assertion-backed reproduction checks: for every table and figure, the
//! paper's *qualitative shape* — orderings, factors, crossovers — must
//! hold in the regenerated artifact. `EXPERIMENTS.md` records the exact
//! numbers; these tests keep them honest.

use now_models::gator;
use now_models::remote_access::{AccessModel, Network, Target};
use now_models::techtrend::AnnualImprovement;

#[test]
fn table1_shape_mpp_lag_costs_a_factor_of_two() {
    for row in now_models::techtrend::table1_rows() {
        let lag = row.lag_years();
        assert!((1.0..=2.0).contains(&lag), "{}: lag {lag}", row.mpp);
    }
    assert!(AnnualImprovement::CONSERVATIVE.performance_forfeit(2.0) > 2.0);
}

#[test]
fn figure1_shape_integration_costs_double() {
    let fig = now_models::cost::CostModel::paper_defaults().figure1();
    let best = fig.iter().map(|s| s.total).fold(f64::INFINITY, f64::min);
    let mpp = fig.last().unwrap();
    let ratio = mpp.total / best;
    assert!((1.6..=2.6).contains(&ratio), "MPP premium {ratio}");
}

#[test]
fn table2_shape_remote_memory_beats_disk_only_on_switched_lans() {
    let m = AccessModel::paper_defaults();
    let atm_mem = m
        .service_time(Network::Atm155, Target::RemoteMemory)
        .total_us();
    let eth_mem = m
        .service_time(Network::Ethernet10, Target::RemoteMemory)
        .total_us();
    assert!(m.disk_us / atm_mem > 10.0, "ATM: order of magnitude");
    assert!(m.disk_us / eth_mem < 3.0, "Ethernet: marginal");
}

#[test]
fn figure2_shape_netram_between_dram_and_disk() {
    use now_mem::multigrid::{run, MemoryConfig};
    for mb in [64, 96, 120] {
        let dram = run(mb, MemoryConfig::local128()).total.as_secs_f64();
        let netram = run(mb, MemoryConfig::local32_netram()).total.as_secs_f64();
        let disk = run(mb, MemoryConfig::local32_disk()).total.as_secs_f64();
        let vs_dram = netram / dram;
        let vs_disk = disk / netram;
        assert!(
            (1.05..=1.4).contains(&vs_dram),
            "{mb} MB: netram/dram {vs_dram}"
        );
        assert!(
            (4.0..=11.0).contains(&vs_disk),
            "{mb} MB: disk/netram {vs_disk}"
        );
    }
}

#[test]
fn table3_shape_cooperation_halves_disk_reads() {
    // (12-hour trace; the full-length numbers live in EXPERIMENTS.md.)
    use now_cache::{simulate, CacheConfig, Policy};
    use now_sim::SimDuration;
    use now_trace::fs::{FsTrace, FsTraceConfig};
    let mut cfg = FsTraceConfig::paper_defaults();
    cfg.duration = SimDuration::from_secs(12 * 3600);
    let trace = FsTrace::generate(&cfg, 42);
    let base = simulate(&trace, &CacheConfig::table3(Policy::ClientServer));
    let coop = simulate(&trace, &CacheConfig::table3(Policy::GreedyForwarding));
    assert!(coop.disk_read_rate() < base.disk_read_rate() * 0.75);
    let response_gain =
        base.avg_read_response().as_micros_f64() / coop.avg_read_response().as_micros_f64();
    assert!(
        (1.25..=2.5).contains(&response_gain),
        "gain {response_gain}"
    );
}

#[test]
fn table4_shape_each_fix_buys_an_order_of_magnitude() {
    let rows = gator::table4();
    let total = |name: &str| {
        rows.iter()
            .find(|r| r.machine.starts_with(name))
            .unwrap()
            .total_s()
    };
    let base = total("RS-6000 (256)");
    let atm = total("RS-6000 + ATM");
    let pfs = total("RS-6000 + parallel");
    let am = total("RS-6000 + low-overhead");
    let c90 = total("C-90");
    assert!(base / c90 > 300.0, "baseline 3 orders off: {}", base / c90);
    for (from, to, label) in [
        (base, atm, "ATM"),
        (atm, pfs, "parallel FS"),
        (pfs, am, "AM"),
    ] {
        let gain = from / to;
        assert!((5.0..=30.0).contains(&gain), "{label} gain {gain}");
    }
    assert!(am < c90 * 1.3, "final NOW competes with the C-90");
}

#[test]
fn figure3_shape_now_approaches_dedicated_as_it_grows() {
    let series = now_glunix::mixed::figure3_series(42);
    assert!(series.windows(2).all(|w| w[0].0 < w[1].0), "x sorted");
    let at64 = series.iter().find(|(n, _)| *n == 64.0).unwrap().1;
    assert!((1.0..=1.35).contains(&at64), "dilation at 64: {at64}");
    // The trend claim, on end-averages (single points are trace noise).
    let head = (series[0].1 + series[1].1) / 2.0;
    let tail = (series[4].1 + series[5].1) / 2.0;
    assert!(tail < head, "dilation must fall with size: {series:?}");
}

#[test]
fn figure4_shape_app_sensitivity_ordering() {
    use now_glunix::cosched::{slowdown, AppSpec, CoschedConfig};
    let apps = AppSpec::figure4_apps();
    let config = CoschedConfig::paper_defaults(2);
    let s: Vec<f64> = apps.iter().map(|a| slowdown(a, &config)).collect();
    // random small msgs ≈ 1; Column and Em3d clearly slowed; Connect worst.
    assert!(s[0] < 1.6, "random {s:?}");
    assert!(s[1] > 2.0 && s[2] > 2.0, "column/em3d {s:?}");
    assert!(
        s[3] > s[0] && s[3] > s[1] && s[3] > s[2],
        "connect dominates {s:?}"
    );
}

#[test]
fn intext_nfs_shape_bandwidth_alone_buys_little() {
    use now_models::nfs::{improvement, StackCoefficients};
    use now_trace::nfs::{NfsTrace, NfsTraceConfig};
    let trace = NfsTrace::generate(&NfsTraceConfig::paper_defaults(), 42);
    assert!((0.93..=0.97).contains(&trace.small_message_fraction()));
    let mix = trace.size_mix();
    let bw_only = improvement(
        StackCoefficients::TCP_ETHERNET,
        StackCoefficients::TCP_ATM,
        &mix,
    );
    assert!((0.1..=0.35).contains(&bw_only), "bandwidth-only {bw_only}");
    let overhead_fix = improvement(
        StackCoefficients::TCP_ETHERNET,
        StackCoefficients::SOCKETS_OVER_AM,
        &mix,
    );
    assert!(overhead_fix > 0.8, "attacking overhead {overhead_fix}");
}

#[test]
fn intext_restore_shape_64mb_under_4s() {
    use now_glunix::migrate::MigrationModel;
    let t = MigrationModel::now_atm_pfs().transfer_time(64);
    assert!(t < now_sim::SimDuration::from_secs(4), "restore {t}");
}

#[test]
fn intext_comm_shape_am_order_of_magnitude_under_tcp() {
    use now_net::presets;
    let mut tcp = presets::tcp_ethernet(4);
    let mut am = presets::am_fddi(4);
    assert!(tcp.one_way_small_message_us() / am.one_way_small_message_us() > 8.0);
    // Half-power ordering: AM ≪ single-copy TCP < standard TCP.
    let am_hp = am.half_power_point_bytes();
    let mut sc = presets::single_copy_tcp_fddi(4);
    let mut std_tcp = presets::tcp_fddi(4);
    let sc_hp = sc.half_power_point_bytes();
    let tcp_hp = std_tcp.half_power_point_bytes();
    assert!(
        am_hp < sc_hp && sc_hp < tcp_hp,
        "{am_hp} < {sc_hp} < {tcp_hp}"
    );
}
