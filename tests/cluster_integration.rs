//! Cross-crate integration: full-cluster scenarios through the public
//! `now-core` API, exercising storage, memory, scheduling, and failure
//! paths together.

use now_core::{AppSpec, Interconnect, NowCluster, Scheduling};

fn atm_cluster(nodes: u32) -> NowCluster {
    NowCluster::builder()
        .nodes(nodes)
        .interconnect(Interconnect::AtmActiveMessages)
        .build()
}

#[test]
fn boot_write_crash_recover_verify() {
    // The canonical NOW story: data written anywhere survives any single
    // component failing — client, manager, or disk — with no server.
    let mut now = atm_cluster(24);
    let f = now.fs().create("/trace/day1").unwrap();
    let bytes = now.fs().block_bytes();
    for b in 0..64u32 {
        let data = vec![(b % 251) as u8; bytes];
        now.fs().write(b % 24, f, b, &data).unwrap();
    }
    for c in 0..24 {
        now.fs().sync(c).unwrap();
    }

    // Client crash.
    let lost = now.fs().fail_client(3);
    assert!(lost.is_empty(), "synced data lost: {lost:?}");
    // Manager crash.
    now.fs().recover_manager(1);
    // Disk crash + reconstruction.
    now.fs().storage_mut().raid_mut().fail_disk(2);
    for b in (0..64u32).step_by(7) {
        let data = now.fs().read(5, f, b).unwrap();
        assert_eq!(data[0], (b % 251) as u8, "degraded block {b}");
    }
    now.fs().storage_mut().raid_mut().reconstruct(2).unwrap();
    for b in 0..64u32 {
        let data = now.fs().read(7, f, b).unwrap();
        assert_eq!(data[0], (b % 251) as u8, "post-recovery block {b}");
    }
}

#[test]
fn out_of_core_job_uses_the_buildings_memory() {
    let mut now = atm_cluster(32);
    let result = now.run_out_of_core(96).unwrap();
    assert!(
        result.pager.netram_faults > 0,
        "must actually page remotely"
    );
    let disk = now.run_out_of_core_on_disk(96);
    let speedup = disk.total.as_secs_f64() / result.total.as_secs_f64();
    assert!(
        speedup > 3.0,
        "network RAM should clearly beat disk, got {speedup}x"
    );
}

#[test]
fn interconnect_choice_gates_capabilities() {
    // The slow-network clusters refuse network RAM, matching the paper's
    // Table 2 argument that Ethernet remote memory barely beats disk.
    for slow in [
        Interconnect::EthernetTcp,
        Interconnect::EthernetPvm,
        Interconnect::AtmTcp,
    ] {
        let mut now = NowCluster::builder().nodes(8).interconnect(slow).build();
        assert!(now.run_out_of_core(64).is_err(), "{slow:?} should refuse");
    }
    for fast in [
        Interconnect::AtmActiveMessages,
        Interconnect::MyrinetActiveMessages,
    ] {
        let mut now = NowCluster::builder().nodes(8).interconnect(fast).build();
        assert!(now.run_out_of_core(64).is_ok(), "{fast:?} should work");
    }
}

#[test]
fn communication_upgrade_ladder_holds_end_to_end() {
    // One-way small-message times, through the cluster API, reproduce the
    // paper's ladder: PVM > TCP > sockets-class > AM.
    let us = |i: Interconnect| {
        NowCluster::builder()
            .nodes(8)
            .interconnect(i)
            .build()
            .small_message_us()
    };
    let pvm = us(Interconnect::EthernetPvm);
    let tcp = us(Interconnect::AtmTcp);
    let am = us(Interconnect::AtmActiveMessages);
    let myri = us(Interconnect::MyrinetActiveMessages);
    assert!(pvm > tcp, "PVM {pvm} vs TCP {tcp}");
    assert!(
        tcp > am * 8.0,
        "order-of-magnitude claim: TCP {tcp} vs AM {am}"
    );
    assert!(
        myri < 12.0,
        "Myrinet AM should approach the 10 µs goal, got {myri}"
    );
}

#[test]
fn parallel_jobs_need_coscheduling_on_a_real_cluster() {
    let now = atm_cluster(16);
    let apps = AppSpec::figure4_apps();
    // Tolerant app: local scheduling is nearly free.
    let random = &apps[0];
    let gang = now.run_parallel(random, Scheduling::Gang, 2);
    let local = now.run_parallel(random, Scheduling::Local, 2);
    assert!(local.as_secs_f64() / gang.as_secs_f64() < 1.6);
    // Fine-grained app: local scheduling is catastrophic.
    let connect = &apps[3];
    let gang = now.run_parallel(connect, Scheduling::Gang, 2);
    let local = now.run_parallel(connect, Scheduling::Local, 2);
    assert!(local.as_secs_f64() / gang.as_secs_f64() > 10.0);
}

#[test]
fn gator_prediction_through_the_cluster_matches_the_standalone_model() {
    // The cluster façade must agree with now-models for a matching config.
    let now = NowCluster::builder()
        .nodes(256)
        .interconnect(Interconnect::AtmActiveMessages)
        .build();
    let p = now.predict_gator();
    let reference = now_models::gator::table4()
        .into_iter()
        .find(|r| r.machine.contains("low-overhead"))
        .unwrap();
    // Same fabric and overhead class: totals within 25 percent.
    let ratio = p.total_s() / reference.total_s();
    assert!(
        (0.75..=1.25).contains(&ratio),
        "cluster {} s vs model {} s",
        p.total_s(),
        reference.total_s()
    );
}

#[test]
fn membership_failures_and_storage_cooperate() {
    // Kill nodes at the membership layer and at the FS layer coherently.
    let mut now = atm_cluster(12);
    let f = now.fs().create("/x").unwrap();
    let bytes = now.fs().block_bytes();
    now.fs().write(4, f, 0, &vec![9u8; bytes]).unwrap();
    now.fs().sync(4).unwrap();

    // Node 4 goes silent: membership notices, xFS drops it.
    let failed = now.membership_mut().sweep(now_sim::SimTime::from_secs(100));
    assert_eq!(failed.len(), 12, "nobody heartbeated in this test");
    now.fs().fail_client(4);
    assert_eq!(now.fs().read(0, f, 0).unwrap()[0], 9);
}
