//! Failure drill: the paper's availability story exercised end to end.
//!
//! "If a workstation fails in our model, it only affects the programs
//! using that CPU; those programs can restart from their last checkpoint,
//! while programs running on other CPUs continue unaffected." This suite
//! injects failures at every layer — clients, managers, disks, donor
//! hosts, compute nodes — in sequence and in combination, and checks that
//! service degrades exactly as far as the design says and no further.

use now_core::{Interconnect, NowCluster};
use now_glunix::exec::{run_batch, ExecConfig, SeqJob};
use now_mem::{DiskModel, NetworkRam, PageId, Pager, RemoteAccessCost};
use now_sim::{SimDuration, SimTime};

#[test]
fn rolling_client_failures_never_lose_synced_data() {
    let mut now = NowCluster::builder()
        .nodes(12)
        .interconnect(Interconnect::AtmActiveMessages)
        .build();
    let f = now.fs().create("/drill/data").unwrap();
    let bytes = now.fs().block_bytes();
    for b in 0..24u32 {
        now.fs().write(b % 12, f, b, &vec![b as u8; bytes]).unwrap();
    }
    for c in 0..12 {
        now.fs().sync(c).unwrap();
    }
    // Fail a third of the cluster, one node at a time, verifying after
    // each that a surviving client reads everything.
    for victim in [1u32, 4, 7, 10] {
        let lost = now.fs().fail_client(victim);
        assert!(lost.is_empty(), "victim {victim} lost {lost:?}");
        let reader = (victim + 1) % 12;
        for b in 0..24u32 {
            assert_eq!(
                now.fs().read(reader, f, b).unwrap()[0],
                b as u8,
                "after failing {victim}, block {b}"
            );
        }
    }
}

#[test]
fn compound_failure_manager_plus_disk_plus_client() {
    let mut now = NowCluster::builder().nodes(16).build();
    let f = now.fs().create("/drill/compound").unwrap();
    let bytes = now.fs().block_bytes();
    for b in 0..32u32 {
        now.fs()
            .write(0, f, b, &vec![0xC0 | (b as u8 & 0x0F); bytes])
            .unwrap();
    }
    now.fs().sync(0).unwrap();

    // One failure from each class, simultaneously outstanding.
    now.fs().fail_client(0);
    now.fs().recover_manager(2);
    now.fs().storage_mut().raid_mut().fail_disk(1);

    for b in 0..32u32 {
        assert_eq!(
            now.fs().read(9, f, b).unwrap()[0],
            0xC0 | (b as u8 & 0x0F),
            "compound-degraded block {b}"
        );
    }
    // Repair and verify normal service resumes.
    now.fs().storage_mut().raid_mut().reconstruct(1).unwrap();
    now.fs().revive_client(0);
    now.fs().write(0, f, 0, &vec![0xEE; bytes]).unwrap();
    assert_eq!(now.fs().read(5, f, 0).unwrap()[0], 0xEE);
}

#[test]
fn unsynced_data_loss_is_contained_to_the_failed_client() {
    let mut now = NowCluster::builder().nodes(8).build();
    let f = now.fs().create("/drill/partial").unwrap();
    let bytes = now.fs().block_bytes();
    // Client 2 writes blocks 0..4 and syncs; then writes 4..8 unsynced.
    for b in 0..4u32 {
        now.fs().write(2, f, b, &vec![1; bytes]).unwrap();
    }
    now.fs().sync(2).unwrap();
    for b in 4..8u32 {
        now.fs().write(2, f, b, &vec![2; bytes]).unwrap();
    }
    let lost = now.fs().fail_client(2);
    // Exactly the unsynced blocks are reported lost...
    let lost_blocks: Vec<u32> = lost.iter().map(|(_, b)| *b).collect();
    assert_eq!(lost_blocks, vec![4, 5, 6, 7]);
    // ...the synced ones remain readable...
    for b in 0..4u32 {
        assert_eq!(now.fs().read(1, f, b).unwrap()[0], 1);
    }
    // ...and the lost ones fail loudly rather than returning garbage.
    for b in 4..8u32 {
        assert!(
            now.fs().read(1, f, b).is_err(),
            "block {b} must not resurrect"
        );
    }
}

#[test]
fn netram_job_survives_donor_churn() {
    // An out-of-core job keeps running as donor hosts come and go; its
    // pages degrade to disk prices, never to wrong data or a crash.
    let pool = NetworkRam::new(4, 512, RemoteAccessCost::table2_atm(), 8_192);
    let mut pager = Pager::with_netram(64, 8_192, pool, DiskModel::workstation_1994());
    // Touch a working set larger than local frames.
    for i in 0..512u64 {
        pager.access(PageId(i), true, SimDuration::ZERO);
    }
    // Two donors leave mid-run.
    pager.handle_host_eviction(0);
    pager.handle_host_eviction(3);
    assert!(pager.stats().host_evicted_pages > 0);
    // The full working set remains accessible.
    for i in 0..512u64 {
        let (kind, _) = pager.access(PageId(i), false, SimDuration::ZERO);
        assert!(
            !matches!(kind, now_mem::FaultKind::SoftFault),
            "page {i} lost its contents"
        );
    }
}

#[test]
fn sequential_jobs_ride_through_a_cascade_of_node_failures() {
    // Five nodes, three of which die while a batch runs; every job still
    // completes, losing at most a checkpoint interval per failure.
    let jobs: Vec<SeqJob> = (0..10)
        .map(|i| SeqJob {
            arrival: SimTime::from_secs(i * 5),
            service: SimDuration::from_secs(600),
        })
        .collect();
    let config = ExecConfig {
        sandbox: true,
        checkpoint_every: SimDuration::from_secs(60),
        restart_cost: SimDuration::from_secs(5),
    };
    let failures = [
        (SimTime::from_secs(100), 0u32),
        (SimTime::from_secs(200), 1),
        (SimTime::from_secs(300), 2),
    ];
    let out = run_batch(&jobs, 5, &failures, &config);
    assert_eq!(out.completions.len(), 10);
    assert!(
        out.restarts >= 3,
        "the dead nodes had jobs: {}",
        out.restarts
    );
    // Dead nodes host nothing after their failure: all placements beyond
    // the initial ones land on survivors (3 and 4 absorb the refugees).
    assert!(out.placements[3] + out.placements[4] > 4);
}

#[test]
fn membership_detects_exactly_the_silent_nodes() {
    let mut now = NowCluster::builder().nodes(10).build();
    let t = SimTime::from_secs(100);
    for n in 0..10u32 {
        if n % 3 != 0 {
            now.membership_mut().heartbeat(n, t);
        }
    }
    let failed = now.membership_mut().sweep(t);
    assert_eq!(failed, vec![0, 3, 6, 9]);
    // The survivors are exactly the heartbeaters.
    assert_eq!(now.membership_mut().up_nodes().len(), 6);
    // A rebooted node rejoins cleanly.
    now.membership_mut().heartbeat(3, SimTime::from_secs(101));
    assert_eq!(now.membership_mut().up_nodes().len(), 7);
}
