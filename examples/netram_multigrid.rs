//! Network RAM: rerun Figure 2 — a multigrid solver sweeping past local
//! DRAM on three machines — and print the series plus an ASCII sketch.
//!
//! ```sh
//! cargo run --release --example netram_multigrid
//! ```

use now_mem::multigrid::{figure2_series, run, MemoryConfig};

fn main() {
    // The full figure.
    let series = figure2_series();
    println!("problem (MB)   32MB+disk (s)   128MB local (s)   32MB+netRAM (s)");
    let sizes: Vec<f64> = series[0].1.iter().map(|(x, _)| *x).collect();
    for (i, mb) in sizes.iter().enumerate() {
        println!(
            "{:>11.0} {:>15.1} {:>17.1} {:>17.1}",
            mb, series[0].1[i].1, series[1].1[i].1, series[2].1[i].1
        );
    }

    // The paper's two claims, at one representative size.
    let mb = 96;
    let disk = run(mb, MemoryConfig::local32_disk());
    let big = run(mb, MemoryConfig::local128());
    let netram = run(mb, MemoryConfig::local32_netram());
    println!();
    println!("at {mb} MB:");
    println!(
        "  network RAM vs enough local DRAM: {:.0}% slower (paper: 10-30%)",
        (netram.slowdown_vs(&big) - 1.0) * 100.0
    );
    println!(
        "  network RAM vs thrashing to disk: {:.1}x faster (paper: 5-10x)",
        disk.slowdown_vs(&netram)
    );
    println!(
        "  fault mix with network RAM: {} netRAM faults, {} disk faults, {} soft",
        netram.pager.netram_faults, netram.pager.disk_faults, netram.pager.soft_faults
    );
    println!();
    println!(
        "Virtual memory's original promise restored: the 96-MB problem is\n\
         *runnable* on a 32-MB workstation because the building's idle DRAM\n\
         is an order of magnitude closer than the local disk (Table 2)."
    );
}
