//! Mixed workload: overlay a 32-node MPP's job log on a building of
//! interactively-used workstations (the Figure 3 scenario), and watch the
//! scheduling disciplines fight (the Figure 4 scenario).
//!
//! ```sh
//! cargo run --release --example mixed_workload
//! ```

use now_core::{AppSpec, NowCluster, Scheduling};
use now_glunix::mixed::{dedicated_mpp, figure3_series};
use now_trace::lanl::{JobTrace, JobTraceConfig};
use now_trace::usage::{UsageTrace, UsageTraceConfig};

fn main() {
    // --- Figure 3: how many workstations replace a CM-5? ---
    let jobs = JobTrace::generate(&JobTraceConfig::paper_defaults(), 7);
    println!(
        "parallel workload: {} jobs, {:.0} node-hours, offered load {:.2} on a 32-node MPP",
        jobs.len(),
        jobs.total_node_seconds() / 3600.0,
        jobs.realised_load()
    );
    let mpp = dedicated_mpp(&jobs, 32);
    println!(
        "dedicated 32-node MPP: mean response {:.0} s, dilation {:.2}",
        mpp.mean_response_s(),
        mpp.mean_dilation()
    );
    println!();
    println!("NOW size   dilation (dedicated = 1.0)");
    for (n, dilation) in figure3_series(7) {
        let bar = "#".repeat(((dilation - 1.0) * 100.0).round().max(0.0) as usize);
        println!("{n:>8.0}   {dilation:>6.3}  {bar}");
    }

    // Per-cluster detail at the paper's headline point.
    let mut ucfg = UsageTraceConfig::paper_defaults();
    ucfg.machines = 64;
    let usage = UsageTrace::generate(&ucfg, 8);
    println!(
        "\nusage trace at 64 machines: {:.0}% fully idle all day, {:.0}% mean daytime idle",
        usage.fully_idle_fraction() * 100.0,
        usage.mean_daytime_idle_fraction() * 100.0
    );
    let now = NowCluster::builder().nodes(64).build();
    let outcome = now.run_mixed_workload(&jobs, &usage);
    println!(
        "64-workstation NOW: dilation {:.2} with {} migrations — \"almost a CM-5 for free\"",
        outcome.mean_dilation(),
        outcome.migrations
    );

    // --- Figure 4: why the jobs must be coscheduled ---
    println!("\nscheduling discipline (slowdown of local vs gang, 2 competing jobs):");
    let cluster = NowCluster::builder().nodes(16).build();
    for app in AppSpec::figure4_apps() {
        let gang = cluster.run_parallel(&app, Scheduling::Gang, 2);
        let local = cluster.run_parallel(&app, Scheduling::Local, 2);
        println!(
            "  {:<20} gang {:>8.2} s   local {:>9.2} s   slowdown {:>7.1}x",
            app.name,
            gang.as_secs_f64(),
            local.as_secs_f64(),
            local.as_secs_f64() / gang.as_secs_f64()
        );
    }
    println!(
        "\nthe lesson of both figures: idle cycles are there for the taking,\n\
         but only with migration on user return and coscheduled parallel slots."
    );
}
