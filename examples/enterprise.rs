//! Enterprise scale: a multi-floor building on a two-level switch
//! hierarchy, plus the sensitivity sweeps that show how much headroom the
//! paper's conclusions have.
//!
//! ```sh
//! cargo run --release --example enterprise
//! ```

use now_am::{barrier, broadcast, bulk_put};
use now_models::sensitivity::{
    gator_vs_overhead, netram_breakeven_mbps, netram_speedup_vs_bandwidth, overhead_crossover_us,
};
use now_net::{Fabric, HierarchicalFabric, Network, NicAttachment, NodeId, SoftwareCosts};
use now_sim::SimTime;

fn main() {
    // --- a 100-node building: 4 floors x 25 workstations ---
    let mut floor_fabric = HierarchicalFabric::atm_building(4, 25);
    let same_floor = floor_fabric
        .transfer(NodeId(0), NodeId(1), 8_192, SimTime::ZERO)
        .rx_done
        .as_micros_f64();
    let cross_floor = floor_fabric
        .transfer(NodeId(2), NodeId(99), 8_192, SimTime::ZERO)
        .rx_done
        .as_micros_f64();
    println!("== the building as one machine ==");
    println!("8-KB page, same floor:  {same_floor:.0} µs");
    println!("8-KB page, cross floor: {cross_floor:.0} µs  (both beat the 14,800-µs disk)");

    // Collectives across the whole building with Active Messages.
    let mut net = Network::switched(
        now_net::SwitchedFabric::atm_155(100),
        SoftwareCosts::am_hpam(),
        NicAttachment::GraphicsBus,
    );
    let b = barrier(&mut net, 100, SimTime::ZERO).saturating_since(SimTime::ZERO);
    let bc = broadcast(&mut net, 100, SimTime::ZERO).saturating_since(SimTime::ZERO);
    let put = bulk_put(&mut net, NodeId(0), NodeId(99), 1 << 20, SimTime::ZERO);
    println!("100-node barrier:   {b}");
    println!("100-node broadcast: {bc}");
    println!(
        "1-MB bulk put:      {} ({} fragments, wire-rate pipelined)",
        put.completed_at.saturating_since(SimTime::ZERO),
        put.fragments
    );

    // --- sensitivity: how robust is the paper? ---
    println!("\n== sensitivity of the conclusions ==");
    println!("Gator total vs per-message overhead (256-node ATM NOW):");
    for p in gator_vs_overhead(&[1.0, 10.0, 100.0, 1_000.0]) {
        println!("  {:>6.0} µs  ->  {:>7.0} s", p.x, p.y);
    }
    let crossover = overhead_crossover_us(35.0, 1.0, 1_000.0);
    println!("  the NOW matches the C-90 while overhead stays under {crossover:.0} µs");
    println!(
        "network RAM breaks even with the local disk at only {:.1} Mbps;",
        netram_breakeven_mbps()
    );
    let at_atm = netram_speedup_vs_bandwidth(&[155.0])[0].y;
    println!("  at ATM's 155 Mbps the advantage is already {at_atm:.1}x.");
    println!(
        "\nthe conclusions survive big constant errors: the paper's case is\n\
         about orders of magnitude, and the crossovers sit far from the edge."
    );
}
