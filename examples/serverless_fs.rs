//! xFS tour: serverless storage that keeps working as machines die.
//!
//! Walks through the paper's four xFS features: migrating management,
//! write-back ownership coherence, software-RAID storage, and cooperative
//! caching — then kills a client, a manager, and a disk, and shows the
//! data is still there.
//!
//! ```sh
//! cargo run --release --example serverless_fs
//! ```

use now_xfs::{Xfs, XfsConfig};

fn main() {
    let mut fs = Xfs::new(XfsConfig {
        clients: 16,
        managers: 4,
        storage_disks: 8,
        stripe_groups: 2,
        block_bytes: 4_096,
        client_cache_blocks: 128,
    });
    let block = |fill: u8| vec![fill; 4_096];

    // Build a small tree of files from different clients.
    let paper = fs.create("/papers/now.tex").unwrap();
    let data = fs.create("/sim/results.bin").unwrap();
    for b in 0..32 {
        fs.write(0, paper, b, &block(b as u8)).unwrap();
        fs.write(5, data, b, &block(0xA0 | (b as u8 & 0x0F)))
            .unwrap();
    }
    fs.sync(0).unwrap();
    fs.sync(5).unwrap();
    println!("wrote 2 files x 32 blocks from clients 0 and 5; synced to the stripe log");

    // Coherence: client 9 reads, client 3 overwrites, client 9 re-reads.
    let _ = fs.read(9, paper, 7).unwrap();
    fs.write(3, paper, 7, &block(0xFF)).unwrap();
    let fresh = fs.read(9, paper, 7).unwrap();
    assert_eq!(fresh[0], 0xFF);
    println!(
        "coherence: client 9's copy was invalidated by client 3's write ({} invalidations so far)",
        fs.stats().invalidations
    );

    // Cooperative caching: reads served from peers' memory, not disk.
    let before = fs.stats();
    for c in [7, 8, 10, 11] {
        let _ = fs.read(c, data, 4).unwrap();
    }
    let after = fs.stats();
    println!(
        "cooperative caching: 4 cross-client reads cost {} storage reads and {} peer transfers",
        after.storage_reads - before.storage_reads,
        after.peer_transfers - before.peer_transfers
    );

    // Failure 1: the original writer dies. Synced data survives.
    let lost = fs.fail_client(0);
    assert!(lost.is_empty());
    assert_eq!(fs.read(12, paper, 3).unwrap()[0], 3);
    println!("client 0 crashed: zero blocks lost (everything was synced)");

    // Failure 2: a manager dies; state is rebuilt from the clients.
    fs.recover_manager(2);
    assert_eq!(fs.read(14, data, 9).unwrap()[0], 0xA9);
    println!("manager 2 crashed: map redistributed, state rebuilt from client caches");

    // Failure 3: a storage disk dies; RAID-5 parity serves degraded reads,
    // then the disk is reconstructed.
    fs.storage_mut().raid_mut().fail_disk(5);
    assert_eq!(fs.read(15, paper, 20).unwrap()[0], 20);
    let rebuild = fs.storage_mut().raid_mut().reconstruct(5).unwrap();
    println!(
        "disk 5 crashed: degraded reads OK; reconstructed in {:.2} s of disk time",
        rebuild.as_secs_f64()
    );

    let s = fs.stats();
    println!();
    println!(
        "totals: {} reads ({} local, {} peer, {} storage), {} writes, {} writebacks, {:.1} ms simulated",
        s.reads,
        s.local_hits,
        s.peer_transfers,
        s.storage_reads,
        s.writes,
        s.writebacks,
        s.time.as_millis_f64()
    );
    println!("no server was involved at any point.");
}
