//! Quickstart: boot a 100-node NOW (the Berkeley prototype's scale), use
//! its serverless file system, recruit remote memory for an out-of-core
//! job, and compare communication layers.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use now_core::{Interconnect, NowCluster};

fn main() {
    // The Berkeley prototype: 100 workstations on switched ATM with
    // user-level Active Messages.
    let mut now = NowCluster::builder()
        .nodes(100)
        .interconnect(Interconnect::AtmActiveMessages)
        .mem_mb_per_node(32)
        .storage_disks(16)
        .build();

    println!("== a 100-node NOW ==");
    println!(
        "small-message one-way time: {:.1} µs (the paper's target: 10 µs)",
        now.small_message_us()
    );

    // 1. The serverless file system: any client writes, any client reads,
    //    no server anywhere.
    let file = now
        .fs()
        .create("/home/shared/results.dat")
        .expect("fresh name");
    let block_bytes = now.fs().block_bytes();
    for block in 0..8u32 {
        let data = vec![block as u8; block_bytes];
        now.fs().write(0, file, block, &data).expect("write");
    }
    now.fs().sync(0).expect("sync");
    let back = now.fs().read(99, file, 3).expect("read from the far side");
    println!(
        "xFS: node 99 read block 3 written by node 0: {} bytes, first = {}",
        back.len(),
        back[0]
    );

    // 2. Network RAM: a 96-MB problem on a 32-MB workstation.
    let netram = now.run_out_of_core(96).expect("fast interconnect");
    let disk = now.run_out_of_core_on_disk(96);
    println!(
        "out-of-core 96-MB multigrid: network RAM {:.1} s vs disk thrash {:.1} s ({:.1}x)",
        netram.total.as_secs_f64(),
        disk.total.as_secs_f64(),
        disk.total.as_secs_f64() / netram.total.as_secs_f64()
    );

    // 3. Why the interconnect matters: the same job on commodity Ethernet.
    let mut old_world = NowCluster::builder()
        .nodes(100)
        .interconnect(Interconnect::EthernetTcp)
        .build();
    println!(
        "the same cluster on shared Ethernet + TCP: small message {:.0} µs, network RAM: {:?}",
        old_world.small_message_us(),
        old_world.run_out_of_core(96).expect_err("should refuse")
    );

    // 4. And the analytic bottom line: Gator on this machine.
    let prediction = now.predict_gator();
    println!(
        "Gator prediction on this NOW: ODE {:.0} s + transport {:.0} s + input {:.0} s = {:.0} s",
        prediction.ode_s,
        prediction.transport_s,
        prediction.input_s,
        prediction.total_s()
    );
}
