//! Gator: the paper's motivating application — an atmospheric chemical
//! tracer for the Los Angeles basin — evaluated across the machine
//! spectrum and across NOW upgrade paths (Table 4, interactively).
//!
//! ```sh
//! cargo run --release --example gator                # the paper's table
//! cargo run --release --example gator -- 128 512    # custom NOW sizes
//! ```

use now_core::{Interconnect, NowCluster};
use now_models::gator::{table4, GatorPrediction};

fn print_row(p: &GatorPrediction) {
    println!(
        "{:<38} {:>9.0} {:>11.0} {:>9.0} {:>9.0} {:>9.1}",
        p.machine,
        p.ode_s,
        p.transport_s,
        p.input_s,
        p.total_s(),
        p.cost_millions
    );
}

fn main() {
    let sizes: Vec<u32> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();

    println!(
        "{:<38} {:>9} {:>11} {:>9} {:>9} {:>9}",
        "Machine", "ODE (s)", "Transp (s)", "Input (s)", "Total (s)", "Cost ($M)"
    );
    println!("{}", "-".repeat(90));

    // The paper's six rows.
    for p in table4() {
        print_row(&p);
    }

    println!();
    println!("NOW upgrade path at custom sizes (Demmel–Smith model):");
    let ladder = [
        ("shared Ethernet + PVM", Interconnect::EthernetPvm),
        ("switched ATM + TCP", Interconnect::AtmTcp),
        (
            "switched ATM + Active Messages",
            Interconnect::AtmActiveMessages,
        ),
        (
            "Myrinet + Active Messages",
            Interconnect::MyrinetActiveMessages,
        ),
    ];
    let sizes = if sizes.is_empty() {
        vec![64, 256]
    } else {
        sizes
    };
    for nodes in sizes {
        println!("-- {nodes} workstations");
        for (label, interconnect) in ladder {
            let now = NowCluster::builder()
                .nodes(nodes)
                .interconnect(interconnect)
                .build();
            let p = now.predict_gator();
            println!(
                "   {:<34} total {:>10.0} s  (transport {:>9.0} s, input {:>7.0} s)",
                label,
                p.total_s(),
                p.transport_s,
                p.input_s
            );
        }
    }

    println!();
    println!(
        "Reading: each fix buys roughly an order of magnitude; with all three\n\
         (switched fabric, parallel file system, low-overhead messages) the NOW\n\
         competes with the C-90 at a fraction of the cost."
    );
}
