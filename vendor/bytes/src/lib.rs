//! Offline stand-in for the `bytes` crate.
//!
//! Supplies the subset this workspace uses: an immutable byte container
//! that is cheap to clone (shared via `Arc`), dereferences to `[u8]`, and
//! converts from slices and vectors.
#![forbid(unsafe_code)]

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted run of bytes.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies `data` into a fresh buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: data.into() }
    }

    /// A buffer over static data (copied here; the real crate borrows).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::copy_from_slice(data)
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            write!(f, "{}", std::ascii::escape_default(b))?;
        }
        write!(f, "\"")
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self[..] == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self[..] == other[..]
    }
}

#[cfg(test)]
mod tests {
    use super::Bytes;

    #[test]
    fn roundtrips_and_compares() {
        let b = Bytes::copy_from_slice(&[1, 2, 3]);
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b, Bytes::from(vec![1, 2, 3]));
        assert_eq!(b.len(), 3);
        let c = b.clone();
        assert_eq!(c, b);
    }
}
