//! Offline stand-in for `serde_derive`.
//!
//! This workspace is built in an environment with no crate registry, so the
//! real `serde`/`serde_derive` cannot be fetched. The codebase only *derives*
//! `Serialize`/`Deserialize` — nothing ever serializes a value — so an empty
//! derive is a faithful, zero-cost replacement: the derive syntax (including
//! `#[serde(...)]` helper attributes) parses, and no code is generated.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
