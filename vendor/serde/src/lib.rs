//! Offline stand-in for `serde`.
//!
//! Provides the two trait names and re-exports the no-op derives from the
//! sibling `serde_derive` stub so `use serde::{Deserialize, Serialize};`
//! followed by `#[derive(Serialize, Deserialize)]` compiles unchanged. The
//! workspace never serializes anything, so the traits carry no methods.
#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait matching `serde::Serialize`'s name.
pub trait Serialize {}

/// Marker trait matching `serde::Deserialize`'s name.
pub trait Deserialize<'de>: Sized {}
