//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no crate registry, so this workspace vendors
//! the small slice of `rand` it actually uses: `rngs::StdRng` seeded via
//! `SeedableRng::seed_from_u64`, `RngCore::next_u64`, `Rng::gen_range` over
//! half-open integer/float ranges, and `Rng::gen::<f64>()`.
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — a different
//! stream than upstream's ChaCha12, but the workspace only requires that
//! equal seeds give equal streams and that the stream is statistically
//! sound (the `now-sim` distribution tests assert means/tails with
//! tolerances, not exact draws).
#![forbid(unsafe_code)]

use std::ops::Range;

/// Named random number generators.
pub mod rngs {
    /// A deterministic, statistically solid PRNG: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the reference seeding for xoshiro.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Core of every generator: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// The next uniform 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[range.start, range.end)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: &Range<Self>) -> Self;
}

/// Unbiased uniform draw from `[0, span)` by rejection sampling.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Accept r in [t, 2^64): that interval's length is a multiple of span.
    let threshold = span.wrapping_neg() % span;
    loop {
        let r = rng.next_u64();
        if r >= threshold {
            return r % span;
        }
    }
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: &Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end - range.start) as u64;
                range.start + uniform_below(rng, span) as $t
            }
        }
    )*};
}
impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: &Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as $u).wrapping_sub(range.start as $u) as u64;
                range.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: &Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample empty range");
        let f = standard_f64(rng.next_u64());
        range.start + f * (range.end - range.start)
    }
}

/// `[0, 1)` from the top 53 bits of a word.
fn standard_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types drawable from the "standard" distribution (`Rng::gen`).
pub trait Standard: Sized {
    /// One standard draw.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        standard_f64(rng.next_u64())
    }
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Convenience methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform draw from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, &range)
    }

    /// A standard-distribution draw (`f64` in `[0, 1)`, fair `bool`, ...).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_stays_in_bounds_and_hits_everything() {
        let mut r = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.gen_range(5u64..15);
            assert!((5..15).contains(&v));
            seen[(v - 5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_is_unit_interval_with_sane_mean() {
        let mut r = StdRng::seed_from_u64(4);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn signed_ranges_work() {
        let mut r = StdRng::seed_from_u64(5);
        for _ in 0..500 {
            let v = r.gen_range(-10i64..10);
            assert!((-10..10).contains(&v));
        }
    }
}
