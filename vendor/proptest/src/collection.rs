//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRunner;
use std::ops::{Range, RangeInclusive};

/// An inclusive length range for generated collections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

/// The strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generates `Vec`s whose length lies in `size` and whose elements come
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, runner: &mut TestRunner) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo
            + if span == 0 {
                0
            } else {
                runner.below(span + 1) as usize
            };
        (0..len).map(|_| self.element.sample(runner)).collect()
    }
}
