//! Deterministic case generation for the `proptest!` macro.

/// How many cases each property runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the whole suite quick while
        // still exploring widely (streams are deterministic anyway).
        ProptestConfig { cases: 64 }
    }
}

/// A failed or rejected test case, carried by the `Result` every property
/// body runs inside (the stub's `prop_assert*` panic instead, but bodies
/// may construct and `?`-propagate this type as with upstream).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The per-test random source: xoshiro256++ seeded from the test's name so
/// every run of every test sees the same stream.
#[derive(Debug, Clone)]
pub struct TestRunner {
    s: [u64; 4],
}

impl TestRunner {
    /// A runner whose stream is a pure function of `name`.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name, then SplitMix64 expansion.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut state = h;
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRunner {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next uniform 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Unbiased uniform draw from `[0, span)`.
    ///
    /// # Panics
    ///
    /// Panics if `span` is zero.
    pub fn below(&mut self, span: u64) -> u64 {
        assert!(span > 0, "cannot sample an empty range");
        let threshold = span.wrapping_neg() % span;
        loop {
            let r = self.next_u64();
            if r >= threshold {
                return r % span;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
