//! `any::<T>()` — the whole-domain strategy for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRunner;
use std::marker::PhantomData;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one value from the type's whole domain.
    fn arbitrary(runner: &mut TestRunner) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

/// A strategy over the entire domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, runner: &mut TestRunner) -> T {
        T::arbitrary(runner)
    }
}

impl Arbitrary for bool {
    fn arbitrary(runner: &mut TestRunner) -> Self {
        runner.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(runner: &mut TestRunner) -> Self {
                runner.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(runner: &mut TestRunner) -> Self {
        // Finite, sign-symmetric, wide dynamic range.
        let mag = runner.unit_f64() * 1e12;
        if runner.next_u64() & 1 == 1 {
            -mag
        } else {
            mag
        }
    }
}
