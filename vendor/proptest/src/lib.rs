//! Offline stand-in for `proptest`.
//!
//! The build environment has no crate registry, so this workspace vendors a
//! deterministic, non-shrinking implementation of the `proptest` surface its
//! tests use: the `proptest!` macro (with optional `proptest_config`),
//! `any::<T>()`, range strategies, tuples, `prop::collection::vec`,
//! `prop::option::of`, `prop_map`/`prop_filter`, and the `prop_assert*` /
//! `prop_assume!` macros.
//!
//! Differences from upstream, by design:
//!
//! * no shrinking — a failing case panics with the sampled values in scope;
//! * the case count defaults to 64 (upstream 256) to keep `cargo test` fast;
//! * each test's stream is seeded from its own name, so runs are fully
//!   deterministic and independent of execution order.
#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that samples the strategies for a configured number
/// of cases and runs the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with ($cfg) $($rest)*);
    };
    (@with ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut runner =
                $crate::test_runner::TestRunner::deterministic(stringify!($name));
            for _case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&$strat, &mut runner);)+
                // The closure gives the body `?` and early `return` (via
                // `prop_assume!`), as upstream's generated test fn does.
                let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        Ok(())
                    })();
                result.expect("property failed");
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts inside a property test (no shrinking here, so it is `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Inequality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Rejects the current case when the condition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Ok(());
        }
    };
}
