//! The [`Strategy`] trait and the combinators this workspace's tests use.

use crate::test_runner::TestRunner;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, runner: &mut TestRunner) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { base: self, f }
    }

    /// Keeps only values satisfying `f`, resampling otherwise. `whence` is
    /// reported if the filter never passes.
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            base: self,
            f,
            whence,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, runner: &mut TestRunner) -> Self::Value {
        (**self).sample(runner)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, runner: &mut TestRunner) -> U {
        (self.f)(self.base.sample(runner))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    base: S,
    f: F,
    whence: &'static str,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn sample(&self, runner: &mut TestRunner) -> S::Value {
        for _ in 0..10_000 {
            let v = self.base.sample(runner);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter {:?} rejected 10000 consecutive samples",
            self.whence
        );
    }
}

macro_rules! impl_range_strategy_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, runner: &mut TestRunner) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + runner.below(span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, runner: &mut TestRunner) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return runner.next_u64() as $t;
                }
                lo + runner.below(span + 1) as $t
            }
        }
    )*};
}
impl_range_strategy_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_range_strategy_int {
    ($($t:ty => $u:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, runner: &mut TestRunner) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(runner.below(span) as $t)
            }
        }
    )*};
}
impl_range_strategy_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, runner: &mut TestRunner) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + runner.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+)),*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, runner: &mut TestRunner) -> Self::Value {
                ($(self.$idx.sample(runner),)+)
            }
        }
    )*};
}
impl_tuple_strategy!(
    (A 0),
    (A 0, B 1),
    (A 0, B 1, C 2),
    (A 0, B 1, C 2, D 3),
    (A 0, B 1, C 2, D 3, E 4),
    (A 0, B 1, C 2, D 3, E 4, F 5)
);
