//! Option strategies (`prop::option::of`).

use crate::strategy::Strategy;
use crate::test_runner::TestRunner;

/// The strategy returned by [`of`].
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

/// Generates `None` about a quarter of the time, otherwise `Some` of a
/// value drawn from `inner`.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn sample(&self, runner: &mut TestRunner) -> Option<S::Value> {
        if runner.below(4) == 0 {
            None
        } else {
            Some(self.inner.sample(runner))
        }
    }
}
