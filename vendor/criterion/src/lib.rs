//! Offline stand-in for `criterion`.
//!
//! Implements the API surface this workspace's benches use — `Criterion`,
//! `benchmark_group`, `Bencher::iter`, `Throughput`, `criterion_group!`,
//! `criterion_main!` — over a simple wall-clock measurement loop.
//!
//! Mode follows upstream's convention: when the binary is invoked with
//! `--bench` (as `cargo bench` does), each benchmark is warmed up and timed
//! adaptively and a mean time per iteration is printed. Otherwise (e.g.
//! `cargo test --benches`) each benchmark body runs exactly once as a smoke
//! test, so test runs stay fast.
#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Work-per-iteration hint, used to report rates alongside times.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Iterations process this many abstract elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// The top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    measure: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let measure = std::env::args().any(|a| a == "--bench");
        Criterion { measure }
    }
}

impl Criterion {
    /// Runs one standalone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self.measure, &name.into(), None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub sizes its sample adaptively.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.into());
        run_one(self.criterion.measure, &full, self.throughput, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Handed to each benchmark body; runs the measured routine.
#[derive(Debug, Default)]
pub struct Bencher {
    measure: bool,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Calls `routine` repeatedly and records the mean wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if !self.measure {
            std::hint::black_box(routine());
            self.iters = 1;
            return;
        }
        // Warm up and estimate scale with a single call.
        let start = Instant::now();
        std::hint::black_box(routine());
        let first = start.elapsed().max(Duration::from_nanos(1));
        // Time as many iterations as fit in ~200 ms, capped at 1000.
        let budget = Duration::from_millis(200);
        let iters = (budget.as_nanos() / first.as_nanos()).clamp(1, 1000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(measure: bool, name: &str, tp: Option<Throughput>, mut f: F) {
    let mut b = Bencher {
        measure,
        ..Bencher::default()
    };
    f(&mut b);
    if !measure {
        return;
    }
    if b.iters == 0 {
        println!("{name}: no measurement (Bencher::iter never called)");
        return;
    }
    let per_iter = b.elapsed.as_secs_f64() / b.iters as f64;
    let rate = match tp {
        Some(Throughput::Elements(n)) => {
            format!("  ({:.0} elem/s)", n as f64 / per_iter)
        }
        Some(Throughput::Bytes(n)) => {
            format!("  ({:.1} MiB/s)", n as f64 / per_iter / (1024.0 * 1024.0))
        }
        None => String::new(),
    };
    println!(
        "{name}: {:.3} µs/iter over {} iters{rate}",
        per_iter * 1e6,
        b.iters
    );
}

/// Declares a function that runs a list of benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running one or more benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
