use now_cache::{simulate, CacheConfig, Policy};
use now_trace::fs::{FsTrace, FsTraceConfig};

fn main() {
    let cfg = FsTraceConfig::paper_defaults();
    let trace = FsTrace::generate(&cfg, 42);
    println!(
        "trace: {} accesses, {} unique blocks, shared {:.3}",
        trace.len(),
        trace.unique_blocks(),
        trace.shared_block_fraction()
    );
    for (name, policy) in [
        ("client-server", Policy::ClientServer),
        ("greedy", Policy::GreedyForwarding),
        ("n-chance(2)", Policy::NChance { n: 2 }),
    ] {
        let r = simulate(&trace, &CacheConfig::table3(policy));
        println!(
            "{name:>14}: miss {:.1}%  resp {:.2} ms  local {:.1}%  server {:.1}%  remote {:.1}%",
            r.disk_read_rate() * 100.0,
            r.avg_read_response().as_millis_f64(),
            r.local_hit_rate() * 100.0,
            r.server_hits as f64 / r.reads as f64 * 100.0,
            r.remote_client_hits as f64 / r.reads as f64 * 100.0,
        );
    }
}
