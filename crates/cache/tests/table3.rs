//! Integration test: the Table 3 experiment at reduced trace length.
//!
//! The full two-day configuration (run by `repro --table3` and recorded in
//! `EXPERIMENTS.md`) reproduces the paper's 16 → 8 percent miss-rate
//! halving; this test runs the same pipeline on a 12-hour trace so it stays
//! fast in debug builds, and asserts the qualitative shape with widened
//! bands.

use now_cache::{simulate, CacheConfig, Policy};
use now_sim::SimDuration;
use now_trace::fs::{FsTrace, FsTraceConfig};

fn twelve_hour_trace() -> &'static FsTrace {
    use std::sync::OnceLock;
    static TRACE: OnceLock<FsTrace> = OnceLock::new();
    TRACE.get_or_init(|| {
        let mut cfg = FsTraceConfig::paper_defaults();
        cfg.duration = SimDuration::from_secs(12 * 3600);
        FsTrace::generate(&cfg, 42)
    })
}

#[test]
fn table3_shape_holds() {
    let trace = twelve_hour_trace();
    let base = simulate(trace, &CacheConfig::table3(Policy::ClientServer));
    let coop = simulate(trace, &CacheConfig::table3(Policy::GreedyForwarding));
    let nchance = simulate(trace, &CacheConfig::table3(Policy::NChance { n: 2 }));

    // Baseline miss rate in the neighbourhood of the paper's 16 percent.
    let base_miss = base.disk_read_rate();
    assert!(
        (0.12..=0.26).contains(&base_miss),
        "baseline miss rate {base_miss}"
    );

    // Cooperative caching substantially reduces disk reads...
    let coop_miss = coop.disk_read_rate();
    assert!(
        coop_miss < base_miss * 0.75,
        "cooperative caching should cut disk reads: {base_miss} -> {coop_miss}"
    );
    // ...and N-Chance does at least as well as greedy forwarding.
    assert!(nchance.disk_read_rate() <= coop_miss * 1.05);

    // Read response time improves by a large factor (paper: 80 percent,
    // i.e. 1.75x).
    let speedup =
        base.avg_read_response().as_micros_f64() / coop.avg_read_response().as_micros_f64();
    assert!(
        (1.25..=2.5).contains(&speedup),
        "response-time improvement {speedup}"
    );
}

#[test]
fn cooperative_caching_shifts_hits_from_disk_to_remote_memory() {
    let trace = twelve_hour_trace();
    let base = simulate(trace, &CacheConfig::table3(Policy::ClientServer));
    let coop = simulate(trace, &CacheConfig::table3(Policy::GreedyForwarding));

    // The same reads happen; the forwarding policy converts disk reads and
    // server-cache pressure into remote-client hits.
    assert_eq!(base.reads, coop.reads);
    assert_eq!(base.remote_client_hits, 0);
    assert!(coop.remote_client_hits > 0);
    let moved = base.disk_reads - coop.disk_reads;
    assert!(
        coop.remote_client_hits as f64 > moved as f64,
        "remote hits ({}) should cover the disk reads avoided ({moved})",
        coop.remote_client_hits
    );
}

#[test]
fn idle_clients_absorb_singlets_under_nchance() {
    let trace = twelve_hour_trace();
    let nchance = simulate(trace, &CacheConfig::table3(Policy::NChance { n: 2 }));
    assert!(
        nchance.forwards > 0,
        "n-chance must actually forward blocks between clients"
    );
}
