//! Property tests: invariants that must hold for every caching policy on
//! every trace.

use now_cache::{simulate, CacheConfig, Policy};
use now_sim::SimTime;
use now_trace::fs::{AccessKind, BlockId, FileId, FsAccess, FsTrace};
use proptest::prelude::*;

/// Builds an arbitrary (but valid) trace from op tuples.
fn trace_from(ops: &[(u32, u32, u32, bool)], clients: u32) -> FsTrace {
    let mut accesses: Vec<FsAccess> = ops
        .iter()
        .enumerate()
        .map(|(i, &(client, file, block, write))| FsAccess {
            time: SimTime::from_millis(i as u64),
            client: client % clients,
            block: BlockId {
                file: FileId(file % 8),
                block: block % 16,
            },
            kind: if write {
                AccessKind::Write
            } else {
                AccessKind::Read
            },
        })
        .collect();
    accesses.sort_by_key(|a| a.time);
    FsTrace {
        accesses,
        file_blocks: vec![16; 8],
        clients,
    }
}

fn policies() -> Vec<Policy> {
    vec![
        Policy::ClientServer,
        Policy::GreedyForwarding,
        Policy::NChance { n: 2 },
        Policy::Centralized {
            local_fraction: 0.25,
        },
    ]
}

proptest! {
    /// Conservation: every read is served from exactly one place, and
    /// reads+writes cover the trace.
    #[test]
    fn every_access_classified_once(
        ops in prop::collection::vec((0u32..6, 0u32..8, 0u32..16, any::<bool>()), 1..300)
    ) {
        let trace = trace_from(&ops, 6);
        for policy in policies() {
            let r = simulate(&trace, &CacheConfig::small(policy));
            prop_assert_eq!(r.reads + r.writes, trace.accesses.len() as u64, "{:?}", policy);
            prop_assert_eq!(
                r.local_hits + r.remote_client_hits + r.server_hits + r.disk_reads,
                r.reads,
                "{:?}", policy
            );
        }
    }

    /// The first read of any block always goes to disk (nothing can be
    /// cached before it exists), for every policy.
    #[test]
    fn cold_reads_hit_disk(
        ops in prop::collection::vec((0u32..6, 0u32..8, 0u32..16), 1..100)
    ) {
        // All-reads trace with every block distinct on first touch.
        let reads: Vec<(u32, u32, u32, bool)> =
            ops.iter().map(|&(c, f, b)| (c, f, b, false)).collect();
        let trace = trace_from(&reads, 6);
        let distinct_blocks: std::collections::HashSet<_> =
            trace.accesses.iter().map(|a| a.block).collect();
        for policy in policies() {
            let r = simulate(&trace, &CacheConfig::small(policy));
            prop_assert!(
                r.disk_reads >= distinct_blocks.len() as u64,
                "{:?}: {} disk reads for {} distinct blocks",
                policy, r.disk_reads, distinct_blocks.len()
            );
        }
    }

    /// Cooperation never *increases* disk reads relative to the baseline
    /// on the same trace (client caches behave identically; forwarding
    /// only adds ways to avoid the disk).
    #[test]
    fn forwarding_never_hurts_disk_traffic(
        ops in prop::collection::vec((0u32..6, 0u32..8, 0u32..16, any::<bool>()), 1..300)
    ) {
        let trace = trace_from(&ops, 6);
        let base = simulate(&trace, &CacheConfig::small(Policy::ClientServer));
        let greedy = simulate(&trace, &CacheConfig::small(Policy::GreedyForwarding));
        prop_assert!(greedy.disk_reads <= base.disk_reads);
    }

    /// Determinism across policies: same trace, same config, same result.
    #[test]
    fn deterministic(
        ops in prop::collection::vec((0u32..6, 0u32..8, 0u32..16, any::<bool>()), 1..150)
    ) {
        let trace = trace_from(&ops, 6);
        for policy in policies() {
            let a = simulate(&trace, &CacheConfig::small(policy));
            let b = simulate(&trace, &CacheConfig::small(policy));
            prop_assert_eq!(a, b);
        }
    }

    /// Response time is consistent with the mix: total read time equals
    /// the weighted sum of the service classes.
    #[test]
    fn read_time_adds_up(
        ops in prop::collection::vec((0u32..6, 0u32..8, 0u32..16, any::<bool>()), 1..200)
    ) {
        let trace = trace_from(&ops, 6);
        for policy in policies() {
            let config = CacheConfig::small(policy);
            let r = simulate(&trace, &config);
            let expect = config.costs.local_mem * r.local_hits
                + config.costs.remote_mem * (r.remote_client_hits + r.server_hits)
                + config.costs.disk * r.disk_reads;
            prop_assert_eq!(r.read_time, expect, "{:?}", policy);
        }
    }
}
