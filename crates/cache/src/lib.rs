//! # now-cache — cooperative file caching (Table 3)
//!
//! In a building-wide NOW the aggregate DRAM of the clients dwarfs anything
//! a file server can hold. Cooperative caching manages the client caches as
//! one: a miss in your own 16 MB can be served from another client's memory
//! in ~1 ms instead of from the server's disk in ~16 ms. The paper reports
//! (from a two-day, 42-workstation Berkeley trace) that a practical
//! implementation halves the disk-read rate — 16 percent to 8 percent — and
//! improves read response time by 80 percent (2.8 ms to 1.6 ms).
//!
//! This crate implements three policies from the underlying study (Dahlin
//! et al., OSDI 1994) and drives them with the synthetic trace from
//! [`now_trace::fs`]:
//!
//! * [`Policy::ClientServer`] — the baseline: private client LRU caches in
//!   front of a server LRU cache in front of the server disk.
//! * [`Policy::GreedyForwarding`] — the server remembers which clients hold
//!   which blocks and forwards misses to a caching client before going to
//!   disk; clients still manage their caches selfishly.
//! * [`Policy::NChance`] — additionally, a client evicting the *last*
//!   cached copy of a block (a "singlet") forwards it to a random peer
//!   instead of dropping it, up to `n` recirculations: idle clients end up
//!   holding the overflow of active ones.
//!
//! # Example
//!
//! ```
//! use now_cache::{simulate, CacheConfig, Policy};
//! use now_trace::fs::{FsTrace, FsTraceConfig};
//!
//! let trace = FsTrace::generate(&FsTraceConfig::small(), 1);
//! let base = simulate(&trace, &CacheConfig::table3(Policy::ClientServer));
//! let coop = simulate(&trace, &CacheConfig::table3(Policy::NChance { n: 2 }));
//! assert!(coop.disk_read_rate() <= base.disk_read_rate());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod serve;
mod sim;

pub use serve::{ServeComponent, ServeConfig, ServeEvent, ThinkTime};
pub use sim::{
    simulate, simulate_probed, sweep_client_cache, sweep_nchance, AccessCosts, CacheComponent,
    CacheConfig, CacheEvent, Policy, SimResult,
};
