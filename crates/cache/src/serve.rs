//! Open-loop population serving workload: the "building as server" story.
//!
//! The paper's closing pitch is a NOW serving an entire campus. This module
//! generates that load: a *population* of simulated users (up to millions)
//! issuing requests open-loop — arrivals keep coming at the population's
//! aggregate rate whether or not earlier requests have finished, which is
//! what makes saturation visible as a latency explosion rather than a
//! gentle slowdown. Object popularity is Zipf (a few hot objects dominate),
//! think times are exponential or Pareto, and each request walks the
//! client-cache → server-cache → disk hierarchy of [`crate::CacheConfig`]
//! fame, contending for the engine's shared fabric under
//! [`CostMode::Fabric`].
//!
//! Observation is streaming by construction: every latency lands in a
//! [`QuantileSketch`] (O(buckets) memory), and causal tracing uses the
//! engine's 1-in-N trace sampling — each request chain is rooted via
//! `Ctx::schedule_root_at`, so sampled chains are traced end-to-end while
//! the rest cost nothing. Nothing in this module retains per-request state
//! (the open-loop generator needs no per-user state either: only the
//! aggregate arrival rate depends on the population), so memory stays
//! O(nodes + sketch buckets + sampled traces) regardless of run length.

use now_mem::{LruCache, Touch};
use now_probe::causal::category;
use now_probe::{Gauge, Probe, QuantileSketch};
use now_sim::{Component, CostMode, Ctx, EventCast, SimDuration, SimRng, SimTime, ZipfSampler};

use crate::AccessCosts;

/// Request message to the server (object id plus header).
const REQUEST_BYTES: u64 = 64;

/// Per-user pause between finishing one request and issuing the next.
/// Open-loop arrivals at aggregate rate `population / mean_think`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ThinkTime {
    /// Memoryless think time with the given mean.
    Exponential {
        /// Mean think time in milliseconds.
        mean_ms: f64,
    },
    /// Heavy-tailed think time (humans: many quick follow-ups, a few long
    /// coffee breaks). Mean is `min_ms * alpha / (alpha - 1)`.
    Pareto {
        /// Scale (minimum) in milliseconds.
        min_ms: f64,
        /// Tail exponent; must be `> 1` for a finite mean.
        alpha: f64,
    },
}

impl ThinkTime {
    /// Mean think time in nanoseconds.
    pub fn mean_ns(&self) -> f64 {
        match *self {
            ThinkTime::Exponential { mean_ms } => mean_ms * 1e6,
            ThinkTime::Pareto { min_ms, alpha } => min_ms * 1e6 * alpha / (alpha - 1.0),
        }
    }

    /// Draws one think time in nanoseconds.
    fn draw_ns(&self, rng: &mut SimRng) -> f64 {
        match *self {
            ThinkTime::Exponential { mean_ms } => rng.exponential(mean_ms * 1e6),
            ThinkTime::Pareto { min_ms, alpha } => rng.pareto(min_ms * 1e6, alpha),
        }
    }
}

/// Configuration of one serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Simulated users generating load. Only the aggregate arrival rate
    /// depends on this, so memory does not grow with it.
    pub population: u64,
    /// Per-user think-time distribution.
    pub think: ThinkTime,
    /// Distinct objects users can request.
    pub catalog_objects: usize,
    /// Zipf skew of object popularity (0 = uniform; ~0.9 is web-like).
    pub zipf_theta: f64,
    /// Blocks each front-end workstation caches.
    pub client_blocks: usize,
    /// Blocks the server caches.
    pub server_blocks: usize,
    /// Size of one served object in bytes.
    pub object_bytes: u64,
    /// Service-time constants (used directly under [`CostMode::Fixed`];
    /// under [`CostMode::Fabric`] network legs are priced by the live
    /// fabric and only the disk increment is taken from here).
    pub costs: AccessCosts,
    /// Arrivals stop at this simulated time; in-flight requests drain.
    pub horizon: SimTime,
    /// Workload seed (arrivals, object choice, client assignment).
    pub seed: u64,
    /// Test-only exhaustive mode: additionally retain every raw latency so
    /// tests can compare sketch quantiles against exact ones. Never enable
    /// outside tests — it makes memory O(events) by design.
    pub retain_exact: bool,
}

/// Events driving a [`ServeComponent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeEvent {
    /// One user request arrives at a front-end workstation. Each arrival
    /// roots a fresh causal trace and schedules its successor.
    Arrival,
    /// The request reached the server: consult its cache.
    ServerRead {
        /// Requested object.
        object: u64,
        /// Front-end client slot that owns the request.
        client: u32,
        /// Arrival time, for end-to-end latency.
        started: SimTime,
    },
    /// The server's disk finished reading the object; send the response.
    DiskDone {
        /// Requested object.
        object: u64,
        /// Front-end client slot that owns the request.
        client: u32,
        /// Arrival time, for end-to-end latency.
        started: SimTime,
    },
}

/// Where a request was ultimately served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Served {
    Local,
    ServerMem,
    Disk,
}

/// The population serving workload as an engine [`Component`].
///
/// Front-end workstations hold private LRU caches over the object catalog;
/// misses travel to the server (whose cache fronts its disk) and the
/// response travels back. Under [`CostMode::Fabric`] both legs reserve
/// real occupancy on the shared fabric, so the saturation point emerges
/// from contention; under [`CostMode::Fixed`] the [`AccessCosts`]
/// constants are charged instead (used by fast unit tests).
pub struct ServeComponent {
    config: ServeConfig,
    /// Fabric node of each front-end (identity when unset).
    client_nodes: Vec<u32>,
    /// Fabric node of the server.
    server_node: u32,
    clients: Vec<LruCache<u64>>,
    server: LruCache<u64>,
    rng: SimRng,
    zipf: ZipfSampler,
    /// Pure-disk service increment (the constants' disk cost includes a
    /// network round trip; the fabric charges that live).
    disk_service: SimDuration,
    sketch: QuantileSketch,
    requests: u64,
    completed: u64,
    local_hits: u64,
    server_hits: u64,
    disk_reads: u64,
    exact: Vec<u64>,
    requests_gauge: Gauge,
    mean_ms_gauge: Gauge,
    local_gauge: Gauge,
    server_gauge: Gauge,
    disk_gauge: Gauge,
}

impl ServeComponent {
    /// Builds the serving cluster with `front_ends` client workstations.
    ///
    /// # Panics
    ///
    /// Panics if `front_ends` is zero, the catalog is empty, or the
    /// population is zero.
    pub fn new(config: ServeConfig, front_ends: usize) -> Self {
        assert!(front_ends > 0, "need at least one front-end workstation");
        assert!(config.catalog_objects > 0, "catalog must be non-empty");
        assert!(config.population > 0, "population must be positive");
        let mut rng = SimRng::new(config.seed);
        let zipf = ZipfSampler::new(config.catalog_objects, config.zipf_theta);
        let clients = (0..front_ends)
            .map(|_| LruCache::new(config.client_blocks))
            .collect();
        let server = LruCache::new(config.server_blocks);
        let disk_service = config.costs.disk.saturating_sub(config.costs.remote_mem);
        // Burn one draw so the arrival stream differs from the fork chain
        // other components derive from the same master seed.
        let _ = rng.f64();
        ServeComponent {
            config,
            client_nodes: Vec::new(),
            server_node: 0,
            clients,
            server,
            rng,
            zipf,
            disk_service,
            sketch: QuantileSketch::new(),
            requests: 0,
            completed: 0,
            local_hits: 0,
            server_hits: 0,
            disk_reads: 0,
            exact: Vec::new(),
            requests_gauge: Gauge::default(),
            mean_ms_gauge: Gauge::default(),
            local_gauge: Gauge::default(),
            server_gauge: Gauge::default(),
            disk_gauge: Gauge::default(),
        }
    }

    /// Places front-end `i` on fabric node `client_nodes[i]` and the
    /// server on `server_node`. Required for [`CostMode::Fabric`] engines.
    #[must_use]
    pub fn with_placement(mut self, client_nodes: Vec<u32>, server_node: u32) -> Self {
        self.client_nodes = client_nodes;
        self.server_node = server_node;
        self
    }

    /// Attaches a telemetry probe publishing the `serve.*` gauges the
    /// flight recorder samples.
    pub fn set_probe(&mut self, probe: &Probe) {
        self.requests_gauge = probe.gauge("serve.requests");
        self.mean_ms_gauge = probe.gauge("serve.mean_ms");
        self.local_gauge = probe.gauge("serve.local_hits");
        self.server_gauge = probe.gauge("serve.server_hits");
        self.disk_gauge = probe.gauge("serve.disk_reads");
    }

    /// The streaming latency sketch (exact count/sum/min/max, bounded-
    /// error quantiles).
    pub fn sketch(&self) -> &QuantileSketch {
        &self.sketch
    }

    /// Requests issued.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Requests completed (equals [`ServeComponent::requests`] once the
    /// engine drains).
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Requests served from the front-end's own cache.
    pub fn local_hits(&self) -> u64 {
        self.local_hits
    }

    /// Requests served from the server's memory.
    pub fn server_hits(&self) -> u64 {
        self.server_hits
    }

    /// Requests that went to the server disk.
    pub fn disk_reads(&self) -> u64 {
        self.disk_reads
    }

    /// Raw latencies in nanoseconds when `retain_exact` was set (tests
    /// only); empty otherwise.
    pub fn exact_latencies(&self) -> &[u64] {
        &self.exact
    }

    /// Approximate footprint of the *workload* state (caches, catalog
    /// CDF) — reported alongside observation bytes so the two bounds stay
    /// distinguishable in the serve report.
    pub fn workload_bytes(&self) -> usize {
        let caches: usize = self
            .clients
            .iter()
            .chain(std::iter::once(&self.server))
            .map(LruCache::approx_bytes)
            .sum();
        caches + self.zipf.approx_bytes() + std::mem::size_of::<Self>()
    }

    /// Approximate footprint of this component's *observation* state (the
    /// latency sketch; the causal log and recorder account for themselves).
    pub fn observation_bytes(&self) -> usize {
        self.sketch.approx_bytes()
    }

    fn node_of(&self, client: u32) -> u32 {
        self.client_nodes
            .get(client as usize)
            .copied()
            .unwrap_or(client)
    }

    /// Mean interarrival of the aggregate open-loop stream: one user's
    /// think-time draw divided by the population.
    fn next_gap(&mut self) -> SimDuration {
        let ns = self.config.think.draw_ns(&mut self.rng) / self.config.population as f64;
        SimDuration::from_nanos((ns.max(1.0)) as u64)
    }

    fn complete<M>(&mut self, ctx: &mut Ctx<'_, M>, started: SimTime, end: SimTime, via: Served) {
        let latency = end.saturating_since(started);
        self.sketch.record(latency.as_nanos());
        if self.config.retain_exact {
            self.exact.push(latency.as_nanos());
        }
        self.completed += 1;
        match via {
            Served::Local => self.local_hits += 1,
            Served::ServerMem => self.server_hits += 1,
            Served::Disk => self.disk_reads += 1,
        }
        ctx.mark("serve.done", end);
        self.requests_gauge.set(self.requests as f64);
        self.local_gauge.set(self.local_hits as f64);
        self.server_gauge.set(self.server_hits as f64);
        self.disk_gauge.set(self.disk_reads as f64);
        if let Some(mean) = self.sketch.mean() {
            self.mean_ms_gauge.set(mean / 1e6);
        }
    }

    fn on_arrival<M: EventCast<ServeEvent>>(&mut self, ctx: &mut Ctx<'_, M>) {
        let now = ctx.now();
        // Root the next arrival first, while no blame is pending: each
        // request chain is its own trace, so the engine's 1-in-N sampler
        // picks whole chains and causal memory tracks sampled chains.
        let next = now + self.next_gap();
        if next <= self.config.horizon {
            ctx.schedule_root_at(next, M::upcast(ServeEvent::Arrival));
        }
        let client = self.rng.index(self.clients.len()) as u32;
        let object = self.zipf.sample(&mut self.rng) as u64;
        self.requests += 1;
        if self.clients[client as usize].touch(object, false) == Touch::Hit {
            let end = now + self.config.costs.local_mem;
            ctx.blame(category::LOCAL_MEM, self.config.costs.local_mem);
            self.complete(ctx, now, end, Served::Local);
            return;
        }
        // Miss: the request travels to the server.
        let read = ServeEvent::ServerRead {
            object,
            client,
            started: now,
        };
        match ctx.cost_mode() {
            CostMode::Fixed => {
                ctx.schedule_at(now, M::upcast(read));
            }
            CostMode::Fabric => {
                let (src, dst) = (self.node_of(client), self.server_node);
                let cost = ctx.transfer_detailed(src, dst, REQUEST_BYTES);
                ctx.blame(category::AM_OVERHEAD, cost.overhead);
                ctx.blame(category::FABRIC_WAIT, cost.wait);
                ctx.blame(category::WIRE, cost.wire);
                ctx.schedule_at(cost.delivered, M::upcast(read));
            }
        }
    }

    fn on_server_read<M: EventCast<ServeEvent>>(
        &mut self,
        ctx: &mut Ctx<'_, M>,
        object: u64,
        client: u32,
        started: SimTime,
    ) {
        if self.server.touch(object, false) == Touch::Hit {
            let end = match ctx.cost_mode() {
                CostMode::Fixed => started + self.config.costs.remote_mem,
                CostMode::Fabric => self.respond(ctx, client),
            };
            self.complete(ctx, started, end, Served::ServerMem);
            return;
        }
        // Disk read, then the response.
        match ctx.cost_mode() {
            CostMode::Fixed => {
                let end = started + self.config.costs.disk;
                self.complete(ctx, started, end, Served::Disk);
            }
            CostMode::Fabric => {
                ctx.blame(category::DISK, self.disk_service);
                ctx.schedule_at(
                    ctx.now() + self.disk_service,
                    M::upcast(ServeEvent::DiskDone {
                        object,
                        client,
                        started,
                    }),
                );
            }
        }
    }

    /// Sends the object back to the requester over the fabric, returning
    /// the delivery time. Only called under [`CostMode::Fabric`]; the
    /// fixed-cost paths charge the round trip from their constants.
    fn respond<M>(&mut self, ctx: &mut Ctx<'_, M>, client: u32) -> SimTime {
        let (src, dst) = (self.server_node, self.node_of(client));
        let cost = ctx.transfer_detailed(src, dst, self.config.object_bytes);
        ctx.blame(category::AM_OVERHEAD, cost.overhead);
        ctx.blame(category::FABRIC_WAIT, cost.wait);
        ctx.blame(category::WIRE, cost.wire);
        cost.delivered
    }
}

impl<M: EventCast<ServeEvent> + 'static> Component<M> for ServeComponent {
    fn on_event(&mut self, ctx: &mut Ctx<'_, M>, event: M) {
        match event.downcast() {
            ServeEvent::Arrival => self.on_arrival(ctx),
            ServeEvent::ServerRead {
                object,
                client,
                started,
            } => self.on_server_read(ctx, object, client, started),
            ServeEvent::DiskDone {
                object: _,
                client,
                started,
            } => {
                let end = self.respond(ctx, client);
                self.complete(ctx, started, end, Served::Disk);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use now_sim::Engine;

    fn config(population: u64) -> ServeConfig {
        ServeConfig {
            population,
            think: ThinkTime::Exponential { mean_ms: 10_000.0 },
            catalog_objects: 512,
            zipf_theta: 0.9,
            client_blocks: 32,
            server_blocks: 128,
            object_bytes: 8_192,
            costs: AccessCosts::paper_defaults(),
            horizon: SimTime::from_millis(500),
            seed: 7,
            retain_exact: false,
        }
    }

    fn run_fixed(cfg: ServeConfig) -> (u64, u64, u64, u64, u64) {
        let mut engine: Engine<ServeEvent> = Engine::new();
        let id = engine.register(ServeComponent::new(cfg, 4));
        engine.schedule_at(id, SimTime::ZERO, ServeEvent::Arrival);
        engine.run();
        let c = engine.component::<ServeComponent>(id);
        (
            c.requests(),
            c.completed(),
            c.local_hits(),
            c.server_hits(),
            c.disk_reads(),
        )
    }

    #[test]
    fn every_request_completes_exactly_once() {
        let (requests, completed, local, server, disk) = run_fixed(config(20_000));
        assert!(requests > 100, "expected real load, got {requests}");
        assert_eq!(completed, requests);
        assert_eq!(local + server + disk, requests);
    }

    #[test]
    fn popular_catalog_mostly_hits_memory() {
        let (requests, _, local, server, _) = run_fixed(config(50_000));
        assert!(
            (local + server) as f64 > 0.5 * requests as f64,
            "zipf traffic should mostly hit a cache: {local}+{server} of {requests}"
        );
    }

    #[test]
    fn arrival_rate_scales_with_population() {
        let (small, ..) = run_fixed(config(10_000));
        let (big, ..) = run_fixed(config(100_000));
        let ratio = big as f64 / small as f64;
        assert!(
            (5.0..20.0).contains(&ratio),
            "10x population should mean ~10x arrivals, got {ratio:.1}x ({small} -> {big})"
        );
    }

    #[test]
    fn equal_seeds_replay_identically_and_observation_stays_bounded() {
        let a = run_fixed(config(30_000));
        let b = run_fixed(config(30_000));
        assert_eq!(a, b);

        let mut engine: Engine<ServeEvent> = Engine::new();
        let id = engine.register(ServeComponent::new(config(30_000), 4));
        engine.schedule_at(id, SimTime::ZERO, ServeEvent::Arrival);
        engine.run();
        let c = engine.component::<ServeComponent>(id);
        assert!(c.observation_bytes() < 64 * 1024);
        assert!(c.exact_latencies().is_empty(), "exact mode is opt-in");
    }

    #[test]
    fn exhaustive_mode_matches_sketch_within_alpha() {
        let mut cfg = config(50_000);
        cfg.retain_exact = true;
        let mut engine: Engine<ServeEvent> = Engine::new();
        let id = engine.register(ServeComponent::new(cfg, 4));
        engine.schedule_at(id, SimTime::ZERO, ServeEvent::Arrival);
        engine.run();
        let c = engine.component::<ServeComponent>(id);
        let mut exact = c.exact_latencies().to_vec();
        assert_eq!(exact.len() as u64, c.completed());
        exact.sort_unstable();
        for p in [0.5, 0.99, 0.999] {
            let rank = ((p * exact.len() as f64).ceil() as usize).clamp(1, exact.len());
            let truth = exact[rank - 1] as f64;
            let est = c.sketch().quantile(p).unwrap();
            assert!(
                (est - truth).abs() <= c.sketch().alpha() * truth + 1.0,
                "p{p}: sketch {est} vs exact {truth}"
            );
        }
    }
}
