//! The trace-driven cooperative-caching simulator.

use std::collections::{HashMap, HashSet};

use now_mem::{LruCache, Touch};
use now_probe::Probe;
use now_sim::{SimDuration, SimRng};
use now_trace::fs::{AccessKind, BlockId, FsTrace};
use serde::{Deserialize, Serialize};

/// Which caching algorithm manages the cluster's memory.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Policy {
    /// Private client caches in front of a shared server cache.
    ClientServer,
    /// Server forwards misses to clients that cache the block.
    GreedyForwarding,
    /// Greedy forwarding plus singlet recirculation: a client evicting the
    /// last cached copy pushes it to a random peer, up to `n` times.
    NChance {
        /// Recirculation budget per block.
        n: u32,
    },
    /// Centralized coordination: each client keeps `local_fraction` of its
    /// cache under private LRU; the remainder of the aggregate client
    /// memory is one globally-LRU-managed pool (Dahlin et al.'s upper
    /// bound on practical policies).
    Centralized {
        /// Fraction of each client cache managed privately.
        local_fraction: f64,
    },
}

/// Where a read was served from, with its cost.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccessCosts {
    /// Hit in the requesting client's own memory.
    pub local_mem: SimDuration,
    /// Hit in the server's memory or another client's memory (one network
    /// round trip for an 8-KB block over switched ATM — Table 2).
    pub remote_mem: SimDuration,
    /// Served from the server disk (network + disk — Table 2).
    pub disk: SimDuration,
}

impl AccessCosts {
    /// The constants behind Table 3 (derived from Table 2's ATM column):
    /// 250 µs local, 1,050 µs remote memory, 15,850 µs disk.
    pub fn paper_defaults() -> Self {
        AccessCosts {
            local_mem: SimDuration::from_micros(250),
            remote_mem: SimDuration::from_micros(1_050),
            disk: SimDuration::from_micros(15_850),
        }
    }
}

/// Simulator configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Blocks each client caches (16 MB at 8 KB/block = 2,048).
    pub client_blocks: usize,
    /// Blocks the server caches (128 MB = 16,384).
    pub server_blocks: usize,
    /// Algorithm under test.
    pub policy: Policy,
    /// Service-time constants.
    pub costs: AccessCosts,
    /// Seed for the (deterministic) random peer choice in N-Chance.
    pub seed: u64,
}

impl CacheConfig {
    /// Table 3's configuration: 16-MB clients, 128-MB server.
    pub fn table3(policy: Policy) -> Self {
        CacheConfig {
            client_blocks: 2_048,
            server_blocks: 16_384,
            policy,
            costs: AccessCosts::paper_defaults(),
            seed: 1,
        }
    }

    /// A small configuration proportioned like Table 3, for fast tests
    /// with [`now_trace::fs::FsTraceConfig::small`].
    pub fn small(policy: Policy) -> Self {
        CacheConfig {
            client_blocks: 64,
            server_blocks: 512,
            policy,
            costs: AccessCosts::paper_defaults(),
            seed: 1,
        }
    }
}

/// Aggregate results of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimResult {
    /// Read accesses simulated.
    pub reads: u64,
    /// Write accesses simulated.
    pub writes: u64,
    /// Reads served from the requester's own cache.
    pub local_hits: u64,
    /// Reads served from another client's cache (forwarding policies).
    pub remote_client_hits: u64,
    /// Reads served from the server's memory.
    pub server_hits: u64,
    /// Reads that went to disk.
    pub disk_reads: u64,
    /// Total read service time.
    pub read_time: SimDuration,
    /// Singlet forwards performed (N-Chance).
    pub forwards: u64,
}

impl SimResult {
    /// Fraction of reads served from disk — Table 3's "cache miss rate".
    pub fn disk_read_rate(&self) -> f64 {
        if self.reads == 0 {
            return 0.0;
        }
        self.disk_reads as f64 / self.reads as f64
    }

    /// Mean read response time — Table 3's second column.
    pub fn avg_read_response(&self) -> SimDuration {
        if self.reads == 0 {
            return SimDuration::ZERO;
        }
        self.read_time / self.reads
    }

    /// Fraction of reads hitting the requester's own cache.
    pub fn local_hit_rate(&self) -> f64 {
        if self.reads == 0 {
            return 0.0;
        }
        self.local_hits as f64 / self.reads as f64
    }
}

struct Cluster {
    clients: Vec<LruCache<BlockId>>,
    server: LruCache<BlockId>,
    /// The globally coordinated pool (Centralized policy only).
    global: Option<LruCache<BlockId>>,
    /// Which clients cache each block (maintained for all policies; only
    /// consulted by the forwarding ones).
    directory: HashMap<BlockId, HashSet<u32>>,
    /// Recirculation counts for blocks currently recirculating (N-Chance).
    recirc: HashMap<BlockId, u32>,
    rng: SimRng,
}

impl Cluster {
    fn remove_from_directory(&mut self, block: BlockId, client: u32) {
        if let Some(set) = self.directory.get_mut(&block) {
            set.remove(&client);
            if set.is_empty() {
                self.directory.remove(&block);
            }
        }
    }

    /// Inserts `block` into `client`'s cache, handling the eviction chain
    /// according to `policy`.
    fn insert_into_client(&mut self, client: u32, block: BlockId, write: bool, policy: Policy) {
        let touch = self.clients[client as usize].touch(block, write);
        self.directory.entry(block).or_default().insert(client);
        if let Touch::MissEvicted { victim, .. } = touch {
            self.handle_eviction(client, victim, policy);
        }
    }

    fn handle_eviction(&mut self, client: u32, victim: BlockId, policy: Policy) {
        self.remove_from_directory(victim, client);
        if let Policy::Centralized { .. } = policy {
            // A locally evicted block moves to the coordinated pool (if it
            // is not already there) — global LRU decides when it truly
            // leaves client memory.
            if let Some(global) = self.global.as_mut() {
                global.touch(victim, false);
            }
            return;
        }
        let Policy::NChance { n } = policy else {
            self.recirc.remove(&victim);
            return;
        };
        let still_cached = self.directory.contains_key(&victim);
        if still_cached {
            // Not a singlet: safe to drop (another client still has it).
            self.recirc.remove(&victim);
            return;
        }
        let count = self.recirc.get(&victim).copied().unwrap_or(0);
        if count >= n || self.clients.len() < 2 {
            self.recirc.remove(&victim);
            return; // recirculation budget exhausted: drop
        }
        // Forward the singlet to a random *other* client.
        let mut target = self.rng.index(self.clients.len()) as u32;
        if target == client {
            target = (target + 1) % self.clients.len() as u32;
        }
        self.recirc.insert(victim, count + 1);
        // The forwarded block lands as that client's MRU block; its own
        // eviction chain is handled recursively.
        let touch = self.clients[target as usize].touch(victim, false);
        self.directory.entry(victim).or_default().insert(target);
        if let Touch::MissEvicted { victim: next, .. } = touch {
            self.handle_eviction(target, next, policy);
        }
    }
}

/// Runs the trace through the cluster under `config`.
///
/// # Panics
///
/// Panics if the trace names a client beyond its own `clients` count.
pub fn simulate(trace: &FsTrace, config: &CacheConfig) -> SimResult {
    simulate_probed(trace, config, &Probe::disabled())
}

/// [`simulate`] with telemetry: counters under `cache.*` mirror the
/// returned [`SimResult`] (reads, writes, the four read-service classes,
/// and forwards), so a registry-wide snapshot can cross-check Table 3.
///
/// # Panics
///
/// Panics if the trace names a client beyond its own `clients` count.
pub fn simulate_probed(trace: &FsTrace, config: &CacheConfig, probe: &Probe) -> SimResult {
    let (client_blocks, global) = match config.policy {
        Policy::Centralized { local_fraction } => {
            assert!(
                (0.0..1.0).contains(&local_fraction),
                "local fraction must be in [0, 1)"
            );
            let local = ((config.client_blocks as f64 * local_fraction) as usize).max(1);
            let pool = (config.client_blocks - local) * trace.clients as usize;
            (local, Some(LruCache::new(pool.max(1))))
        }
        _ => (config.client_blocks, None),
    };
    let mut cluster = Cluster {
        clients: (0..trace.clients)
            .map(|_| LruCache::new(client_blocks))
            .collect(),
        server: LruCache::new(config.server_blocks),
        global,
        directory: HashMap::new(),
        recirc: HashMap::new(),
        rng: SimRng::new(config.seed),
    };
    let mut r = SimResult {
        reads: 0,
        writes: 0,
        local_hits: 0,
        remote_client_hits: 0,
        server_hits: 0,
        disk_reads: 0,
        read_time: SimDuration::ZERO,
        forwards: 0,
    };
    let forwarding = matches!(
        config.policy,
        Policy::GreedyForwarding | Policy::NChance { .. }
    );

    for access in &trace.accesses {
        let client = access.client;
        assert!(client < trace.clients, "client out of range in trace");
        let block = access.block;
        let write = access.kind == AccessKind::Write;

        if write {
            r.writes += 1;
            // Write-through: update local cache, invalidate other copies
            // and the server's cached copy (it will re-read from disk).
            let holders: Vec<u32> = cluster
                .directory
                .get(&block)
                .map(|s| s.iter().copied().filter(|&c| c != client).collect())
                .unwrap_or_default();
            for holder in holders {
                cluster.clients[holder as usize].remove(&block);
                cluster.remove_from_directory(block, holder);
            }
            cluster.server.remove(&block);
            if let Some(global) = cluster.global.as_mut() {
                global.remove(&block);
            }
            cluster.recirc.remove(&block);
            cluster.insert_into_client(client, block, true, config.policy);
            continue;
        }

        r.reads += 1;
        // Reads reset a block's recirculation budget: it earned its keep.
        cluster.recirc.remove(&block);

        // 1. Local cache.
        if cluster.clients[client as usize].contains(&block) {
            cluster.insert_into_client(client, block, false, config.policy);
            r.local_hits += 1;
            r.read_time += config.costs.local_mem;
            continue;
        }

        // 1b. The globally coordinated pool (Centralized policy): another
        // client's memory, reached through the manager in one hop.
        if let Some(global) = cluster.global.as_mut() {
            if global.contains(&block) {
                global.touch(block, false);
                cluster.insert_into_client(client, block, false, config.policy);
                r.remote_client_hits += 1;
                r.read_time += config.costs.remote_mem;
                continue;
            }
        }

        // 2. Server memory.
        if cluster.server.contains(&block) {
            cluster.server.touch(block, false);
            cluster.insert_into_client(client, block, false, config.policy);
            r.server_hits += 1;
            r.read_time += config.costs.remote_mem;
            continue;
        }

        // 3. Another client's memory (forwarding policies only; the
        // baseline server has no directory).
        if forwarding {
            let other = cluster
                .directory
                .get(&block)
                .and_then(|s| s.iter().copied().find(|&c| c != client));
            if let Some(_holder) = other {
                r.remote_client_hits += 1;
                r.forwards += 1;
                r.read_time += config.costs.remote_mem;
                cluster.insert_into_client(client, block, false, config.policy);
                continue;
            }
        }

        // 4. Server disk; the block also lands in the server cache.
        r.disk_reads += 1;
        r.read_time += config.costs.disk;
        if let Touch::MissEvicted { .. } = cluster.server.touch(block, false) {
            // Server eviction needs no bookkeeping: directory tracks
            // clients only.
        }
        cluster.insert_into_client(client, block, false, config.policy);
    }
    if probe.is_enabled() {
        probe.count("cache.reads", r.reads);
        probe.count("cache.writes", r.writes);
        probe.count("cache.local_hits", r.local_hits);
        probe.count("cache.remote_client_hits", r.remote_client_hits);
        probe.count("cache.server_hits", r.server_hits);
        probe.count("cache.disk_reads", r.disk_reads);
        probe.count("cache.forwards", r.forwards);
        probe.record("cache.read_time.ns", r.read_time);
    }
    r
}

/// Sweeps client-cache capacity, returning `(client_mb, disk_read_rate)`
/// for a fixed policy — the ablation behind "how much client memory does
/// cooperation need?".
pub fn sweep_client_cache(trace: &FsTrace, policy: Policy, client_mbs: &[u64]) -> Vec<(u64, f64)> {
    client_mbs
        .iter()
        .map(|&mb| {
            let mut config = CacheConfig::table3(policy);
            config.client_blocks = (mb * 1024 * 1024 / 8_192) as usize;
            (mb, simulate(trace, &config).disk_read_rate())
        })
        .collect()
}

/// Sweeps the N-Chance recirculation budget, returning `(n, disk_read_rate)`.
pub fn sweep_nchance(trace: &FsTrace, ns: &[u32]) -> Vec<(u32, f64)> {
    ns.iter()
        .map(|&n| {
            let config = CacheConfig::table3(Policy::NChance { n });
            (n, simulate(trace, &config).disk_read_rate())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use now_trace::fs::{FsTrace, FsTraceConfig};

    fn trace() -> FsTrace {
        FsTrace::generate(&FsTraceConfig::small(), 42)
    }

    #[test]
    fn every_read_is_classified_once() {
        let t = trace();
        for policy in [
            Policy::ClientServer,
            Policy::GreedyForwarding,
            Policy::NChance { n: 2 },
        ] {
            let r = simulate(&t, &CacheConfig::small(policy));
            assert_eq!(
                r.local_hits + r.remote_client_hits + r.server_hits + r.disk_reads,
                r.reads,
                "{policy:?}"
            );
            assert_eq!(r.reads + r.writes, t.len() as u64);
        }
    }

    #[test]
    fn baseline_never_uses_remote_clients() {
        let r = simulate(&trace(), &CacheConfig::small(Policy::ClientServer));
        assert_eq!(r.remote_client_hits, 0);
        assert_eq!(r.forwards, 0);
    }

    #[test]
    fn forwarding_reduces_disk_reads() {
        let t = trace();
        let base = simulate(&t, &CacheConfig::small(Policy::ClientServer));
        let greedy = simulate(&t, &CacheConfig::small(Policy::GreedyForwarding));
        assert!(
            greedy.disk_reads < base.disk_reads,
            "greedy {} vs base {}",
            greedy.disk_reads,
            base.disk_reads
        );
        assert!(greedy.remote_client_hits > 0);
    }

    #[test]
    fn nchance_beats_greedy() {
        // Recirculating singlets into idle clients' caches keeps more of
        // the aggregate memory useful.
        let t = trace();
        let greedy = simulate(&t, &CacheConfig::small(Policy::GreedyForwarding));
        let nchance = simulate(&t, &CacheConfig::small(Policy::NChance { n: 2 }));
        assert!(
            nchance.disk_read_rate() <= greedy.disk_read_rate(),
            "n-chance {} vs greedy {}",
            nchance.disk_read_rate(),
            greedy.disk_read_rate()
        );
    }

    #[test]
    fn response_time_tracks_disk_rate() {
        let t = trace();
        let base = simulate(&t, &CacheConfig::small(Policy::ClientServer));
        let coop = simulate(&t, &CacheConfig::small(Policy::NChance { n: 2 }));
        assert!(coop.avg_read_response() < base.avg_read_response());
    }

    #[test]
    fn deterministic_given_seed() {
        let t = trace();
        let a = simulate(&t, &CacheConfig::small(Policy::NChance { n: 2 }));
        let b = simulate(&t, &CacheConfig::small(Policy::NChance { n: 2 }));
        assert_eq!(a, b);
    }

    #[test]
    fn writes_invalidate_other_copies() {
        // Build a tiny trace by hand: client 0 reads a block, client 1
        // writes it, client 0 reads again — the second read must not be a
        // local hit on a stale copy.
        use now_sim::SimTime;
        use now_trace::fs::{FileId, FsAccess};
        let block = BlockId {
            file: FileId(0),
            block: 0,
        };
        let t = FsTrace {
            accesses: vec![
                FsAccess {
                    time: SimTime::from_secs(1),
                    client: 0,
                    block,
                    kind: AccessKind::Read,
                },
                FsAccess {
                    time: SimTime::from_secs(2),
                    client: 1,
                    block,
                    kind: AccessKind::Write,
                },
                FsAccess {
                    time: SimTime::from_secs(3),
                    client: 0,
                    block,
                    kind: AccessKind::Read,
                },
            ],
            file_blocks: vec![1],
            clients: 2,
        };
        let r = simulate(&t, &CacheConfig::small(Policy::NChance { n: 2 }));
        assert_eq!(r.reads, 2);
        // First read: disk. Second read after invalidation: served from
        // client 1 (the writer) — a remote client hit, not a local hit.
        assert_eq!(r.local_hits, 0);
        assert_eq!(r.disk_reads, 1);
        assert_eq!(r.remote_client_hits, 1);
    }

    #[test]
    fn centralized_is_at_least_as_good_as_nchance() {
        // The coordinated pool is the near-optimal upper bound the
        // practical algorithms chase.
        let t = trace();
        let nchance = simulate(&t, &CacheConfig::small(Policy::NChance { n: 2 }));
        let central = simulate(
            &t,
            &CacheConfig::small(Policy::Centralized {
                local_fraction: 0.2,
            }),
        );
        assert!(
            central.disk_read_rate() <= nchance.disk_read_rate() * 1.15,
            "centralized {} vs n-chance {}",
            central.disk_read_rate(),
            nchance.disk_read_rate()
        );
        assert!(central.remote_client_hits > 0, "pool must be used");
    }

    #[test]
    fn centralized_writes_invalidate_the_pool() {
        use now_sim::SimTime;
        use now_trace::fs::{FileId, FsAccess};
        let block = BlockId {
            file: FileId(0),
            block: 0,
        };
        let mk = |client, secs, kind| FsAccess {
            time: SimTime::from_secs(secs),
            client,
            block,
            kind,
        };
        let t = FsTrace {
            accesses: vec![
                mk(0, 1, AccessKind::Read),  // 0 caches it
                mk(1, 2, AccessKind::Read),  // 1 caches it
                mk(1, 3, AccessKind::Write), // 1 rewrites: all copies stale
                mk(2, 4, AccessKind::Read),  // must not see a stale pool copy
            ],
            file_blocks: vec![1],
            clients: 3,
        };
        let r = simulate(
            &t,
            &CacheConfig::small(Policy::Centralized {
                local_fraction: 0.2,
            }),
        );
        // Reads: 0 -> disk; 1 -> pool/peer or disk; 2 -> writer's cache is
        // not reachable under Centralized (no directory), so pool miss ->
        // disk. The key property: never a stale hit, which would show as 3
        // remote hits with only 1 disk read.
        assert_eq!(r.reads, 3);
        assert!(r.disk_reads >= 2, "stale pool data served: {r:?}");
    }

    #[test]
    fn cache_size_sweep_is_monotone() {
        let t = trace();
        let sweep = sweep_client_cache(&t, Policy::GreedyForwarding, &[1, 4, 16]);
        assert_eq!(sweep.len(), 3);
        assert!(
            sweep[0].1 >= sweep[2].1,
            "more cache cannot mean more misses: {sweep:?}"
        );
    }

    #[test]
    fn nchance_budget_sweep_helps_then_saturates() {
        let t = trace();
        let sweep = sweep_nchance(&t, &[0, 1, 2, 4]);
        assert!(sweep[0].1 >= sweep[1].1, "{sweep:?}");
        // Returns are diminishing: n=4 is not much better than n=2.
        assert!(sweep[3].1 >= sweep[2].1 * 0.8, "{sweep:?}");
    }

    #[test]
    fn costs_are_ordered() {
        let c = AccessCosts::paper_defaults();
        assert!(c.local_mem < c.remote_mem);
        assert!(c.remote_mem.as_micros_f64() * 10.0 < c.disk.as_micros_f64() * 1.05);
    }

    #[test]
    fn zero_reads_yield_zero_rates() {
        use now_trace::fs::FsTrace;
        let t = FsTrace {
            accesses: vec![],
            file_blocks: vec![],
            clients: 1,
        };
        let r = simulate(&t, &CacheConfig::small(Policy::ClientServer));
        assert_eq!(r.disk_read_rate(), 0.0);
        assert_eq!(r.avg_read_response(), SimDuration::ZERO);
    }
}
