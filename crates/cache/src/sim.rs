//! The trace-driven cooperative-caching simulator.

use std::collections::{BTreeSet, HashMap, HashSet};

use now_mem::{LruCache, Touch};
use now_probe::causal::category;
use now_probe::{Gauge, Probe};
use now_sim::{Component, CostMode, Ctx, Engine, EventCast, SimDuration, SimRng, SimTime};
use now_trace::fs::{AccessKind, BlockId, FsTrace};
use serde::{Deserialize, Serialize};

/// Which caching algorithm manages the cluster's memory.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Policy {
    /// Private client caches in front of a shared server cache.
    ClientServer,
    /// Server forwards misses to clients that cache the block.
    GreedyForwarding,
    /// Greedy forwarding plus singlet recirculation: a client evicting the
    /// last cached copy pushes it to a random peer, up to `n` times.
    NChance {
        /// Recirculation budget per block.
        n: u32,
    },
    /// Centralized coordination: each client keeps `local_fraction` of its
    /// cache under private LRU; the remainder of the aggregate client
    /// memory is one globally-LRU-managed pool (Dahlin et al.'s upper
    /// bound on practical policies).
    Centralized {
        /// Fraction of each client cache managed privately.
        local_fraction: f64,
    },
}

/// Where a read was served from, with its cost.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccessCosts {
    /// Hit in the requesting client's own memory.
    pub local_mem: SimDuration,
    /// Hit in the server's memory or another client's memory (one network
    /// round trip for an 8-KB block over switched ATM — Table 2).
    pub remote_mem: SimDuration,
    /// Served from the server disk (network + disk — Table 2).
    pub disk: SimDuration,
}

impl AccessCosts {
    /// The constants behind Table 3 (derived from Table 2's ATM column):
    /// 250 µs local, 1,050 µs remote memory, 15,850 µs disk.
    pub fn paper_defaults() -> Self {
        AccessCosts {
            local_mem: SimDuration::from_micros(250),
            remote_mem: SimDuration::from_micros(1_050),
            disk: SimDuration::from_micros(15_850),
        }
    }
}

/// Simulator configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Blocks each client caches (16 MB at 8 KB/block = 2,048).
    pub client_blocks: usize,
    /// Blocks the server caches (128 MB = 16,384).
    pub server_blocks: usize,
    /// Algorithm under test.
    pub policy: Policy,
    /// Service-time constants.
    pub costs: AccessCosts,
    /// Seed for the (deterministic) random peer choice in N-Chance.
    pub seed: u64,
}

impl CacheConfig {
    /// Table 3's configuration: 16-MB clients, 128-MB server.
    pub fn table3(policy: Policy) -> Self {
        CacheConfig {
            client_blocks: 2_048,
            server_blocks: 16_384,
            policy,
            costs: AccessCosts::paper_defaults(),
            seed: 1,
        }
    }

    /// A small configuration proportioned like Table 3, for fast tests
    /// with [`now_trace::fs::FsTraceConfig::small`].
    pub fn small(policy: Policy) -> Self {
        CacheConfig {
            client_blocks: 64,
            server_blocks: 512,
            policy,
            costs: AccessCosts::paper_defaults(),
            seed: 1,
        }
    }
}

/// Aggregate results of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimResult {
    /// Read accesses simulated.
    pub reads: u64,
    /// Write accesses simulated.
    pub writes: u64,
    /// Reads served from the requester's own cache.
    pub local_hits: u64,
    /// Reads served from another client's cache (forwarding policies).
    pub remote_client_hits: u64,
    /// Reads served from the server's memory.
    pub server_hits: u64,
    /// Reads that went to disk.
    pub disk_reads: u64,
    /// Total read service time.
    pub read_time: SimDuration,
    /// Singlet forwards performed (N-Chance).
    pub forwards: u64,
    /// Trace accesses skipped because their client was dead.
    pub skipped_accesses: u64,
    /// Cached blocks invalidated when a holder crashed.
    pub invalidated_blocks: u64,
    /// Disk reads served while the storage array ran degraded.
    pub degraded_reads: u64,
}

impl SimResult {
    /// Fraction of reads served from disk — Table 3's "cache miss rate".
    pub fn disk_read_rate(&self) -> f64 {
        if self.reads == 0 {
            return 0.0;
        }
        self.disk_reads as f64 / self.reads as f64
    }

    /// Mean read response time — Table 3's second column.
    pub fn avg_read_response(&self) -> SimDuration {
        if self.reads == 0 {
            return SimDuration::ZERO;
        }
        self.read_time / self.reads
    }

    /// Fraction of reads hitting the requester's own cache.
    pub fn local_hit_rate(&self) -> f64 {
        if self.reads == 0 {
            return 0.0;
        }
        self.local_hits as f64 / self.reads as f64
    }
}

struct Cluster {
    clients: Vec<LruCache<BlockId>>,
    server: LruCache<BlockId>,
    /// The globally coordinated pool (Centralized policy only).
    global: Option<LruCache<BlockId>>,
    /// Which clients cache each block (maintained for all policies; only
    /// consulted by the forwarding ones).
    directory: HashMap<BlockId, HashSet<u32>>,
    /// Recirculation counts for blocks currently recirculating (N-Chance).
    recirc: HashMap<BlockId, u32>,
    rng: SimRng,
}

impl Cluster {
    fn remove_from_directory(&mut self, block: BlockId, client: u32) {
        if let Some(set) = self.directory.get_mut(&block) {
            set.remove(&client);
            if set.is_empty() {
                self.directory.remove(&block);
            }
        }
    }

    /// Inserts `block` into `client`'s cache, handling the eviction chain
    /// according to `policy`.
    fn insert_into_client(&mut self, client: u32, block: BlockId, write: bool, policy: Policy) {
        let touch = self.clients[client as usize].touch(block, write);
        self.directory.entry(block).or_default().insert(client);
        if let Touch::MissEvicted { victim, .. } = touch {
            self.handle_eviction(client, victim, policy);
        }
    }

    fn handle_eviction(&mut self, client: u32, victim: BlockId, policy: Policy) {
        self.remove_from_directory(victim, client);
        if let Policy::Centralized { .. } = policy {
            // A locally evicted block moves to the coordinated pool (if it
            // is not already there) — global LRU decides when it truly
            // leaves client memory.
            if let Some(global) = self.global.as_mut() {
                global.touch(victim, false);
            }
            return;
        }
        let Policy::NChance { n } = policy else {
            self.recirc.remove(&victim);
            return;
        };
        let still_cached = self.directory.contains_key(&victim);
        if still_cached {
            // Not a singlet: safe to drop (another client still has it).
            self.recirc.remove(&victim);
            return;
        }
        let count = self.recirc.get(&victim).copied().unwrap_or(0);
        if count >= n || self.clients.len() < 2 {
            self.recirc.remove(&victim);
            return; // recirculation budget exhausted: drop
        }
        // Forward the singlet to a random *other* client.
        let mut target = self.rng.index(self.clients.len()) as u32;
        if target == client {
            target = (target + 1) % self.clients.len() as u32;
        }
        self.recirc.insert(victim, count + 1);
        // The forwarded block lands as that client's MRU block; its own
        // eviction chain is handled recursively.
        let touch = self.clients[target as usize].touch(victim, false);
        self.directory.entry(victim).or_default().insert(target);
        if let Touch::MissEvicted { victim: next, .. } = touch {
            self.handle_eviction(target, next, policy);
        }
    }
}

/// Bytes per cached block (8 KB, as in Table 2).
const BLOCK_BYTES: u64 = 8_192;
/// Bytes of a read request / forward control message.
const REQUEST_BYTES: u64 = 64;

/// Events driving a [`CacheComponent`]: each `Access(i)` replays trace
/// entry `i` and schedules the next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheEvent {
    /// Replay trace entry `i`.
    Access(usize),
    /// A client workstation crashed: its cached blocks are invalidated
    /// (peers fall back to the server and its disk) and its trace
    /// accesses are skipped until it recovers.
    ClientFailed(u32),
    /// A failed client recovers — rebooted, or a spare workstation on
    /// fabric node `node` took over its trace stream — with a cold cache.
    ClientRecovered {
        /// The client slot that comes back.
        client: u32,
        /// Fabric node now hosting it.
        node: u32,
    },
    /// The server's storage array entered (`true`) or left (`false`)
    /// degraded mode: reads keep flowing but disk service doubles while
    /// the surviving disks reconstruct on the fly.
    StorageDegraded(bool),
}

/// Where a remotely served read came from — the one distinction the
/// shared remote-memory cost branches actually need.
#[derive(Debug, Clone, Copy)]
enum RemoteSource {
    /// The centralized policy's coordinated pool, through the manager.
    Pool,
    /// The server's memory.
    Server,
    /// Another client's memory, forwarded through the server.
    Peer {
        /// The client holding the block.
        holder: u32,
    },
}

/// The cooperative-caching simulator as an engine [`Component`]: one trace
/// access per event, replayed in trace order at trace timestamps.
///
/// Under [`CostMode::Fixed`] reads are charged the [`AccessCosts`]
/// constants — identical to the legacy loop, byte-for-byte. Under
/// [`CostMode::Fabric`] every remote read moves real messages over the
/// engine's shared transport: a request/response through the server for
/// server (and pool) hits, a three-hop forward for peer hits, and the
/// network leg of a disk read — so file traffic both suffers and causes
/// fabric contention.
pub struct CacheComponent {
    trace: FsTrace,
    config: CacheConfig,
    cluster: Cluster,
    result: SimResult,
    forwarding: bool,
    /// Fabric node of each client (identity when unset).
    client_nodes: Vec<u32>,
    /// Fabric node of the file server.
    server_node: u32,
    /// Clients currently dead (ordered, for deterministic iteration).
    dead_clients: BTreeSet<u32>,
    /// Whether the server's storage array is running degraded.
    degraded: bool,
    hit_rate_gauge: Gauge,
    read_ms_gauge: Gauge,
}

impl CacheComponent {
    /// Builds the cluster for `config` and takes ownership of the trace.
    ///
    /// # Panics
    ///
    /// Panics if a centralized policy's `local_fraction` is outside
    /// `[0, 1)`.
    pub fn new(trace: FsTrace, config: CacheConfig) -> Self {
        let (client_blocks, global) = match config.policy {
            Policy::Centralized { local_fraction } => {
                assert!(
                    (0.0..1.0).contains(&local_fraction),
                    "local fraction must be in [0, 1)"
                );
                let local = ((config.client_blocks as f64 * local_fraction) as usize).max(1);
                let pool = (config.client_blocks - local) * trace.clients as usize;
                (local, Some(LruCache::new(pool.max(1))))
            }
            _ => (config.client_blocks, None),
        };
        let cluster = Cluster {
            clients: (0..trace.clients)
                .map(|_| LruCache::new(client_blocks))
                .collect(),
            server: LruCache::new(config.server_blocks),
            global,
            directory: HashMap::new(),
            recirc: HashMap::new(),
            rng: SimRng::new(config.seed),
        };
        let forwarding = matches!(
            config.policy,
            Policy::GreedyForwarding | Policy::NChance { .. }
        );
        CacheComponent {
            trace,
            config,
            cluster,
            result: SimResult {
                reads: 0,
                writes: 0,
                local_hits: 0,
                remote_client_hits: 0,
                server_hits: 0,
                disk_reads: 0,
                read_time: SimDuration::ZERO,
                forwards: 0,
                skipped_accesses: 0,
                invalidated_blocks: 0,
                degraded_reads: 0,
            },
            forwarding,
            client_nodes: Vec::new(),
            server_node: 0,
            dead_clients: BTreeSet::new(),
            degraded: false,
            hit_rate_gauge: Gauge::default(),
            read_ms_gauge: Gauge::default(),
        }
    }

    /// Attaches a telemetry probe publishing the `cache.hit_rate`
    /// (fraction of reads served from memory anywhere in the cluster) and
    /// `cache.read_ms` (mean read response) gauges.
    pub fn set_probe(&mut self, probe: &Probe) {
        self.hit_rate_gauge = probe.gauge("cache.hit_rate");
        self.read_ms_gauge = probe.gauge("cache.read_ms");
    }

    /// Places client `i` on fabric node `client_nodes[i]` and the server
    /// on `server_node`. Required for [`CostMode::Fabric`] engines;
    /// ignored under [`CostMode::Fixed`].
    #[must_use]
    pub fn with_placement(mut self, client_nodes: Vec<u32>, server_node: u32) -> Self {
        self.client_nodes = client_nodes;
        self.server_node = server_node;
        self
    }

    /// Timestamp of the first trace access, for seeding `Access(0)`.
    /// `None` for an empty trace (nothing to schedule).
    pub fn first_access_time(&self) -> Option<SimTime> {
        self.trace.accesses.first().map(|a| a.time)
    }

    /// The results accumulated so far (complete once the engine drains).
    pub fn result(&self) -> SimResult {
        self.result
    }

    fn node_of(&self, client: u32) -> u32 {
        self.client_nodes
            .get(client as usize)
            .copied()
            .unwrap_or(client)
    }

    /// The service time of a remotely served read. One code path prices
    /// all three sources; only the hop pattern differs.
    fn remote_cost<M>(
        &self,
        ctx: &mut Ctx<'_, M>,
        client: u32,
        source: RemoteSource,
    ) -> SimDuration {
        match ctx.cost_mode() {
            CostMode::Fixed => self.config.costs.remote_mem,
            CostMode::Fabric => {
                let now = ctx.now();
                let c = self.node_of(client);
                let delivered = match source {
                    // One round trip through the manager/server.
                    RemoteSource::Pool | RemoteSource::Server => {
                        let cost =
                            ctx.rpc_detailed(c, self.server_node, REQUEST_BYTES, BLOCK_BYTES);
                        ctx.blame(category::AM_OVERHEAD, cost.overhead);
                        ctx.blame(category::FABRIC_WAIT, cost.wait);
                        ctx.blame(category::WIRE, cost.wire);
                        cost.delivered
                    }
                    // Request to the server, forward to the holder, block
                    // back to the requester.
                    RemoteSource::Peer { holder } => {
                        let h = self.node_of(holder);
                        let at_server = ctx.transfer(c, self.server_node, REQUEST_BYTES);
                        let at_holder =
                            ctx.transfer_at(self.server_node, h, REQUEST_BYTES, at_server);
                        let delivered = ctx.transfer_at(h, c, BLOCK_BYTES, at_holder);
                        // The whole three-hop detour is the price of
                        // forwarding; charge it as one term.
                        ctx.blame(category::CACHE_FORWARD, delivered.saturating_since(now));
                        delivered
                    }
                };
                delivered.saturating_since(now)
            }
        }
    }

    /// A read served from somewhere remote: bump the right counters,
    /// charge the shared cost path, cache the block locally. This is the
    /// single code path behind what used to be three copy-pasted
    /// remote-memory branches.
    fn remote_hit<M>(
        &mut self,
        ctx: &mut Ctx<'_, M>,
        client: u32,
        block: BlockId,
        source: RemoteSource,
    ) {
        match source {
            RemoteSource::Pool => self.result.remote_client_hits += 1,
            RemoteSource::Server => self.result.server_hits += 1,
            RemoteSource::Peer { .. } => {
                self.result.remote_client_hits += 1;
                self.result.forwards += 1;
            }
        }
        self.result.read_time += self.remote_cost(ctx, client, source);
        self.cluster
            .insert_into_client(client, block, false, self.config.policy);
    }

    /// The service time of a disk read: under a fabric, the network leg is
    /// live and only the disk residue stays constant. While the storage
    /// array runs degraded, the disk residue doubles — a read of a lost
    /// block reconstructs from the surviving disks on the fly.
    fn disk_cost<M>(&self, ctx: &mut Ctx<'_, M>, client: u32) -> SimDuration {
        let residue = self
            .config
            .costs
            .disk
            .saturating_sub(self.config.costs.remote_mem);
        let base = match ctx.cost_mode() {
            CostMode::Fixed => self.config.costs.disk,
            CostMode::Fabric => {
                let now = ctx.now();
                let c = self.node_of(client);
                let cost = ctx.rpc_detailed(c, self.server_node, REQUEST_BYTES, BLOCK_BYTES);
                ctx.blame(category::AM_OVERHEAD, cost.overhead);
                ctx.blame(category::FABRIC_WAIT, cost.wait);
                ctx.blame(category::WIRE, cost.wire);
                ctx.blame(
                    category::DISK,
                    if self.degraded {
                        residue + residue
                    } else {
                        residue
                    },
                );
                cost.delivered.saturating_since(now) + residue
            }
        };
        if self.degraded {
            base + residue
        } else {
            base
        }
    }

    /// A client crashed: every block it cached is invalidated (it may
    /// have held the only memory copy — peers now fall back to the
    /// server's memory and disk) and its trace accesses are skipped until
    /// recovery.
    fn fail_client(&mut self, client: u32) {
        if self.dead_clients.contains(&client) {
            return;
        }
        if let Some(cache) = self.cluster.clients.get(client as usize) {
            // Iterate the dying client's own cache (deterministic LRU
            // order), not the hash-ordered directory.
            let held: Vec<BlockId> = cache.iter().copied().collect();
            let capacity = cache.capacity();
            self.result.invalidated_blocks += held.len() as u64;
            for block in held {
                self.cluster.remove_from_directory(block, client);
            }
            self.cluster.clients[client as usize] = LruCache::new(capacity);
        }
        self.dead_clients.insert(client);
    }

    /// A dead client comes back — rebooted, or a spare on `node` took
    /// over — cold.
    fn recover_client(&mut self, client: u32, node: u32) {
        self.dead_clients.remove(&client);
        if let Some(slot) = self.client_nodes.get_mut(client as usize) {
            *slot = node;
        }
    }

    /// Replays trace entry `i`. Exactly the legacy loop body (plus the
    /// dead-client skip, which never fires in fault-free runs).
    fn step<M>(&mut self, ctx: &mut Ctx<'_, M>, i: usize) {
        let access = self.trace.accesses[i];
        let client = access.client;
        assert!(client < self.trace.clients, "client out of range in trace");
        if self.dead_clients.contains(&client) {
            // The workstation issuing this access is down; its user's
            // requests simply don't happen until it recovers.
            self.result.skipped_accesses += 1;
            return;
        }
        let block = access.block;
        let write = access.kind == AccessKind::Write;
        let policy = self.config.policy;

        if write {
            self.result.writes += 1;
            // Write-through: update local cache, invalidate other copies
            // and the server's cached copy (it will re-read from disk).
            let mut holders: Vec<u32> = self
                .cluster
                .directory
                .get(&block)
                .map(|s| s.iter().copied().filter(|&c| c != client).collect())
                .unwrap_or_default();
            // Invalidate in client order, not the HashSet's hash order:
            // the final state is order-independent, but a deterministic
            // walk keeps replays identical across processes.
            holders.sort_unstable();
            for holder in holders {
                self.cluster.clients[holder as usize].remove(&block);
                self.cluster.remove_from_directory(block, holder);
            }
            self.cluster.server.remove(&block);
            if let Some(global) = self.cluster.global.as_mut() {
                global.remove(&block);
            }
            self.cluster.recirc.remove(&block);
            self.cluster.insert_into_client(client, block, true, policy);
            return;
        }

        self.result.reads += 1;
        // Reads reset a block's recirculation budget: it earned its keep.
        self.cluster.recirc.remove(&block);

        // 1. Local cache.
        if self.cluster.clients[client as usize].contains(&block) {
            self.cluster
                .insert_into_client(client, block, false, policy);
            self.result.local_hits += 1;
            self.result.read_time += self.config.costs.local_mem;
            return;
        }

        // 1b. The globally coordinated pool (Centralized policy): another
        // client's memory, reached through the manager in one hop.
        let pool_hit = self.cluster.global.as_mut().is_some_and(|global| {
            if global.contains(&block) {
                global.touch(block, false);
                true
            } else {
                false
            }
        });
        if pool_hit {
            self.remote_hit(ctx, client, block, RemoteSource::Pool);
            return;
        }

        // 2. Server memory.
        if self.cluster.server.contains(&block) {
            self.cluster.server.touch(block, false);
            self.remote_hit(ctx, client, block, RemoteSource::Server);
            return;
        }

        // 3. Another client's memory (forwarding policies only; the
        // baseline server has no directory).
        if self.forwarding {
            // Lowest-numbered holder, not `find`: the directory set hashes
            // by a per-process seed, and the chosen holder decides which
            // fabric links the forward crosses, so an arbitrary pick makes
            // coupled runs differ between processes.
            let other = self
                .cluster
                .directory
                .get(&block)
                .and_then(|s| s.iter().copied().filter(|&c| c != client).min());
            if let Some(holder) = other {
                self.remote_hit(ctx, client, block, RemoteSource::Peer { holder });
                return;
            }
        }

        // 4. Server disk; the block also lands in the server cache.
        self.result.disk_reads += 1;
        if self.degraded {
            self.result.degraded_reads += 1;
        }
        self.result.read_time += self.disk_cost(ctx, client);
        self.cluster.server.touch(block, false);
        self.cluster
            .insert_into_client(client, block, false, policy);
    }
}

impl<M: EventCast<CacheEvent> + 'static> Component<M> for CacheComponent {
    fn on_event(&mut self, ctx: &mut Ctx<'_, M>, event: M) {
        match event.downcast() {
            CacheEvent::Access(i) => {
                self.step(ctx, i);
                if self.result.reads > 0 {
                    self.hit_rate_gauge.set(1.0 - self.result.disk_read_rate());
                    self.read_ms_gauge
                        .set(self.result.avg_read_response().as_micros_f64() / 1e3);
                }
                if i + 1 < self.trace.accesses.len() {
                    // The fabric may push the clock past the next trace
                    // timestamp; replay order (and thus the result) is
                    // preserved regardless.
                    let t = self.trace.accesses[i + 1].time.max(ctx.now());
                    ctx.schedule_at(t, M::upcast(CacheEvent::Access(i + 1)));
                } else {
                    ctx.mark("cache.complete", ctx.now());
                }
            }
            CacheEvent::ClientFailed(client) => self.fail_client(client),
            CacheEvent::ClientRecovered { client, node } => self.recover_client(client, node),
            CacheEvent::StorageDegraded(on) => self.degraded = on,
        }
    }
}

/// Runs the trace through the cluster under `config`.
///
/// # Panics
///
/// Panics if the trace names a client beyond its own `clients` count.
pub fn simulate(trace: &FsTrace, config: &CacheConfig) -> SimResult {
    simulate_probed(trace, config, &Probe::disabled())
}

/// [`simulate`] with telemetry: counters under `cache.*` mirror the
/// returned [`SimResult`] (reads, writes, the four read-service classes,
/// and forwards), so a registry-wide snapshot can cross-check Table 3.
///
/// # Panics
///
/// Panics if the trace names a client beyond its own `clients` count.
pub fn simulate_probed(trace: &FsTrace, config: &CacheConfig, probe: &Probe) -> SimResult {
    let mut engine = Engine::new();
    let component = CacheComponent::new(trace.clone(), config.clone());
    let start = component.first_access_time();
    let id = engine.register(component);
    if let Some(t) = start {
        engine.schedule_at(id, t, CacheEvent::Access(0));
    }
    engine.run();
    let r = engine.component::<CacheComponent>(id).result();
    if probe.is_enabled() {
        probe.count("cache.reads", r.reads);
        probe.count("cache.writes", r.writes);
        probe.count("cache.local_hits", r.local_hits);
        probe.count("cache.remote_client_hits", r.remote_client_hits);
        probe.count("cache.server_hits", r.server_hits);
        probe.count("cache.disk_reads", r.disk_reads);
        probe.count("cache.forwards", r.forwards);
        probe.record("cache.read_time.ns", r.read_time);
    }
    r
}

/// Sweeps client-cache capacity, returning `(client_mb, disk_read_rate)`
/// for a fixed policy — the ablation behind "how much client memory does
/// cooperation need?".
pub fn sweep_client_cache(trace: &FsTrace, policy: Policy, client_mbs: &[u64]) -> Vec<(u64, f64)> {
    client_mbs
        .iter()
        .map(|&mb| {
            let mut config = CacheConfig::table3(policy);
            config.client_blocks = (mb * 1024 * 1024 / 8_192) as usize;
            (mb, simulate(trace, &config).disk_read_rate())
        })
        .collect()
}

/// Sweeps the N-Chance recirculation budget, returning `(n, disk_read_rate)`.
pub fn sweep_nchance(trace: &FsTrace, ns: &[u32]) -> Vec<(u32, f64)> {
    ns.iter()
        .map(|&n| {
            let config = CacheConfig::table3(Policy::NChance { n });
            (n, simulate(trace, &config).disk_read_rate())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use now_trace::fs::{FsTrace, FsTraceConfig};

    fn trace() -> FsTrace {
        FsTrace::generate(&FsTraceConfig::small(), 42)
    }

    #[test]
    fn every_read_is_classified_once() {
        let t = trace();
        for policy in [
            Policy::ClientServer,
            Policy::GreedyForwarding,
            Policy::NChance { n: 2 },
        ] {
            let r = simulate(&t, &CacheConfig::small(policy));
            assert_eq!(
                r.local_hits + r.remote_client_hits + r.server_hits + r.disk_reads,
                r.reads,
                "{policy:?}"
            );
            assert_eq!(r.reads + r.writes, t.len() as u64);
        }
    }

    #[test]
    fn baseline_never_uses_remote_clients() {
        let r = simulate(&trace(), &CacheConfig::small(Policy::ClientServer));
        assert_eq!(r.remote_client_hits, 0);
        assert_eq!(r.forwards, 0);
    }

    #[test]
    fn forwarding_reduces_disk_reads() {
        let t = trace();
        let base = simulate(&t, &CacheConfig::small(Policy::ClientServer));
        let greedy = simulate(&t, &CacheConfig::small(Policy::GreedyForwarding));
        assert!(
            greedy.disk_reads < base.disk_reads,
            "greedy {} vs base {}",
            greedy.disk_reads,
            base.disk_reads
        );
        assert!(greedy.remote_client_hits > 0);
    }

    #[test]
    fn nchance_beats_greedy() {
        // Recirculating singlets into idle clients' caches keeps more of
        // the aggregate memory useful.
        let t = trace();
        let greedy = simulate(&t, &CacheConfig::small(Policy::GreedyForwarding));
        let nchance = simulate(&t, &CacheConfig::small(Policy::NChance { n: 2 }));
        assert!(
            nchance.disk_read_rate() <= greedy.disk_read_rate(),
            "n-chance {} vs greedy {}",
            nchance.disk_read_rate(),
            greedy.disk_read_rate()
        );
    }

    #[test]
    fn response_time_tracks_disk_rate() {
        let t = trace();
        let base = simulate(&t, &CacheConfig::small(Policy::ClientServer));
        let coop = simulate(&t, &CacheConfig::small(Policy::NChance { n: 2 }));
        assert!(coop.avg_read_response() < base.avg_read_response());
    }

    #[test]
    fn deterministic_given_seed() {
        let t = trace();
        let a = simulate(&t, &CacheConfig::small(Policy::NChance { n: 2 }));
        let b = simulate(&t, &CacheConfig::small(Policy::NChance { n: 2 }));
        assert_eq!(a, b);
    }

    #[test]
    fn writes_invalidate_other_copies() {
        // Build a tiny trace by hand: client 0 reads a block, client 1
        // writes it, client 0 reads again — the second read must not be a
        // local hit on a stale copy.
        use now_sim::SimTime;
        use now_trace::fs::{FileId, FsAccess};
        let block = BlockId {
            file: FileId(0),
            block: 0,
        };
        let t = FsTrace {
            accesses: vec![
                FsAccess {
                    time: SimTime::from_secs(1),
                    client: 0,
                    block,
                    kind: AccessKind::Read,
                },
                FsAccess {
                    time: SimTime::from_secs(2),
                    client: 1,
                    block,
                    kind: AccessKind::Write,
                },
                FsAccess {
                    time: SimTime::from_secs(3),
                    client: 0,
                    block,
                    kind: AccessKind::Read,
                },
            ],
            file_blocks: vec![1],
            clients: 2,
        };
        let r = simulate(&t, &CacheConfig::small(Policy::NChance { n: 2 }));
        assert_eq!(r.reads, 2);
        // First read: disk. Second read after invalidation: served from
        // client 1 (the writer) — a remote client hit, not a local hit.
        assert_eq!(r.local_hits, 0);
        assert_eq!(r.disk_reads, 1);
        assert_eq!(r.remote_client_hits, 1);
    }

    #[test]
    fn centralized_is_at_least_as_good_as_nchance() {
        // The coordinated pool is the near-optimal upper bound the
        // practical algorithms chase.
        let t = trace();
        let nchance = simulate(&t, &CacheConfig::small(Policy::NChance { n: 2 }));
        let central = simulate(
            &t,
            &CacheConfig::small(Policy::Centralized {
                local_fraction: 0.2,
            }),
        );
        assert!(
            central.disk_read_rate() <= nchance.disk_read_rate() * 1.15,
            "centralized {} vs n-chance {}",
            central.disk_read_rate(),
            nchance.disk_read_rate()
        );
        assert!(central.remote_client_hits > 0, "pool must be used");
    }

    #[test]
    fn centralized_writes_invalidate_the_pool() {
        use now_sim::SimTime;
        use now_trace::fs::{FileId, FsAccess};
        let block = BlockId {
            file: FileId(0),
            block: 0,
        };
        let mk = |client, secs, kind| FsAccess {
            time: SimTime::from_secs(secs),
            client,
            block,
            kind,
        };
        let t = FsTrace {
            accesses: vec![
                mk(0, 1, AccessKind::Read),  // 0 caches it
                mk(1, 2, AccessKind::Read),  // 1 caches it
                mk(1, 3, AccessKind::Write), // 1 rewrites: all copies stale
                mk(2, 4, AccessKind::Read),  // must not see a stale pool copy
            ],
            file_blocks: vec![1],
            clients: 3,
        };
        let r = simulate(
            &t,
            &CacheConfig::small(Policy::Centralized {
                local_fraction: 0.2,
            }),
        );
        // Reads: 0 -> disk; 1 -> pool/peer or disk; 2 -> writer's cache is
        // not reachable under Centralized (no directory), so pool miss ->
        // disk. The key property: never a stale hit, which would show as 3
        // remote hits with only 1 disk read.
        assert_eq!(r.reads, 3);
        assert!(r.disk_reads >= 2, "stale pool data served: {r:?}");
    }

    #[test]
    fn cache_size_sweep_is_monotone() {
        let t = trace();
        let sweep = sweep_client_cache(&t, Policy::GreedyForwarding, &[1, 4, 16]);
        assert_eq!(sweep.len(), 3);
        assert!(
            sweep[0].1 >= sweep[2].1,
            "more cache cannot mean more misses: {sweep:?}"
        );
    }

    #[test]
    fn nchance_budget_sweep_helps_then_saturates() {
        let t = trace();
        let sweep = sweep_nchance(&t, &[0, 1, 2, 4]);
        assert!(sweep[0].1 >= sweep[1].1, "{sweep:?}");
        // Returns are diminishing: n=4 is not much better than n=2.
        assert!(sweep[3].1 >= sweep[2].1 * 0.8, "{sweep:?}");
    }

    fn run_with_faults(
        trace: &FsTrace,
        config: &CacheConfig,
        faults: Vec<(SimTime, CacheEvent)>,
    ) -> SimResult {
        let mut engine = Engine::new();
        let component = CacheComponent::new(trace.clone(), config.clone());
        let start = component.first_access_time();
        let id = engine.register(component);
        if let Some(t) = start {
            engine.schedule_at(id, t, CacheEvent::Access(0));
        }
        for (t, ev) in faults {
            engine.schedule_at(id, t, ev);
        }
        engine.run();
        engine.component::<CacheComponent>(id).result()
    }

    use now_sim::SimTime;

    #[test]
    fn dead_client_skips_accesses_and_loses_its_cache() {
        use now_trace::fs::{FileId, FsAccess};
        let block = BlockId {
            file: FileId(0),
            block: 0,
        };
        let mk = |secs, kind| FsAccess {
            time: SimTime::from_secs(secs),
            client: 0,
            block,
            kind,
        };
        let t = FsTrace {
            accesses: vec![
                mk(1, AccessKind::Read), // disk, then cached locally
                mk(2, AccessKind::Read), // local hit
                mk(3, AccessKind::Read), // skipped: client is dead
                mk(5, AccessKind::Read), // recovered, cold: remote/server
            ],
            file_blocks: vec![1],
            clients: 2,
        };
        let cfg = CacheConfig::small(Policy::NChance { n: 2 });
        let r = run_with_faults(
            &t,
            &cfg,
            vec![
                (SimTime::from_millis(2_500), CacheEvent::ClientFailed(0)),
                (
                    SimTime::from_millis(4_000),
                    CacheEvent::ClientRecovered { client: 0, node: 0 },
                ),
            ],
        );
        assert_eq!(r.skipped_accesses, 1);
        assert_eq!(r.invalidated_blocks, 1);
        assert_eq!(r.reads, 3, "the skipped access is not a read");
        assert_eq!(r.local_hits, 1);
        // The post-recovery read cannot hit the (cold) local cache.
        assert_eq!(r.server_hits, 1);
        // Fault-free baseline differs: 4 reads, 3 of them local hits.
        let clean = simulate(&t, &cfg);
        assert_eq!(clean.reads, 4);
        assert_eq!(clean.local_hits, 3);
        assert_eq!(clean.skipped_accesses, 0);
    }

    #[test]
    fn degraded_storage_doubles_the_disk_residue() {
        use now_trace::fs::{FileId, FsAccess};
        let t = FsTrace {
            accesses: vec![FsAccess {
                time: SimTime::from_secs(1),
                client: 0,
                block: BlockId {
                    file: FileId(0),
                    block: 0,
                },
                kind: AccessKind::Read,
            }],
            file_blocks: vec![1],
            clients: 1,
        };
        let cfg = CacheConfig::small(Policy::ClientServer);
        let clean = simulate(&t, &cfg);
        let degraded = run_with_faults(
            &t,
            &cfg,
            vec![(SimTime::from_millis(500), CacheEvent::StorageDegraded(true))],
        );
        assert_eq!(clean.disk_reads, 1);
        assert_eq!(degraded.disk_reads, 1);
        assert_eq!(degraded.degraded_reads, 1);
        let penalty = cfg.costs.disk.saturating_sub(cfg.costs.remote_mem);
        assert_eq!(degraded.read_time, clean.read_time + penalty);
    }

    #[test]
    fn costs_are_ordered() {
        let c = AccessCosts::paper_defaults();
        assert!(c.local_mem < c.remote_mem);
        assert!(c.remote_mem.as_micros_f64() * 10.0 < c.disk.as_micros_f64() * 1.05);
    }

    #[test]
    fn zero_reads_yield_zero_rates() {
        use now_trace::fs::FsTrace;
        let t = FsTrace {
            accesses: vec![],
            file_blocks: vec![],
            clients: 1,
        };
        let r = simulate(&t, &CacheConfig::small(Policy::ClientServer));
        assert_eq!(r.disk_read_rate(), 0.0);
        assert_eq!(r.avg_read_response(), SimDuration::ZERO);
    }
}
