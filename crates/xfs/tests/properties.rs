//! Property tests: xFS behaves like a single coherent store under random
//! multi-client operation interleavings and failures.

use now_xfs::{Xfs, XfsConfig, XfsError};
use proptest::prelude::*;
use std::collections::HashMap;

/// A random op: (client, block, Some(fill) = write / None = read).
fn ops(clients: u32, blocks: u32) -> impl Strategy<Value = Vec<(u32, u32, Option<u8>)>> {
    prop::collection::vec(
        (0..clients, 0..blocks, prop::option::of(any::<u8>())),
        1..200,
    )
}

fn small_fs() -> (Xfs, now_xfs::FileId) {
    let mut fs = Xfs::new(XfsConfig {
        clients: 4,
        managers: 2,
        storage_disks: 4,
        stripe_groups: 2,
        block_bytes: 64,
        client_cache_blocks: 8, // tiny: forces eviction write-backs
    });
    let f = fs.create("/f").unwrap();
    (fs, f)
}

proptest! {
    /// Every read observes the latest write to its block, across clients,
    /// caches, evictions, and write-backs.
    #[test]
    fn reads_see_latest_writes(script in ops(4, 16)) {
        let (mut fs, f) = small_fs();
        let mut model: HashMap<u32, u8> = HashMap::new();
        for (client, block, action) in script {
            match action {
                Some(fill) => {
                    fs.write(client, f, block, &[fill; 64]).unwrap();
                    model.insert(block, fill);
                }
                None => match fs.read(client, f, block) {
                    Ok(data) => {
                        let expected = model.get(&block).copied();
                        prop_assert_eq!(
                            expected,
                            Some(data[0]),
                            "block {} read stale data", block
                        );
                        prop_assert!(data.iter().all(|&b| b == data[0]));
                    }
                    Err(e) => {
                        prop_assert!(
                            !model.contains_key(&block),
                            "written block {} unreadable: {e}", block
                        );
                    }
                },
            }
        }
    }

    /// Sync + any client failure never loses acknowledged-synced data, and
    /// other clients keep full access.
    #[test]
    fn synced_data_survives_client_failure(
        script in ops(4, 12),
        victim in 0u32..4,
    ) {
        let (mut fs, f) = small_fs();
        let mut model: HashMap<u32, u8> = HashMap::new();
        for (client, block, action) in &script {
            if let Some(fill) = action {
                fs.write(*client, f, *block, &[*fill; 64]).unwrap();
                model.insert(*block, *fill);
            }
        }
        for c in 0..4 {
            fs.sync(c).unwrap();
        }
        let lost = fs.fail_client(victim);
        prop_assert!(lost.is_empty(), "nothing dirty after global sync");
        let reader = (victim + 1) % 4;
        for (block, fill) in &model {
            let data = fs.read(reader, f, *block).unwrap();
            prop_assert_eq!(data[0], *fill, "block {}", block);
        }
    }

    /// Sync + storage-disk failure: RAID-5 degraded mode returns every
    /// block intact, and reconstruction restores normal service.
    #[test]
    fn synced_data_survives_disk_failure(
        writes in prop::collection::vec((0u32..24, any::<u8>()), 1..60),
        disk in 0u32..4,
    ) {
        let (mut fs, f) = small_fs();
        let mut model: HashMap<u32, u8> = HashMap::new();
        for (block, fill) in &writes {
            fs.write(0, f, *block, &[*fill; 64]).unwrap();
            model.insert(*block, *fill);
        }
        fs.sync(0).unwrap();
        fs.fail_client(0); // cold caches: force storage reads
        fs.storage_mut().raid_mut().fail_disk(disk);
        for (block, fill) in &model {
            let data = fs.read(1, f, *block).unwrap();
            prop_assert_eq!(data[0], *fill, "degraded block {}", block);
        }
        fs.storage_mut().raid_mut().reconstruct(disk).unwrap();
        for (block, fill) in &model {
            let data = fs.read(2, f, *block).unwrap();
            prop_assert_eq!(data[0], *fill, "post-rebuild block {}", block);
        }
    }

    /// Manager recovery in the middle of a workload preserves coherence:
    /// reads after recovery still see the latest writes.
    #[test]
    fn manager_recovery_preserves_coherence(
        before in ops(4, 12),
        after in ops(4, 12),
        slot in 0u32..2,
    ) {
        let (mut fs, f) = small_fs();
        let mut model: HashMap<u32, u8> = HashMap::new();
        let run = |fs: &mut Xfs, script: &[(u32, u32, Option<u8>)], model: &mut HashMap<u32, u8>| -> Result<(), TestCaseError> {
            for (client, block, action) in script {
                match action {
                    Some(fill) => {
                        fs.write(*client, f, *block, &[*fill; 64]).unwrap();
                        model.insert(*block, *fill);
                    }
                    None => {
                        if let Ok(data) = fs.read(*client, f, *block) {
                            prop_assert_eq!(model.get(block).copied(), Some(data[0]));
                        }
                    }
                }
            }
            Ok(())
        };
        run(&mut fs, &before, &mut model)?;
        // Sync so the failed manager's owners have clean storage copies.
        for c in 0..4 {
            fs.sync(c).unwrap();
        }
        fs.recover_manager(slot);
        run(&mut fs, &after, &mut model)?;
        for (block, fill) in &model {
            let data = fs.read(3, f, *block).unwrap();
            prop_assert_eq!(data[0], *fill, "final check block {}", block);
        }
    }

    /// Unwritten blocks always error, never return garbage.
    #[test]
    fn holes_error_cleanly(reads in prop::collection::vec((0u32..4, 0u32..32), 1..40)) {
        let (mut fs, f) = small_fs();
        fs.write(0, f, 31, &[1; 64]).unwrap(); // size covers the range
        for (client, block) in reads {
            if block == 31 { continue; }
            let r = fs.read(client, f, block);
            prop_assert!(matches!(r, Err(XfsError::Storage(_))), "hole {block} -> {r:?}");
        }
    }
}
