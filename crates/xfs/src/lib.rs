//! # now-xfs — the serverless network file system
//!
//! xFS removes the central file server entirely: "client workstations
//! cooperate in all aspects of the file system — storing data, managing
//! metadata, and enforcing protection." This crate implements the four
//! features the paper lists, functionally (real bytes) with timing
//! accounted per operation:
//!
//! 1. **Everything migrates** — management of any block can move between
//!    nodes; the manager map is just a hash over live managers, and a
//!    failed manager's state is rebuilt from the clients
//!    ([`Xfs::recover_manager`]).
//! 2. **Multiprocessor-style cache coherence** — a write-back *ownership*
//!    protocol per block: one owner with a dirty copy, or any number of
//!    read-shared copies, tracked by the block's manager
//!    ([`coherence`]).
//! 3. **Software RAID storage** — all data and metadata live in a
//!    log-structured stripe log over [`now_raid::SoftwareRaid`], so full
//!    stripes are written, parity survives a disk failure, and the cleaner
//!    reclaims dead versions.
//! 4. **Cooperative client caching** — a miss is served from another
//!    client's memory before touching a disk, exactly as in `now-cache`,
//!    but here with real bytes and coherence.
//!
//! # Example
//!
//! ```
//! use now_xfs::{Xfs, XfsConfig};
//!
//! let mut fs = Xfs::new(XfsConfig::small());
//! let f = fs.create("/etc/motd").unwrap();
//! fs.write(0, f, 0, &vec![b'!'; fs.block_bytes()]).unwrap();
//! // A different client reads through the coherence protocol.
//! let data = fs.read(1, f, 0).unwrap();
//! assert!(data.iter().all(|&b| b == b'!'));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coherence;
mod fs;
mod image;
mod namespace;

pub use fs::{FileId, Xfs, XfsConfig, XfsError, XfsStats};
pub use image::ImageError;
pub use namespace::Path;
