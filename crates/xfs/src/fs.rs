//! The xFS façade: files, clients, managers, and storage glued together.

use std::collections::{BTreeMap, HashMap};

use bytes::Bytes;
use now_mem::{LruCache, Touch};
use now_raid::{RaidConfig, RaidError, RaidLevel, SoftwareRaid, StripeLog};
use now_sim::SimDuration;
use serde::{Deserialize, Serialize};

use crate::coherence::{BlockEntry, ClientId, ReadPlan};

/// Identifies a file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FileId(pub u32);

/// A (file, block-index) pair — the coherence and storage unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
struct BlockKey {
    file: FileId,
    block: u32,
}

impl BlockKey {
    fn log_key(self) -> u64 {
        (u64::from(self.file.0) << 32) | u64::from(self.block)
    }
}

/// File-system configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct XfsConfig {
    /// Participating client workstations (every one is also a potential
    /// manager and storage node — there is no server).
    pub clients: u32,
    /// How many of the clients act as managers (metadata is spread over
    /// them by hashing).
    pub managers: u32,
    /// Disks in each storage stripe group.
    pub storage_disks: u32,
    /// Number of independent stripe groups. Blocks are spread over groups
    /// by hash; each group is its own RAID-5 array and log, so parity
    /// groups stay small (bounding the double-failure window) while
    /// aggregate bandwidth scales.
    pub stripe_groups: u32,
    /// Block size in bytes.
    pub block_bytes: usize,
    /// Blocks each client caches.
    pub client_cache_blocks: usize,
}

impl XfsConfig {
    /// A small configuration for tests and examples: 8 clients, 4
    /// managers, 5 disks, 512-byte blocks, 64-block caches.
    pub fn small() -> Self {
        XfsConfig {
            clients: 8,
            managers: 4,
            storage_disks: 5,
            stripe_groups: 1,
            block_bytes: 512,
            client_cache_blocks: 64,
        }
    }
}

/// Errors from file-system operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XfsError {
    /// No file with that name/id.
    NoSuchFile,
    /// A file with that name already exists.
    AlreadyExists,
    /// Wrong buffer size for a block write.
    WrongBlockSize {
        /// Bytes expected.
        expected: usize,
        /// Bytes supplied.
        got: usize,
    },
    /// Client id out of range or departed.
    BadClient,
    /// The storage layer failed (propagated RAID error).
    Storage(RaidError),
    /// The block was written only to a failed client's cache and is gone.
    DataLost,
    /// A malformed path (must be absolute, with no empty/`.`/`..`
    /// components).
    BadPath,
}

impl std::fmt::Display for XfsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            XfsError::NoSuchFile => write!(f, "no such file"),
            XfsError::AlreadyExists => write!(f, "file already exists"),
            XfsError::WrongBlockSize { expected, got } => {
                write!(f, "block must be {expected} bytes, got {got}")
            }
            XfsError::BadClient => write!(f, "client unknown or departed"),
            XfsError::Storage(e) => write!(f, "storage: {e}"),
            XfsError::DataLost => write!(f, "data lost with failed client"),
            XfsError::BadPath => write!(f, "malformed path"),
        }
    }
}

impl std::error::Error for XfsError {}

impl From<RaidError> for XfsError {
    fn from(e: RaidError) -> Self {
        XfsError::Storage(e)
    }
}

/// Operation counters and accumulated time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct XfsStats {
    /// Block reads served.
    pub reads: u64,
    /// Block writes served.
    pub writes: u64,
    /// Reads satisfied by the requesting client's own cache.
    pub local_hits: u64,
    /// Reads supplied by another client's cache (cooperative transfer).
    pub peer_transfers: u64,
    /// Reads that reached the storage log.
    pub storage_reads: u64,
    /// Invalidation messages sent by managers.
    pub invalidations: u64,
    /// Owner write-backs forced by downgrades or evictions.
    pub writebacks: u64,
    /// Total simulated service time.
    pub time: SimDuration,
}

#[derive(Debug)]
struct ClientState {
    /// Resident blocks with their data; dirty flag tracked by the LRU.
    cache: LruCache<BlockKey>,
    data: HashMap<BlockKey, Bytes>,
    alive: bool,
}

/// Per-operation network cost constants (Active Messages over switched
/// ATM, per the paper's target numbers).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct NetCosts {
    /// Small control message (request, grant, invalidate).
    control: SimDuration,
    /// A block transfer between two clients' memories.
    block: SimDuration,
}

impl NetCosts {
    fn am_atm(block_bytes: usize) -> Self {
        NetCosts {
            control: SimDuration::from_micros(20),
            block: SimDuration::from_micros(30) + SimDuration::from_nanos(52 * block_bytes as u64), // 155 Mbps
        }
    }
}

/// The serverless file system.
///
/// See the crate documentation for the design; every public operation
/// charges simulated time to [`XfsStats::time`] and keeps the coherence
/// protocol, the client caches, and the storage log consistent.
#[derive(Debug)]
pub struct Xfs {
    config: XfsConfig,
    clients: Vec<ClientState>,
    /// Manager state, indexed by manager slot; entries keyed by block.
    /// Ordered map: manager state is iterated during client failure and
    /// manager recovery, and a hash-ordered walk made fault replays
    /// differ across processes.
    managers: Vec<BTreeMap<BlockKey, BlockEntry>>,
    /// Which manager slot serves each key (rehashed on manager failure).
    manager_of: Vec<u32>,
    /// One log-structured RAID per stripe group.
    logs: Vec<StripeLog>,
    /// Ordered maps like `managers`: nothing iterates these today, but
    /// any future walk (fsck, snapshots, reports) must not inherit hash
    /// order and quietly diverge across processes.
    directory: BTreeMap<String, FileId>,
    files: BTreeMap<FileId, u32>, // blocks written (size in blocks)
    /// Exact byte lengths recorded by the whole-file helpers.
    byte_lens: BTreeMap<FileId, u64>,
    /// Namespace entries: canonical path -> is_directory.
    namespace: std::collections::BTreeMap<String, bool>,
    next_file: u32,
    costs: NetCosts,
    stats: XfsStats,
}

impl Xfs {
    /// Boots a file system.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate configuration (no clients/managers, managers
    /// exceeding clients, too few disks for RAID-5).
    pub fn new(config: XfsConfig) -> Self {
        assert!(config.clients > 0, "xFS needs clients");
        assert!(
            config.managers > 0 && config.managers <= config.clients,
            "managers must be 1..=clients"
        );
        assert!(config.stripe_groups >= 1, "need at least one stripe group");
        let logs = (0..config.stripe_groups)
            .map(|_| {
                StripeLog::new(SoftwareRaid::new(RaidConfig {
                    level: RaidLevel::Raid5,
                    disks: config.storage_disks,
                    block_bytes: config.block_bytes,
                }))
            })
            .collect();
        Xfs {
            config,
            clients: (0..config.clients)
                .map(|_| ClientState {
                    cache: LruCache::new(config.client_cache_blocks),
                    data: HashMap::new(),
                    alive: true,
                })
                .collect(),
            managers: (0..config.managers).map(|_| BTreeMap::new()).collect(),
            manager_of: (0..config.managers).collect(),
            logs,
            directory: BTreeMap::new(),
            files: BTreeMap::new(),
            byte_lens: BTreeMap::new(),
            namespace: Default::default(),
            next_file: 0,
            costs: NetCosts::am_atm(config.block_bytes),
            stats: XfsStats::default(),
        }
    }

    /// Block size in bytes.
    pub fn block_bytes(&self) -> usize {
        self.config.block_bytes
    }

    /// Counters so far.
    pub fn stats(&self) -> XfsStats {
        self.stats
    }

    /// Direct access to the first stripe group's log (to fail/reconstruct
    /// disks in failure experiments).
    pub fn storage_mut(&mut self) -> &mut StripeLog {
        &mut self.logs[0]
    }

    /// Direct access to a specific stripe group's log.
    ///
    /// # Panics
    ///
    /// Panics if `group` is out of range.
    pub fn storage_group_mut(&mut self, group: u32) -> &mut StripeLog {
        &mut self.logs[group as usize]
    }

    /// Number of stripe groups.
    pub fn stripe_groups(&self) -> u32 {
        self.logs.len() as u32
    }

    /// The stripe group that stores a given log key.
    fn group_of_key(&self, log_key: u64) -> usize {
        (log_key.wrapping_mul(0xD1B5_4A32_D192_ED03) >> 33) as usize % self.logs.len()
    }

    fn manager_slot(&self, key: BlockKey) -> u32 {
        // Simple deterministic hash spread over manager slots.
        let h = key
            .log_key()
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .rotate_left(17);
        self.manager_of[(h % self.manager_of.len() as u64) as usize]
    }

    fn check_client(&self, client: ClientId) -> Result<(), XfsError> {
        match self.clients.get(client as usize) {
            Some(c) if c.alive => Ok(()),
            _ => Err(XfsError::BadClient),
        }
    }

    /// Creates a file. Returns its id.
    ///
    /// # Errors
    ///
    /// [`XfsError::AlreadyExists`] if the name is taken.
    pub fn create(&mut self, name: &str) -> Result<FileId, XfsError> {
        if self.directory.contains_key(name) {
            return Err(XfsError::AlreadyExists);
        }
        let id = FileId(self.next_file);
        self.next_file += 1;
        self.directory.insert(name.to_string(), id);
        self.files.insert(id, 0);
        self.stats.time += self.costs.control; // directory-manager update
        Ok(id)
    }

    /// Looks a file up by name.
    pub fn lookup(&self, name: &str) -> Option<FileId> {
        self.directory.get(name).copied()
    }

    /// The file's size in blocks (highest block written + 1).
    pub fn size_blocks(&self, file: FileId) -> Option<u32> {
        self.files.get(&file).copied()
    }

    /// Writes one block of `file` as `client`.
    ///
    /// # Errors
    ///
    /// See [`XfsError`]; in particular the buffer must be exactly
    /// [`Xfs::block_bytes`] long.
    pub fn write(
        &mut self,
        client: ClientId,
        file: FileId,
        block: u32,
        data: &[u8],
    ) -> Result<(), XfsError> {
        self.check_client(client)?;
        if data.len() != self.config.block_bytes {
            return Err(XfsError::WrongBlockSize {
                expected: self.config.block_bytes,
                got: data.len(),
            });
        }
        let size = self.files.get_mut(&file).ok_or(XfsError::NoSuchFile)?;
        *size = (*size).max(block + 1);
        let key = BlockKey { file, block };
        self.stats.writes += 1;
        self.stats.time += self.costs.control; // ownership request

        let slot = self.manager_slot(key);
        let plan = self.managers[slot as usize]
            .entry(key)
            .or_default()
            .write(client);
        // Invalidate other copies.
        for victim in &plan.invalidate {
            self.stats.invalidations += 1;
            self.stats.time += self.costs.control;
            let vc = &mut self.clients[*victim as usize];
            vc.cache.remove(&key);
            vc.data.remove(&key);
        }
        // (A full-block write needs no fetch of the old contents.)
        let _ = plan.fetch;
        self.install(client, key, Bytes::copy_from_slice(data), true)?;
        Ok(())
    }

    /// Reads one block of `file` as `client`.
    ///
    /// # Errors
    ///
    /// [`XfsError::NoSuchFile`] for unknown files, [`XfsError::Storage`]
    /// wrapping [`RaidError::NotWritten`] for holes.
    pub fn read(&mut self, client: ClientId, file: FileId, block: u32) -> Result<Bytes, XfsError> {
        self.check_client(client)?;
        if !self.files.contains_key(&file) {
            return Err(XfsError::NoSuchFile);
        }
        let key = BlockKey { file, block };
        self.stats.reads += 1;

        // Local cache first — no manager involved.
        if self.clients[client as usize].cache.contains(&key) {
            self.clients[client as usize].cache.touch(key, false);
            self.stats.local_hits += 1;
            let data = self.clients[client as usize].data[&key].clone();
            return Ok(data);
        }

        self.stats.time += self.costs.control; // ask the manager
        let slot = self.manager_slot(key);
        let plan = self.managers[slot as usize]
            .entry(key)
            .or_default()
            .read(client);
        let data = match plan {
            ReadPlan::FromOwner { owner } if owner != client => {
                // Owner supplies the data and writes it back (downgrade).
                let data = self.clients[owner as usize]
                    .data
                    .get(&key)
                    .cloned()
                    .ok_or(XfsError::DataLost)?;
                self.stats.peer_transfers += 1;
                self.stats.writebacks += 1;
                self.stats.time += self.costs.block;
                let g = self.group_of_key(key.log_key());
                let t = self.logs[g].write(key.log_key(), &data)?;
                self.stats.time += t;
                // Owner's copy is now clean.
                self.clients[owner as usize].cache.remove(&key);
                self.clients[owner as usize].cache.touch(key, false);
                data
            }
            ReadPlan::FromPeer { peer } if peer != client => {
                let data = self.clients[peer as usize]
                    .data
                    .get(&key)
                    .cloned()
                    .ok_or(XfsError::DataLost)?;
                self.stats.peer_transfers += 1;
                self.stats.time += self.costs.block;
                data
            }
            ReadPlan::FromStorage => {
                self.stats.storage_reads += 1;
                let g = self.group_of_key(key.log_key());
                match self.logs[g].read(key.log_key()) {
                    Ok((data, t)) => {
                        self.stats.time += t + self.costs.block;
                        data
                    }
                    Err(e) => {
                        // Roll back the registration the plan made: the
                        // reader never obtained a copy.
                        let entry = self.managers[slot as usize]
                            .get_mut(&key)
                            .expect("entry created by plan");
                        entry.depart(client);
                        if entry.is_unowned() {
                            self.managers[slot as usize].remove(&key);
                        }
                        return Err(e.into());
                    }
                }
            }
            // Plans naming ourselves mean the manager already saw us as a
            // holder; treat as local (can happen after manager rebuild).
            ReadPlan::FromOwner { .. } | ReadPlan::FromPeer { .. } => self.clients[client as usize]
                .data
                .get(&key)
                .cloned()
                .ok_or(XfsError::DataLost)?,
        };
        self.install(client, key, data.clone(), false)?;
        Ok(data)
    }

    /// Inserts a block into a client cache, handling eviction write-back.
    fn install(
        &mut self,
        client: ClientId,
        key: BlockKey,
        data: Bytes,
        dirty: bool,
    ) -> Result<(), XfsError> {
        let touch = self.clients[client as usize].cache.touch(key, dirty);
        self.clients[client as usize].data.insert(key, data);
        if let Touch::MissEvicted {
            victim,
            dirty: victim_dirty,
        } = touch
        {
            let victim_data = self.clients[client as usize]
                .data
                .remove(&victim)
                .expect("cached block has data");
            if victim_dirty {
                // Write-back before dropping the only dirty copy.
                self.stats.writebacks += 1;
                let g = self.group_of_key(victim.log_key());
                let t = self.logs[g].write(victim.log_key(), &victim_data)?;
                self.stats.time += t;
                let slot = self.manager_slot(victim);
                if let Some(entry) = self.managers[slot as usize].get_mut(&victim) {
                    entry.writeback(client);
                    entry.depart(client);
                }
            } else {
                let slot = self.manager_slot(victim);
                if let Some(entry) = self.managers[slot as usize].get_mut(&victim) {
                    entry.depart(client);
                }
            }
        }
        Ok(())
    }

    /// Flushes all of `client`'s dirty blocks to the storage log.
    ///
    /// # Errors
    ///
    /// Propagates storage errors.
    pub fn sync(&mut self, client: ClientId) -> Result<(), XfsError> {
        self.check_client(client)?;
        let dirty: Vec<BlockKey> = {
            let c = &self.clients[client as usize];
            c.cache
                .iter()
                .copied()
                .filter(|k| {
                    // A block is dirty iff this client owns it.
                    let slot = self.manager_slot(*k);
                    self.managers[slot as usize]
                        .get(k)
                        .is_some_and(|e| e.owner == Some(client))
                })
                .collect()
        };
        for key in dirty {
            let data = self.clients[client as usize].data[&key].clone();
            self.stats.writebacks += 1;
            let g = self.group_of_key(key.log_key());
            let t = self.logs[g].write(key.log_key(), &data)?;
            self.stats.time += t;
            let slot = self.manager_slot(key);
            self.managers[slot as usize]
                .get_mut(&key)
                .expect("owned block has an entry")
                .writeback(client);
        }
        for g in 0..self.logs.len() {
            let t = self.logs[g].flush()?;
            self.stats.time += t;
        }
        Ok(())
    }

    /// Deletes a file everywhere: caches, coherence state, and storage.
    ///
    /// # Errors
    ///
    /// [`XfsError::NoSuchFile`] if the name is unknown.
    pub fn delete(&mut self, name: &str) -> Result<(), XfsError> {
        let file = self.directory.remove(name).ok_or(XfsError::NoSuchFile)?;
        let blocks = self.files.remove(&file).unwrap_or(0);
        self.byte_lens.remove(&file);
        self.namespace.remove(name);
        for block in 0..blocks {
            let key = BlockKey { file, block };
            for c in &mut self.clients {
                c.cache.remove(&key);
                c.data.remove(&key);
            }
            let slot = self.manager_slot(key);
            self.managers[slot as usize].remove(&key);
            let g = self.group_of_key(key.log_key());
            self.logs[g].delete(key.log_key());
            self.stats.time += self.costs.control;
        }
        Ok(())
    }

    /// A client workstation crashes or leaves the NOW: its cache vanishes
    /// and it is removed from all coherence state. Returns the keys whose
    /// only (dirty) copy died with it — data recoverable only if it was
    /// synced.
    pub fn fail_client(&mut self, client: ClientId) -> Vec<(FileId, u32)> {
        let Some(c) = self.clients.get_mut(client as usize) else {
            return Vec::new();
        };
        c.alive = false;
        c.cache = LruCache::new(self.config.client_cache_blocks);
        c.data.clear();
        let mut lost = Vec::new();
        for mgr in &mut self.managers {
            for (key, entry) in mgr.iter_mut() {
                if entry.depart(client) {
                    lost.push((key.file, key.block));
                }
            }
        }
        lost.sort_unstable();
        lost
    }

    /// A failed client rejoins with a cold cache.
    pub fn revive_client(&mut self, client: ClientId) {
        if let Some(c) = self.clients.get_mut(client as usize) {
            c.alive = true;
        }
    }

    /// A manager node fails: its slot is reassigned to a surviving
    /// manager, and the lost coherence state is *rebuilt by consulting the
    /// clients* — the serverless property that any node can take over for
    /// any other.
    ///
    /// # Panics
    ///
    /// Panics if it was the last manager.
    pub fn recover_manager(&mut self, failed_slot: u32) {
        let survivors: Vec<u32> = (0..self.managers.len() as u32)
            .filter(|&m| m != failed_slot)
            .collect();
        assert!(!survivors.is_empty(), "the last manager cannot fail");
        // Reassign every hash bucket that pointed at the failed slot.
        for (i, slot) in self.manager_of.iter_mut().enumerate() {
            if *slot == failed_slot {
                *slot = survivors[i % survivors.len()];
            }
        }
        // The failed manager's entries are gone; rebuild from client
        // caches: every resident copy re-registers. Dirty/ownership is
        // re-derived from the LRU dirty bit (owners marked their entries
        // dirty when they wrote).
        let lost: Vec<BlockKey> = std::mem::take(&mut self.managers[failed_slot as usize])
            .into_keys()
            .collect();
        self.stats.time += self.costs.control * self.config.clients as u64; // broadcast
        for key in lost {
            let new_slot = self.manager_slot(key);
            let entry = self.managers[new_slot as usize].entry(key).or_default();
            for (cid, c) in self.clients.iter().enumerate() {
                if !c.alive || !c.cache.contains(&key) {
                    continue;
                }
                entry.copyset.insert(cid as u32);
                self.stats.time += self.costs.control;
            }
        }
        // Re-derive ownership: a client whose cached copy is dirty owns it.
        // (The LRU tracks dirtiness; scan each client's dirty keys.)
        for cid in 0..self.clients.len() as u32 {
            let dirty_keys: Vec<BlockKey> = self.clients[cid as usize]
                .cache
                .iter()
                .copied()
                .filter(|k| self.client_block_dirty(cid, *k))
                .collect();
            for key in dirty_keys {
                let slot = self.manager_slot(key);
                let entry = self.managers[slot as usize].entry(key).or_default();
                if entry.owner.is_none() && entry.copyset.contains(&cid) {
                    entry.copyset.remove(&cid);
                    entry.owner = Some(cid);
                }
            }
        }
    }

    /// Whether `client`'s cached copy of `key` is dirty. Used by manager
    /// recovery; dirtiness lives in the client LRU's dirty bit.
    fn client_block_dirty(&self, client: ClientId, key: BlockKey) -> bool {
        // The LRU does not expose per-key dirty queries; ownership in a
        // *surviving* manager is authoritative. For keys whose manager
        // state was lost, conservatively treat cached-and-previously-owned
        // blocks as dirty via the surviving entry (if none, the client
        // re-registers as a clean sharer and its data is still correct
        // because writes always kept the latest bytes in `data`).
        let slot = self.manager_slot(key);
        self.managers[slot as usize]
            .get(&key)
            .is_some_and(|e| e.owner == Some(client))
    }

    // --- namespace plumbing used by the `namespace` module ---

    pub(crate) fn namespace_contains(&self, canon: &str) -> bool {
        self.namespace.contains_key(canon)
    }

    pub(crate) fn namespace_is_dir(&self, canon: &str) -> bool {
        self.namespace.get(canon).copied() == Some(true)
    }

    pub(crate) fn namespace_insert_dir(&mut self, canon: String) {
        self.namespace.insert(canon, true);
    }

    pub(crate) fn namespace_insert_file(&mut self, canon: String) {
        self.namespace.insert(canon, false);
    }

    pub(crate) fn namespace_entries(&self) -> impl Iterator<Item = &str> {
        self.namespace.keys().map(String::as_str)
    }

    pub(crate) fn set_byte_len(&mut self, file: FileId, len: u64) {
        self.byte_lens.insert(file, len);
    }

    /// The exact byte length recorded by [`Xfs::write_file`], if any.
    pub fn byte_len(&self, file: FileId) -> Option<u64> {
        self.byte_lens.get(&file).copied()
    }

    /// Runs the log cleaner if the dead-block fraction exceeds
    /// `threshold` (xFS's background segment cleaner, made explicit).
    /// Returns `true` if a cleaning pass ran.
    ///
    /// # Errors
    ///
    /// Propagates storage errors from the rewrite pass.
    pub fn maybe_clean(&mut self, threshold: f64) -> Result<bool, XfsError> {
        let mut cleaned = false;
        for g in 0..self.logs.len() {
            if self.logs[g].dead_fraction() > threshold {
                let t = self.logs[g].clean()?;
                self.stats.time += t;
                cleaned = true;
            }
        }
        Ok(cleaned)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blk(fs: &Xfs, fill: u8) -> Vec<u8> {
        vec![fill; fs.block_bytes()]
    }

    fn fs() -> Xfs {
        Xfs::new(XfsConfig::small())
    }

    #[test]
    fn create_lookup_and_duplicate() {
        let mut fs = fs();
        let f = fs.create("/a").unwrap();
        assert_eq!(fs.lookup("/a"), Some(f));
        assert_eq!(fs.lookup("/b"), None);
        assert_eq!(fs.create("/a"), Err(XfsError::AlreadyExists));
    }

    #[test]
    fn write_then_read_same_client() {
        let mut fs = fs();
        let f = fs.create("/a").unwrap();
        let data = blk(&fs, 0x5A);
        fs.write(0, f, 0, &data).unwrap();
        assert_eq!(&fs.read(0, f, 0).unwrap()[..], &data[..]);
        assert_eq!(fs.stats().local_hits, 1, "own write is cached");
    }

    #[test]
    fn cross_client_read_through_coherence() {
        let mut fs = fs();
        let f = fs.create("/a").unwrap();
        let data = blk(&fs, 0x11);
        fs.write(0, f, 0, &data).unwrap();
        let got = fs.read(1, f, 0).unwrap();
        assert_eq!(&got[..], &data[..]);
        // Served from the owner's cache, not storage.
        assert_eq!(fs.stats().peer_transfers, 1);
        assert_eq!(fs.stats().storage_reads, 0);
        // The downgrade forced a write-back.
        assert!(fs.stats().writebacks >= 1);
    }

    #[test]
    fn write_invalidates_remote_copies() {
        let mut fs = fs();
        let f = fs.create("/a").unwrap();
        fs.write(0, f, 0, &blk(&fs, 1)).unwrap();
        let _ = fs.read(1, f, 0).unwrap();
        let _ = fs.read(2, f, 0).unwrap();
        // Client 1 overwrites: clients 0 and 2 must lose their copies.
        let v2 = blk(&fs, 2);
        fs.write(1, f, 0, &v2).unwrap();
        assert!(fs.stats().invalidations >= 2);
        // Everyone now reads the new version.
        for c in [0, 2, 3] {
            assert_eq!(&fs.read(c, f, 0).unwrap()[..], &v2[..], "client {c}");
        }
    }

    #[test]
    fn sequential_consistency_of_block_values() {
        // Interleaved writes by different clients: every read sees the
        // most recent write.
        let mut fs = fs();
        let f = fs.create("/a").unwrap();
        for round in 0..20u8 {
            let writer = u32::from(round) % 4;
            let data = blk(&fs, round);
            fs.write(writer, f, 0, &data).unwrap();
            for reader in 0..8 {
                assert_eq!(&fs.read(reader, f, 0).unwrap()[..], &data[..]);
            }
        }
    }

    #[test]
    fn size_tracks_highest_block() {
        let mut fs = fs();
        let f = fs.create("/a").unwrap();
        assert_eq!(fs.size_blocks(f), Some(0));
        fs.write(0, f, 4, &blk(&fs, 1)).unwrap();
        assert_eq!(fs.size_blocks(f), Some(5));
    }

    #[test]
    fn eviction_writes_back_dirty_blocks() {
        let mut fs = fs();
        let f = fs.create("/big").unwrap();
        let cache = XfsConfig::small().client_cache_blocks as u32;
        // Write more blocks than the cache holds; early ones get evicted
        // with write-back, and must still read correctly (from storage).
        for b in 0..cache + 16 {
            fs.write(0, f, b, &blk(&fs, b as u8)).unwrap();
        }
        fs.sync(0).unwrap();
        for b in 0..cache + 16 {
            assert_eq!(
                &fs.read(1, f, b).unwrap()[..],
                &blk(&fs, b as u8)[..],
                "block {b}"
            );
        }
        assert!(
            fs.stats().storage_reads > 0,
            "some blocks came from the log"
        );
    }

    #[test]
    fn sync_then_client_failure_loses_nothing() {
        let mut fs = fs();
        let f = fs.create("/a").unwrap();
        for b in 0..10 {
            fs.write(0, f, b, &blk(&fs, b as u8)).unwrap();
        }
        fs.sync(0).unwrap();
        let lost = fs.fail_client(0);
        assert!(lost.is_empty(), "synced data must not be reported lost");
        for b in 0..10 {
            assert_eq!(&fs.read(1, f, b).unwrap()[..], &blk(&fs, b as u8)[..]);
        }
    }

    #[test]
    fn unsynced_client_failure_reports_lost_blocks() {
        let mut fs = fs();
        let f = fs.create("/a").unwrap();
        fs.write(0, f, 0, &blk(&fs, 9)).unwrap();
        let lost = fs.fail_client(0);
        assert_eq!(lost, vec![(f, 0)]);
        // The data is genuinely unrecoverable.
        assert!(matches!(
            fs.read(1, f, 0),
            Err(XfsError::Storage(RaidError::NotWritten)) | Err(XfsError::DataLost)
        ));
    }

    #[test]
    fn failed_client_cannot_operate_until_revived() {
        let mut fs = fs();
        let f = fs.create("/a").unwrap();
        fs.fail_client(3);
        assert_eq!(fs.write(3, f, 0, &blk(&fs, 1)), Err(XfsError::BadClient));
        assert_eq!(fs.read(3, f, 0).map(|_| ()), Err(XfsError::BadClient));
        fs.revive_client(3);
        fs.write(3, f, 0, &blk(&fs, 1)).unwrap();
    }

    #[test]
    fn storage_disk_failure_is_transparent_after_sync() {
        let mut fs = fs();
        let f = fs.create("/a").unwrap();
        for b in 0..30 {
            fs.write(0, f, b, &blk(&fs, b as u8)).unwrap();
        }
        fs.sync(0).unwrap();
        // Evict everything from caches by failing the writer client.
        fs.fail_client(0);
        // Kill a storage disk: RAID-5 degraded reads still serve.
        fs.storage_mut().raid_mut().fail_disk(2);
        for b in 0..30 {
            assert_eq!(
                &fs.read(1, f, b).unwrap()[..],
                &blk(&fs, b as u8)[..],
                "degraded {b}"
            );
        }
        // Reconstruct and read again.
        fs.storage_mut().raid_mut().reconstruct(2).unwrap();
        assert_eq!(&fs.read(2, f, 7).unwrap()[..], &blk(&fs, 7)[..]);
    }

    #[test]
    fn manager_failure_recovers_from_clients() {
        let mut fs = fs();
        let f = fs.create("/a").unwrap();
        for b in 0..16 {
            fs.write(0, f, b, &blk(&fs, b as u8)).unwrap();
        }
        fs.sync(0).unwrap();
        let _ = fs.read(1, f, 3).unwrap();
        fs.recover_manager(1);
        // All data remains readable by everyone.
        for b in 0..16 {
            for c in [0, 1, 2] {
                assert_eq!(&fs.read(c, f, b).unwrap()[..], &blk(&fs, b as u8)[..]);
            }
        }
        // Writes still maintain coherence afterwards.
        let v = blk(&fs, 0xEE);
        fs.write(2, f, 3, &v).unwrap();
        assert_eq!(&fs.read(1, f, 3).unwrap()[..], &v[..]);
    }

    #[test]
    fn delete_removes_everything() {
        let mut fs = fs();
        let f = fs.create("/a").unwrap();
        fs.write(0, f, 0, &blk(&fs, 1)).unwrap();
        fs.sync(0).unwrap();
        fs.delete("/a").unwrap();
        assert_eq!(fs.lookup("/a"), None);
        assert_eq!(fs.read(1, f, 0).map(|_| ()), Err(XfsError::NoSuchFile));
        // The name can be reused.
        let f2 = fs.create("/a").unwrap();
        assert_ne!(f, f2);
        assert_eq!(fs.delete("/zzz"), Err(XfsError::NoSuchFile));
    }

    #[test]
    fn stats_time_accumulates() {
        let mut fs = fs();
        let f = fs.create("/a").unwrap();
        let t0 = fs.stats().time;
        fs.write(0, f, 0, &blk(&fs, 1)).unwrap();
        let t1 = fs.stats().time;
        assert!(t1 > t0);
        let _ = fs.read(5, f, 0).unwrap();
        assert!(fs.stats().time > t1);
    }

    #[test]
    fn stripe_groups_fail_independently() {
        let mut cfg = XfsConfig::small();
        cfg.stripe_groups = 3;
        let mut fs = Xfs::new(cfg);
        assert_eq!(fs.stripe_groups(), 3);
        let f = fs.create("/spread").unwrap();
        let block_bytes = fs.block_bytes();
        for b in 0..48 {
            fs.write(0, f, b, &vec![b as u8; block_bytes]).unwrap();
        }
        fs.sync(0).unwrap();
        fs.fail_client(0); // cold caches: force storage reads
                           // Kill one disk in group 1 AND one in group 2: each group is its
                           // own RAID-5, so both single failures are survivable — the bounded
                           // parity-group design from the availability analysis.
        fs.storage_group_mut(1).raid_mut().fail_disk(0);
        fs.storage_group_mut(2).raid_mut().fail_disk(3);
        for b in 0..48 {
            assert_eq!(fs.read(1, f, b).unwrap()[0], b as u8, "block {b}");
        }
        fs.storage_group_mut(1).raid_mut().reconstruct(0).unwrap();
        fs.storage_group_mut(2).raid_mut().reconstruct(3).unwrap();
        for b in 0..48 {
            assert_eq!(fs.read(2, f, b).unwrap()[0], b as u8);
        }
    }

    #[test]
    fn cleaner_runs_when_garbage_accumulates() {
        let mut fs = fs();
        let f = fs.create("/churn").unwrap();
        // Overwrite the same blocks many times and sync: the log fills
        // with dead versions.
        for round in 0..6u8 {
            for b in 0..8 {
                fs.write(0, f, b, &blk(&fs, round)).unwrap();
            }
            fs.sync(0).unwrap();
        }
        assert!(fs.storage_mut().dead_fraction() > 0.3);
        assert!(fs.maybe_clean(0.3).unwrap(), "cleaner should trigger");
        assert!(!fs.maybe_clean(0.3).unwrap(), "and then be done");
        // Data unchanged after cleaning.
        for b in 0..8 {
            assert_eq!(&fs.read(1, f, b).unwrap()[..], &blk(&fs, 5)[..]);
        }
    }

    #[test]
    fn wrong_block_size_rejected() {
        let mut fs = fs();
        let f = fs.create("/a").unwrap();
        assert_eq!(
            fs.write(0, f, 0, &[1, 2, 3]),
            Err(XfsError::WrongBlockSize {
                expected: 512,
                got: 3
            })
        );
    }
}
