//! Hierarchical namespace over the flat file table: directories, paths,
//! and whole-file convenience I/O.
//!
//! xFS distributes directory management just like block management; here
//! the namespace is a plain tree kept alongside the flat
//! name → [`FileId`](crate::FileId) map, giving the usual `mkdir` /
//! `readdir` / path-resolution operations plus streaming helpers that
//! read and write whole files as byte slices (padding the last block).

use crate::{FileId, Xfs, XfsError};

/// A parsed absolute path: non-empty components, no `.`/`..`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Path {
    components: Vec<String>,
}

impl Path {
    /// Parses an absolute path.
    ///
    /// # Errors
    ///
    /// [`XfsError::BadPath`] unless the path starts with `/`, has at least
    /// one component, and contains no empty, `.` or `..` components.
    pub fn parse(raw: &str) -> Result<Path, XfsError> {
        let Some(rest) = raw.strip_prefix('/') else {
            return Err(XfsError::BadPath);
        };
        if rest.is_empty() {
            return Err(XfsError::BadPath);
        }
        let components: Vec<String> = rest.split('/').map(str::to_string).collect();
        if components
            .iter()
            .any(|c| c.is_empty() || c == "." || c == "..")
        {
            return Err(XfsError::BadPath);
        }
        Ok(Path { components })
    }

    /// The parent directory's components (empty for a top-level entry).
    pub fn parent(&self) -> &[String] {
        &self.components[..self.components.len() - 1]
    }

    /// The final component.
    pub fn name(&self) -> &str {
        self.components.last().expect("paths are non-empty")
    }

    /// All components.
    pub fn components(&self) -> &[String] {
        &self.components
    }

    /// Canonical string form.
    pub fn to_string_lossless(&self) -> String {
        format!("/{}", self.components.join("/"))
    }
}

impl Xfs {
    /// Creates a directory. Parents must already exist.
    ///
    /// # Errors
    ///
    /// [`XfsError::BadPath`] for malformed paths, [`XfsError::NoSuchFile`]
    /// for a missing parent, [`XfsError::AlreadyExists`] if taken.
    pub fn mkdir(&mut self, raw: &str) -> Result<(), XfsError> {
        let path = Path::parse(raw)?;
        self.ensure_parent(&path)?;
        let canon = path.to_string_lossless();
        if self.namespace_contains(&canon) {
            return Err(XfsError::AlreadyExists);
        }
        self.namespace_insert_dir(canon);
        Ok(())
    }

    /// Creates a file at an absolute path whose parent directories exist.
    ///
    /// # Errors
    ///
    /// As [`Xfs::mkdir`], plus anything [`Xfs::create`] returns.
    pub fn create_at(&mut self, raw: &str) -> Result<FileId, XfsError> {
        let path = Path::parse(raw)?;
        self.ensure_parent(&path)?;
        let canon = path.to_string_lossless();
        if self.namespace_contains(&canon) {
            return Err(XfsError::AlreadyExists);
        }
        let id = self.create(&canon)?;
        self.namespace_insert_file(canon);
        Ok(id)
    }

    /// Lists the immediate children of a directory, sorted.
    ///
    /// # Errors
    ///
    /// [`XfsError::NoSuchFile`] if the directory does not exist.
    pub fn readdir(&self, raw: &str) -> Result<Vec<String>, XfsError> {
        let prefix = if raw == "/" {
            String::new()
        } else {
            let path = Path::parse(raw)?;
            let canon = path.to_string_lossless();
            if !self.namespace_is_dir(&canon) {
                return Err(XfsError::NoSuchFile);
            }
            canon
        };
        let mut children: Vec<String> = self
            .namespace_entries()
            .filter_map(|entry| {
                let rest = entry.strip_prefix(&prefix)?.strip_prefix('/')?;
                (!rest.is_empty() && !rest.contains('/')).then(|| rest.to_string())
            })
            .collect();
        children.sort();
        children.dedup();
        Ok(children)
    }

    /// Writes `data` to the file at `path` (creating it), splitting into
    /// blocks and zero-padding the tail. Issued by `client`; remembers the
    /// byte length so [`Xfs::read_file`] returns exactly `data`.
    ///
    /// # Errors
    ///
    /// As [`Xfs::create_at`] / [`Xfs::write`].
    pub fn write_file(&mut self, client: u32, raw: &str, data: &[u8]) -> Result<FileId, XfsError> {
        let id = match self.create_at(raw) {
            Ok(id) => id,
            Err(XfsError::AlreadyExists) => self
                .lookup(&Path::parse(raw)?.to_string_lossless())
                .ok_or(XfsError::NoSuchFile)?,
            Err(e) => return Err(e),
        };
        let bs = self.block_bytes();
        for (i, chunk) in data.chunks(bs).enumerate() {
            let mut block = chunk.to_vec();
            block.resize(bs, 0);
            self.write(client, id, i as u32, &block)?;
        }
        self.set_byte_len(id, data.len() as u64);
        Ok(id)
    }

    /// Reads the whole file at `path` back as bytes (exactly the length
    /// written by [`Xfs::write_file`]).
    ///
    /// # Errors
    ///
    /// [`XfsError::NoSuchFile`] for unknown paths; storage errors for
    /// unsynced-and-lost data.
    pub fn read_file(&mut self, client: u32, raw: &str) -> Result<Vec<u8>, XfsError> {
        let canon = Path::parse(raw)?.to_string_lossless();
        let id = self.lookup(&canon).ok_or(XfsError::NoSuchFile)?;
        let len = self.byte_len(id).unwrap_or(0) as usize;
        let blocks = self.size_blocks(id).unwrap_or(0);
        let mut out = Vec::with_capacity(len);
        for b in 0..blocks {
            let data = self.read(client, id, b)?;
            out.extend_from_slice(&data);
        }
        out.truncate(len);
        Ok(out)
    }

    fn ensure_parent(&self, path: &Path) -> Result<(), XfsError> {
        if path.parent().is_empty() {
            return Ok(()); // top level always exists
        }
        let parent = format!("/{}", path.parent().join("/"));
        if self.namespace_is_dir(&parent) {
            Ok(())
        } else {
            Err(XfsError::NoSuchFile)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::XfsConfig;

    fn fs() -> Xfs {
        Xfs::new(XfsConfig::small())
    }

    #[test]
    fn path_parsing_accepts_and_rejects() {
        assert!(Path::parse("/a/b/c").is_ok());
        assert_eq!(Path::parse("/a/b/c").unwrap().name(), "c");
        assert_eq!(Path::parse("/top").unwrap().parent().len(), 0);
        for bad in ["", "/", "relative", "/a//b", "/a/./b", "/a/../b"] {
            assert_eq!(Path::parse(bad), Err(XfsError::BadPath), "{bad}");
        }
    }

    #[test]
    fn mkdir_then_create_then_readdir() {
        let mut fs = fs();
        fs.mkdir("/home").unwrap();
        fs.mkdir("/home/amd").unwrap();
        fs.create_at("/home/amd/thesis.tex").unwrap();
        fs.create_at("/home/amd/data.bin").unwrap();
        assert_eq!(fs.readdir("/home").unwrap(), vec!["amd"]);
        assert_eq!(
            fs.readdir("/home/amd").unwrap(),
            vec!["data.bin", "thesis.tex"]
        );
        assert_eq!(fs.readdir("/").unwrap(), vec!["home"]);
    }

    #[test]
    fn missing_parent_is_an_error() {
        let mut fs = fs();
        assert_eq!(fs.mkdir("/a/b"), Err(XfsError::NoSuchFile));
        assert_eq!(fs.create_at("/a/b/c"), Err(XfsError::NoSuchFile));
    }

    #[test]
    fn duplicate_entries_rejected() {
        let mut fs = fs();
        fs.mkdir("/d").unwrap();
        assert_eq!(fs.mkdir("/d"), Err(XfsError::AlreadyExists));
        fs.create_at("/d/f").unwrap();
        assert_eq!(fs.create_at("/d/f"), Err(XfsError::AlreadyExists));
    }

    #[test]
    fn readdir_of_missing_dir_errors() {
        let fs = fs();
        assert_eq!(fs.readdir("/nope"), Err(XfsError::NoSuchFile));
    }

    #[test]
    fn whole_file_roundtrip_exact_length() {
        let mut fs = fs();
        fs.mkdir("/data").unwrap();
        // A length that is not a multiple of the block size.
        let payload: Vec<u8> = (0..1_300u32).map(|i| (i % 251) as u8).collect();
        fs.write_file(0, "/data/blob", &payload).unwrap();
        let back = fs.read_file(5, "/data/blob").unwrap();
        assert_eq!(back, payload);
    }

    #[test]
    fn write_file_overwrites_in_place() {
        let mut fs = fs();
        fs.write_file(0, "/f", b"first version, quite long")
            .unwrap();
        fs.write_file(1, "/f", b"second").unwrap();
        assert_eq!(fs.read_file(2, "/f").unwrap(), b"second");
    }

    #[test]
    fn empty_file_roundtrips() {
        let mut fs = fs();
        fs.write_file(0, "/empty", b"").unwrap();
        assert_eq!(fs.read_file(1, "/empty").unwrap(), b"");
    }

    #[test]
    fn whole_file_io_survives_failures() {
        let mut fs = fs();
        let payload: Vec<u8> = (0..5_000u32).map(|i| (i * 7 % 256) as u8).collect();
        fs.write_file(2, "/big", &payload).unwrap();
        fs.sync(2).unwrap();
        fs.fail_client(2);
        fs.storage_mut().raid_mut().fail_disk(1);
        assert_eq!(fs.read_file(3, "/big").unwrap(), payload);
    }
}
