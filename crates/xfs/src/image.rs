//! Installing content-addressed images into xFS.
//!
//! The distribution layer (`now-cas`) moves a manifest's blocks to a
//! node; this module is the last hop — materializing the image as real
//! files in the serverless file system, and verifying an installed tree
//! back against its manifest, chunk hash by chunk hash. Every byte flows
//! through the ordinary xFS write/read paths (coherence, striping,
//! parity), so an installed image survives everything xFS survives.

use now_cas::{BlockHash, BlockStore, ImageManifest};

use crate::fs::{FileId, Xfs, XfsError};

/// Why an image install or verification failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImageError {
    /// A manifest block is absent from the supplied store.
    MissingBlock(BlockHash),
    /// A file read back with the wrong length or chunk hashes.
    Corrupt {
        /// Path of the mismatching file.
        path: String,
    },
    /// The underlying file system refused an operation.
    Fs(XfsError),
}

impl From<XfsError> for ImageError {
    fn from(e: XfsError) -> Self {
        ImageError::Fs(e)
    }
}

impl std::fmt::Display for ImageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImageError::MissingBlock(h) => write!(f, "block {h} missing from the store"),
            ImageError::Corrupt { path } => write!(f, "installed file {path} fails verification"),
            ImageError::Fs(e) => write!(f, "file system error: {e:?}"),
        }
    }
}

impl Xfs {
    /// Materializes `manifest` under the file system root: creates every
    /// parent directory, reassembles each file from `store`, and writes
    /// it through the normal xFS path as `client`. Returns the created
    /// file ids in manifest order. Idempotent over directories (an
    /// existing parent is fine); rewriting an existing file overwrites.
    ///
    /// # Errors
    ///
    /// [`ImageError::MissingBlock`] if the store lacks a chunk (a partial
    /// cache must finish fetching first), or the underlying
    /// [`XfsError`] for path and storage failures.
    pub fn install_image(
        &mut self,
        client: u32,
        manifest: &ImageManifest,
        store: &BlockStore,
    ) -> Result<Vec<FileId>, ImageError> {
        let mut ids = Vec::with_capacity(manifest.entries.len());
        for entry in &manifest.entries {
            self.ensure_parents(&entry.path)?;
            let mut data = Vec::with_capacity(entry.size as usize);
            for &hash in &entry.blocks {
                let chunk = store.get(hash).ok_or(ImageError::MissingBlock(hash))?;
                data.extend_from_slice(&chunk);
            }
            data.truncate(entry.size as usize);
            ids.push(self.write_file(client, &entry.path, &data)?);
        }
        Ok(ids)
    }

    /// Reads an installed image back through xFS as `client` and checks
    /// every file against `manifest`: exact length and every chunk
    /// re-hashed under the store's seed. Returns the bytes verified.
    ///
    /// # Errors
    ///
    /// [`ImageError::Corrupt`] naming the first mismatching file, or the
    /// underlying [`XfsError`] if a file cannot be read.
    pub fn verify_image(
        &mut self,
        client: u32,
        manifest: &ImageManifest,
        store: &BlockStore,
    ) -> Result<u64, ImageError> {
        let mut verified = 0u64;
        for entry in &manifest.entries {
            let data = self.read_file(client, &entry.path)?;
            let corrupt = ImageError::Corrupt {
                path: entry.path.clone(),
            };
            if data.len() as u64 != entry.size {
                return Err(corrupt);
            }
            let hashes: Vec<BlockHash> = data
                .chunks(manifest.chunk_bytes)
                .map(|c| store.hash_of(c))
                .collect();
            if hashes != entry.blocks {
                return Err(corrupt);
            }
            verified += entry.size;
        }
        Ok(verified)
    }

    /// Creates every ancestor directory of `path`, ignoring the ones
    /// that already exist.
    fn ensure_parents(&mut self, path: &str) -> Result<(), XfsError> {
        let components: Vec<&str> = path.split('/').filter(|c| !c.is_empty()).collect();
        let mut prefix = String::new();
        for dir in components.iter().take(components.len().saturating_sub(1)) {
            prefix.push('/');
            prefix.push_str(dir);
            match self.mkdir(&prefix) {
                Ok(()) | Err(XfsError::AlreadyExists) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::XfsConfig;
    use now_cas::{ImageCatalog, ImageCatalogSpec};

    fn small_catalog() -> ImageCatalog {
        // Small files so the whole image fits a test-sized xFS.
        ImageCatalog::generate(&ImageCatalogSpec {
            images: 2,
            base_files: 3,
            app_files: 2,
            file_bytes: 2048,
            chunk_bytes: 512,
            seed: 42,
        })
    }

    #[test]
    fn install_then_verify_round_trips() {
        let catalog = small_catalog();
        let mut fs = Xfs::new(XfsConfig::small());
        let manifest = &catalog.manifests[0];
        let ids = fs.install_image(0, manifest, &catalog.store).unwrap();
        assert_eq!(ids.len(), 5);
        let verified = fs.verify_image(1, manifest, &catalog.store).unwrap();
        assert_eq!(verified, manifest.logical_bytes());
        // The hierarchy is really there.
        assert_eq!(fs.readdir("/base").unwrap().len(), 3);
    }

    #[test]
    fn shared_parents_install_cleanly() {
        let catalog = small_catalog();
        let mut fs = Xfs::new(XfsConfig::small());
        // Both images share /base; the second install must not trip on
        // the directories the first one created.
        fs.install_image(0, &catalog.manifests[0], &catalog.store)
            .unwrap();
        fs.install_image(0, &catalog.manifests[1], &catalog.store)
            .unwrap();
        fs.verify_image(0, &catalog.manifests[1], &catalog.store)
            .unwrap();
    }

    #[test]
    fn missing_blocks_are_reported() {
        let catalog = small_catalog();
        let manifest = &catalog.manifests[0];
        let empty = BlockStore::new(catalog.store.seed(), catalog.store.chunk_bytes());
        let mut fs = Xfs::new(XfsConfig::small());
        let err = fs.install_image(0, manifest, &empty).unwrap_err();
        assert!(matches!(err, ImageError::MissingBlock(_)));
    }

    #[test]
    fn verification_catches_corruption() {
        let catalog = small_catalog();
        let manifest = &catalog.manifests[0];
        let mut fs = Xfs::new(XfsConfig::small());
        fs.install_image(0, manifest, &catalog.store).unwrap();
        // Overwrite one installed file with different content.
        let victim = &manifest.entries[0];
        fs.write_file(0, &victim.path, &vec![0xAA; victim.size as usize])
            .unwrap();
        let err = fs.verify_image(0, manifest, &catalog.store).unwrap_err();
        assert_eq!(
            err,
            ImageError::Corrupt {
                path: victim.path.clone()
            }
        );
    }
}
