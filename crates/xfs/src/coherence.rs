//! The write-back ownership protocol: shared-memory-multiprocessor cache
//! coherence applied to file blocks.
//!
//! Each block has (at most) one *manager*, which tracks either a single
//! **owner** holding a dirty, writable copy, or a **copyset** of clients
//! holding read-shared copies. The state machine per block:
//!
//! ```text
//!               read by c            write by c
//!  Unowned ───────────────► Shared ─────────────► Owned(c)
//!    ▲   read: add to copyset  │  write: invalidate copyset
//!    │                         ▼
//!    └──── owner writes back / is downgraded by a reader
//! ```
//!
//! This module is the pure protocol: it decides what must happen (who
//! supplies data, who gets invalidated) without touching caches or
//! storage, so it can be tested exhaustively on its own and reused by the
//! full file system in [`crate::Xfs`].

use std::collections::HashSet;

use serde::{Deserialize, Serialize};

/// A client node index within the file system.
pub type ClientId = u32;

/// The manager's record for one block.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct BlockEntry {
    /// The client holding a dirty, exclusive copy (if any).
    pub owner: Option<ClientId>,
    /// Clients holding clean, read-shared copies.
    pub copyset: HashSet<ClientId>,
}

/// What a reader must do, as decided by the manager.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReadPlan {
    /// Fetch from the current owner, who writes the block back and
    /// downgrades to a shared copy.
    FromOwner {
        /// The (now former) owner supplying the data.
        owner: ClientId,
    },
    /// Fetch from any client in the copyset (cooperative caching).
    FromPeer {
        /// The chosen supplier.
        peer: ClientId,
    },
    /// Nobody caches it: fetch from storage.
    FromStorage,
}

/// What a writer must do, as decided by the manager.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WritePlan {
    /// Where the current data comes from (`None` if the writer already has
    /// a valid copy or the block is new).
    pub fetch: Option<ReadPlan>,
    /// Clients whose copies must be invalidated.
    pub invalidate: Vec<ClientId>,
}

impl BlockEntry {
    /// True if no client caches the block.
    pub fn is_unowned(&self) -> bool {
        self.owner.is_none() && self.copyset.is_empty()
    }

    /// Plans a read by `reader` and applies the state transition.
    ///
    /// After this call the block is in the shared state with `reader` (and
    /// the former owner, if any) in the copyset.
    pub fn read(&mut self, reader: ClientId) -> ReadPlan {
        if self.copyset.contains(&reader) || self.owner == Some(reader) {
            // Already valid at the reader; no transition.
            return if self.owner == Some(reader) {
                ReadPlan::FromOwner { owner: reader }
            } else {
                ReadPlan::FromPeer { peer: reader }
            };
        }
        let plan = if let Some(owner) = self.owner.take() {
            // Downgrade: owner writes back and becomes a sharer.
            self.copyset.insert(owner);
            ReadPlan::FromOwner { owner }
        } else if let Some(&peer) = self.copyset.iter().min() {
            ReadPlan::FromPeer { peer }
        } else {
            ReadPlan::FromStorage
        };
        self.copyset.insert(reader);
        plan
    }

    /// Plans a write by `writer` and applies the state transition: all
    /// other copies are invalidated and `writer` becomes the owner.
    pub fn write(&mut self, writer: ClientId) -> WritePlan {
        let had_valid_copy = self.owner == Some(writer) || self.copyset.contains(&writer);
        let fetch = if had_valid_copy {
            None
        } else if let Some(owner) = self.owner {
            Some(ReadPlan::FromOwner { owner })
        } else if let Some(&peer) = self.copyset.iter().min() {
            Some(ReadPlan::FromPeer { peer })
        } else {
            None // brand-new block: writer creates it
        };
        let mut invalidate: Vec<ClientId> = self
            .copyset
            .iter()
            .copied()
            .filter(|&c| c != writer)
            .collect();
        if let Some(owner) = self.owner {
            if owner != writer {
                invalidate.push(owner);
            }
        }
        invalidate.sort_unstable();
        self.owner = Some(writer);
        self.copyset.clear();
        WritePlan { fetch, invalidate }
    }

    /// The owner wrote the block back to storage (e.g. cache eviction or
    /// sync): it keeps a clean shared copy.
    pub fn writeback(&mut self, client: ClientId) {
        if self.owner == Some(client) {
            self.owner = None;
            self.copyset.insert(client);
        }
    }

    /// A client dropped its copy (eviction) or died: remove it from the
    /// protocol state. Returns `true` if the client held the dirty owned
    /// copy (whose data is lost unless it was written back first).
    pub fn depart(&mut self, client: ClientId) -> bool {
        self.copyset.remove(&client);
        if self.owner == Some(client) {
            self.owner = None;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_read_comes_from_storage() {
        let mut e = BlockEntry::default();
        assert_eq!(e.read(3), ReadPlan::FromStorage);
        assert!(e.copyset.contains(&3));
        assert_eq!(e.owner, None);
    }

    #[test]
    fn second_reader_fetches_from_peer() {
        let mut e = BlockEntry::default();
        e.read(1);
        assert_eq!(e.read(2), ReadPlan::FromPeer { peer: 1 });
        assert_eq!(e.copyset.len(), 2);
    }

    #[test]
    fn read_of_owned_block_downgrades_the_owner() {
        let mut e = BlockEntry::default();
        e.write(5);
        assert_eq!(e.owner, Some(5));
        let plan = e.read(2);
        assert_eq!(plan, ReadPlan::FromOwner { owner: 5 });
        assert_eq!(e.owner, None, "owner downgraded");
        assert!(e.copyset.contains(&5) && e.copyset.contains(&2));
    }

    #[test]
    fn write_invalidates_all_sharers() {
        let mut e = BlockEntry::default();
        e.read(1);
        e.read(2);
        e.read(3);
        let plan = e.write(2);
        assert_eq!(plan.invalidate, vec![1, 3]);
        assert_eq!(plan.fetch, None, "writer already had a valid copy");
        assert_eq!(e.owner, Some(2));
        assert!(e.copyset.is_empty());
    }

    #[test]
    fn write_steals_ownership() {
        let mut e = BlockEntry::default();
        e.write(1);
        let plan = e.write(2);
        assert_eq!(plan.fetch, Some(ReadPlan::FromOwner { owner: 1 }));
        assert_eq!(plan.invalidate, vec![1]);
        assert_eq!(e.owner, Some(2));
    }

    #[test]
    fn write_to_new_block_fetches_nothing() {
        let mut e = BlockEntry::default();
        let plan = e.write(7);
        assert_eq!(plan.fetch, None);
        assert!(plan.invalidate.is_empty());
        assert_eq!(e.owner, Some(7));
    }

    #[test]
    fn rewrite_by_owner_is_silent() {
        let mut e = BlockEntry::default();
        e.write(4);
        let plan = e.write(4);
        assert_eq!(plan.fetch, None);
        assert!(plan.invalidate.is_empty());
        assert_eq!(e.owner, Some(4));
    }

    #[test]
    fn writeback_keeps_a_clean_copy() {
        let mut e = BlockEntry::default();
        e.write(4);
        e.writeback(4);
        assert_eq!(e.owner, None);
        assert!(e.copyset.contains(&4));
        // A later read comes from the peer, not storage.
        assert_eq!(e.read(9), ReadPlan::FromPeer { peer: 4 });
    }

    #[test]
    fn writeback_by_non_owner_is_a_no_op() {
        let mut e = BlockEntry::default();
        e.write(4);
        e.writeback(5);
        assert_eq!(e.owner, Some(4));
    }

    #[test]
    fn depart_reports_dirty_loss() {
        let mut e = BlockEntry::default();
        e.write(4);
        assert!(e.depart(4), "owned dirty copy lost");
        assert!(e.is_unowned());
        e.read(1);
        assert!(!e.depart(1), "clean copy loss is harmless");
    }

    #[test]
    fn states_never_hold_owner_and_nonempty_copyset_after_write() {
        let mut e = BlockEntry::default();
        for op in 0..50u32 {
            let client = op % 5;
            if op % 3 == 0 {
                e.write(client);
                assert!(e.copyset.is_empty(), "exclusive after write");
                assert_eq!(e.owner, Some(client));
            } else {
                e.read(client);
                assert!(e.owner.is_none() || e.copyset.is_empty());
            }
        }
    }
}
