//! Property tests for the trace generators and their text formats.

use now_sim::SimDuration;
use now_trace::fs::{FsTrace, FsTraceConfig};
use now_trace::lanl::{JobTrace, JobTraceConfig};
use now_trace::usage::{UsageTrace, UsageTraceConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// File-system traces round-trip through text for any seed and scale.
    #[test]
    fn fs_text_roundtrip(seed in any::<u64>(), clients in 1u32..8, secs in 100u64..2_000) {
        let cfg = FsTraceConfig {
            clients,
            duration: SimDuration::from_secs(secs),
            ..FsTraceConfig::small()
        };
        let t = FsTrace::generate(&cfg, seed);
        let back = FsTrace::from_text(&t.to_text()).unwrap();
        prop_assert_eq!(t, back);
    }

    /// Usage traces round-trip through text and keep availability stats.
    #[test]
    fn usage_text_roundtrip(seed in any::<u64>(), machines in 2u32..40) {
        let mut cfg = UsageTraceConfig::paper_defaults();
        cfg.machines = machines;
        let t = UsageTrace::generate(&cfg, seed);
        let back = UsageTrace::from_text(&t.to_text()).unwrap();
        prop_assert_eq!(&t, &back);
        prop_assert_eq!(t.fully_idle_fraction(), back.fully_idle_fraction());
    }

    /// Job traces round-trip through text.
    #[test]
    fn job_text_roundtrip(seed in any::<u64>(), load in 1u32..8) {
        let mut cfg = JobTraceConfig::paper_defaults();
        cfg.offered_load = f64::from(load) / 10.0;
        let t = JobTrace::generate(&cfg, seed);
        let back = JobTrace::from_text(&t.to_text()).unwrap();
        prop_assert_eq!(t, back);
    }

    /// Generated usage traces always respect the working-day envelope and
    /// interval ordering.
    #[test]
    fn usage_invariants(seed in any::<u64>(), machines in 1u32..32, idle in 0u32..10) {
        let mut cfg = UsageTraceConfig::paper_defaults();
        cfg.machines = machines;
        cfg.fully_idle_fraction = f64::from(idle) / 10.0;
        let t = UsageTrace::generate(&cfg, seed);
        for m in &t.machines {
            for w in m.periods.windows(2) {
                prop_assert!(w[0].end <= w[1].start);
            }
            for p in &m.periods {
                prop_assert!(p.start < p.end);
            }
        }
    }

    /// Job traces always respect partition bounds and the submission
    /// window, at any load.
    #[test]
    fn job_invariants(seed in any::<u64>(), load in 1u32..9) {
        let mut cfg = JobTraceConfig::paper_defaults();
        cfg.offered_load = f64::from(load) / 10.0;
        let t = JobTrace::generate(&cfg, seed);
        for j in &t.jobs {
            prop_assert!(j.nodes.is_power_of_two());
            prop_assert!(j.nodes <= cfg.partition_nodes);
            prop_assert!(j.arrival >= now_sim::SimTime::ZERO + cfg.submit_start);
            prop_assert!(j.arrival < now_sim::SimTime::ZERO + cfg.submit_end);
            prop_assert!(!j.service.is_zero());
        }
    }
}
