//! Synthetic parallel-job log, standing in for the paper's month of traces
//! from a 32-node CM-5 partition at Los Alamos National Laboratory (the
//! parallel side of Figure 3).
//!
//! The original trace is described as "a mix of production and development
//! runs on a 32-node system". The generator reproduces that structure:
//!
//! * **Development jobs** — frequent, short (seconds to minutes), small
//!   node counts; submitted during working hours.
//! * **Production jobs** — rarer, long (minutes to hours), using most or
//!   all of the partition.
//!
//! Job node counts are powers of two up to the partition size, as CM-5
//! partitions required. The offered load (utilisation of the dedicated MPP)
//! is a configuration knob; Figure 3's shape depends on it.

use now_sim::{SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};

/// One parallel job in the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParallelJob {
    /// Submission time.
    pub arrival: SimTime,
    /// Number of nodes the job needs (a power of two ≤ the partition size).
    pub nodes: u32,
    /// Service time on dedicated, coscheduled nodes.
    pub service: SimDuration,
    /// True for production runs, false for development runs.
    pub production: bool,
}

/// Generator parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobTraceConfig {
    /// Partition size (paper: 32 nodes).
    pub partition_nodes: u32,
    /// Trace horizon.
    pub duration: SimDuration,
    /// Target utilisation of the dedicated partition in `[0, 1)`; arrival
    /// rate is derived from it.
    pub offered_load: f64,
    /// Fraction of jobs that are production runs.
    pub production_fraction: f64,
    /// Submission window start within each day — supercomputer users work
    /// during the daytime too, which is exactly why Figure 3 matters.
    pub submit_start: SimDuration,
    /// Submission window end within each day.
    pub submit_end: SimDuration,
}

impl JobTraceConfig {
    /// Figure 3 defaults: a 32-node partition at 50 percent utilisation
    /// over one day, submissions between 8:00 and 18:00.
    pub fn paper_defaults() -> Self {
        JobTraceConfig {
            partition_nodes: 32,
            duration: SimDuration::from_secs(24 * 3600),
            offered_load: 0.5,
            production_fraction: 0.25,
            submit_start: SimDuration::from_secs(8 * 3600),
            submit_end: SimDuration::from_secs(18 * 3600),
        }
    }
}

/// A generated job log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobTrace {
    /// Jobs in arrival order.
    pub jobs: Vec<ParallelJob>,
    /// The configuration that produced the log.
    pub config: JobTraceConfig,
}

impl JobTrace {
    /// Generates a job log. Deterministic in `(config, seed)`.
    ///
    /// # Panics
    ///
    /// Panics if the partition is empty or the offered load is not in
    /// `(0, 1)`.
    pub fn generate(config: &JobTraceConfig, seed: u64) -> JobTrace {
        assert!(config.partition_nodes > 0, "partition must have nodes");
        assert!(
            config.offered_load > 0.0 && config.offered_load < 1.0,
            "offered load must be in (0,1), got {}",
            config.offered_load
        );
        let mut rng = SimRng::new(seed);

        // Mean node-seconds per job, used to derive the arrival rate that
        // hits the target utilisation. Service times are log-uniform, whose
        // arithmetic mean is (hi-lo)/ln(hi/lo); node counts are uniform over
        // powers of two, whose mean is the average of the choices.
        let log_uniform_mean = |lo: f64, hi: f64| (hi - lo) / (hi / lo).ln();
        let pow2_mean = |lo: u32, hi: u32| {
            let mut sum = 0.0;
            let mut n = 0.0;
            let mut v = lo.next_power_of_two();
            while v <= hi {
                sum += v as f64;
                n += 1.0;
                v *= 2;
            }
            sum / n
        };
        let dev_mean_ns =
            log_uniform_mean(10.0, 1_200.0) * pow2_mean(1, 8.min(config.partition_nodes));
        let prod_mean_ns =
            log_uniform_mean(600.0, 4.0 * 3_600.0) * pow2_mean(8, config.partition_nodes);
        let mean_node_secs = (1.0 - config.production_fraction) * dev_mean_ns
            + config.production_fraction * prod_mean_ns;
        assert!(
            config.submit_start < config.submit_end && config.submit_end <= config.duration,
            "submission window must fit in the day"
        );
        let capacity_node_secs = config.partition_nodes as f64 * config.duration.as_secs_f64();
        let jobs_target = capacity_node_secs * config.offered_load / mean_node_secs;
        let window = (config.submit_end - config.submit_start).as_secs_f64();
        let mean_interarrival = window / jobs_target;

        let mut jobs = Vec::new();
        let mut t = SimTime::ZERO
            + config.submit_start
            + SimDuration::from_secs_f64(rng.exponential(mean_interarrival));
        let horizon = SimTime::ZERO + config.submit_end;
        while t < horizon {
            let production = rng.chance(config.production_fraction);
            let (nodes, service_s) = if production {
                let nodes = pow2_between(&mut rng, 8, config.partition_nodes);
                (nodes, rng.log_uniform(600.0, 4.0 * 3600.0))
            } else {
                let nodes = pow2_between(&mut rng, 1, 8.min(config.partition_nodes));
                (nodes, rng.log_uniform(10.0, 1_200.0))
            };
            jobs.push(ParallelJob {
                arrival: t,
                nodes,
                service: SimDuration::from_secs_f64(service_s),
                production,
            });
            t += SimDuration::from_secs_f64(rng.exponential(mean_interarrival));
        }
        JobTrace {
            jobs,
            config: config.clone(),
        }
    }

    /// Total node-seconds of work in the log.
    pub fn total_node_seconds(&self) -> f64 {
        self.jobs
            .iter()
            .map(|j| j.nodes as f64 * j.service.as_secs_f64())
            .sum()
    }

    /// Realised offered load relative to the dedicated partition.
    pub fn realised_load(&self) -> f64 {
        self.total_node_seconds()
            / (self.config.partition_nodes as f64 * self.config.duration.as_secs_f64())
    }

    /// Serialises to a line format: a header, then one job per line
    /// (`arrival_ns nodes service_ns P|D`).
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let c = &self.config;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "jobtrace v1 partition={} duration={} load={} prod={} submit={}..{}",
            c.partition_nodes,
            c.duration.as_nanos(),
            c.offered_load,
            c.production_fraction,
            c.submit_start.as_nanos(),
            c.submit_end.as_nanos(),
        );
        for j in &self.jobs {
            let _ = writeln!(
                out,
                "{} {} {} {}",
                j.arrival.as_nanos(),
                j.nodes,
                j.service.as_nanos(),
                if j.production { 'P' } else { 'D' }
            );
        }
        out
    }

    /// Parses the format produced by [`JobTrace::to_text`].
    ///
    /// # Errors
    ///
    /// Returns a [`crate::fs::ParseTraceError`] describing the first
    /// malformed line.
    pub fn from_text(text: &str) -> Result<JobTrace, crate::fs::ParseTraceError> {
        use crate::fs::ParseTraceError;
        let mut lines = text.lines();
        let header = lines
            .next()
            .ok_or_else(|| ParseTraceError::new(0, "empty input"))?;
        if !header.starts_with("jobtrace v1") {
            return Err(ParseTraceError::new(1, "missing `jobtrace v1` header"));
        }
        let field = |name: &str| -> Option<&str> {
            header
                .split(&format!("{name}="))
                .nth(1)
                .and_then(|s| s.split_whitespace().next())
        };
        let partition: u32 = field("partition")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| ParseTraceError::new(1, "bad partition"))?;
        let duration: u64 = field("duration")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| ParseTraceError::new(1, "bad duration"))?;
        let load: f64 = field("load")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| ParseTraceError::new(1, "bad load"))?;
        let prod: f64 = field("prod")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| ParseTraceError::new(1, "bad prod"))?;
        let submit = field("submit").ok_or_else(|| ParseTraceError::new(1, "bad submit"))?;
        let (ss, se) = submit
            .split_once("..")
            .ok_or_else(|| ParseTraceError::new(1, "bad submit range"))?;
        let submit_start = SimDuration::from_nanos(
            ss.parse()
                .map_err(|_| ParseTraceError::new(1, "bad submit start"))?,
        );
        let submit_end = SimDuration::from_nanos(
            se.parse()
                .map_err(|_| ParseTraceError::new(1, "bad submit end"))?,
        );
        let mut jobs = Vec::new();
        for (i, line) in lines.enumerate() {
            let lineno = i + 2;
            let mut parts = line.split_whitespace();
            let mut next =
                |what: &'static str| parts.next().ok_or(ParseTraceError::new(lineno, what));
            let arrival: u64 = next("missing arrival")?
                .parse()
                .map_err(|_| ParseTraceError::new(lineno, "bad arrival"))?;
            let nodes: u32 = next("missing nodes")?
                .parse()
                .map_err(|_| ParseTraceError::new(lineno, "bad nodes"))?;
            let service: u64 = next("missing service")?
                .parse()
                .map_err(|_| ParseTraceError::new(lineno, "bad service"))?;
            let production = match next("missing class")? {
                "P" => true,
                "D" => false,
                _ => return Err(ParseTraceError::new(lineno, "class must be P or D")),
            };
            jobs.push(ParallelJob {
                arrival: SimTime::from_nanos(arrival),
                nodes,
                service: SimDuration::from_nanos(service),
                production,
            });
        }
        Ok(JobTrace {
            jobs,
            config: JobTraceConfig {
                partition_nodes: partition,
                duration: SimDuration::from_nanos(duration),
                offered_load: load,
                production_fraction: prod,
                submit_start,
                submit_end,
            },
        })
    }

    /// The makespan lower bound on a dedicated partition: arrival of first
    /// job to completion of the last if all ran back-to-back perfectly.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }
}

/// Samples a power of two in `[lo, hi]` (inclusive), uniform over the
/// exponents.
fn pow2_between(rng: &mut SimRng, lo: u32, hi: u32) -> u32 {
    debug_assert!(lo >= 1 && lo <= hi);
    let lo_exp = lo.next_power_of_two().trailing_zeros();
    let hi_exp = if hi.is_power_of_two() {
        hi.trailing_zeros()
    } else {
        hi.next_power_of_two().trailing_zeros() - 1
    };
    let exp = rng.gen_range(u64::from(lo_exp)..u64::from(hi_exp) + 1) as u32;
    1 << exp
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> JobTrace {
        JobTrace::generate(&JobTraceConfig::paper_defaults(), 3)
    }

    #[test]
    fn generation_is_deterministic() {
        let a = JobTrace::generate(&JobTraceConfig::paper_defaults(), 8);
        let b = JobTrace::generate(&JobTraceConfig::paper_defaults(), 8);
        assert_eq!(a, b);
    }

    #[test]
    fn node_counts_are_powers_of_two_within_partition() {
        let t = trace();
        assert!(!t.is_empty());
        for j in &t.jobs {
            assert!(j.nodes.is_power_of_two(), "{} not a power of two", j.nodes);
            assert!(j.nodes <= t.config.partition_nodes);
        }
    }

    #[test]
    fn arrivals_are_ordered_within_horizon() {
        let t = trace();
        let horizon = SimTime::ZERO + t.config.duration;
        assert!(t.jobs.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        assert!(t.jobs.iter().all(|j| j.arrival < horizon));
    }

    #[test]
    fn realised_load_near_target() {
        // Average over several seeds: the realised load should straddle the
        // 0.5 target (individual days are noisy — production jobs are big).
        let loads: Vec<f64> = (0..8)
            .map(|s| JobTrace::generate(&JobTraceConfig::paper_defaults(), s).realised_load())
            .collect();
        let mean = loads.iter().sum::<f64>() / loads.len() as f64;
        assert!(
            (0.25..=0.9).contains(&mean),
            "mean realised load {mean} too far from 0.5 target"
        );
    }

    #[test]
    fn production_jobs_are_bigger_and_longer() {
        // Aggregate across seeds so both classes are well-populated.
        let mut prod_ns = 0.0;
        let mut dev_ns = 0.0;
        let mut prod_n = 0u32;
        let mut dev_n = 0u32;
        for seed in 0..4 {
            let t = JobTrace::generate(&JobTraceConfig::paper_defaults(), seed);
            for j in &t.jobs {
                let ns = j.nodes as f64 * j.service.as_secs_f64();
                if j.production {
                    prod_ns += ns;
                    prod_n += 1;
                } else {
                    dev_ns += ns;
                    dev_n += 1;
                }
            }
        }
        assert!(prod_n > 0 && dev_n > 0);
        assert!(
            prod_ns / prod_n as f64 > 10.0 * (dev_ns / dev_n as f64),
            "production node-seconds should dwarf development"
        );
    }

    #[test]
    fn development_jobs_are_the_majority() {
        let t = trace();
        let dev = t.jobs.iter().filter(|j| !j.production).count();
        assert!(dev * 2 > t.len(), "dev {} of {}", dev, t.len());
    }

    #[test]
    fn pow2_between_bounds() {
        let mut rng = SimRng::new(1);
        for _ in 0..200 {
            let v = pow2_between(&mut rng, 8, 32);
            assert!(v.is_power_of_two());
            assert!((8..=32).contains(&v));
        }
        for _ in 0..200 {
            let v = pow2_between(&mut rng, 1, 8);
            assert!((1..=8).contains(&v));
        }
    }

    #[test]
    fn text_roundtrip_preserves_everything() {
        let t = trace();
        let back = JobTrace::from_text(&t.to_text()).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(JobTrace::from_text("").is_err());
        let mut text = trace().to_text();
        text.push_str("1 2 3 X\n");
        assert!(JobTrace::from_text(&text).is_err());
    }

    #[test]
    fn load_knob_scales_job_volume() {
        let mut low_cfg = JobTraceConfig::paper_defaults();
        low_cfg.offered_load = 0.1;
        let mut high_cfg = JobTraceConfig::paper_defaults();
        high_cfg.offered_load = 0.8;
        let low: f64 = (0..4)
            .map(|s| JobTrace::generate(&low_cfg, s).total_node_seconds())
            .sum();
        let high: f64 = (0..4)
            .map(|s| JobTrace::generate(&high_cfg, s).total_node_seconds())
            .sum();
        assert!(high > low * 2.0, "load knob ineffective: {low} vs {high}");
    }
}
