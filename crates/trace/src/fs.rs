//! Synthetic file-system access trace, standing in for the paper's two-day
//! trace of 42 Berkeley workstations (the input to Table 3).
//!
//! What makes cooperative caching win in that trace — and what this
//! generator therefore reproduces — is structural:
//!
//! * **Cross-client sharing.** A small pool of hot shared files
//!   (executables, fonts) is touched by many clients, so a block evicted
//!   from one client's cache is often still warm in another's.
//! * **Skewed popularity.** Accesses follow a Zipf-like law; the head fits
//!   in memory somewhere on the network even when it doesn't fit in any one
//!   client.
//! * **Unequal activity.** Some clients are nearly idle, donating cache
//!   capacity that active clients can borrow.
//! * **Sequential runs.** Files are read in multi-block sequential runs, as
//!   file systems actually see.

use now_sim::{SimDuration, SimRng, SimTime, ZipfSampler};
use serde::{Deserialize, Serialize};

/// Identifies a file within one trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FileId(pub u32);

/// A globally unique block: file plus block index within the file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BlockId {
    /// Owning file.
    pub file: FileId,
    /// Block index within the file.
    pub block: u32,
}

/// Whether an access reads or writes the block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// Read access.
    Read,
    /// Write access.
    Write,
}

/// One record of the trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FsAccess {
    /// When the access is issued.
    pub time: SimTime,
    /// Issuing client workstation (0-based).
    pub client: u32,
    /// Block touched.
    pub block: BlockId,
    /// Read or write.
    pub kind: AccessKind,
}

/// Generator parameters.
///
/// Defaults are calibrated so the *client-server baseline* cache simulator
/// in `now-cache` reproduces Table 3's 16 percent miss rate with 16-MB
/// client caches and a 128-MB server cache (see that crate's tests).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FsTraceConfig {
    /// Number of client workstations (paper: 42).
    pub clients: u32,
    /// Trace length (paper: two days).
    pub duration: SimDuration,
    /// Number of hot shared files (executables, fonts, shared data).
    pub shared_files: u32,
    /// Private files per client (home directories, build trees).
    pub private_files_per_client: u32,
    /// Mean file size in blocks (Pareto-distributed; block = 8 KB).
    pub mean_file_blocks: u32,
    /// Zipf skew for file popularity within each pool.
    pub zipf_theta: f64,
    /// Mean accesses per second for an *active* client.
    pub accesses_per_sec: f64,
    /// Probability an access targets the shared pool rather than the
    /// client's private files.
    pub shared_fraction: f64,
    /// Fraction of accesses that are writes (paper workloads are
    /// read-dominated).
    pub write_fraction: f64,
    /// Mean sequential run length in blocks once a file is opened.
    pub mean_run_blocks: u32,
    /// Fraction of clients that are highly active; the rest issue accesses
    /// at one tenth the rate, donating cache capacity.
    pub active_client_fraction: f64,
}

impl FsTraceConfig {
    /// The Table 3 configuration: 42 clients, two days.
    pub fn paper_defaults() -> Self {
        FsTraceConfig {
            clients: 42,
            duration: SimDuration::from_secs(2 * 24 * 3600),
            shared_files: 250,
            private_files_per_client: 155,
            mean_file_blocks: 24,
            zipf_theta: 0.96,
            accesses_per_sec: 0.12,
            shared_fraction: 0.45,
            write_fraction: 0.15,
            mean_run_blocks: 6,
            active_client_fraction: 0.5,
        }
    }

    /// A scaled-down configuration for fast unit tests: same structure, a
    /// few thousand accesses.
    pub fn small() -> Self {
        FsTraceConfig {
            clients: 8,
            duration: SimDuration::from_secs(2_000),
            shared_files: 50,
            private_files_per_client: 40,
            mean_file_blocks: 12,
            zipf_theta: 0.85,
            accesses_per_sec: 0.5,
            shared_fraction: 0.45,
            write_fraction: 0.15,
            mean_run_blocks: 4,
            active_client_fraction: 0.5,
        }
    }
}

/// A generated trace: the access sequence plus the file-size table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FsTrace {
    /// Accesses in non-decreasing time order.
    pub accesses: Vec<FsAccess>,
    /// Size (in blocks) of every file; indexed by [`FileId`].
    pub file_blocks: Vec<u32>,
    /// Number of clients that generated the trace.
    pub clients: u32,
}

impl FsTrace {
    /// Generates a trace from `config` with the given seed.
    ///
    /// Deterministic: the same `(config, seed)` yields the same trace.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (zero clients or files).
    pub fn generate(config: &FsTraceConfig, seed: u64) -> FsTrace {
        assert!(config.clients > 0, "trace needs at least one client");
        assert!(
            config.shared_files > 0 && config.private_files_per_client > 0,
            "trace needs files"
        );
        let mut rng = SimRng::new(seed);

        // File size table: shared files first, then each client's private
        // pool. Pareto sizes give the long tail real file systems have.
        let total_files = config.shared_files + config.clients * config.private_files_per_client;
        let mut file_blocks = Vec::with_capacity(total_files as usize);
        for _ in 0..total_files {
            let size = rng.pareto(1.0, 1.3) * config.mean_file_blocks as f64 / 4.0;
            file_blocks.push((size.ceil() as u32).clamp(1, 4_096));
        }

        let shared_zipf = ZipfSampler::new(config.shared_files as usize, config.zipf_theta);
        let private_zipf =
            ZipfSampler::new(config.private_files_per_client as usize, config.zipf_theta);

        let mut accesses = Vec::new();
        for client in 0..config.clients {
            let mut crng = rng.fork();
            let frac = (client as f64 + 0.5) / config.clients as f64;
            let active = frac < config.active_client_fraction;
            let rate = if active {
                config.accesses_per_sec
            } else {
                config.accesses_per_sec / 10.0
            };
            let mean_gap = 1.0 / rate;
            let mut t = SimTime::ZERO + SimDuration::from_secs_f64(crng.exponential(mean_gap));
            let horizon = SimTime::ZERO + config.duration;
            while t < horizon {
                // Pick a file: shared pool or this client's private pool.
                let file = if crng.chance(config.shared_fraction) {
                    FileId(shared_zipf.sample(&mut crng) as u32)
                } else {
                    let base = config.shared_files + client * config.private_files_per_client;
                    FileId(base + private_zipf.sample(&mut crng) as u32)
                };
                let size = file_blocks[file.0 as usize];
                // Sequential run from a random start within the file.
                let run =
                    (crng.exponential(config.mean_run_blocks as f64).ceil() as u32).clamp(1, size);
                let start = crng.gen_range(0..u64::from(size)) as u32;
                let is_write = crng.chance(config.write_fraction);
                let mut bt = t;
                for i in 0..run {
                    let block = (start + i) % size;
                    accesses.push(FsAccess {
                        time: bt,
                        client,
                        block: BlockId { file, block },
                        kind: if is_write {
                            AccessKind::Write
                        } else {
                            AccessKind::Read
                        },
                    });
                    bt += SimDuration::from_millis(2); // intra-run spacing
                }
                t += SimDuration::from_secs_f64(crng.exponential(mean_gap));
            }
        }
        accesses.sort_by_key(|a| (a.time, a.client));
        FsTrace {
            accesses,
            file_blocks,
            clients: config.clients,
        }
    }

    /// Number of accesses.
    pub fn len(&self) -> usize {
        self.accesses.len()
    }

    /// True if the trace has no accesses.
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }

    /// Fraction of accesses that are reads.
    pub fn read_fraction(&self) -> f64 {
        if self.accesses.is_empty() {
            return 0.0;
        }
        let reads = self
            .accesses
            .iter()
            .filter(|a| a.kind == AccessKind::Read)
            .count();
        reads as f64 / self.accesses.len() as f64
    }

    /// Fraction of *distinct blocks* that are touched by two or more
    /// clients — the sharing that cooperative caching exploits.
    pub fn shared_block_fraction(&self) -> f64 {
        use std::collections::HashMap;
        let mut touchers: HashMap<BlockId, (u32, bool)> = HashMap::new();
        for a in &self.accesses {
            let entry = touchers.entry(a.block).or_insert((a.client, false));
            if entry.0 != a.client {
                entry.1 = true;
            }
        }
        if touchers.is_empty() {
            return 0.0;
        }
        let shared = touchers.values().filter(|(_, s)| *s).count();
        shared as f64 / touchers.len() as f64
    }

    /// Number of distinct blocks in the trace.
    pub fn unique_blocks(&self) -> usize {
        use std::collections::HashSet;
        self.accesses
            .iter()
            .map(|a| a.block)
            .collect::<HashSet<_>>()
            .len()
    }

    /// Serialises to the line format: a header, the file-size table, then
    /// one access per line (`time_ns client file block R|W`).
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "fstrace v1 clients={} files={}",
            self.clients,
            self.file_blocks.len()
        );
        let sizes: Vec<String> = self.file_blocks.iter().map(|b| b.to_string()).collect();
        let _ = writeln!(out, "sizes {}", sizes.join(" "));
        for a in &self.accesses {
            let _ = writeln!(
                out,
                "{} {} {} {} {}",
                a.time.as_nanos(),
                a.client,
                a.block.file.0,
                a.block.block,
                match a.kind {
                    AccessKind::Read => 'R',
                    AccessKind::Write => 'W',
                }
            );
        }
        out
    }

    /// Parses the format produced by [`FsTrace::to_text`].
    ///
    /// # Errors
    ///
    /// Returns a [`ParseTraceError`] describing the first malformed line.
    pub fn from_text(text: &str) -> Result<FsTrace, ParseTraceError> {
        let mut lines = text.lines();
        let header = lines
            .next()
            .ok_or_else(|| ParseTraceError::new(0, "empty input"))?;
        if !header.starts_with("fstrace v1") {
            return Err(ParseTraceError::new(1, "missing `fstrace v1` header"));
        }
        let clients: u32 = header
            .split("clients=")
            .nth(1)
            .and_then(|s| s.split_whitespace().next())
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| ParseTraceError::new(1, "bad clients field"))?;
        let sizes_line = lines
            .next()
            .ok_or_else(|| ParseTraceError::new(2, "missing sizes line"))?;
        let file_blocks: Vec<u32> = sizes_line
            .strip_prefix("sizes ")
            .ok_or_else(|| ParseTraceError::new(2, "missing `sizes` prefix"))?
            .split_whitespace()
            .map(|s| s.parse().map_err(|_| ParseTraceError::new(2, "bad size")))
            .collect::<Result<_, _>>()?;
        let mut accesses = Vec::new();
        for (i, line) in lines.enumerate() {
            let lineno = i + 3;
            let mut parts = line.split_whitespace();
            let mut next =
                |what: &'static str| parts.next().ok_or(ParseTraceError::new(lineno, what));
            let time: u64 = next("missing time")?
                .parse()
                .map_err(|_| ParseTraceError::new(lineno, "bad time"))?;
            let client: u32 = next("missing client")?
                .parse()
                .map_err(|_| ParseTraceError::new(lineno, "bad client"))?;
            let file: u32 = next("missing file")?
                .parse()
                .map_err(|_| ParseTraceError::new(lineno, "bad file"))?;
            let block: u32 = next("missing block")?
                .parse()
                .map_err(|_| ParseTraceError::new(lineno, "bad block"))?;
            let kind = match next("missing kind")? {
                "R" => AccessKind::Read,
                "W" => AccessKind::Write,
                _ => return Err(ParseTraceError::new(lineno, "kind must be R or W")),
            };
            accesses.push(FsAccess {
                time: SimTime::from_nanos(time),
                client,
                block: BlockId {
                    file: FileId(file),
                    block,
                },
                kind,
            });
        }
        Ok(FsTrace {
            accesses,
            file_blocks,
            clients,
        })
    }
}

/// Error from [`FsTrace::from_text`] and the other trace parsers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    line: usize,
    what: &'static str,
}

impl ParseTraceError {
    pub(crate) fn new(line: usize, what: &'static str) -> Self {
        ParseTraceError { line, what }
    }
}

impl std::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace parse error at line {}: {}", self.line, self.what)
    }
}

impl std::error::Error for ParseTraceError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_trace() -> FsTrace {
        FsTrace::generate(&FsTraceConfig::small(), 1)
    }

    #[test]
    fn generation_is_deterministic() {
        let a = FsTrace::generate(&FsTraceConfig::small(), 7);
        let b = FsTrace::generate(&FsTraceConfig::small(), 7);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = FsTrace::generate(&FsTraceConfig::small(), 1);
        let b = FsTrace::generate(&FsTraceConfig::small(), 2);
        assert_ne!(a.accesses, b.accesses);
    }

    #[test]
    fn accesses_are_time_sorted() {
        let t = small_trace();
        assert!(t.accesses.windows(2).all(|w| w[0].time <= w[1].time));
    }

    #[test]
    fn accesses_stay_within_horizon_and_bounds() {
        let cfg = FsTraceConfig::small();
        let t = FsTrace::generate(&cfg, 3);
        // Runs may spill a few ms past the horizon; allow 1 s slack.
        let horizon = SimTime::ZERO + cfg.duration + SimDuration::from_secs(1);
        for a in &t.accesses {
            assert!(a.time < horizon);
            assert!(a.client < cfg.clients);
            let size = t.file_blocks[a.block.file.0 as usize];
            assert!(a.block.block < size, "block index within file size");
        }
    }

    #[test]
    fn trace_is_read_dominated() {
        let t = small_trace();
        let rf = t.read_fraction();
        assert!(rf > 0.7, "read fraction {rf}");
    }

    #[test]
    fn shared_files_are_actually_shared() {
        let t = FsTrace::generate(&FsTraceConfig::small(), 5);
        let frac = t.shared_block_fraction();
        assert!(
            frac > 0.05,
            "some blocks must be touched by multiple clients, got {frac}"
        );
    }

    #[test]
    fn inactive_clients_issue_fewer_accesses() {
        let cfg = FsTraceConfig::small();
        let t = FsTrace::generate(&cfg, 9);
        let mut per_client = vec![0u32; cfg.clients as usize];
        for a in &t.accesses {
            per_client[a.client as usize] += 1;
        }
        let actives = cfg.clients as usize / 2;
        let active_sum: u32 = per_client[..actives].iter().sum();
        let idle_sum: u32 = per_client[actives..].iter().sum();
        assert!(
            active_sum > idle_sum * 3,
            "active clients ({active_sum}) should dominate idle ones ({idle_sum})"
        );
    }

    #[test]
    fn popularity_is_skewed() {
        use std::collections::HashMap;
        let t = FsTrace::generate(&FsTraceConfig::small(), 11);
        let mut per_file: HashMap<u32, u32> = HashMap::new();
        for a in &t.accesses {
            *per_file.entry(a.block.file.0).or_default() += 1;
        }
        let mut counts: Vec<u32> = per_file.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top_decile: u32 = counts[..counts.len() / 10].iter().sum();
        let total: u32 = counts.iter().sum();
        assert!(
            top_decile as f64 / total as f64 > 0.4,
            "top 10% of files should draw >40% of accesses"
        );
    }

    #[test]
    fn text_roundtrip_preserves_everything() {
        let t = small_trace();
        let text = t.to_text();
        let back = FsTrace::from_text(&text).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn parse_rejects_bad_header() {
        assert!(FsTrace::from_text("bogus\n").is_err());
        assert!(FsTrace::from_text("").is_err());
    }

    #[test]
    fn parse_rejects_bad_record() {
        let mut text = small_trace().to_text();
        text.push_str("not a record\n");
        let err = FsTrace::from_text(&text).unwrap_err();
        assert!(err.to_string().contains("parse error"));
    }

    #[test]
    fn parse_rejects_bad_kind() {
        let t = small_trace();
        let text = t.to_text().replace(" R", " Q");
        assert!(FsTrace::from_text(&text).is_err());
    }

    #[test]
    fn paper_config_produces_substantial_trace() {
        // Keep this moderately sized but structurally checked: generate one
        // hour of the paper config.
        let mut cfg = FsTraceConfig::paper_defaults();
        cfg.duration = SimDuration::from_secs(3_600);
        let t = FsTrace::generate(&cfg, 42);
        assert_eq!(t.clients, 42);
        assert!(t.len() > 5_000, "one hour of 42 clients, got {}", t.len());
        assert!(t.shared_block_fraction() > 0.03);
    }
}
