//! # now-trace — synthetic workloads standing in for the paper's traces
//!
//! Every simulation in *A Case for NOW* is driven by a trace the authors
//! collected and never released:
//!
//! | Paper trace | Module here |
//! |---|---|
//! | Two-day file-system trace of 42 Berkeley workstations (Table 3) | [`fs`] |
//! | 3,000 workstation-days of DECstation usage logs (Figure 3) | [`usage`] |
//! | One month of LANL CM-5 parallel-job logs (Figure 3) | [`lanl`] |
//! | One week of departmental NFS traffic, 230 clients (in-text) | [`nfs`] |
//!
//! Each module provides a deterministic, seeded generator whose *summary
//! statistics* match what the paper reports about the original trace (file
//! sharing and skew; ">60 percent of workstations available 100 percent of
//! the time" during the day; a 32-node production/development job mix; "95
//! percent of NFS messages under 200 bytes"). The claims the paper derives
//! from its traces are functions of exactly those statistics, so matching
//! them preserves each experiment's shape.
//!
//! Traces are ordinary `Vec`s of plain records; [`fs::FsTrace`],
//! [`usage::UsageTrace`], and [`lanl::JobTrace`] also round-trip through a
//! line-oriented text format for inspection and reuse.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fs;
pub mod lanl;
pub mod nfs;
pub mod usage;
