//! Synthetic NFS message trace, standing in for the paper's one-week trace
//! of 230 departmental NFS clients.
//!
//! The paper's finding: although file data moves in large blocks, **95
//! percent of NFS messages are under 200 bytes**, because metadata queries
//! (`getattr`, `lookup`) dominate the message count — and those queries
//! gate the data transfers behind them, coupling NFS performance to
//! round-trip time rather than bandwidth.

use now_sim::{SimRng, ZipfSampler};
use serde::{Deserialize, Serialize};

/// NFS operation categories with their typical wire sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NfsOp {
    /// Attribute query (~100-byte request and reply).
    GetAttr,
    /// Name lookup (~130 bytes).
    Lookup,
    /// Directory read fragment (~180 bytes).
    ReadDir,
    /// Small write or create (~190 bytes).
    SmallWrite,
    /// 8-KB data block read.
    ReadBlock,
    /// 8-KB data block write.
    WriteBlock,
}

impl NfsOp {
    /// Message size on the wire, bytes.
    pub fn wire_bytes(self) -> u64 {
        match self {
            NfsOp::GetAttr => 96,
            NfsOp::Lookup => 128,
            NfsOp::ReadDir => 180,
            NfsOp::SmallWrite => 190,
            NfsOp::ReadBlock => 8_192,
            NfsOp::WriteBlock => 8_192,
        }
    }

    /// True if this is a metadata operation (small message).
    pub fn is_metadata(self) -> bool {
        self.wire_bytes() < 200
    }
}

/// One NFS message in the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NfsMessage {
    /// Issuing client.
    pub client: u32,
    /// Operation.
    pub op: NfsOp,
}

/// Generator parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NfsTraceConfig {
    /// Number of clients (paper: 230).
    pub clients: u32,
    /// Total messages to generate.
    pub messages: u64,
    /// Probability weights for each op class, in the order
    /// `[GetAttr, Lookup, ReadDir, SmallWrite, ReadBlock, WriteBlock]`.
    pub op_weights: [f64; 6],
}

impl NfsTraceConfig {
    /// A mix calibrated to the paper: 95 percent of messages below 200
    /// bytes.
    pub fn paper_defaults() -> Self {
        NfsTraceConfig {
            clients: 230,
            messages: 100_000,
            op_weights: [0.40, 0.35, 0.12, 0.08, 0.04, 0.01],
        }
    }
}

/// A generated NFS message trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NfsTrace {
    /// The messages, in generation order.
    pub messages: Vec<NfsMessage>,
}

impl NfsTrace {
    /// Generates a trace. Deterministic in `(config, seed)`.
    ///
    /// # Panics
    ///
    /// Panics if the weights do not sum to a positive value or there are no
    /// clients.
    pub fn generate(config: &NfsTraceConfig, seed: u64) -> NfsTrace {
        assert!(config.clients > 0, "need clients");
        let total_w: f64 = config.op_weights.iter().sum();
        assert!(total_w > 0.0, "op weights must sum to a positive value");
        let ops = [
            NfsOp::GetAttr,
            NfsOp::Lookup,
            NfsOp::ReadDir,
            NfsOp::SmallWrite,
            NfsOp::ReadBlock,
            NfsOp::WriteBlock,
        ];
        let mut rng = SimRng::new(seed);
        // Clients are not equally chatty: Zipf over clients.
        let client_zipf = ZipfSampler::new(config.clients as usize, 0.6);
        let mut messages = Vec::with_capacity(config.messages as usize);
        for _ in 0..config.messages {
            let mut u = rng.f64() * total_w;
            let mut op = ops[ops.len() - 1];
            for (i, &w) in config.op_weights.iter().enumerate() {
                if u < w {
                    op = ops[i];
                    break;
                }
                u -= w;
            }
            messages.push(NfsMessage {
                client: client_zipf.sample(&mut rng) as u32,
                op,
            });
        }
        NfsTrace { messages }
    }

    /// Fraction of messages under 200 bytes.
    pub fn small_message_fraction(&self) -> f64 {
        if self.messages.is_empty() {
            return 0.0;
        }
        let small = self.messages.iter().filter(|m| m.op.is_metadata()).count();
        small as f64 / self.messages.len() as f64
    }

    /// Collapses the trace to `(size, count)` pairs, the input format of
    /// [`now_models::nfs`](https://docs.rs/now-models)'s improvement model.
    pub fn size_mix(&self) -> Vec<(u64, u64)> {
        use std::collections::BTreeMap;
        let mut mix: BTreeMap<u64, u64> = BTreeMap::new();
        for m in &self.messages {
            *mix.entry(m.op.wire_bytes()).or_default() += 1;
        }
        mix.into_iter().collect()
    }

    /// Total bytes across all messages.
    pub fn total_bytes(&self) -> u64 {
        self.messages.iter().map(|m| m.op.wire_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> NfsTrace {
        NfsTrace::generate(&NfsTraceConfig::paper_defaults(), 21)
    }

    #[test]
    fn generation_is_deterministic() {
        let a = NfsTrace::generate(&NfsTraceConfig::paper_defaults(), 4);
        let b = NfsTrace::generate(&NfsTraceConfig::paper_defaults(), 4);
        assert_eq!(a, b);
    }

    #[test]
    fn ninety_five_percent_of_messages_are_small() {
        let t = trace();
        let f = t.small_message_fraction();
        assert!(
            (0.93..=0.97).contains(&f),
            "small-message fraction {f}, paper says 95 percent"
        );
    }

    #[test]
    fn data_blocks_carry_most_of_the_bytes() {
        // The flip side: 5 percent of the messages carry the vast majority
        // of the bytes — which is why bandwidth alone looks (misleadingly)
        // like the thing to fix.
        let t = trace();
        let block_bytes: u64 = t
            .messages
            .iter()
            .filter(|m| !m.op.is_metadata())
            .map(|m| m.op.wire_bytes())
            .sum();
        assert!(block_bytes as f64 / t.total_bytes() as f64 > 0.6);
    }

    #[test]
    fn size_mix_accounts_for_every_message() {
        let t = trace();
        let mix = t.size_mix();
        let total: u64 = mix.iter().map(|&(_, c)| c).sum();
        assert_eq!(total as usize, t.messages.len());
        // Sizes are the distinct wire sizes.
        assert!(mix.iter().all(|&(s, _)| s == 96
            || s == 128
            || s == 180
            || s == 190
            || s == 8_192));
    }

    #[test]
    fn clients_within_range_and_skewed() {
        let t = trace();
        assert!(t.messages.iter().all(|m| m.client < 230));
        let mut counts = vec![0u32; 230];
        for m in &t.messages {
            counts[m.client as usize] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let mean = t.messages.len() as f64 / 230.0;
        assert!(max as f64 > mean * 3.0, "client skew expected");
    }

    #[test]
    fn all_op_classes_appear() {
        let t = trace();
        for op in [
            NfsOp::GetAttr,
            NfsOp::Lookup,
            NfsOp::ReadDir,
            NfsOp::SmallWrite,
            NfsOp::ReadBlock,
            NfsOp::WriteBlock,
        ] {
            assert!(
                t.messages.iter().any(|m| m.op == op),
                "{op:?} missing from trace"
            );
        }
    }

    #[test]
    fn metadata_classification_matches_sizes() {
        assert!(NfsOp::GetAttr.is_metadata());
        assert!(NfsOp::Lookup.is_metadata());
        assert!(!NfsOp::ReadBlock.is_metadata());
        assert!(!NfsOp::WriteBlock.is_metadata());
    }
}
