//! Synthetic workstation usage traces, standing in for the paper's 3,000
//! workstation-days of DECstation 5000/133 logs (the sequential side of
//! Figure 3).
//!
//! The paper's daemons logged CPU/keyboard/mouse activity every two seconds
//! for two months and found — against popular belief — that **even during
//! daytime hours more than 60 percent of workstations were available 100
//! percent of the time** (a machine is *available* after one minute with no
//! user activity or active jobs).
//!
//! The generator models each workstation as alternating between *active*
//! sessions (user at the keyboard, exponentially distributed length) and
//! *away* gaps, with a diurnal profile: most activity lands in working
//! hours, and a configurable fraction of machines see no use at all on a
//! given day (their owners are in the lab, in meetings, or gone).

use now_sim::{SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};

/// A half-open interval `[start, end)` during which the owner is using the
/// workstation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActivePeriod {
    /// Session start.
    pub start: SimTime,
    /// Session end (exclusive).
    pub end: SimTime,
}

/// One workstation's activity over the trace horizon.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineUsage {
    /// Active sessions in increasing, non-overlapping order.
    pub periods: Vec<ActivePeriod>,
}

impl MachineUsage {
    /// True if the owner is at the machine at time `t`.
    pub fn is_active(&self, t: SimTime) -> bool {
        self.periods.iter().any(|p| p.start <= t && t < p.end)
    }

    /// The next time at or after `t` when the machine changes state, or
    /// `None` if it stays in its current state forever.
    pub fn next_transition(&self, t: SimTime) -> Option<SimTime> {
        let mut best: Option<SimTime> = None;
        for p in &self.periods {
            for edge in [p.start, p.end] {
                if edge > t {
                    best = Some(best.map_or(edge, |b| b.min(edge)));
                    break;
                }
            }
        }
        best
    }

    /// Total active time within `[from, to)`.
    pub fn active_time(&self, from: SimTime, to: SimTime) -> SimDuration {
        let mut total = SimDuration::ZERO;
        for p in &self.periods {
            let s = p.start.max(from);
            let e = p.end.min(to);
            if e > s {
                total += e - s;
            }
        }
        total
    }
}

/// Generator parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UsageTraceConfig {
    /// Number of workstations (the paper's cluster had 53; Figure 3 sweeps
    /// up to 100+ by resampling weekdays).
    pub machines: u32,
    /// Trace horizon (one simulated day by default).
    pub duration: SimDuration,
    /// Fraction of machines with *no* user activity during the day —
    /// calibrated to the paper's ">60 percent available 100 percent of the
    /// time" finding.
    pub fully_idle_fraction: f64,
    /// Mean active-session length for present users.
    pub mean_session: SimDuration,
    /// Mean gap between sessions for present users (coffee, meetings).
    pub mean_gap: SimDuration,
    /// Start of the working day within the trace.
    pub day_start: SimDuration,
    /// End of the working day within the trace.
    pub day_end: SimDuration,
}

impl UsageTraceConfig {
    /// The Figure 3 configuration: one day, 9:00–18:00 working hours, 65
    /// percent of machines untouched.
    pub fn paper_defaults() -> Self {
        UsageTraceConfig {
            machines: 64,
            duration: SimDuration::from_secs(24 * 3600),
            fully_idle_fraction: 0.65,
            mean_session: SimDuration::from_secs(25 * 60),
            mean_gap: SimDuration::from_secs(20 * 60),
            day_start: SimDuration::from_secs(9 * 3600),
            day_end: SimDuration::from_secs(18 * 3600),
        }
    }
}

/// A generated usage trace for a cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UsageTrace {
    /// Per-machine activity; index is the machine id.
    pub machines: Vec<MachineUsage>,
    /// The configuration that produced the trace.
    pub config: UsageTraceConfig,
}

impl UsageTrace {
    /// Generates a usage trace. Deterministic in `(config, seed)`.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate configuration (no machines, inverted day).
    pub fn generate(config: &UsageTraceConfig, seed: u64) -> UsageTrace {
        assert!(config.machines > 0, "need at least one machine");
        assert!(
            config.day_start < config.day_end,
            "day must have positive length"
        );
        let mut rng = SimRng::new(seed);
        let mut machines = Vec::with_capacity(config.machines as usize);
        for m in 0..config.machines {
            let mut mrng = rng.fork();
            // Deterministically spread the idle machines across ids.
            let idle =
                (m as f64 + 0.5) / config.machines as f64 >= 1.0 - config.fully_idle_fraction;
            let mut periods = Vec::new();
            if !idle {
                let day_start = SimTime::ZERO + config.day_start;
                let day_end = (SimTime::ZERO + config.day_end).min(SimTime::ZERO + config.duration);
                // First arrival jitters into the morning.
                let mut t = day_start
                    + SimDuration::from_secs_f64(
                        mrng.exponential(config.mean_gap.as_secs_f64() / 2.0),
                    );
                while t < day_end {
                    let len = SimDuration::from_secs_f64(
                        mrng.exponential(config.mean_session.as_secs_f64()),
                    );
                    let end = (t + len).min(day_end);
                    if end > t {
                        periods.push(ActivePeriod { start: t, end });
                    }
                    t = end
                        + SimDuration::from_secs_f64(
                            mrng.exponential(config.mean_gap.as_secs_f64()),
                        );
                }
            }
            machines.push(MachineUsage { periods });
        }
        UsageTrace {
            machines,
            config: config.clone(),
        }
    }

    /// Fraction of machines with zero activity over the whole trace.
    pub fn fully_idle_fraction(&self) -> f64 {
        let idle = self
            .machines
            .iter()
            .filter(|m| m.periods.is_empty())
            .count();
        idle as f64 / self.machines.len() as f64
    }

    /// Fraction of machines idle at instant `t`.
    pub fn idle_fraction_at(&self, t: SimTime) -> f64 {
        let idle = self.machines.iter().filter(|m| !m.is_active(t)).count();
        idle as f64 / self.machines.len() as f64
    }

    /// Extends the cluster with `extra` dedicated, never-interactive
    /// machines — the paper's remedy for a NOW whose parallel demand
    /// outstrips its idle capacity: "an organization with a more demanding
    /// workload would simply have to extend the capacity of its NOW with
    /// additional noninteractive machines."
    pub fn with_reserves(mut self, extra: u32) -> UsageTrace {
        for _ in 0..extra {
            self.machines.push(MachineUsage {
                periods: Vec::new(),
            });
        }
        self.config.machines += extra;
        self
    }

    /// Serialises to a line format: a header, then one machine per line
    /// with `start:end` nanosecond pairs.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let c = &self.config;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "usagetrace v1 machines={} duration={} idle={} session={} gap={} day={}..{}",
            c.machines,
            c.duration.as_nanos(),
            c.fully_idle_fraction,
            c.mean_session.as_nanos(),
            c.mean_gap.as_nanos(),
            c.day_start.as_nanos(),
            c.day_end.as_nanos(),
        );
        for m in &self.machines {
            let parts: Vec<String> = m
                .periods
                .iter()
                .map(|p| format!("{}:{}", p.start.as_nanos(), p.end.as_nanos()))
                .collect();
            let _ = writeln!(out, "{}", parts.join(" "));
        }
        out
    }

    /// Parses the format produced by [`UsageTrace::to_text`].
    ///
    /// # Errors
    ///
    /// Returns a [`crate::fs::ParseTraceError`] describing the first
    /// malformed line.
    pub fn from_text(text: &str) -> Result<UsageTrace, crate::fs::ParseTraceError> {
        use crate::fs::ParseTraceError;
        let mut lines = text.lines();
        let header = lines
            .next()
            .ok_or_else(|| ParseTraceError::new(0, "empty input"))?;
        if !header.starts_with("usagetrace v1") {
            return Err(ParseTraceError::new(1, "missing `usagetrace v1` header"));
        }
        let field = |name: &str| -> Option<&str> {
            header
                .split(&format!("{name}="))
                .nth(1)
                .and_then(|s| s.split_whitespace().next())
        };
        let parse_u64 = |name: &'static str| -> Result<u64, ParseTraceError> {
            field(name)
                .and_then(|v| v.split("..").next())
                .and_then(|v| v.parse().ok())
                .ok_or(ParseTraceError::new(1, "bad header field"))
        };
        let machines_n: u64 = parse_u64("machines")?;
        let duration = SimDuration::from_nanos(parse_u64("duration")?);
        let idle: f64 = field("idle")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| ParseTraceError::new(1, "bad idle field"))?;
        let session = SimDuration::from_nanos(parse_u64("session")?);
        let gap = SimDuration::from_nanos(parse_u64("gap")?);
        let day = field("day").ok_or_else(|| ParseTraceError::new(1, "bad day field"))?;
        let (ds, de) = day
            .split_once("..")
            .ok_or_else(|| ParseTraceError::new(1, "bad day range"))?;
        let day_start = SimDuration::from_nanos(
            ds.parse()
                .map_err(|_| ParseTraceError::new(1, "bad day start"))?,
        );
        let day_end = SimDuration::from_nanos(
            de.parse()
                .map_err(|_| ParseTraceError::new(1, "bad day end"))?,
        );
        let mut machines = Vec::new();
        for (i, line) in lines.enumerate() {
            let lineno = i + 2;
            let mut periods = Vec::new();
            for pair in line.split_whitespace() {
                let (a, b) = pair
                    .split_once(':')
                    .ok_or(ParseTraceError::new(lineno, "missing colon in period"))?;
                let start = SimTime::from_nanos(
                    a.parse()
                        .map_err(|_| ParseTraceError::new(lineno, "bad start"))?,
                );
                let end = SimTime::from_nanos(
                    b.parse()
                        .map_err(|_| ParseTraceError::new(lineno, "bad end"))?,
                );
                periods.push(ActivePeriod { start, end });
            }
            machines.push(MachineUsage { periods });
        }
        if machines.len() as u64 != machines_n {
            return Err(ParseTraceError::new(1, "machine count mismatch"));
        }
        Ok(UsageTrace {
            machines,
            config: UsageTraceConfig {
                machines: machines_n as u32,
                duration,
                fully_idle_fraction: idle,
                mean_session: session,
                mean_gap: gap,
                day_start,
                day_end,
            },
        })
    }

    /// Mean idle fraction sampled each minute across the working day — the
    /// statistic behind the paper's "available even at the busiest times"
    /// claim.
    pub fn mean_daytime_idle_fraction(&self) -> f64 {
        let start = SimTime::ZERO + self.config.day_start;
        let end = SimTime::ZERO + self.config.day_end;
        let mut sum = 0.0;
        let mut n = 0;
        let mut t = start;
        while t < end {
            sum += self.idle_fraction_at(t);
            n += 1;
            t += SimDuration::from_secs(60);
        }
        if n == 0 {
            1.0
        } else {
            sum / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> UsageTrace {
        UsageTrace::generate(&UsageTraceConfig::paper_defaults(), 17)
    }

    #[test]
    fn generation_is_deterministic() {
        let a = UsageTrace::generate(&UsageTraceConfig::paper_defaults(), 5);
        let b = UsageTrace::generate(&UsageTraceConfig::paper_defaults(), 5);
        assert_eq!(a, b);
    }

    #[test]
    fn more_than_60_percent_fully_available() {
        // The paper's headline availability finding.
        let t = trace();
        assert!(
            t.fully_idle_fraction() >= 0.6,
            "got {}",
            t.fully_idle_fraction()
        );
    }

    #[test]
    fn daytime_idle_fraction_is_high_but_not_total() {
        let t = trace();
        let f = t.mean_daytime_idle_fraction();
        assert!(f > 0.6 && f < 1.0, "mean daytime idle {f}");
    }

    #[test]
    fn periods_are_ordered_and_disjoint() {
        let t = trace();
        for m in &t.machines {
            for w in m.periods.windows(2) {
                assert!(w[0].end <= w[1].start, "periods overlap or disorder");
            }
            for p in &m.periods {
                assert!(p.start < p.end, "empty period");
            }
        }
    }

    #[test]
    fn activity_confined_to_working_hours() {
        let t = trace();
        let cfg = &t.config;
        for m in &t.machines {
            for p in &m.periods {
                assert!(p.start >= SimTime::ZERO + cfg.day_start);
                assert!(p.end <= SimTime::ZERO + cfg.day_end);
            }
        }
    }

    #[test]
    fn is_active_matches_periods() {
        let t = trace();
        let busy = t
            .machines
            .iter()
            .find(|m| !m.periods.is_empty())
            .expect("some machine is busy");
        let p = busy.periods[0];
        assert!(busy.is_active(p.start));
        assert!(!busy.is_active(p.end)); // half-open
        let mid = p.start + (p.end - p.start) / 2;
        assert!(busy.is_active(mid));
    }

    #[test]
    fn next_transition_finds_edges() {
        let t = trace();
        let busy = t.machines.iter().find(|m| !m.periods.is_empty()).unwrap();
        let p = busy.periods[0];
        let before = p.start - SimDuration::from_secs(1);
        assert_eq!(busy.next_transition(before), Some(p.start));
        assert_eq!(busy.next_transition(p.start), Some(p.end));
        let after_all = busy.periods.last().unwrap().end;
        assert_eq!(busy.next_transition(after_all), None);
    }

    #[test]
    fn active_time_integrates_overlap_only() {
        let m = MachineUsage {
            periods: vec![
                ActivePeriod {
                    start: SimTime::from_secs(10),
                    end: SimTime::from_secs(20),
                },
                ActivePeriod {
                    start: SimTime::from_secs(30),
                    end: SimTime::from_secs(40),
                },
            ],
        };
        assert_eq!(
            m.active_time(SimTime::ZERO, SimTime::from_secs(100)),
            SimDuration::from_secs(20)
        );
        assert_eq!(
            m.active_time(SimTime::from_secs(15), SimTime::from_secs(35)),
            SimDuration::from_secs(10)
        );
        assert_eq!(
            m.active_time(SimTime::from_secs(20), SimTime::from_secs(30)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn idle_fraction_at_night_is_one() {
        let t = trace();
        assert_eq!(t.idle_fraction_at(SimTime::from_secs(3 * 3600)), 1.0);
    }

    #[test]
    fn text_roundtrip_preserves_everything() {
        let t = trace();
        let back = UsageTrace::from_text(&t.to_text()).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(UsageTrace::from_text("").is_err());
        assert!(UsageTrace::from_text("nope\n").is_err());
        let mut text = trace().to_text();
        text.push_str("1:2:3\n");
        assert!(UsageTrace::from_text(&text).is_err());
    }

    #[test]
    fn reserves_are_permanently_idle() {
        let t = trace().with_reserves(16);
        assert_eq!(t.machines.len(), 80);
        assert_eq!(t.config.machines, 80);
        for m in &t.machines[64..] {
            assert!(m.periods.is_empty());
        }
        assert!(t.fully_idle_fraction() > trace().fully_idle_fraction());
    }

    #[test]
    fn busy_machines_do_have_sessions() {
        let t = trace();
        let busy_count = t.machines.iter().filter(|m| !m.periods.is_empty()).count();
        assert!(busy_count >= 15, "got {busy_count} busy machines out of 64");
    }
}
