//! The software RAID array: real bytes on simulated disks.

use std::collections::HashMap;

use bytes::Bytes;
use now_mem::DiskModel;
use now_sim::SimDuration;
use serde::{Deserialize, Serialize};

use crate::layout::Raid5Layout;

/// Redundancy scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RaidLevel {
    /// Striping only: capacity and bandwidth, no redundancy.
    Raid0,
    /// Mirroring: every block on two disks.
    Raid1,
    /// Rotated parity: one disk's worth of XOR parity per stripe.
    Raid5,
}

/// Array configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RaidConfig {
    /// Redundancy scheme.
    pub level: RaidLevel,
    /// Number of workstation disks in the array.
    pub disks: u32,
    /// Block (stripe-unit) size in bytes.
    pub block_bytes: usize,
}

/// Errors from array operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RaidError {
    /// The data is unrecoverable (too many failed disks for the level).
    DataLost,
    /// The block was never written.
    NotWritten,
    /// A write supplied the wrong number of bytes.
    WrongBlockSize {
        /// Bytes expected per block.
        expected: usize,
        /// Bytes supplied.
        got: usize,
    },
    /// The named disk does not exist.
    NoSuchDisk,
    /// The disk to reconstruct is still marked healthy.
    DiskNotFailed,
}

impl std::fmt::Display for RaidError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RaidError::DataLost => write!(f, "data unrecoverable with current failures"),
            RaidError::NotWritten => write!(f, "block was never written"),
            RaidError::WrongBlockSize { expected, got } => {
                write!(f, "block must be {expected} bytes, got {got}")
            }
            RaidError::NoSuchDisk => write!(f, "disk index out of range"),
            RaidError::DiskNotFailed => write!(f, "disk is not failed"),
        }
    }
}

impl std::error::Error for RaidError {}

/// Operation counters and accumulated service time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RaidStats {
    /// Logical reads served.
    pub reads: u64,
    /// Logical writes served.
    pub writes: u64,
    /// Reads served in degraded mode (reconstructed from parity).
    pub degraded_reads: u64,
    /// Physical disk operations issued.
    pub disk_ops: u64,
    /// Total service time charged.
    pub time: SimDuration,
}

#[derive(Debug, Clone, Default)]
struct SimDisk {
    blocks: HashMap<u64, Bytes>,
    failed: bool,
}

/// A software RAID over workstation disks.
///
/// All data is real: reads return exactly the bytes written, parity is
/// maintained by XOR, and reconstruction rebuilds a failed disk's contents
/// from its peers. Timing is charged per physical disk operation using
/// [`DiskModel::workstation_1994`] semantics (parallel accesses across
/// disks take the max; dependent phases add).
#[derive(Debug, Clone)]
pub struct SoftwareRaid {
    config: RaidConfig,
    layout: Option<Raid5Layout>, // Some for Raid5
    disks: Vec<SimDisk>,
    model: DiskModel,
    stats: RaidStats,
    /// Logical blocks ever written — distinguishes "never written" from
    /// "written as all zeroes" during degraded reads and reconstruction.
    written: std::collections::HashSet<u64>,
}

impl SoftwareRaid {
    /// Creates an array.
    ///
    /// # Panics
    ///
    /// Panics if the disk count is too small for the level (RAID-0 needs 1,
    /// RAID-1 needs 2, RAID-5 needs 3) or the block size is zero.
    pub fn new(config: RaidConfig) -> Self {
        assert!(config.block_bytes > 0, "blocks must have a size");
        let min = match config.level {
            RaidLevel::Raid0 => 1,
            RaidLevel::Raid1 => 2,
            RaidLevel::Raid5 => 3,
        };
        assert!(
            config.disks >= min,
            "{:?} needs at least {min} disks, got {}",
            config.level,
            config.disks
        );
        SoftwareRaid {
            config,
            layout: (config.level == RaidLevel::Raid5).then(|| Raid5Layout::new(config.disks)),
            disks: (0..config.disks).map(|_| SimDisk::default()).collect(),
            model: DiskModel::workstation_1994(),
            stats: RaidStats::default(),
            written: Default::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> RaidConfig {
        self.config
    }

    /// Counters so far.
    pub fn stats(&self) -> RaidStats {
        self.stats
    }

    /// Number of currently failed disks.
    pub fn failed_disks(&self) -> u32 {
        self.disks.iter().filter(|d| d.failed).count() as u32
    }

    /// The disk that holds logical block `logical`'s primary copy.
    pub fn disk_of(&self, logical: u64) -> u32 {
        match self.config.level {
            RaidLevel::Raid0 => (logical % u64::from(self.config.disks)) as u32,
            RaidLevel::Raid1 => (logical % u64::from(self.config.disks / 2 * 2) / 2 * 2) as u32,
            RaidLevel::Raid5 => {
                self.layout
                    .expect("raid5 has layout")
                    .locate(logical)
                    .data_disk
            }
        }
    }

    fn check_size(&self, data: &[u8]) -> Result<(), RaidError> {
        if data.len() != self.config.block_bytes {
            return Err(RaidError::WrongBlockSize {
                expected: self.config.block_bytes,
                got: data.len(),
            });
        }
        Ok(())
    }

    fn one_op(&mut self) -> SimDuration {
        self.stats.disk_ops += 1;
        self.model.random_access(self.config.block_bytes as u64)
    }

    fn parallel_ops(&mut self, n: u64) -> SimDuration {
        // n accesses on distinct disks proceed in parallel: the phase takes
        // one access time; all are counted.
        self.stats.disk_ops += n;
        if n == 0 {
            SimDuration::ZERO
        } else {
            self.model.random_access(self.config.block_bytes as u64)
        }
    }

    /// Writes one block. Returns the service time.
    ///
    /// # Errors
    ///
    /// [`RaidError::WrongBlockSize`] for a missized buffer;
    /// [`RaidError::DataLost`] when failures exceed the level's tolerance.
    pub fn write(&mut self, logical: u64, data: &[u8]) -> Result<SimDuration, RaidError> {
        self.check_size(data)?;
        self.stats.writes += 1;
        self.written.insert(logical);
        let data = Bytes::copy_from_slice(data);
        let time = match self.config.level {
            RaidLevel::Raid0 => {
                let disk = self.disk_of(logical) as usize;
                if self.disks[disk].failed {
                    return Err(RaidError::DataLost);
                }
                self.disks[disk].blocks.insert(logical, data);
                self.one_op()
            }
            RaidLevel::Raid1 => {
                let primary = self.disk_of(logical) as usize;
                let mirror = primary + 1;
                if self.disks[primary].failed && self.disks[mirror].failed {
                    return Err(RaidError::DataLost);
                }
                let mut writes = 0;
                if !self.disks[primary].failed {
                    self.disks[primary].blocks.insert(logical, data.clone());
                    writes += 1;
                }
                if !self.disks[mirror].failed {
                    self.disks[mirror].blocks.insert(logical, data);
                    writes += 1;
                }
                self.parallel_ops(writes)
            }
            RaidLevel::Raid5 => self.write_raid5(logical, data)?,
        };
        self.stats.time += time;
        Ok(time)
    }

    /// RAID-5 small write: read-modify-write of data and parity.
    fn write_raid5(&mut self, logical: u64, data: Bytes) -> Result<SimDuration, RaidError> {
        let layout = self.layout.expect("raid5 has layout");
        let loc = layout.locate(logical);
        let data_failed = self.disks[loc.data_disk as usize].failed;
        let parity_failed = self.disks[loc.parity_disk as usize].failed;
        if data_failed && parity_failed {
            return Err(RaidError::DataLost);
        }

        // New parity = old parity XOR old data XOR new data. When either
        // old value is unavailable (failed disk or never written) we
        // recompute parity from the whole stripe instead.
        let old_data = self.disks[loc.data_disk as usize]
            .blocks
            .get(&logical)
            .cloned();
        let time = if !data_failed && !parity_failed {
            let old_parity = self.parity_block(loc.stripe);
            // Whenever old parity exists, update it by XOR delta — never by
            // re-reading stripe mates, which may sit on a failed disk and
            // whose reconstructed values are encoded in the parity itself.
            // An empty slot contributes zeroes, so its delta is just the
            // new data.
            let new_parity = match (old_data, old_parity) {
                (Some(od), Some(op)) => {
                    let mut p = op.to_vec();
                    xor_into(&mut p, &od);
                    xor_into(&mut p, &data);
                    Bytes::from(p)
                }
                (None, Some(op)) => {
                    let mut p = op.to_vec();
                    xor_into(&mut p, &data);
                    Bytes::from(p)
                }
                // No parity yet: first activity in this stripe (or parity
                // lost to an earlier failure) — rebuild it from the mates.
                (_, None) => self.recompute_parity(loc.stripe, logical, &data),
            };
            self.disks[loc.data_disk as usize]
                .blocks
                .insert(logical, data);
            self.set_parity(loc.stripe, new_parity);
            // Read old data + old parity in parallel, then write data +
            // parity in parallel: two dependent phases.
            self.parallel_ops(2) + self.parallel_ops(2)
        } else if parity_failed {
            // Parity disk down: just write the data.
            self.disks[loc.data_disk as usize]
                .blocks
                .insert(logical, data);
            self.one_op()
        } else {
            // Data disk down: fold the new data into parity so a degraded
            // read reconstructs it. parity = XOR of all *other* live data
            // blocks XOR new data.
            let new_parity = self.recompute_parity(loc.stripe, logical, &data);
            self.set_parity(loc.stripe, new_parity);
            // Read the stripe mates, then write parity.
            let mates = u64::from(layout.data_per_stripe()) - 1;
            self.parallel_ops(mates) + self.one_op()
        };
        Ok(time)
    }

    /// XOR of every written data block in the stripe except `skip`, plus
    /// `with` — i.e. the parity after `skip` takes the value `with`.
    fn recompute_parity(&self, stripe: u64, skip: u64, with: &[u8]) -> Bytes {
        let layout = self.layout.expect("raid5 has layout");
        let mut parity = with.to_vec();
        for mate in layout.stripe_mates(skip) {
            if mate == skip {
                continue;
            }
            let loc = layout.locate(mate);
            if let Some(block) = self.disks[loc.data_disk as usize].blocks.get(&mate) {
                xor_into(&mut parity, block);
            }
        }
        let _ = stripe;
        Bytes::from(parity)
    }

    fn parity_key(stripe: u64) -> u64 {
        // Parity blocks live in the same per-disk maps under a disjoint key
        // space (top bit set).
        stripe | (1 << 63)
    }

    fn parity_block(&self, stripe: u64) -> Option<Bytes> {
        let layout = self.layout.expect("raid5 has layout");
        let disk = layout.parity_disk(stripe) as usize;
        self.disks[disk]
            .blocks
            .get(&Self::parity_key(stripe))
            .cloned()
    }

    fn set_parity(&mut self, stripe: u64, parity: Bytes) {
        let layout = self.layout.expect("raid5 has layout");
        let disk = layout.parity_disk(stripe) as usize;
        if !self.disks[disk].failed {
            self.disks[disk]
                .blocks
                .insert(Self::parity_key(stripe), parity);
        }
    }

    /// Writes one *full stripe* of fresh data blocks in a single parallel
    /// phase: parity is computed in memory over the new data and every
    /// disk receives exactly one write — the log-structured fast path that
    /// sidesteps the RAID-5 small-write problem.
    ///
    /// `first_logical` must be stripe-aligned and `blocks` must supply
    /// exactly one stripe's worth of data (`disks - 1` blocks for RAID-5).
    /// For RAID-0/1 this degrades to per-block writes.
    ///
    /// # Errors
    ///
    /// [`RaidError::WrongBlockSize`] if any buffer is missized;
    /// [`RaidError::DataLost`] if a needed disk is failed (the caller
    /// should fall back to per-block writes in degraded mode).
    ///
    /// # Panics
    ///
    /// Panics if `first_logical` is not stripe-aligned or `blocks` is not
    /// exactly one stripe.
    pub fn write_full_stripe(
        &mut self,
        first_logical: u64,
        blocks: &[&[u8]],
    ) -> Result<SimDuration, RaidError> {
        let Some(layout) = self.layout else {
            // Not RAID-5: no parity to batch; write each block.
            let mut time = SimDuration::ZERO;
            for (i, data) in blocks.iter().enumerate() {
                time += self.write(first_logical + i as u64, data)?;
            }
            return Ok(time);
        };
        let per = u64::from(layout.data_per_stripe());
        assert!(
            first_logical.is_multiple_of(per),
            "full-stripe writes must be stripe-aligned"
        );
        assert_eq!(
            blocks.len() as u64,
            per,
            "a full stripe needs exactly {per} data blocks"
        );
        for data in blocks {
            self.check_size(data)?;
        }
        let stripe = first_logical / per;
        // All target disks (data slots + parity) must be healthy; degraded
        // stripes take the slow path.
        let parity_disk = layout.parity_disk(stripe);
        if self.disks[parity_disk as usize].failed {
            return Err(RaidError::DataLost);
        }
        for i in 0..per {
            let loc = layout.locate(first_logical + i);
            if self.disks[loc.data_disk as usize].failed {
                return Err(RaidError::DataLost);
            }
        }
        // Parity over the new data only (the slots are fresh or fully
        // superseded by this stripe).
        let mut parity = vec![0u8; self.config.block_bytes];
        for (i, data) in blocks.iter().enumerate() {
            let logical = first_logical + i as u64;
            xor_into(&mut parity, data);
            let loc = layout.locate(logical);
            self.disks[loc.data_disk as usize]
                .blocks
                .insert(logical, Bytes::copy_from_slice(data));
            self.written.insert(logical);
            self.stats.writes += 1;
        }
        self.set_parity(stripe, Bytes::from(parity));
        // One parallel phase across all `disks` spindles.
        let time = self.parallel_ops(u64::from(self.config.disks));
        self.stats.time += time;
        Ok(time)
    }

    /// Reads one block. Returns the bytes and the service time.
    ///
    /// # Errors
    ///
    /// [`RaidError::NotWritten`] if the block has never been written;
    /// [`RaidError::DataLost`] when failures exceed the level's tolerance.
    pub fn read(&mut self, logical: u64) -> Result<(Bytes, SimDuration), RaidError> {
        self.stats.reads += 1;
        let result = match self.config.level {
            RaidLevel::Raid0 => {
                let disk = self.disk_of(logical) as usize;
                if self.disks[disk].failed {
                    return Err(RaidError::DataLost);
                }
                let data = self.disks[disk]
                    .blocks
                    .get(&logical)
                    .cloned()
                    .ok_or(RaidError::NotWritten)?;
                (data, self.one_op())
            }
            RaidLevel::Raid1 => {
                let primary = self.disk_of(logical) as usize;
                let mirror = primary + 1;
                let disk = if !self.disks[primary].failed {
                    primary
                } else if !self.disks[mirror].failed {
                    mirror
                } else {
                    return Err(RaidError::DataLost);
                };
                let data = self.disks[disk]
                    .blocks
                    .get(&logical)
                    .cloned()
                    .ok_or(RaidError::NotWritten)?;
                (data, self.one_op())
            }
            RaidLevel::Raid5 => {
                let layout = self.layout.expect("raid5 has layout");
                let loc = layout.locate(logical);
                if !self.disks[loc.data_disk as usize].failed {
                    let data = self.disks[loc.data_disk as usize]
                        .blocks
                        .get(&logical)
                        .cloned()
                        .ok_or(RaidError::NotWritten)?;
                    (data, self.one_op())
                } else {
                    // Degraded: XOR parity with the surviving stripe mates.
                    if !self.written.contains(&logical) {
                        return Err(RaidError::NotWritten);
                    }
                    if self.failed_disks() > 1 {
                        return Err(RaidError::DataLost);
                    }
                    self.stats.degraded_reads += 1;
                    let parity = self.parity_block(loc.stripe).ok_or(RaidError::NotWritten)?;
                    let mut acc = parity.to_vec();
                    let mut written_mates = 0;
                    for mate in layout.stripe_mates(logical) {
                        if mate == logical {
                            continue;
                        }
                        let mloc = layout.locate(mate);
                        if let Some(block) = self.disks[mloc.data_disk as usize].blocks.get(&mate) {
                            xor_into(&mut acc, block);
                            written_mates += 1;
                        }
                    }
                    let time = self.parallel_ops(written_mates + 1);
                    (Bytes::from(acc), time)
                }
            }
        };
        self.stats.time += result.1;
        Ok(result)
    }

    /// Marks a disk as failed (a workstation crashed or left the NOW).
    ///
    /// # Panics
    ///
    /// Panics if the disk index is out of range.
    pub fn fail_disk(&mut self, disk: u32) {
        assert!((disk as usize) < self.disks.len(), "disk out of range");
        self.disks[disk as usize].failed = true;
        self.disks[disk as usize].blocks.clear(); // contents are gone
    }

    /// Rebuilds a failed disk's contents from the survivors onto a
    /// replacement, returning the reconstruction time.
    ///
    /// # Errors
    ///
    /// [`RaidError::DiskNotFailed`] if the disk is healthy;
    /// [`RaidError::DataLost`] if the level cannot reconstruct.
    pub fn reconstruct(&mut self, disk: u32) -> Result<SimDuration, RaidError> {
        if disk as usize >= self.disks.len() {
            return Err(RaidError::NoSuchDisk);
        }
        if !self.disks[disk as usize].failed {
            return Err(RaidError::DiskNotFailed);
        }
        match self.config.level {
            RaidLevel::Raid0 => Err(RaidError::DataLost),
            RaidLevel::Raid1 => {
                let partner = if disk.is_multiple_of(2) {
                    disk + 1
                } else {
                    disk - 1
                };
                if self.disks[partner as usize].failed {
                    return Err(RaidError::DataLost);
                }
                let copied: Vec<(u64, Bytes)> = self.disks[partner as usize]
                    .blocks
                    .iter()
                    .map(|(&k, v)| (k, v.clone()))
                    .collect();
                let n = copied.len() as u64;
                self.disks[disk as usize].failed = false;
                self.disks[disk as usize].blocks = copied.into_iter().collect();
                let time = self
                    .model
                    .sequential_per_block(self.config.block_bytes as u64, n.max(1))
                    * n;
                self.stats.disk_ops += 2 * n;
                self.stats.time += time;
                Ok(time)
            }
            RaidLevel::Raid5 => {
                if self.failed_disks() > 1 {
                    return Err(RaidError::DataLost);
                }
                let layout = self.layout.expect("raid5 has layout");
                self.disks[disk as usize].failed = false;
                // Rebuild every data block that maps to this disk, and every
                // parity block it should hold, from the survivors.
                let mut rebuilt: Vec<(u64, Bytes)> = Vec::new();
                // Find all stripes that have any content.
                let mut stripes: std::collections::BTreeSet<u64> = Default::default();
                for d in &self.disks {
                    for &key in d.blocks.keys() {
                        let stripe = if key >> 63 == 1 {
                            key & !(1 << 63)
                        } else {
                            key / u64::from(layout.data_per_stripe())
                        };
                        stripes.insert(stripe);
                    }
                }
                for &stripe in &stripes {
                    let per = u64::from(layout.data_per_stripe());
                    // Data blocks on the rebuilt disk.
                    for logical in stripe * per..(stripe + 1) * per {
                        let loc = layout.locate(logical);
                        if loc.data_disk != disk || !self.written.contains(&logical) {
                            continue;
                        }
                        if let Some(parity) = self.parity_block(stripe) {
                            let mut acc = parity.to_vec();
                            for mate in layout.stripe_mates(logical) {
                                if mate == logical {
                                    continue;
                                }
                                let mloc = layout.locate(mate);
                                if let Some(b) =
                                    self.disks[mloc.data_disk as usize].blocks.get(&mate)
                                {
                                    xor_into(&mut acc, b);
                                }
                            }
                            rebuilt.push((logical, Bytes::from(acc)));
                        }
                    }
                    // Parity block on the rebuilt disk.
                    if layout.parity_disk(stripe) == disk {
                        let mut acc = vec![0u8; self.config.block_bytes];
                        let mut any = false;
                        for logical in stripe * per..(stripe + 1) * per {
                            let loc = layout.locate(logical);
                            if let Some(b) = self.disks[loc.data_disk as usize].blocks.get(&logical)
                            {
                                xor_into(&mut acc, b);
                                any = true;
                            }
                        }
                        if any {
                            rebuilt.push((Self::parity_key(stripe), Bytes::from(acc)));
                        }
                    }
                }
                let n = rebuilt.len() as u64;
                for (k, v) in rebuilt {
                    self.disks[disk as usize].blocks.insert(k, v);
                }
                // Reconstruction streams all survivors in parallel and
                // writes the replacement: bounded by one disk's sequential
                // rate over the rebuilt volume.
                let time = self
                    .model
                    .sequential_per_block(self.config.block_bytes as u64, n.max(1))
                    * n;
                self.stats.disk_ops += n * u64::from(self.config.disks);
                self.stats.time += time;
                Ok(time)
            }
        }
    }

    /// Aggregate sequential read bandwidth of the array in MB/s, at the
    /// paper's 80-percent parallel-file-system efficiency.
    pub fn aggregate_bandwidth_mb_s(&self) -> f64 {
        let data_disks = match self.config.level {
            RaidLevel::Raid0 => u64::from(self.config.disks),
            RaidLevel::Raid1 => u64::from(self.config.disks) / 2,
            RaidLevel::Raid5 => u64::from(self.config.disks) - 1,
        };
        data_disks as f64 * self.model.sequential_mb_s() * 0.8
    }
}

/// XORs `src` into `dst` element-wise.
///
/// # Panics
///
/// Panics if the lengths differ (all blocks in an array share a size).
fn xor_into(dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "mismatched block sizes in XOR");
    for (d, s) in dst.iter_mut().zip(src) {
        *d ^= s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(fill: u8, size: usize) -> Vec<u8> {
        (0..size).map(|i| fill ^ (i as u8)).collect()
    }

    fn raid5(disks: u32) -> SoftwareRaid {
        SoftwareRaid::new(RaidConfig {
            level: RaidLevel::Raid5,
            disks,
            block_bytes: 256,
        })
    }

    #[test]
    fn write_read_roundtrip_all_levels() {
        for level in [RaidLevel::Raid0, RaidLevel::Raid1, RaidLevel::Raid5] {
            let mut r = SoftwareRaid::new(RaidConfig {
                level,
                disks: 4,
                block_bytes: 128,
            });
            for i in 0..20 {
                r.write(i, &block(i as u8, 128)).unwrap();
            }
            for i in 0..20 {
                let (data, _) = r.read(i).unwrap();
                assert_eq!(&data[..], &block(i as u8, 128)[..], "{level:?} block {i}");
            }
        }
    }

    #[test]
    fn raid5_survives_any_single_disk_failure() {
        for victim in 0..5 {
            let mut r = raid5(5);
            for i in 0..40 {
                r.write(i, &block(i as u8, 256)).unwrap();
            }
            r.fail_disk(victim);
            for i in 0..40 {
                let (data, _) = r.read(i).unwrap();
                assert_eq!(
                    &data[..],
                    &block(i as u8, 256)[..],
                    "victim {victim}, block {i}"
                );
            }
            assert!(r.stats().degraded_reads > 0);
        }
    }

    #[test]
    fn raid5_two_failures_lose_data() {
        let mut r = raid5(5);
        for i in 0..10 {
            r.write(i, &block(7, 256)).unwrap();
        }
        r.fail_disk(0);
        r.fail_disk(1);
        let lost = (0..10).any(|i| r.read(i) == Err(RaidError::DataLost));
        assert!(lost, "double failure must lose something");
    }

    #[test]
    fn raid0_failure_loses_data_immediately() {
        let mut r = SoftwareRaid::new(RaidConfig {
            level: RaidLevel::Raid0,
            disks: 4,
            block_bytes: 64,
        });
        r.write(0, &block(1, 64)).unwrap();
        r.fail_disk(r.disk_of(0));
        assert_eq!(r.read(0), Err(RaidError::DataLost));
    }

    #[test]
    fn raid1_reads_from_mirror_after_failure() {
        let mut r = SoftwareRaid::new(RaidConfig {
            level: RaidLevel::Raid1,
            disks: 4,
            block_bytes: 64,
        });
        for i in 0..8 {
            r.write(i, &block(i as u8, 64)).unwrap();
        }
        r.fail_disk(0); // primaries of blocks on pair (0,1)
        for i in 0..8 {
            assert_eq!(&r.read(i).unwrap().0[..], &block(i as u8, 64)[..]);
        }
    }

    #[test]
    fn reconstruction_restores_exact_contents() {
        let mut r = raid5(4);
        for i in 0..30 {
            r.write(i, &block(i as u8, 256)).unwrap();
        }
        r.fail_disk(2);
        let time = r.reconstruct(2).unwrap();
        assert!(time > SimDuration::ZERO);
        assert_eq!(r.failed_disks(), 0);
        // All reads now non-degraded and exact.
        let before = r.stats().degraded_reads;
        for i in 0..30 {
            assert_eq!(&r.read(i).unwrap().0[..], &block(i as u8, 256)[..]);
        }
        assert_eq!(
            r.stats().degraded_reads,
            before,
            "no degraded reads after rebuild"
        );
    }

    #[test]
    fn reconstruct_healthy_disk_is_an_error() {
        let mut r = raid5(4);
        assert_eq!(r.reconstruct(1), Err(RaidError::DiskNotFailed));
        assert_eq!(r.reconstruct(9), Err(RaidError::NoSuchDisk));
    }

    #[test]
    fn writes_during_degraded_mode_survive_reconstruction() {
        let mut r = raid5(4);
        for i in 0..12 {
            r.write(i, &block(i as u8, 256)).unwrap();
        }
        r.fail_disk(1);
        // Overwrite some blocks while degraded — including ones whose data
        // disk is the failed one.
        for i in 0..12 {
            r.write(i, &block(i as u8 ^ 0xFF, 256)).unwrap();
        }
        for i in 0..12 {
            assert_eq!(
                &r.read(i).unwrap().0[..],
                &block(i as u8 ^ 0xFF, 256)[..],
                "degraded read {i}"
            );
        }
        r.reconstruct(1).unwrap();
        for i in 0..12 {
            assert_eq!(
                &r.read(i).unwrap().0[..],
                &block(i as u8 ^ 0xFF, 256)[..],
                "post-rebuild read {i}"
            );
        }
    }

    #[test]
    fn small_write_costs_four_ops_on_raid5() {
        let mut r = raid5(4);
        r.write(0, &block(1, 256)).unwrap();
        let ops_before = r.stats().disk_ops;
        r.write(0, &block(2, 256)).unwrap();
        // Read-modify-write: 2 reads + 2 writes.
        assert_eq!(r.stats().disk_ops - ops_before, 4);
    }

    #[test]
    fn wrong_block_size_is_rejected() {
        let mut r = raid5(4);
        assert_eq!(
            r.write(0, &[0u8; 10]),
            Err(RaidError::WrongBlockSize {
                expected: 256,
                got: 10
            })
        );
    }

    #[test]
    fn unwritten_block_reports_not_written() {
        let mut r = raid5(4);
        assert_eq!(r.read(5).map(|_| ()), Err(RaidError::NotWritten));
    }

    #[test]
    fn aggregate_bandwidth_scales_with_disks() {
        let small = raid5(4).aggregate_bandwidth_mb_s();
        let big = raid5(16).aggregate_bandwidth_mb_s();
        assert!((big / small - 5.0).abs() < 0.01, "15/3 data disks = 5x");
        // Paper's Gator row: 256 disks at 2 MB/s with 80% efficiency ≈ 410
        // MB/s; our disks are 6.5 MB/s so scale accordingly.
        let gator_like = SoftwareRaid::new(RaidConfig {
            level: RaidLevel::Raid0,
            disks: 256,
            block_bytes: 8_192,
        });
        let bw = gator_like.aggregate_bandwidth_mb_s();
        assert!((bw - 256.0 * 6.5 * 0.8).abs() < 1.0);
    }

    #[test]
    fn full_stripe_write_costs_one_op_per_disk() {
        let mut r = raid5(5); // 4 data + 1 parity per stripe
        let data: Vec<Vec<u8>> = (0..4).map(|i| block(i, 256)).collect();
        let views: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        r.write_full_stripe(0, &views).unwrap();
        assert_eq!(r.stats().disk_ops, 5, "one op per spindle");
        for (i, d) in data.iter().enumerate() {
            assert_eq!(&r.read(i as u64).unwrap().0[..], &d[..]);
        }
    }

    #[test]
    fn full_stripe_write_survives_a_failure() {
        let mut r = raid5(4);
        let data: Vec<Vec<u8>> = (0..3).map(|i| block(0x40 | i, 256)).collect();
        let views: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        r.write_full_stripe(3, &views).unwrap(); // stripe 1 (aligned: 3 % 3 == 0)
        r.fail_disk(1);
        for (i, d) in data.iter().enumerate() {
            assert_eq!(&r.read(3 + i as u64).unwrap().0[..], &d[..], "block {i}");
        }
    }

    #[test]
    fn full_stripe_rejects_degraded_arrays() {
        let mut r = raid5(4);
        r.fail_disk(2);
        let data: Vec<Vec<u8>> = (0..3).map(|i| block(i, 256)).collect();
        let views: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        assert_eq!(r.write_full_stripe(0, &views), Err(RaidError::DataLost));
    }

    #[test]
    #[should_panic(expected = "stripe-aligned")]
    fn full_stripe_requires_alignment() {
        let mut r = raid5(4);
        let data: Vec<Vec<u8>> = (0..3).map(|i| block(i, 256)).collect();
        let views: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let _ = r.write_full_stripe(1, &views);
    }

    #[test]
    fn error_display_is_informative() {
        let e = RaidError::WrongBlockSize {
            expected: 8,
            got: 4,
        };
        assert!(e.to_string().contains("8"));
        assert!(RaidError::DataLost.to_string().contains("unrecoverable"));
    }
}
