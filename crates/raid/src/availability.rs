//! Availability arithmetic: why a serverless software RAID can beat a
//! hardware RAID behind a single host.
//!
//! The paper's argument: a hardware RAID protects against *disk* failures,
//! but the host computer it hangs off is a single point of failure — "if
//! the host computer crashes, the RAID becomes unavailable." A software
//! RAID on a NOW has no central host: any workstation can take over
//! control, so only simultaneous multi-component failures lose service.

use serde::{Deserialize, Serialize};

/// Failure/repair parameters for one component class, in hours.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailureModel {
    /// Mean time to failure of one disk.
    pub disk_mttf_hours: f64,
    /// Mean time to replace a failed disk and rebuild it.
    pub mttr_hours: f64,
    /// Mean time to failure of a host computer (crash, OS hang, power).
    pub host_mttf_hours: f64,
    /// Mean time for a crashed host to reboot and rejoin — host crashes
    /// are transient and do not lose the disk's contents.
    pub reboot_hours: f64,
}

impl FailureModel {
    /// Mid-1990s figures: 200,000-hour disks, 1,000-hour hosts (about six
    /// weeks between crashes, counting OS faults), 24-hour disk
    /// replacement, 12-minute reboot.
    pub fn paper_defaults() -> Self {
        FailureModel {
            disk_mttf_hours: 200_000.0,
            mttr_hours: 24.0,
            host_mttf_hours: 1_000.0,
            reboot_hours: 0.2,
        }
    }

    /// Mean time to *data loss* of an `n`-disk RAID-5 group: the standard
    /// `MTTF² / (n(n-1)·MTTR)` double-failure window.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn raid5_mttdl_hours(&self, n: u32) -> f64 {
        assert!(n >= 2, "a parity group needs at least two disks");
        self.disk_mttf_hours * self.disk_mttf_hours
            / (f64::from(n) * f64::from(n - 1) * self.mttr_hours)
    }

    /// Mean time to data loss of an `n`-disk stripe with no redundancy:
    /// any single failure loses data.
    pub fn raid0_mttdl_hours(&self, n: u32) -> f64 {
        assert!(n >= 1, "a stripe needs a disk");
        self.disk_mttf_hours / f64::from(n)
    }

    /// Mean time to *service loss* of a hardware RAID behind one host:
    /// whichever dies first — the (rare) double disk failure or the (not
    /// rare) host.
    pub fn hardware_raid_service_mttf_hours(&self, n: u32) -> f64 {
        let raid = self.raid5_mttdl_hours(n);
        // Independent exponential failure processes compose by rate
        // addition.
        1.0 / (1.0 / raid + 1.0 / self.host_mttf_hours)
    }

    /// Mean time to service loss of the serverless software RAID: any
    /// single node (host+disk) outage degrades but does not stop service —
    /// another workstation takes over — so service is lost only when a
    /// second node goes down while the first is still out. Host crashes
    /// are transient (reboot-length outages); disk failures last a
    /// replacement cycle.
    pub fn software_raid_service_mttf_hours(&self, n: u32) -> f64 {
        assert!(n >= 2, "serverless RAID needs at least two nodes");
        // Node outage rate and mean outage duration, mixing the two causes.
        let rate = 1.0 / self.disk_mttf_hours + 1.0 / self.host_mttf_hours;
        let mean_outage = (self.mttr_hours / self.disk_mttf_hours
            + self.reboot_hours / self.host_mttf_hours)
            / rate;
        // Double-outage window: first outage at rate n·λ; a second of the
        // remaining n−1 nodes must fail within the outage duration.
        1.0 / (f64::from(n) * rate * f64::from(n - 1) * rate * mean_outage)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raid5_vastly_outlives_raid0() {
        let m = FailureModel::paper_defaults();
        let r5 = m.raid5_mttdl_hours(16);
        let r0 = m.raid0_mttdl_hours(16);
        assert!(r5 / r0 > 100.0, "parity should buy orders of magnitude");
    }

    #[test]
    fn host_dominates_hardware_raid_availability() {
        // The paper's point: the RAID box hardly matters — the host does.
        let m = FailureModel::paper_defaults();
        let service = m.hardware_raid_service_mttf_hours(16);
        assert!(
            (service - m.host_mttf_hours).abs() / m.host_mttf_hours < 0.01,
            "service MTTF {service} should be ≈ host MTTF {}",
            m.host_mttf_hours
        );
    }

    #[test]
    fn serverless_raid_beats_hardware_raid_service_availability() {
        let m = FailureModel::paper_defaults();
        for n in [8, 16, 32] {
            let hw = m.hardware_raid_service_mttf_hours(n);
            let sw = m.software_raid_service_mttf_hours(n);
            assert!(
                sw > hw,
                "n={n}: software {sw} h should beat hardware {hw} h"
            );
        }
    }

    #[test]
    fn very_large_flat_groups_need_partitioning() {
        // At building scale a single flat group's double-outage window
        // catches up with the host MTTF — which is why xFS organises
        // storage into bounded stripe groups rather than one 100-node
        // parity group.
        let m = FailureModel::paper_defaults();
        let flat100 = m.software_raid_service_mttf_hours(100);
        let group8 = m.software_raid_service_mttf_hours(8);
        assert!(flat100 < m.hardware_raid_service_mttf_hours(100));
        assert!(group8 > 50.0 * flat100, "small groups are the fix");
    }

    #[test]
    fn bigger_groups_fail_sooner() {
        let m = FailureModel::paper_defaults();
        assert!(m.raid5_mttdl_hours(8) > m.raid5_mttdl_hours(32));
        assert!(m.software_raid_service_mttf_hours(8) > m.software_raid_service_mttf_hours(32));
    }

    #[test]
    fn faster_repair_improves_mttdl_linearly() {
        let mut m = FailureModel::paper_defaults();
        let slow = m.raid5_mttdl_hours(16);
        m.mttr_hours /= 4.0;
        let fast = m.raid5_mttdl_hours(16);
        assert!((fast / slow - 4.0).abs() < 1e-9);
    }
}
