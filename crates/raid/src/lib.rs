//! # now-raid — redundant arrays of workstation disks
//!
//! The paper's storage argument: instead of buying a hardware RAID box
//! (which costs 2× per byte and hangs off a single host that becomes the
//! availability bottleneck), write data redundantly across the disks
//! already inside the building's workstations, using the fast network as
//! the I/O backplane. Any workstation can take over for a failed one, and
//! parallel programs get the aggregate bandwidth of every spindle.
//!
//! This crate is a *functional* software RAID — real bytes, real XOR
//! parity — with the timing model alongside:
//!
//! * [`SoftwareRaid`] — RAID-0 (striping), RAID-1 (mirroring), and RAID-5
//!   (rotated parity) over simulated workstation disks, with degraded-mode
//!   reads, disk failure, and full reconstruction.
//! * [`StripeLog`] — the log-structured write path (used by xFS) that
//!   batches small writes into full-stripe segments, dodging RAID-5's
//!   read-modify-write small-write penalty.
//! * [`availability`] — mean-time-to-data-loss arithmetic comparing a
//!   central server, a hardware RAID behind one host, and the serverless
//!   software RAID.
//!
//! # Example
//!
//! Survive a disk failure byte-for-byte:
//!
//! ```
//! use now_raid::{RaidConfig, RaidLevel, SoftwareRaid};
//!
//! let mut raid = SoftwareRaid::new(RaidConfig {
//!     level: RaidLevel::Raid5,
//!     disks: 5,
//!     block_bytes: 512,
//! });
//! let data = vec![0xAB; 512];
//! raid.write(7, &data).unwrap();
//! raid.fail_disk(raid.disk_of(7));
//! let (back, _cost) = raid.read(7).unwrap();
//! assert_eq!(&back[..], &data[..]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod array;
mod layout;
mod log;

pub mod availability;

pub use array::{RaidConfig, RaidError, RaidLevel, RaidStats, SoftwareRaid};
pub use layout::{Raid5Layout, StripeLocation};
pub use log::{SegmentId, StripeLog};
