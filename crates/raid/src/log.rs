//! The log-structured write path: xFS's answer to the RAID-5 small-write
//! problem.
//!
//! A small write on RAID-5 costs four disk operations (read old data, read
//! old parity, write both back). A log-structured file system instead
//! accumulates dirty blocks and writes them as *full stripes* of fresh log
//! segments: parity is computed in memory over the new data, every disk
//! write is a write, and the per-block cost approaches one large sequential
//! transfer per `disks` blocks.

use std::collections::HashMap;

use bytes::Bytes;
use now_sim::SimDuration;
use serde::{Deserialize, Serialize};

use crate::{RaidError, SoftwareRaid};

/// Identifies a flushed log segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SegmentId(pub u64);

/// A log-structured writer over a [`SoftwareRaid`].
///
/// Client writes go to an in-memory segment buffer keyed by the caller's
/// own block identifiers; when a full stripe's worth accumulates (or on
/// [`StripeLog::flush`]) the buffer is written to consecutive fresh RAID
/// addresses as full stripes. An index maps caller keys to their current
/// log address — rewriting a key simply appends a new version, leaving a
/// dead block for the cleaner (dead-block accounting is exposed via
/// [`StripeLog::dead_blocks`]).
///
/// # Example
///
/// ```
/// use now_raid::{RaidConfig, RaidLevel, SoftwareRaid, StripeLog};
///
/// let raid = SoftwareRaid::new(RaidConfig {
///     level: RaidLevel::Raid5,
///     disks: 4,
///     block_bytes: 64,
/// });
/// let mut log = StripeLog::new(raid);
/// log.write(10, &[7u8; 64]).unwrap();
/// log.flush().unwrap();
/// assert_eq!(&log.read(10).unwrap().0[..], &[7u8; 64][..]);
/// ```
#[derive(Debug, Clone)]
pub struct StripeLog {
    raid: SoftwareRaid,
    /// Caller key -> current log address.
    index: HashMap<u64, u64>,
    /// Log addresses whose contents have been superseded.
    dead: u64,
    /// Next fresh log address.
    tail: u64,
    /// Buffered (key, data) pairs not yet on disk.
    buffer: Vec<(u64, Bytes)>,
    /// Blocks per full stripe (data disks).
    stripe_blocks: usize,
    segments_flushed: u64,
}

impl StripeLog {
    /// Wraps a RAID array in a log-structured writer.
    pub fn new(raid: SoftwareRaid) -> Self {
        let cfg = raid.config();
        let stripe_blocks = match cfg.level {
            crate::RaidLevel::Raid5 => (cfg.disks - 1) as usize,
            _ => cfg.disks as usize,
        };
        StripeLog {
            raid,
            index: HashMap::new(),
            dead: 0,
            tail: 0,
            buffer: Vec::new(),
            stripe_blocks,
            segments_flushed: 0,
        }
    }

    /// Writes `data` under the caller's `key`, buffering until a full
    /// stripe accumulates (then flushing automatically).
    ///
    /// Returns the service time charged (zero while buffering in memory).
    ///
    /// # Errors
    ///
    /// Propagates [`RaidError`] from an automatic flush.
    pub fn write(&mut self, key: u64, data: &[u8]) -> Result<SimDuration, RaidError> {
        // Supersede any buffered version of the same key.
        self.buffer.retain(|(k, _)| *k != key);
        self.buffer.push((key, Bytes::copy_from_slice(data)));
        if self.buffer.len() >= self.stripe_blocks {
            self.flush()
        } else {
            Ok(SimDuration::ZERO)
        }
    }

    /// Forces all buffered blocks to disk as full stripes (the last stripe
    /// may be partial). Full stripes take the one-parallel-phase fast path
    /// — parity computed in memory, one write per spindle; only the
    /// partial tail pays read-modify-write.
    ///
    /// # Errors
    ///
    /// Propagates [`RaidError`] from the underlying array.
    pub fn flush(&mut self) -> Result<SimDuration, RaidError> {
        let mut time = SimDuration::ZERO;
        let buffered = std::mem::take(&mut self.buffer);
        let mut i = 0;
        while i < buffered.len() {
            let aligned = self.tail.is_multiple_of(self.stripe_blocks as u64);
            let remaining = buffered.len() - i;
            if aligned && remaining >= self.stripe_blocks {
                let chunk = &buffered[i..i + self.stripe_blocks];
                let views: Vec<&[u8]> = chunk.iter().map(|(_, d)| d.as_ref()).collect();
                match self.raid.write_full_stripe(self.tail, &views) {
                    Ok(t) => {
                        time += t;
                        for (j, (key, _)) in chunk.iter().enumerate() {
                            if self.index.insert(*key, self.tail + j as u64).is_some() {
                                self.dead += 1;
                            }
                        }
                        self.tail += self.stripe_blocks as u64;
                        i += self.stripe_blocks;
                        continue;
                    }
                    Err(RaidError::DataLost) => {
                        // Degraded array: fall through to per-block writes.
                    }
                    Err(e) => return Err(e),
                }
            }
            let (key, data) = &buffered[i];
            let addr = self.tail;
            self.tail += 1;
            time += self.raid.write(addr, data)?;
            if self.index.insert(*key, addr).is_some() {
                self.dead += 1;
            }
            i += 1;
        }
        self.segments_flushed += 1;
        Ok(time)
    }

    /// Reads the current version of `key`.
    ///
    /// # Errors
    ///
    /// [`RaidError::NotWritten`] if the key was never written; otherwise
    /// propagates the array's error.
    pub fn read(&mut self, key: u64) -> Result<(Bytes, SimDuration), RaidError> {
        // Serve from the in-memory buffer first (not yet flushed).
        if let Some((_, data)) = self.buffer.iter().find(|(k, _)| *k == key) {
            return Ok((data.clone(), SimDuration::ZERO));
        }
        let addr = *self.index.get(&key).ok_or(RaidError::NotWritten)?;
        self.raid.read(addr)
    }

    /// Deletes `key`: its current version (buffered or on disk) becomes
    /// dead. Returns `true` if the key existed.
    pub fn delete(&mut self, key: u64) -> bool {
        let buffered = self.buffer.len();
        self.buffer.retain(|(k, _)| *k != key);
        let was_buffered = self.buffer.len() != buffered;
        if let Some(_addr) = self.index.remove(&key) {
            self.dead += 1;
            true
        } else {
            was_buffered
        }
    }

    /// Log addresses holding superseded data, awaiting a cleaner.
    pub fn dead_blocks(&self) -> u64 {
        self.dead
    }

    /// Fraction of flushed log blocks that are dead — the cleaner's
    /// trigger metric.
    pub fn dead_fraction(&self) -> f64 {
        if self.tail == 0 {
            0.0
        } else {
            self.dead as f64 / self.tail as f64
        }
    }

    /// Runs the cleaner: rewrites every live block to fresh log addresses
    /// and forgets the dead ones, returning the service time. After
    /// cleaning, [`StripeLog::dead_fraction`] is the dead blocks' share of
    /// the *new* tail (zero once re-flushed).
    ///
    /// # Errors
    ///
    /// Propagates [`RaidError`] from the underlying array.
    pub fn clean(&mut self) -> Result<SimDuration, RaidError> {
        let mut time = SimDuration::ZERO;
        let live: Vec<u64> = self.index.keys().copied().collect();
        for key in live {
            let (data, t) = self.read(key)?;
            time += t;
            time += self.write(key, &data)?;
        }
        time += self.flush()?;
        self.dead = 0;
        Ok(time)
    }

    /// Number of flushes performed.
    pub fn segments_flushed(&self) -> u64 {
        self.segments_flushed
    }

    /// Access to the underlying array (e.g. to fail/reconstruct disks).
    pub fn raid_mut(&mut self) -> &mut SoftwareRaid {
        &mut self.raid
    }

    /// Live keys currently indexed.
    pub fn live_keys(&self) -> usize {
        self.index.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RaidConfig, RaidLevel};

    fn log(disks: u32) -> StripeLog {
        StripeLog::new(SoftwareRaid::new(RaidConfig {
            level: RaidLevel::Raid5,
            disks,
            block_bytes: 64,
        }))
    }

    fn blk(fill: u8) -> Vec<u8> {
        vec![fill; 64]
    }

    #[test]
    fn buffered_writes_cost_nothing_until_flush() {
        let mut l = log(4);
        let t1 = l.write(1, &blk(1)).unwrap();
        let t2 = l.write(2, &blk(2)).unwrap();
        assert_eq!(t1, SimDuration::ZERO);
        assert_eq!(t2, SimDuration::ZERO);
        // Third write completes the 3-block stripe and flushes.
        let t3 = l.write(3, &blk(3)).unwrap();
        assert!(t3 > SimDuration::ZERO);
        assert_eq!(l.segments_flushed(), 1);
    }

    #[test]
    fn reads_see_buffered_and_flushed_data() {
        let mut l = log(4);
        l.write(1, &blk(1)).unwrap();
        assert_eq!(&l.read(1).unwrap().0[..], &blk(1)[..], "from buffer");
        l.flush().unwrap();
        assert_eq!(&l.read(1).unwrap().0[..], &blk(1)[..], "from disk");
    }

    #[test]
    fn rewrite_supersedes_and_counts_dead_blocks() {
        let mut l = log(4);
        l.write(1, &blk(1)).unwrap();
        l.flush().unwrap();
        assert_eq!(l.dead_blocks(), 0);
        l.write(1, &blk(9)).unwrap();
        l.flush().unwrap();
        assert_eq!(l.dead_blocks(), 1);
        assert_eq!(&l.read(1).unwrap().0[..], &blk(9)[..]);
        assert_eq!(l.live_keys(), 1);
    }

    #[test]
    fn rewrite_within_buffer_leaves_no_dead_block() {
        let mut l = log(4);
        l.write(1, &blk(1)).unwrap();
        l.write(1, &blk(2)).unwrap(); // still buffered: replaced in place
        l.flush().unwrap();
        assert_eq!(l.dead_blocks(), 0);
        assert_eq!(&l.read(1).unwrap().0[..], &blk(2)[..]);
    }

    #[test]
    fn log_writes_beat_in_place_small_writes() {
        // N small writes through the log cost fewer disk ops than N
        // in-place RAID-5 read-modify-writes.
        let n = 30u64;
        let mut l = log(4);
        for i in 0..n {
            l.write(i, &blk(i as u8)).unwrap();
        }
        l.flush().unwrap();
        let log_ops = l.raid_mut().stats().disk_ops;

        let mut inplace = SoftwareRaid::new(RaidConfig {
            level: RaidLevel::Raid5,
            disks: 4,
            block_bytes: 64,
        });
        // Prime the blocks, then overwrite: steady-state small writes.
        for i in 0..n {
            inplace.write(i, &blk(0)).unwrap();
        }
        let before = inplace.stats().disk_ops;
        for i in 0..n {
            inplace.write(i, &blk(i as u8)).unwrap();
        }
        let inplace_ops = inplace.stats().disk_ops - before;
        // In-place small writes cost 4 ops each; the log's full-stripe
        // path approaches disks/(disks-1) ≈ 1.33 on 4 disks.
        assert_eq!(inplace_ops, 4 * n);
        assert!(
            (log_ops as f64) < 2.0 * n as f64,
            "log {log_ops} ops for {n} writes"
        );
    }

    #[test]
    fn survives_disk_failure_through_the_log() {
        let mut l = log(5);
        for i in 0..40 {
            l.write(i, &blk(i as u8)).unwrap();
        }
        l.flush().unwrap();
        l.raid_mut().fail_disk(2);
        for i in 0..40 {
            assert_eq!(&l.read(i).unwrap().0[..], &blk(i as u8)[..], "key {i}");
        }
    }

    #[test]
    fn unwritten_key_is_not_written() {
        let mut l = log(4);
        assert_eq!(l.read(77).map(|_| ()), Err(RaidError::NotWritten));
    }

    #[test]
    fn delete_makes_key_unknown_and_block_dead() {
        let mut l = log(4);
        l.write(1, &blk(1)).unwrap();
        l.flush().unwrap();
        assert!(l.delete(1));
        assert_eq!(l.read(1).map(|_| ()), Err(RaidError::NotWritten));
        assert_eq!(l.dead_blocks(), 1);
        assert!(!l.delete(1), "double delete is a no-op");
    }

    #[test]
    fn delete_of_buffered_key_never_reaches_disk() {
        let mut l = log(4);
        l.write(1, &blk(1)).unwrap();
        assert!(l.delete(1));
        l.flush().unwrap();
        assert_eq!(l.read(1).map(|_| ()), Err(RaidError::NotWritten));
        assert_eq!(l.dead_blocks(), 0);
    }

    #[test]
    fn cleaner_preserves_live_data_and_resets_dead_count() {
        let mut l = log(4);
        for i in 0..9 {
            l.write(i, &blk(i as u8)).unwrap();
        }
        // Rewrite a few to create dead blocks.
        for i in 0..4 {
            l.write(i, &blk(0xF0 | i as u8)).unwrap();
        }
        l.flush().unwrap();
        assert!(l.dead_blocks() > 0);
        let t = l.clean().unwrap();
        assert!(t > SimDuration::ZERO);
        assert_eq!(l.dead_blocks(), 0);
        for i in 0..4u64 {
            assert_eq!(&l.read(i).unwrap().0[..], &blk(0xF0 | i as u8)[..]);
        }
        for i in 4..9u64 {
            assert_eq!(&l.read(i).unwrap().0[..], &blk(i as u8)[..]);
        }
    }
}
