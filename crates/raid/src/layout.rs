//! RAID-5 left-symmetric layout arithmetic: which disk holds which block.

use serde::{Deserialize, Serialize};

/// Where a logical block lives physically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StripeLocation {
    /// Stripe number (row across all disks).
    pub stripe: u64,
    /// Disk holding the data block.
    pub data_disk: u32,
    /// Disk holding the stripe's parity.
    pub parity_disk: u32,
}

/// Left-symmetric RAID-5 layout over `disks` disks.
///
/// Parity rotates right-to-left one disk per stripe (the classic layout
/// that spreads both parity *and* data evenly), and data blocks fill the
/// remaining slots in rotated order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Raid5Layout {
    disks: u32,
}

impl Raid5Layout {
    /// Creates a layout.
    ///
    /// # Panics
    ///
    /// Panics with fewer than 3 disks (RAID-5 needs data + parity +
    /// something to rotate against).
    pub fn new(disks: u32) -> Self {
        assert!(disks >= 3, "RAID-5 needs at least 3 disks, got {disks}");
        Raid5Layout { disks }
    }

    /// Number of disks.
    pub fn disks(&self) -> u32 {
        self.disks
    }

    /// Data blocks per stripe.
    pub fn data_per_stripe(&self) -> u32 {
        self.disks - 1
    }

    /// The parity disk for a stripe.
    pub fn parity_disk(&self, stripe: u64) -> u32 {
        (self.disks - 1) - (stripe % u64::from(self.disks)) as u32
    }

    /// Maps a logical block number to its physical location.
    pub fn locate(&self, logical: u64) -> StripeLocation {
        let per = u64::from(self.data_per_stripe());
        let stripe = logical / per;
        let slot = (logical % per) as u32;
        let parity_disk = self.parity_disk(stripe);
        // Left-symmetric: data slots start just after the parity disk and
        // wrap around it.
        let data_disk = (parity_disk + 1 + slot) % self.disks;
        StripeLocation {
            stripe,
            data_disk,
            parity_disk,
        }
    }

    /// All logical block numbers that share a stripe with `logical`.
    pub fn stripe_mates(&self, logical: u64) -> Vec<u64> {
        let per = u64::from(self.data_per_stripe());
        let base = (logical / per) * per;
        (base..base + per).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parity_rotates_across_all_disks() {
        let l = Raid5Layout::new(5);
        let disks: Vec<u32> = (0..5).map(|s| l.parity_disk(s)).collect();
        let mut sorted = disks.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4], "each disk takes a turn");
        assert_eq!(l.parity_disk(0), l.parity_disk(5), "period = disk count");
    }

    #[test]
    fn data_never_lands_on_the_parity_disk() {
        let l = Raid5Layout::new(4);
        for logical in 0..1_000 {
            let loc = l.locate(logical);
            assert_ne!(loc.data_disk, loc.parity_disk, "block {logical}");
            assert!(loc.data_disk < 4);
            assert!(loc.parity_disk < 4);
        }
    }

    #[test]
    fn blocks_within_a_stripe_use_distinct_disks() {
        let l = Raid5Layout::new(6);
        for stripe in 0..20u64 {
            let per = u64::from(l.data_per_stripe());
            let mut disks: Vec<u32> = (0..per)
                .map(|i| l.locate(stripe * per + i).data_disk)
                .collect();
            disks.sort_unstable();
            disks.dedup();
            assert_eq!(disks.len() as u64, per, "stripe {stripe} collides");
        }
    }

    #[test]
    fn stripe_mates_share_the_stripe() {
        let l = Raid5Layout::new(4);
        let mates = l.stripe_mates(7);
        assert_eq!(mates.len(), 3);
        let stripe = l.locate(7).stripe;
        for m in mates {
            assert_eq!(l.locate(m).stripe, stripe);
        }
    }

    #[test]
    fn load_spreads_evenly_over_disks() {
        let l = Raid5Layout::new(5);
        let mut counts = vec![0u32; 5];
        for logical in 0..4_000 {
            counts[l.locate(logical).data_disk as usize] += 1;
        }
        // 4,000 blocks over 5 disks at 4 data-slots per stripe: 800 ± stripe
        // rounding each.
        for &c in &counts {
            assert!((780..=820).contains(&c), "uneven: {counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn two_disk_raid5_rejected() {
        Raid5Layout::new(2);
    }
}
