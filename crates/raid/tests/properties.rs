//! Property tests: the software RAID's durability invariants under
//! arbitrary data, write orders, and failures.

use now_raid::{RaidConfig, RaidError, RaidLevel, SoftwareRaid, StripeLog};
use proptest::prelude::*;

const BLOCK: usize = 32;

fn raid(level: RaidLevel, disks: u32) -> SoftwareRaid {
    SoftwareRaid::new(RaidConfig {
        level,
        disks,
        block_bytes: BLOCK,
    })
}

fn blocks() -> impl Strategy<Value = Vec<(u64, Vec<u8>)>> {
    prop::collection::vec(
        (0u64..64, prop::collection::vec(any::<u8>(), BLOCK..=BLOCK)),
        1..60,
    )
}

proptest! {
    /// RAID-5: after any write sequence and any single disk failure, every
    /// block reads back exactly as last written.
    #[test]
    fn raid5_single_failure_preserves_all_data(
        writes in blocks(),
        disks in 3u32..8,
        victim_frac in 0.0f64..1.0,
    ) {
        let mut r = raid(RaidLevel::Raid5, disks);
        let mut model = std::collections::HashMap::new();
        for (addr, data) in &writes {
            r.write(*addr, data).unwrap();
            model.insert(*addr, data.clone());
        }
        let victim = (victim_frac * disks as f64) as u32 % disks;
        r.fail_disk(victim);
        for (addr, data) in &model {
            let (got, _) = r.read(*addr).unwrap();
            prop_assert_eq!(&got[..], &data[..], "block {}", addr);
        }
    }

    /// RAID-5: reconstruction after failure restores a state
    /// indistinguishable from never having failed, including under
    /// degraded-mode overwrites.
    #[test]
    fn raid5_reconstruction_is_exact(
        before in blocks(),
        during in blocks(),
        disks in 3u32..7,
        victim in 0u32..7,
    ) {
        let victim = victim % disks;
        let mut r = raid(RaidLevel::Raid5, disks);
        let mut model = std::collections::HashMap::new();
        for (addr, data) in &before {
            r.write(*addr, data).unwrap();
            model.insert(*addr, data.clone());
        }
        r.fail_disk(victim);
        for (addr, data) in &during {
            r.write(*addr, data).unwrap();
            model.insert(*addr, data.clone());
        }
        r.reconstruct(victim).unwrap();
        prop_assert_eq!(r.failed_disks(), 0);
        for (addr, data) in &model {
            let (got, _) = r.read(*addr).unwrap();
            prop_assert_eq!(&got[..], &data[..], "block {}", addr);
        }
    }

    /// RAID-1 tolerates one failure per mirror pair.
    #[test]
    fn raid1_survives_one_per_pair(writes in blocks(), fail_even in any::<bool>()) {
        let mut r = raid(RaidLevel::Raid1, 4);
        let mut model = std::collections::HashMap::new();
        for (addr, data) in &writes {
            r.write(*addr, data).unwrap();
            model.insert(*addr, data.clone());
        }
        // Fail one disk from each pair.
        r.fail_disk(if fail_even { 0 } else { 1 });
        r.fail_disk(if fail_even { 2 } else { 3 });
        for (addr, data) in &model {
            let (got, _) = r.read(*addr).unwrap();
            prop_assert_eq!(&got[..], &data[..]);
        }
    }

    /// The stripe log returns the latest version of every key, flushed or
    /// not, and survives a single disk failure once flushed.
    #[test]
    fn stripe_log_latest_version_wins(
        writes in prop::collection::vec((0u64..16, any::<u8>()), 1..80),
        disks in 3u32..6,
        victim in 0u32..6,
    ) {
        let mut log = StripeLog::new(raid(RaidLevel::Raid5, disks));
        let mut model = std::collections::HashMap::new();
        for (key, fill) in &writes {
            let data = vec![*fill; BLOCK];
            log.write(*key, &data).unwrap();
            model.insert(*key, data);
        }
        log.flush().unwrap();
        log.raid_mut().fail_disk(victim % disks);
        for (key, data) in &model {
            let (got, _) = log.read(*key).unwrap();
            prop_assert_eq!(&got[..], &data[..], "key {}", key);
        }
        // Never-written keys stay unknown.
        prop_assert_eq!(log.read(999).map(|_| ()), Err(RaidError::NotWritten));
    }

    /// Stats sanity: disk ops and time only grow, and reads never mutate
    /// stored data.
    #[test]
    fn reads_are_pure(writes in blocks()) {
        let mut r = raid(RaidLevel::Raid5, 5);
        for (addr, data) in &writes {
            r.write(*addr, data).unwrap();
        }
        let addrs: Vec<u64> = writes.iter().map(|(a, _)| *a).collect();
        let first: Vec<_> = addrs.iter().map(|a| r.read(*a).unwrap().0).collect();
        let second: Vec<_> = addrs.iter().map(|a| r.read(*a).unwrap().0).collect();
        prop_assert_eq!(first, second);
    }
}
