//! Property tests for GLUnix scheduling invariants.

use now_glunix::cosched::{run, AppSpec, CommPattern, CoschedConfig, Scheduling};
use now_glunix::exec::{run_batch, ExecConfig, SeqJob};
use now_glunix::mixed::{dedicated_mpp, now_cluster, MixedConfig};
use now_sim::{SimDuration, SimTime};
use now_trace::lanl::{JobTrace, JobTraceConfig};
use now_trace::usage::{UsageTrace, UsageTraceConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Gang scheduling is never slower than local scheduling for any app
    /// shape (coscheduling dominates).
    #[test]
    fn gang_dominates_local(
        steps in 5u32..40,
        compute_ms in 1u64..8,
        msgs in 1u32..64,
        competing in 0u32..3,
        pattern_pick in 0u8..4,
    ) {
        let pattern = match pattern_pick {
            0 => CommPattern::RandomSmall { msgs_per_step: msgs },
            1 => CommPattern::Burst { msgs_per_step: msgs * 64 },
            2 => CommPattern::NeighborBarrier,
            _ => CommPattern::RequestReply { reqs_per_step: (msgs % 16).max(1) },
        };
        let app = AppSpec {
            name: "prop",
            steps,
            compute_per_step: SimDuration::from_millis(compute_ms),
            pattern,
        };
        let config = CoschedConfig::paper_defaults(competing);
        let gang = run(&app, Scheduling::Gang, &config);
        let local = run(&app, Scheduling::Local, &config);
        prop_assert!(local >= gang, "local {local} beat gang {gang} for {pattern:?}");
    }

    /// The dedicated-MPP scheduler conserves capacity: at no point do
    /// running jobs exceed the partition — checked indirectly: makespan is
    /// at least total-work / capacity.
    #[test]
    fn dedicated_mpp_respects_capacity(seed in 0u64..500) {
        let jobs = JobTrace::generate(&JobTraceConfig::paper_defaults(), seed);
        prop_assume!(!jobs.is_empty());
        let out = dedicated_mpp(&jobs, 32);
        let makespan = out
            .jobs
            .iter()
            .map(|(_, _, c)| *c)
            .max()
            .unwrap()
            .saturating_since(jobs.jobs[0].arrival)
            .as_secs_f64();
        let lower_bound = jobs.total_node_seconds() / 32.0;
        prop_assert!(
            makespan + 1.0 >= lower_bound,
            "makespan {makespan} below work bound {lower_bound}"
        );
        // And every job runs for at least its service time.
        for ((_, s, c), job) in out.jobs.iter().zip(&jobs.jobs) {
            prop_assert!(c.saturating_since(*s) >= job.service);
        }
    }

    /// The NOW run never completes a job faster than its service demand,
    /// and dilation is always >= 1.
    #[test]
    fn now_cluster_never_cheats(seed in 0u64..200, machines in 36u32..96) {
        let jobs = JobTrace::generate(&JobTraceConfig::paper_defaults(), seed);
        prop_assume!(!jobs.is_empty());
        let mut ucfg = UsageTraceConfig::paper_defaults();
        ucfg.machines = machines;
        let usage = UsageTrace::generate(&ucfg, seed + 1);
        let out = now_cluster(&jobs, &usage, &MixedConfig::paper_defaults());
        for ((_, s, c), job) in out.jobs.iter().zip(&jobs.jobs) {
            prop_assert!(
                c.saturating_since(*s) + SimDuration::from_nanos(1) > job.service,
                "job finished faster than its demand"
            );
        }
        prop_assert!(out.mean_dilation() >= 1.0 - 1e-9);
    }

    /// glurun conserves work: no job completes before arrival + service /
    /// fastest-possible share, and restarts only increase completion times.
    #[test]
    fn exec_conserves_work(
        arrivals in prop::collection::vec((0u64..100, 10u64..200), 1..15),
        nodes in 1u32..6,
    ) {
        let jobs: Vec<SeqJob> = arrivals
            .iter()
            .map(|&(a, s)| SeqJob {
                arrival: SimTime::from_secs(a),
                service: SimDuration::from_secs(s),
            })
            .collect();
        let config = ExecConfig { sandbox: false, ..ExecConfig::default() };
        let out = run_batch(&jobs, nodes, &[], &config);
        for (j, c) in jobs.iter().zip(&out.completions) {
            prop_assert!(
                c.saturating_since(j.arrival) + SimDuration::from_nanos(nodes as u64) >= j.service,
                "job served faster than physics: {} < {}",
                c.saturating_since(j.arrival),
                j.service
            );
        }
        // Total placements equal job count (no failures).
        prop_assert_eq!(out.placements.iter().map(|&p| u64::from(p)).sum::<u64>(), jobs.len() as u64);
        prop_assert_eq!(out.restarts, 0);
    }
}
