//! Cluster membership and idle detection.
//!
//! GLUnix must keep operating as workstations crash, reboot, join, and
//! leave — "if a workstation fails, it only affects the programs using
//! that CPU." Membership is tracked with heartbeats; a node missing
//! [`MembershipConfig::miss_limit`] consecutive heartbeats is declared
//! failed and its processes become restart candidates. Idle detection
//! implements the paper's rule: a machine is *available* after one minute
//! with no user activity.

use std::collections::BTreeMap;

use now_sim::{SimDuration, SimTime};
use now_trace::usage::MachineUsage;
use serde::{Deserialize, Serialize};

/// A node's liveness state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeState {
    /// Heartbeating normally.
    Up,
    /// Declared failed (missed heartbeats).
    Failed,
    /// Administratively removed (hot-swap upgrade).
    Removed,
}

/// Membership parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MembershipConfig {
    /// Heartbeat period.
    pub heartbeat: SimDuration,
    /// Consecutive misses before a node is declared failed.
    pub miss_limit: u32,
    /// User inactivity before a machine counts as available (paper: one
    /// minute).
    pub idle_threshold: SimDuration,
}

impl Default for MembershipConfig {
    fn default() -> Self {
        MembershipConfig {
            heartbeat: SimDuration::from_secs(1),
            miss_limit: 3,
            idle_threshold: SimDuration::from_secs(60),
        }
    }
}

/// The membership service.
#[derive(Debug, Clone)]
pub struct Membership {
    config: MembershipConfig,
    /// Last heartbeat heard from each node.
    last_heard: BTreeMap<u32, SimTime>,
    state: BTreeMap<u32, NodeState>,
}

impl Membership {
    /// Boots a cluster of `nodes` nodes, all up at time zero.
    pub fn new(nodes: u32, config: MembershipConfig) -> Self {
        Membership {
            config,
            last_heard: (0..nodes).map(|n| (n, SimTime::ZERO)).collect(),
            state: (0..nodes).map(|n| (n, NodeState::Up)).collect(),
        }
    }

    /// Records a heartbeat from `node` at `now`. A failed node that
    /// heartbeats again has rebooted and rejoins. A node that was
    /// administratively [`remove`](Self::remove)d stays removed: a stray
    /// heartbeat from hardware on its way out must not resurrect it —
    /// rejoining after a hot-swap requires an explicit
    /// [`add`](Self::add).
    pub fn heartbeat(&mut self, node: u32, now: SimTime) {
        if self.state.get(&node) == Some(&NodeState::Removed) {
            return;
        }
        self.last_heard.insert(node, now);
        self.state.insert(node, NodeState::Up);
    }

    /// Sweeps for failures at `now`: nodes silent past the miss limit are
    /// declared failed. Returns the newly failed nodes.
    pub fn sweep(&mut self, now: SimTime) -> Vec<u32> {
        let deadline = self.config.heartbeat * u64::from(self.config.miss_limit);
        let mut newly_failed = Vec::new();
        for (&node, state) in self.state.iter_mut() {
            if *state != NodeState::Up {
                continue;
            }
            let heard = self.last_heard[&node];
            if now.saturating_since(heard) > deadline {
                *state = NodeState::Failed;
                newly_failed.push(node);
            }
        }
        newly_failed
    }

    /// Administratively removes a node (hot-swap).
    pub fn remove(&mut self, node: u32) {
        self.state.insert(node, NodeState::Removed);
    }

    /// Adds a brand-new node at `now` (hot-add).
    pub fn add(&mut self, node: u32, now: SimTime) {
        self.last_heard.insert(node, now);
        self.state.insert(node, NodeState::Up);
    }

    /// Current state of a node.
    pub fn state(&self, node: u32) -> Option<NodeState> {
        self.state.get(&node).copied()
    }

    /// Nodes currently up.
    pub fn up_nodes(&self) -> Vec<u32> {
        self.state
            .iter()
            .filter(|(_, &s)| s == NodeState::Up)
            .map(|(&n, _)| n)
            .collect()
    }

    /// Whether a machine is *available* for external work at `now` given
    /// its usage record: up, and no user activity within the idle
    /// threshold.
    pub fn available(&self, node: u32, usage: &MachineUsage, now: SimTime) -> bool {
        if self.state(node) != Some(NodeState::Up) {
            return false;
        }
        // Active right now?
        if usage.is_active(now) {
            return false;
        }
        // Active within the threshold window?
        let window_start =
            SimTime::ZERO.max(now - self.config.idle_threshold.min(now - SimTime::ZERO));
        usage.active_time(window_start, now).is_zero()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use now_trace::usage::ActivePeriod;

    fn quiet_machine() -> MachineUsage {
        MachineUsage { periods: vec![] }
    }

    fn machine_active(from_s: u64, to_s: u64) -> MachineUsage {
        MachineUsage {
            periods: vec![ActivePeriod {
                start: SimTime::from_secs(from_s),
                end: SimTime::from_secs(to_s),
            }],
        }
    }

    #[test]
    fn all_up_initially() {
        let m = Membership::new(4, MembershipConfig::default());
        assert_eq!(m.up_nodes(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn silent_node_is_declared_failed() {
        let mut m = Membership::new(3, MembershipConfig::default());
        let t = SimTime::from_secs(10);
        m.heartbeat(0, t);
        m.heartbeat(2, t);
        // Node 1 has been silent since t=0; the limit is 3 s.
        let failed = m.sweep(t);
        assert_eq!(failed, vec![1]);
        assert_eq!(m.state(1), Some(NodeState::Failed));
        assert_eq!(m.up_nodes(), vec![0, 2]);
    }

    #[test]
    fn reboot_rejoins() {
        let mut m = Membership::new(2, MembershipConfig::default());
        m.sweep(SimTime::from_secs(10));
        assert_eq!(m.state(0), Some(NodeState::Failed));
        m.heartbeat(0, SimTime::from_secs(20));
        assert_eq!(m.state(0), Some(NodeState::Up));
    }

    #[test]
    fn sweep_reports_each_failure_once() {
        let mut m = Membership::new(2, MembershipConfig::default());
        let first = m.sweep(SimTime::from_secs(10));
        assert_eq!(first.len(), 2);
        let second = m.sweep(SimTime::from_secs(20));
        assert!(second.is_empty());
    }

    #[test]
    fn hot_swap_remove_and_add() {
        let mut m = Membership::new(2, MembershipConfig::default());
        m.remove(1);
        assert_eq!(m.state(1), Some(NodeState::Removed));
        assert_eq!(m.up_nodes(), vec![0]);
        m.add(5, SimTime::from_secs(1));
        assert_eq!(m.up_nodes(), vec![0, 5]);
    }

    #[test]
    fn removed_node_heartbeat_is_ignored() {
        let mut m = Membership::new(2, MembershipConfig::default());
        m.remove(1);
        // A stray heartbeat from the swapped-out box must not resurrect it.
        m.heartbeat(1, SimTime::from_secs(5));
        assert_eq!(m.state(1), Some(NodeState::Removed));
        assert_eq!(m.up_nodes(), vec![0]);
        // An explicit hot-add does bring it back.
        m.add(1, SimTime::from_secs(6));
        assert_eq!(m.state(1), Some(NodeState::Up));
    }

    #[test]
    fn availability_follows_the_one_minute_rule() {
        let mut m = Membership::new(1, MembershipConfig::default());
        let usage = machine_active(100, 200);
        // During activity: not available.
        m.heartbeat(0, SimTime::from_secs(150));
        assert!(!m.available(0, &usage, SimTime::from_secs(150)));
        // 30 s after the user left: still within the one-minute window.
        m.heartbeat(0, SimTime::from_secs(230));
        assert!(!m.available(0, &usage, SimTime::from_secs(230)));
        // 61 s after: available.
        m.heartbeat(0, SimTime::from_secs(261));
        assert!(m.available(0, &usage, SimTime::from_secs(261)));
    }

    #[test]
    fn failed_node_is_never_available() {
        let mut m = Membership::new(1, MembershipConfig::default());
        m.sweep(SimTime::from_secs(100));
        assert!(!m.available(0, &quiet_machine(), SimTime::from_secs(100)));
    }

    #[test]
    fn untouched_machine_is_available_immediately() {
        let mut m = Membership::new(1, MembershipConfig::default());
        m.heartbeat(0, SimTime::from_secs(5));
        assert!(m.available(0, &quiet_machine(), SimTime::from_secs(5)));
    }
}
