//! Cross-validation: the coscheduling story told twice.
//!
//! [`crate::cosched`] models Figure 4 with a quantum-granularity
//! simulation; this module re-runs the *Connect*-style experiment through
//! the real [`now_am::ActiveMessages`] protocol engine — actual request/
//! reply messages, receiver buffering, timeout and retry — with the
//! scheduler driving [`now_am::ActiveMessages::set_running`]. If the two
//! independent models disagree about whether coscheduling matters, one of
//! them is wrong; their agreement is the reproduction's internal check on
//! Figure 4.
//!
//! The application: every node must complete a fixed number of
//! request/reply round trips to its neighbours, issuing the next request
//! only after the previous reply — the fine-grained dependence that makes
//! Connect "perform very poorly" under uncoordinated scheduling.

use now_am::{ActiveMessages, AmConfig, MsgId, Notification};
use now_net::{presets, NodeId};
use now_sim::{SimDuration, SimRng, SimTime};

use crate::cosched::Scheduling;

/// Parameters of the protocol-level experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrossvalConfig {
    /// Nodes in the parallel application.
    pub nodes: u32,
    /// Round trips each node must complete.
    pub round_trips: u32,
    /// Scheduling quantum.
    pub quantum: SimDuration,
    /// Competing jobs per node.
    pub competing_jobs: u32,
    /// Seed for local-schedule slot placement.
    pub seed: u64,
}

impl CrossvalConfig {
    /// A small Connect-like run: 8 nodes, 200 round trips, 10-ms quanta.
    ///
    /// (Quanta are shorter than Figure 4's 100 ms to keep the simulated
    /// horizon small; the *ratio* between local and gang is what the
    /// validation compares.)
    pub fn connect_like(competing_jobs: u32) -> Self {
        CrossvalConfig {
            nodes: 8,
            round_trips: 200,
            quantum: SimDuration::from_millis(10),
            competing_jobs,
            seed: 5,
        }
    }
}

/// Runs the experiment through the Active Messages engine and returns the
/// completion time (last reply delivered).
///
/// # Panics
///
/// Panics on degenerate configurations.
pub fn run_am(config: &CrossvalConfig, scheduling: Scheduling) -> SimDuration {
    assert!(config.nodes >= 2, "need at least two nodes");
    assert!(config.round_trips > 0, "the app must communicate");
    let n = config.nodes;
    let am_config = AmConfig {
        credits: 4,
        // Requests to descheduled peers just wait in the buffer; retries
        // should be for loss, not scheduling.
        timeout: SimDuration::from_secs(3_600),
        max_retries: 3,
        recv_buffer_msgs: 1_024,
        loss_probability: 0.0,
        reply_bytes: 16,
        batch: now_am::BatchConfig::disabled(),
    };
    let mut am = ActiveMessages::new(presets::am_atm(n), am_config, config.seed);
    let mut rng = SimRng::new(config.seed ^ 0xC0FFEE);

    let slots = u64::from(1 + config.competing_jobs);
    let mut done = vec![0u32; n as usize];
    let mut inflight: Vec<Option<MsgId>> = vec![None; n as usize];
    let mut running = vec![true; n as usize];

    let mut quantum_index: u64 = 0;
    let mut slot_of: Vec<u64> = vec![0; n as usize];
    let total_needed: u64 = u64::from(n) * u64::from(config.round_trips);
    let mut completed: u64 = 0;
    let mut finish = SimTime::ZERO;

    while completed < total_needed {
        let rotation_pos = quantum_index % slots;
        if rotation_pos == 0 {
            for s in slot_of.iter_mut() {
                *s = match scheduling {
                    Scheduling::Gang => 0,
                    Scheduling::Local => rng.gen_range(0..slots),
                };
            }
        }
        let q_start = SimTime::ZERO + config.quantum * quantum_index;
        let q_end = q_start + config.quantum;

        // Apply the schedule for this quantum; draining buffered arrivals
        // counts as handler executions now.
        let mut notes = Vec::new();
        for node in 0..n {
            let should_run = slot_of[node as usize] == rotation_pos;
            if should_run != running[node as usize] {
                notes.extend(am.set_running(NodeId(node), should_run));
                running[node as usize] = should_run;
            }
        }

        // Scheduled nodes with no request in flight issue one.
        for node in 0..n {
            if running[node as usize]
                && inflight[node as usize].is_none()
                && done[node as usize] < config.round_trips
            {
                let dst = NodeId((node + 1) % n);
                let at = am.now().max(q_start);
                let id = am.request_at(at, NodeId(node), dst, 64);
                inflight[node as usize] = Some(id);
            }
        }

        // Let the protocol run out the quantum.
        notes.extend(am.advance_until(q_end));
        for note in notes {
            if let Notification::ReplyDelivered { id, at } = note {
                let node = inflight
                    .iter()
                    .position(|slot| *slot == Some(id))
                    .expect("reply matches an in-flight request");
                inflight[node] = None;
                done[node] += 1;
                completed += 1;
                finish = finish.max(at);
                // Chain the next request immediately if still scheduled.
                // (Notifications are processed after the quantum ran out,
                // so the engine clock may already be past the reply time.)
                if running[node] && done[node] < config.round_trips {
                    let dst = NodeId(((node as u32) + 1) % n);
                    let at = am.now().max(at);
                    let id = am.request_at(at, NodeId(node as u32), dst, 64);
                    inflight[node] = Some(id);
                }
            }
        }

        quantum_index += 1;
        assert!(
            quantum_index < 5_000_000,
            "protocol-level run failed to converge"
        );
    }
    finish.saturating_since(SimTime::ZERO)
}

/// The protocol-level local-vs-gang slowdown for a Connect-like app.
pub fn am_slowdown(competing_jobs: u32) -> f64 {
    let config = CrossvalConfig::connect_like(competing_jobs);
    let gang = run_am(&config, Scheduling::Gang);
    let local = run_am(&config, Scheduling::Local);
    local.ratio(gang)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cosched::{slowdown, AppSpec, CoschedConfig};

    #[test]
    fn gang_scheduled_am_run_is_fast() {
        let config = CrossvalConfig::connect_like(0);
        let t = run_am(&config, Scheduling::Gang);
        // 200 chained RTTs of ~60 µs each, all nodes in parallel.
        assert!(t < SimDuration::from_millis(100), "gang run took {t}");
    }

    #[test]
    fn no_competition_means_no_gap() {
        let s = am_slowdown(0);
        assert!(
            (0.9..=1.1).contains(&s),
            "j=0 should be scheduling-free, got {s}"
        );
    }

    #[test]
    fn protocol_level_connect_collapses_under_local_scheduling() {
        let s = am_slowdown(2);
        assert!(s > 10.0, "protocol-level slowdown {s}");
    }

    #[test]
    fn protocol_level_slowdown_grows_with_competition() {
        let s1 = am_slowdown(1);
        let s3 = am_slowdown(3);
        assert!(s3 > s1, "{s1} -> {s3}");
    }

    #[test]
    fn both_models_agree_on_the_figure4_verdict() {
        // The quantum model's Connect and the protocol-level run must agree
        // that local scheduling costs an order of magnitude at j=2.
        let quantum_model = slowdown(
            &AppSpec::figure4_apps()[3],
            &CoschedConfig::paper_defaults(2),
        );
        let protocol_model = am_slowdown(2);
        assert!(quantum_model > 10.0 && protocol_model > 10.0);
        // And on the direction of the trend.
        let quantum_1 = slowdown(
            &AppSpec::figure4_apps()[3],
            &CoschedConfig::paper_defaults(1),
        );
        let protocol_1 = am_slowdown(1);
        assert!(quantum_model > quantum_1);
        assert!(protocol_model > protocol_1);
    }
}
