//! The mixed-workload study behind Figure 3: can a NOW run an MPP's
//! parallel workload on top of its owners' interactive workload?
//!
//! The paper overlays a month of LANL CM-5 job logs on two months of
//! DECstation usage traces and finds that **64 workstations run the
//! 32-node MPP workload only ~10 percent slower** than a dedicated
//! machine, while guaranteeing every returning user their workstation
//! back (processes migrate away, with their memory).
//!
//! This module reruns that experiment with the synthetic stand-ins from
//! [`now_trace`]: a dedicated-MPP baseline (FCFS space-sharing on a fixed
//! partition) against a NOW run where jobs claim idle workstations, lose
//! them when users return (pausing for a migration), and wait when the
//! building is busy.

use now_sim::{EventId, EventQueue, SimDuration, SimTime};
use now_trace::lanl::JobTrace;
use now_trace::usage::UsageTrace;
use serde::{Deserialize, Serialize};

use crate::migrate::MigrationModel;

/// Parameters of the NOW side of the experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MixedConfig {
    /// Memory image each parallel process drags along when migrated, MB.
    pub process_mem_mb: u64,
    /// The migration I/O path.
    pub migration: MigrationModel,
}

impl MixedConfig {
    /// Figure 3 defaults: 64-MB processes over ATM + parallel FS.
    pub fn paper_defaults() -> Self {
        MixedConfig {
            process_mem_mb: 64,
            migration: MigrationModel::now_atm_pfs(),
        }
    }
}

/// Per-run outcome: timing of every job, in trace order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunOutcome {
    /// `(arrival, first start, completion)` per job.
    pub jobs: Vec<(SimTime, SimTime, SimTime)>,
    /// Service demand per job (for dilation).
    pub services: Vec<SimDuration>,
    /// Total migrations performed (zero on the dedicated MPP).
    pub migrations: u64,
}

impl RunOutcome {
    /// Mean response time (completion − arrival) in seconds.
    pub fn mean_response_s(&self) -> f64 {
        if self.jobs.is_empty() {
            return 0.0;
        }
        self.jobs
            .iter()
            .map(|(a, _, c)| c.saturating_since(*a).as_secs_f64())
            .sum::<f64>()
            / self.jobs.len() as f64
    }

    /// Mean execution dilation: time from first start to completion,
    /// relative to the job's dedicated-coscheduled service demand. A
    /// dedicated MPP scores exactly 1; migrations and machine shortages
    /// push a NOW above 1. This is Figure 3's y-axis.
    pub fn mean_dilation(&self) -> f64 {
        if self.jobs.is_empty() {
            return 1.0;
        }
        self.jobs
            .iter()
            .zip(&self.services)
            .map(|((_, s, c), service)| {
                c.saturating_since(*s).as_secs_f64() / service.as_secs_f64().max(1e-9)
            })
            .sum::<f64>()
            / self.jobs.len() as f64
    }

    /// Mean per-job slowdown relative to a baseline run of the same trace.
    ///
    /// # Panics
    ///
    /// Panics if the runs cover different job counts.
    pub fn mean_slowdown_vs(&self, baseline: &RunOutcome) -> f64 {
        assert_eq!(self.jobs.len(), baseline.jobs.len(), "same trace required");
        assert!(!self.jobs.is_empty(), "no jobs to compare");
        let mut total = 0.0;
        for ((a1, _, c1), (a2, _, c2)) in self.jobs.iter().zip(&baseline.jobs) {
            debug_assert_eq!(a1, a2);
            let r1 = c1.saturating_since(*a1).as_secs_f64();
            let r2 = c2.saturating_since(*a2).as_secs_f64().max(1e-9);
            total += r1 / r2;
        }
        total / self.jobs.len() as f64
    }
}

/// Runs the job trace on a dedicated `nodes`-node MPP: FCFS space-sharing
/// (the head-of-queue job starts as soon as enough nodes are free).
pub fn dedicated_mpp(jobs: &JobTrace, nodes: u32) -> RunOutcome {
    #[derive(Debug)]
    enum Ev {
        Arrive(usize),
        Finish(usize),
    }
    let mut q = EventQueue::new();
    for (i, j) in jobs.jobs.iter().enumerate() {
        q.schedule_at(j.arrival, Ev::Arrive(i));
    }
    let mut free = nodes;
    let mut fifo: std::collections::VecDeque<usize> = Default::default();
    let mut completion: Vec<Option<SimTime>> = vec![None; jobs.jobs.len()];
    let mut started: Vec<Option<SimTime>> = vec![None; jobs.jobs.len()];
    while let Some((now, ev)) = q.pop() {
        match ev {
            Ev::Arrive(i) => fifo.push_back(i),
            Ev::Finish(i) => {
                free += jobs.jobs[i].nodes;
                completion[i] = Some(now);
            }
        }
        // Start whatever the head of the queue allows.
        while let Some(&head) = fifo.front() {
            let need = jobs.jobs[head].nodes;
            if need <= free {
                free -= need;
                fifo.pop_front();
                started[head] = Some(q.now());
                q.schedule_at(q.now() + jobs.jobs[head].service, Ev::Finish(head));
            } else {
                break;
            }
        }
    }
    RunOutcome {
        jobs: jobs
            .jobs
            .iter()
            .zip(started.iter().zip(&completion))
            .map(|(j, (s, c))| {
                (
                    j.arrival,
                    s.expect("all jobs start"),
                    c.expect("all jobs finish"),
                )
            })
            .collect(),
        services: jobs.jobs.iter().map(|j| j.service).collect(),
        migrations: 0,
    }
}

#[derive(Debug)]
enum JobState {
    Waiting,
    /// Running on a set of machines since `since` with `remaining` work.
    Running {
        machines: Vec<u32>,
        since: SimTime,
        remaining: SimDuration,
        finish_event: EventId,
    },
    /// Paused: migrating off a reclaimed machine, or waiting for a
    /// replacement machine.
    Paused {
        machines: Vec<u32>,
        remaining: SimDuration,
        /// A machine index that still needs replacing (None while only the
        /// migration delay is pending).
        needs_machine: bool,
    },
    Done,
}

/// Runs the job trace on a NOW whose machines follow `usage`, migrating
/// processes away whenever an owner returns.
///
/// # Panics
///
/// Panics if any job needs more nodes than the NOW has machines.
pub fn now_cluster(jobs: &JobTrace, usage: &UsageTrace, config: &MixedConfig) -> RunOutcome {
    #[derive(Debug)]
    enum Ev {
        Arrive(usize),
        Finish(usize),
        UserReturns(u32),
        UserLeaves(u32),
        MigrationDone(usize),
    }
    let machines = usage.machines.len() as u32;
    let max_need = jobs.jobs.iter().map(|j| j.nodes).max().unwrap_or(0);
    assert!(
        max_need <= machines,
        "a {max_need}-node job cannot fit on {machines} machines"
    );

    let mut q = EventQueue::new();
    for (i, j) in jobs.jobs.iter().enumerate() {
        q.schedule_at(j.arrival, Ev::Arrive(i));
    }
    // The availability rule: a machine rejoins the pool one minute after
    // its user goes quiet, not instantly.
    let idle_threshold = SimDuration::from_secs(60);
    for (m, mu) in usage.machines.iter().enumerate() {
        for p in &mu.periods {
            q.schedule_at(p.start, Ev::UserReturns(m as u32));
            q.schedule_at(p.end + idle_threshold, Ev::UserLeaves(m as u32));
        }
    }

    // Counted, not boolean: with the one-minute linger a new session can
    // begin before the previous session's delayed departure fires.
    let mut active_count = vec![0i32; machines as usize];
    // Which job occupies each machine.
    let mut occupant: Vec<Option<usize>> = vec![None; machines as usize];
    let mut states: Vec<JobState> = jobs.jobs.iter().map(|_| JobState::Waiting).collect();
    let mut fifo: std::collections::VecDeque<usize> = Default::default();
    let mut completion: Vec<Option<SimTime>> = vec![None; jobs.jobs.len()];
    let mut started: Vec<Option<SimTime>> = vec![None; jobs.jobs.len()];
    let mut migrations = 0u64;
    let migration_delay = config.migration.migration_time(config.process_mem_mb);

    // Helper: machines currently free for parallel work.
    let idle_unclaimed = |active_count: &[i32], occupant: &[Option<usize>]| -> Vec<u32> {
        (0..machines)
            .filter(|&m| active_count[m as usize] == 0 && occupant[m as usize].is_none())
            .collect()
    };

    while let Some((now, ev)) = q.pop() {
        match ev {
            Ev::Arrive(i) => fifo.push_back(i),
            Ev::Finish(i) => {
                if let JobState::Running { machines: ms, .. } = &states[i] {
                    for &m in ms {
                        occupant[m as usize] = None;
                    }
                    completion[i] = Some(now);
                    states[i] = JobState::Done;
                }
            }
            Ev::MigrationDone(i) => {
                // Resume if a machine set is complete; otherwise keep
                // waiting for a replacement.
                if let JobState::Paused {
                    machines: ms,
                    remaining,
                    needs_machine,
                } = &states[i]
                {
                    if !needs_machine {
                        let ms = ms.clone();
                        let remaining = *remaining;
                        let finish_event = q.schedule_at(now + remaining, Ev::Finish(i));
                        states[i] = JobState::Running {
                            machines: ms,
                            since: now,
                            remaining,
                            finish_event,
                        };
                    }
                }
            }
            Ev::UserLeaves(m) => {
                active_count[m as usize] -= 1;
                debug_assert!(active_count[m as usize] >= 0);
            }
            Ev::UserReturns(m) => {
                active_count[m as usize] += 1;
                if let Some(i) = occupant[m as usize] {
                    // The guarantee: evict the parallel process instantly;
                    // the job pauses for the migration.
                    occupant[m as usize] = None;
                    migrations += 1;
                    let (mut ms, remaining) = match &states[i] {
                        JobState::Running {
                            machines,
                            since,
                            remaining,
                            finish_event,
                        } => {
                            q.cancel(*finish_event);
                            let done = now.saturating_since(*since);
                            (machines.clone(), remaining.saturating_sub(done))
                        }
                        JobState::Paused {
                            machines,
                            remaining,
                            ..
                        } => (machines.clone(), *remaining),
                        _ => unreachable!("occupied machine implies live job"),
                    };
                    ms.retain(|&mm| mm != m);
                    // Find a replacement machine now if possible — taking
                    // the highest-numbered free machine implements the
                    // paper's "choose idle machines likely to stay idle"
                    // heuristic (our usage traces put the quiet machines at
                    // the high ids, as a stable diurnal pattern would).
                    let free = idle_unclaimed(&active_count, &occupant);
                    let needs_machine = if let Some(&r) = free.last() {
                        occupant[r as usize] = Some(i);
                        ms.push(r);
                        false
                    } else {
                        true
                    };
                    states[i] = JobState::Paused {
                        machines: ms,
                        remaining,
                        needs_machine,
                    };
                    if !needs_machine {
                        q.schedule_at(now + migration_delay, Ev::MigrationDone(i));
                    }
                }
            }
        }

        // Placement pass: give freed/idle machines to paused jobs needing
        // one, then start queued jobs FCFS.
        let mut free = idle_unclaimed(&active_count, &occupant);
        #[allow(clippy::needless_range_loop)] // i is also stored in `occupant`
        for i in 0..states.len() {
            if free.is_empty() {
                break;
            }
            if let JobState::Paused {
                machines: ms,
                remaining,
                needs_machine: true,
            } = &states[i]
            {
                let r = free.pop().expect("checked non-empty");
                occupant[r as usize] = Some(i);
                let mut ms = ms.clone();
                ms.push(r);
                let remaining = *remaining;
                states[i] = JobState::Paused {
                    machines: ms,
                    remaining,
                    needs_machine: false,
                };
                q.schedule_at(q.now() + migration_delay, Ev::MigrationDone(i));
            }
        }
        while let Some(&head) = fifo.front() {
            let need = jobs.jobs[head].nodes as usize;
            if free.len() >= need {
                let at = free.len() - need;
                let ms: Vec<u32> = free.split_off(at);
                for &m in &ms {
                    occupant[m as usize] = Some(head);
                }
                fifo.pop_front();
                started[head] = Some(q.now());
                let remaining = jobs.jobs[head].service;
                let finish_event = q.schedule_at(q.now() + remaining, Ev::Finish(head));
                states[head] = JobState::Running {
                    machines: ms,
                    since: q.now(),
                    remaining,
                    finish_event,
                };
            } else {
                break;
            }
        }
    }

    RunOutcome {
        jobs: jobs
            .jobs
            .iter()
            .zip(started.iter().zip(&completion))
            .map(|(j, (s, c))| {
                (
                    j.arrival,
                    s.expect("all jobs start on the NOW"),
                    c.expect("all jobs finish on the NOW"),
                )
            })
            .collect(),
        services: jobs.jobs.iter().map(|j| j.service).collect(),
        migrations,
    }
}

/// Generates the Figure 3 curve: mean execution dilation of the 32-node
/// MPP workload on the NOW (dedicated MPP = 1.0) as the number of
/// workstations grows. Averaged over several simulated days (the paper
/// used a month of job logs and two months of usage logs) to smooth
/// single-day noise.
pub fn figure3_series(seed: u64) -> Vec<(f64, f64)> {
    use now_trace::lanl::JobTraceConfig;
    use now_trace::usage::UsageTraceConfig;

    const DAYS: u64 = 6;
    let config = MixedConfig::paper_defaults();
    [40u32, 48, 56, 64, 80, 96]
        .iter()
        .map(|&n| {
            let mut total = 0.0;
            for day in 0..DAYS {
                let jobs =
                    JobTrace::generate(&JobTraceConfig::paper_defaults(), seed + day * 1_000);
                let mut ucfg = UsageTraceConfig::paper_defaults();
                ucfg.machines = n;
                let usage = UsageTrace::generate(&ucfg, seed + day * 1_000 + 1);
                total += now_cluster(&jobs, &usage, &config).mean_dilation();
            }
            (f64::from(n), total / DAYS as f64)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use now_trace::lanl::JobTraceConfig;
    use now_trace::usage::UsageTraceConfig;

    fn jobs(seed: u64) -> JobTrace {
        JobTrace::generate(&JobTraceConfig::paper_defaults(), seed)
    }

    fn usage(machines: u32, seed: u64) -> UsageTrace {
        let mut cfg = UsageTraceConfig::paper_defaults();
        cfg.machines = machines;
        UsageTrace::generate(&cfg, seed)
    }

    #[test]
    fn dedicated_mpp_completes_every_job() {
        let t = jobs(1);
        let out = dedicated_mpp(&t, 32);
        assert_eq!(out.jobs.len(), t.len());
        for (arrival, start, completion) in &out.jobs {
            assert!(start >= arrival);
            assert!(completion > start);
        }
        assert!(
            (out.mean_dilation() - 1.0).abs() < 1e-9,
            "dedicated runs undilated"
        );
    }

    #[test]
    fn dedicated_mpp_respects_capacity_via_queueing() {
        // A single-node MPP must serialise everything: total response far
        // above the 32-node partition's.
        let t = jobs(2);
        let small = dedicated_mpp(&t, 32);
        let smaller = dedicated_mpp(&t, t.jobs.iter().map(|j| j.nodes).max().unwrap());
        assert!(smaller.mean_response_s() >= small.mean_response_s());
    }

    #[test]
    fn now_cluster_completes_every_job() {
        let t = jobs(3);
        let out = now_cluster(&t, &usage(64, 4), &MixedConfig::paper_defaults());
        assert_eq!(out.jobs.len(), t.len());
    }

    #[test]
    fn sixty_four_workstations_run_the_mpp_workload_with_small_slowdown() {
        // The paper: "the parallel workload of a 32-node MPP runs only 10
        // percent slower when running on 64 workstations that are handling
        // a typical sequential workload as well."
        let t = jobs(5);
        let out = now_cluster(&t, &usage(64, 6), &MixedConfig::paper_defaults());
        let dilation = out.mean_dilation();
        assert!(
            (1.0..=1.35).contains(&dilation),
            "dilation at 64 workstations: {dilation}"
        );
        // And thanks to the extra capacity, overall responsiveness is not
        // worse than the dedicated machine either.
        let baseline = dedicated_mpp(&t, 32);
        let slowdown = out.mean_slowdown_vs(&baseline);
        assert!(slowdown < 1.3, "response slowdown {slowdown}");
    }

    #[test]
    fn slowdown_falls_as_the_now_grows() {
        let series = figure3_series(7);
        // Compare the small-cluster end against the large-cluster end
        // (single points are noisy; the trend is the claim).
        let head = (series[0].1 + series[1].1) / 2.0;
        let tail = (series[4].1 + series[5].1) / 2.0;
        assert!(
            tail < head,
            "dilation should fall with cluster size: {series:?}"
        );
        // And the tail approaches the dedicated machine.
        assert!(
            tail < 1.1,
            "large NOWs should be close to dedicated: {tail}"
        );
    }

    #[test]
    fn users_trigger_migrations() {
        let t = jobs(8);
        let out = now_cluster(&t, &usage(48, 9), &MixedConfig::paper_defaults());
        assert!(out.migrations > 0, "daytime users must reclaim machines");
    }

    #[test]
    fn jobs_never_run_on_active_machines() {
        // Indirect check: with *all* machines permanently active the
        // cluster can never place anything, so we use a usage trace with
        // no users instead and check migrations are zero.
        let t = jobs(10);
        let mut cfg = UsageTraceConfig::paper_defaults();
        cfg.machines = 64;
        cfg.fully_idle_fraction = 1.0;
        let quiet = UsageTrace::generate(&cfg, 11);
        let out = now_cluster(&t, &quiet, &MixedConfig::paper_defaults());
        assert_eq!(out.migrations, 0);
        assert!(
            (out.mean_dilation() - 1.0).abs() < 1e-9,
            "no users, no dilation"
        );
        // An always-idle 64-node NOW beats the 32-node MPP outright.
        let baseline = dedicated_mpp(&t, 32);
        assert!(out.mean_slowdown_vs(&baseline) <= 1.0 + 1e-9);
    }

    #[test]
    fn reserve_machines_absorb_demanding_workloads() {
        // The paper's remedy for demand beyond idle capacity: add
        // noninteractive machines. A tight 40-machine NOW plus 24 reserves
        // dilates no more than the bare 40-machine NOW.
        let t = jobs(19);
        let base_usage = usage(40, 19);
        let bare = now_cluster(&t, &base_usage, &MixedConfig::paper_defaults());
        let reserved = now_cluster(
            &t,
            &usage(40, 19).with_reserves(24),
            &MixedConfig::paper_defaults(),
        );
        assert!(
            reserved.mean_dilation() <= bare.mean_dilation() + 1e-9,
            "reserves must help: {} vs {}",
            reserved.mean_dilation(),
            bare.mean_dilation()
        );
        assert!(reserved.migrations <= bare.migrations);
    }

    #[test]
    fn deterministic_given_seeds() {
        let t = jobs(12);
        let u = usage(56, 13);
        let a = now_cluster(&t, &u, &MixedConfig::paper_defaults());
        let b = now_cluster(&t, &u, &MixedConfig::paper_defaults());
        assert_eq!(a, b);
    }
}
