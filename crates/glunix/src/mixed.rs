//! The mixed-workload study behind Figure 3: can a NOW run an MPP's
//! parallel workload on top of its owners' interactive workload?
//!
//! The paper overlays a month of LANL CM-5 job logs on two months of
//! DECstation usage traces and finds that **64 workstations run the
//! 32-node MPP workload only ~10 percent slower** than a dedicated
//! machine, while guaranteeing every returning user their workstation
//! back (processes migrate away, with their memory).
//!
//! This module reruns that experiment with the synthetic stand-ins from
//! [`now_trace`]: a dedicated-MPP baseline (FCFS space-sharing on a fixed
//! partition) against a NOW run where jobs claim idle workstations, lose
//! them when users return (pausing for a migration), and wait when the
//! building is busy.

use std::collections::VecDeque;

use now_probe::causal::category;
use now_probe::{Gauge, Probe};
use now_sim::{
    Component, ComponentId, CostMode, Ctx, Engine, EventCast, EventId, SimDuration, SimTime,
};
use now_trace::lanl::{JobTrace, ParallelJob};
use now_trace::usage::UsageTrace;
use serde::{Deserialize, Serialize};

use crate::migrate::MigrationModel;

/// Parameters of the NOW side of the experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MixedConfig {
    /// Memory image each parallel process drags along when migrated, MB.
    pub process_mem_mb: u64,
    /// The migration I/O path.
    pub migration: MigrationModel,
}

impl MixedConfig {
    /// Figure 3 defaults: 64-MB processes over ATM + parallel FS.
    pub fn paper_defaults() -> Self {
        MixedConfig {
            process_mem_mb: 64,
            migration: MigrationModel::now_atm_pfs(),
        }
    }
}

/// Per-run outcome: timing of every job, in trace order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunOutcome {
    /// `(arrival, first start, completion)` per job.
    pub jobs: Vec<(SimTime, SimTime, SimTime)>,
    /// Service demand per job (for dilation).
    pub services: Vec<SimDuration>,
    /// Total migrations performed (zero on the dedicated MPP).
    pub migrations: u64,
}

impl RunOutcome {
    /// Mean response time (completion − arrival) in seconds.
    pub fn mean_response_s(&self) -> f64 {
        if self.jobs.is_empty() {
            return 0.0;
        }
        self.jobs
            .iter()
            .map(|(a, _, c)| c.saturating_since(*a).as_secs_f64())
            .sum::<f64>()
            / self.jobs.len() as f64
    }

    /// Mean execution dilation: time from first start to completion,
    /// relative to the job's dedicated-coscheduled service demand. A
    /// dedicated MPP scores exactly 1; migrations and machine shortages
    /// push a NOW above 1. This is Figure 3's y-axis.
    pub fn mean_dilation(&self) -> f64 {
        if self.jobs.is_empty() {
            return 1.0;
        }
        self.jobs
            .iter()
            .zip(&self.services)
            .map(|((_, s, c), service)| {
                c.saturating_since(*s).as_secs_f64() / service.as_secs_f64().max(1e-9)
            })
            .sum::<f64>()
            / self.jobs.len() as f64
    }

    /// Mean per-job slowdown relative to a baseline run of the same trace.
    ///
    /// # Panics
    ///
    /// Panics if the runs cover different job counts.
    pub fn mean_slowdown_vs(&self, baseline: &RunOutcome) -> f64 {
        assert_eq!(self.jobs.len(), baseline.jobs.len(), "same trace required");
        assert!(!self.jobs.is_empty(), "no jobs to compare");
        let mut total = 0.0;
        for ((a1, _, c1), (a2, _, c2)) in self.jobs.iter().zip(&baseline.jobs) {
            debug_assert_eq!(a1, a2);
            let r1 = c1.saturating_since(*a1).as_secs_f64();
            let r2 = c2.saturating_since(*a2).as_secs_f64().max(1e-9);
            total += r1 / r2;
        }
        total / self.jobs.len() as f64
    }
}

/// Events driving the mixed-workload components ([`DedicatedMppComponent`]
/// uses the first two variants, [`MixedComponent`] all five).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MixedEvent {
    /// Job `i` arrives and joins the FCFS queue.
    Arrive(usize),
    /// Job `i`'s scheduled completion fires.
    Finish(usize),
    /// Machine `m`'s owner starts an interactive session.
    UserReturns(u32),
    /// Machine `m` has been quiet past the one-minute linger.
    UserLeaves(u32),
    /// Job `i`'s migration I/O completed.
    MigrationDone(usize),
}

/// The dedicated-MPP baseline as an engine component: FCFS space-sharing
/// on a fixed `nodes`-node partition (the head-of-queue job starts as soon
/// as enough nodes are free).
#[derive(Debug)]
pub struct DedicatedMppComponent {
    jobs: Vec<ParallelJob>,
    free: u32,
    fifo: VecDeque<usize>,
    completion: Vec<Option<SimTime>>,
    started: Vec<Option<SimTime>>,
}

impl DedicatedMppComponent {
    /// A fresh `nodes`-node MPP ready to run `jobs`.
    pub fn new(jobs: &JobTrace, nodes: u32) -> Self {
        DedicatedMppComponent {
            jobs: jobs.jobs.clone(),
            free: nodes,
            fifo: VecDeque::new(),
            completion: vec![None; jobs.jobs.len()],
            started: vec![None; jobs.jobs.len()],
        }
    }

    /// Seeds every job arrival into `engine`, addressed to component `id`.
    pub fn seed<M: EventCast<MixedEvent> + 'static>(
        engine: &mut Engine<M>,
        id: ComponentId,
        jobs: &JobTrace,
    ) {
        for (i, j) in jobs.jobs.iter().enumerate() {
            engine.schedule_at(id, j.arrival, M::upcast(MixedEvent::Arrive(i)));
        }
    }

    /// The run's outcome; call after [`Engine::run`].
    ///
    /// # Panics
    ///
    /// Panics if any job has not started and completed.
    pub fn outcome(&self) -> RunOutcome {
        RunOutcome {
            jobs: self
                .jobs
                .iter()
                .zip(self.started.iter().zip(&self.completion))
                .map(|(j, (s, c))| {
                    (
                        j.arrival,
                        s.expect("all jobs start"),
                        c.expect("all jobs finish"),
                    )
                })
                .collect(),
            services: self.jobs.iter().map(|j| j.service).collect(),
            migrations: 0,
        }
    }
}

impl<M: EventCast<MixedEvent> + 'static> Component<M> for DedicatedMppComponent {
    fn on_event(&mut self, ctx: &mut Ctx<'_, M>, event: M) {
        match event.downcast() {
            MixedEvent::Arrive(i) => self.fifo.push_back(i),
            MixedEvent::Finish(i) => {
                self.free += self.jobs[i].nodes;
                self.completion[i] = Some(ctx.now());
            }
            other => unreachable!("dedicated MPP received {other:?}"),
        }
        // Start whatever the head of the queue allows.
        while let Some(&head) = self.fifo.front() {
            let need = self.jobs[head].nodes;
            if need <= self.free {
                self.free -= need;
                self.fifo.pop_front();
                self.started[head] = Some(ctx.now());
                ctx.schedule_at(
                    ctx.now() + self.jobs[head].service,
                    M::upcast(MixedEvent::Finish(head)),
                );
            } else {
                break;
            }
        }
    }
}

/// Runs the job trace on a dedicated `nodes`-node MPP: FCFS space-sharing
/// (the head-of-queue job starts as soon as enough nodes are free).
pub fn dedicated_mpp(jobs: &JobTrace, nodes: u32) -> RunOutcome {
    let mut engine: Engine<MixedEvent> = Engine::new();
    let id = engine.register(DedicatedMppComponent::new(jobs, nodes));
    DedicatedMppComponent::seed(&mut engine, id, jobs);
    engine.run();
    engine.component::<DedicatedMppComponent>(id).outcome()
}

#[derive(Debug)]
enum JobState {
    Waiting,
    /// Running on a set of machines since `since` with `remaining` work.
    Running {
        machines: Vec<u32>,
        since: SimTime,
        remaining: SimDuration,
        finish_event: EventId,
    },
    /// Paused: migrating off a reclaimed machine, or waiting for a
    /// replacement machine.
    Paused {
        machines: Vec<u32>,
        remaining: SimDuration,
        /// The machine the evicted process's memory still lives on — the
        /// source node of the pending (or awaited) migration transfer.
        from: u32,
        /// A machine index that still needs replacing (false while only
        /// the migration delay is pending).
        needs_machine: bool,
    },
    Done,
}

/// The NOW side of the study as an engine component: jobs claim idle
/// workstations, lose them when users return (pausing for a migration),
/// and wait when the building is busy.
///
/// Under [`CostMode::Fixed`] the migration charges the constant
/// [`MigrationModel::migration_time`] (the legacy behaviour, bit-for-bit).
/// Under [`CostMode::Fabric`] the evicted process's memory image travels
/// the shared fabric from the reclaimed machine to its replacement —
/// machine index `m` is fabric node `m` — so migrations contend with
/// whatever else the cluster is doing to the wires.
#[derive(Debug)]
pub struct MixedComponent {
    jobs: Vec<ParallelJob>,
    config: MixedConfig,
    machines: u32,
    // Counted, not boolean: with the one-minute linger a new session can
    // begin before the previous session's delayed departure fires.
    active_count: Vec<i32>,
    /// Which job occupies each machine.
    occupant: Vec<Option<usize>>,
    states: Vec<JobState>,
    fifo: VecDeque<usize>,
    completion: Vec<Option<SimTime>>,
    started: Vec<Option<SimTime>>,
    migrations: u64,
    migration_delay: SimDuration,
    migrations_gauge: Gauge,
}

impl MixedComponent {
    /// A fresh NOW of `machines` workstations ready to run `jobs`.
    ///
    /// # Panics
    ///
    /// Panics if any job needs more nodes than the NOW has machines.
    pub fn new(jobs: &JobTrace, machines: u32, config: &MixedConfig) -> Self {
        let max_need = jobs.jobs.iter().map(|j| j.nodes).max().unwrap_or(0);
        assert!(
            max_need <= machines,
            "a {max_need}-node job cannot fit on {machines} machines"
        );
        MixedComponent {
            jobs: jobs.jobs.clone(),
            config: *config,
            machines,
            active_count: vec![0; machines as usize],
            occupant: vec![None; machines as usize],
            states: jobs.jobs.iter().map(|_| JobState::Waiting).collect(),
            fifo: VecDeque::new(),
            completion: vec![None; jobs.jobs.len()],
            started: vec![None; jobs.jobs.len()],
            migrations: 0,
            migration_delay: config.migration.migration_time(config.process_mem_mb),
            migrations_gauge: Gauge::default(),
        }
    }

    /// Attaches a telemetry probe gauging `glunix.migrations` (evictions
    /// performed so far), so the flight recorder can sample it.
    pub fn set_probe(&mut self, probe: &Probe) {
        self.migrations_gauge = probe.gauge("glunix.migrations");
    }

    /// Seeds job arrivals and the usage trace's user sessions into
    /// `engine`, addressed to component `id`, in the canonical order
    /// (arrivals first, then per-machine per-period returns/departures) —
    /// the order fixes FIFO tie-breaks and thus the run's exact history.
    pub fn seed<M: EventCast<MixedEvent> + 'static>(
        engine: &mut Engine<M>,
        id: ComponentId,
        jobs: &JobTrace,
        usage: &UsageTrace,
    ) {
        for (i, j) in jobs.jobs.iter().enumerate() {
            engine.schedule_at(id, j.arrival, M::upcast(MixedEvent::Arrive(i)));
        }
        // The availability rule: a machine rejoins the pool one minute
        // after its user goes quiet, not instantly.
        let idle_threshold = SimDuration::from_secs(60);
        for (m, mu) in usage.machines.iter().enumerate() {
            for p in &mu.periods {
                engine.schedule_at(id, p.start, M::upcast(MixedEvent::UserReturns(m as u32)));
                engine.schedule_at(
                    id,
                    p.end + idle_threshold,
                    M::upcast(MixedEvent::UserLeaves(m as u32)),
                );
            }
        }
    }

    /// Total migrations performed so far.
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// The run's outcome; call after [`Engine::run`].
    ///
    /// # Panics
    ///
    /// Panics if any job has not started and completed.
    pub fn outcome(&self) -> RunOutcome {
        RunOutcome {
            jobs: self
                .jobs
                .iter()
                .zip(self.started.iter().zip(&self.completion))
                .map(|(j, (s, c))| {
                    (
                        j.arrival,
                        s.expect("all jobs start on the NOW"),
                        c.expect("all jobs finish on the NOW"),
                    )
                })
                .collect(),
            services: self.jobs.iter().map(|j| j.service).collect(),
            migrations: self.migrations,
        }
    }

    /// Machines currently free for parallel work.
    fn idle_unclaimed(&self) -> Vec<u32> {
        (0..self.machines)
            .filter(|&m| self.active_count[m as usize] == 0 && self.occupant[m as usize].is_none())
            .collect()
    }

    /// When the migration of a `process_mem_mb`-MB image from machine
    /// `from` to machine `to` completes, per the engine's cost model.
    fn migration_done_at<M>(&self, ctx: &mut Ctx<'_, M>, from: u32, to: u32) -> SimTime {
        match ctx.cost_mode() {
            CostMode::Fixed => ctx.now() + self.migration_delay,
            CostMode::Fabric => {
                let bytes = self.config.process_mem_mb * 1024 * 1024;
                let cost = ctx.transfer_detailed(from, to, bytes);
                ctx.blame(category::AM_OVERHEAD, cost.overhead);
                ctx.blame(category::FABRIC_WAIT, cost.wait);
                ctx.blame(category::WIRE, cost.wire);
                cost.delivered
            }
        }
    }
}

impl<M: EventCast<MixedEvent> + 'static> Component<M> for MixedComponent {
    fn on_event(&mut self, ctx: &mut Ctx<'_, M>, event: M) {
        let now = ctx.now();
        match event.downcast() {
            MixedEvent::Arrive(i) => self.fifo.push_back(i),
            MixedEvent::Finish(i) => {
                if let JobState::Running { machines: ms, .. } = &self.states[i] {
                    for &m in ms {
                        self.occupant[m as usize] = None;
                    }
                    self.completion[i] = Some(now);
                    self.states[i] = JobState::Done;
                }
            }
            MixedEvent::MigrationDone(i) => {
                // Resume if a machine set is complete; otherwise keep
                // waiting for a replacement.
                if let JobState::Paused {
                    machines: ms,
                    remaining,
                    needs_machine: false,
                    ..
                } = &self.states[i]
                {
                    let ms = ms.clone();
                    let remaining = *remaining;
                    let finish_event =
                        ctx.schedule_at(now + remaining, M::upcast(MixedEvent::Finish(i)));
                    self.states[i] = JobState::Running {
                        machines: ms,
                        since: now,
                        remaining,
                        finish_event,
                    };
                }
            }
            MixedEvent::UserLeaves(m) => {
                self.active_count[m as usize] -= 1;
                debug_assert!(self.active_count[m as usize] >= 0);
            }
            MixedEvent::UserReturns(m) => {
                self.active_count[m as usize] += 1;
                if let Some(i) = self.occupant[m as usize] {
                    // The guarantee: evict the parallel process instantly;
                    // the job pauses for the migration.
                    self.occupant[m as usize] = None;
                    self.migrations += 1;
                    self.migrations_gauge.set(self.migrations as f64);
                    let (mut ms, remaining) = match &self.states[i] {
                        JobState::Running {
                            machines,
                            since,
                            remaining,
                            finish_event,
                        } => {
                            ctx.cancel(*finish_event);
                            let done = now.saturating_since(*since);
                            (machines.clone(), remaining.saturating_sub(done))
                        }
                        JobState::Paused {
                            machines,
                            remaining,
                            ..
                        } => (machines.clone(), *remaining),
                        _ => unreachable!("occupied machine implies live job"),
                    };
                    ms.retain(|&mm| mm != m);
                    // Find a replacement machine now if possible — taking
                    // the highest-numbered free machine implements the
                    // paper's "choose idle machines likely to stay idle"
                    // heuristic (our usage traces put the quiet machines at
                    // the high ids, as a stable diurnal pattern would).
                    let replacement = self.idle_unclaimed().last().copied();
                    let needs_machine = match replacement {
                        Some(r) => {
                            self.occupant[r as usize] = Some(i);
                            ms.push(r);
                            false
                        }
                        None => true,
                    };
                    self.states[i] = JobState::Paused {
                        machines: ms,
                        remaining,
                        from: m,
                        needs_machine,
                    };
                    if let Some(r) = replacement {
                        let done_at = self.migration_done_at(ctx, m, r);
                        ctx.schedule_at(done_at, M::upcast(MixedEvent::MigrationDone(i)));
                    }
                }
            }
        }

        // Placement pass: give freed/idle machines to paused jobs needing
        // one, then start queued jobs FCFS.
        let mut free = self.idle_unclaimed();
        for i in 0..self.states.len() {
            if free.is_empty() {
                break;
            }
            if let JobState::Paused {
                machines,
                remaining,
                from,
                needs_machine: true,
            } = &self.states[i]
            {
                let (mut ms, remaining, from) = (machines.clone(), *remaining, *from);
                let r = free.pop().expect("checked non-empty");
                self.occupant[r as usize] = Some(i);
                ms.push(r);
                self.states[i] = JobState::Paused {
                    machines: ms,
                    remaining,
                    from,
                    needs_machine: false,
                };
                let done_at = self.migration_done_at(ctx, from, r);
                ctx.schedule_at(done_at, M::upcast(MixedEvent::MigrationDone(i)));
            }
        }
        while let Some(&head) = self.fifo.front() {
            let need = self.jobs[head].nodes as usize;
            if free.len() >= need {
                let at = free.len() - need;
                let ms: Vec<u32> = free.split_off(at);
                for &m in &ms {
                    self.occupant[m as usize] = Some(head);
                }
                self.fifo.pop_front();
                self.started[head] = Some(now);
                let remaining = self.jobs[head].service;
                let finish_event =
                    ctx.schedule_at(now + remaining, M::upcast(MixedEvent::Finish(head)));
                self.states[head] = JobState::Running {
                    machines: ms,
                    since: now,
                    remaining,
                    finish_event,
                };
            } else {
                break;
            }
        }
    }
}

/// Runs the job trace on a NOW whose machines follow `usage`, migrating
/// processes away whenever an owner returns.
///
/// # Panics
///
/// Panics if any job needs more nodes than the NOW has machines.
pub fn now_cluster(jobs: &JobTrace, usage: &UsageTrace, config: &MixedConfig) -> RunOutcome {
    let machines = usage.machines.len() as u32;
    let mut engine: Engine<MixedEvent> = Engine::new();
    let id = engine.register(MixedComponent::new(jobs, machines, config));
    MixedComponent::seed(&mut engine, id, jobs, usage);
    engine.run();
    engine.component::<MixedComponent>(id).outcome()
}

/// Generates the Figure 3 curve: mean execution dilation of the 32-node
/// MPP workload on the NOW (dedicated MPP = 1.0) as the number of
/// workstations grows. Averaged over several simulated days (the paper
/// used a month of job logs and two months of usage logs) to smooth
/// single-day noise.
pub fn figure3_series(seed: u64) -> Vec<(f64, f64)> {
    use now_trace::lanl::JobTraceConfig;
    use now_trace::usage::UsageTraceConfig;

    const DAYS: u64 = 6;
    let config = MixedConfig::paper_defaults();
    [40u32, 48, 56, 64, 80, 96]
        .iter()
        .map(|&n| {
            let mut total = 0.0;
            for day in 0..DAYS {
                let jobs =
                    JobTrace::generate(&JobTraceConfig::paper_defaults(), seed + day * 1_000);
                let mut ucfg = UsageTraceConfig::paper_defaults();
                ucfg.machines = n;
                let usage = UsageTrace::generate(&ucfg, seed + day * 1_000 + 1);
                total += now_cluster(&jobs, &usage, &config).mean_dilation();
            }
            (f64::from(n), total / DAYS as f64)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use now_trace::lanl::JobTraceConfig;
    use now_trace::usage::UsageTraceConfig;

    fn jobs(seed: u64) -> JobTrace {
        JobTrace::generate(&JobTraceConfig::paper_defaults(), seed)
    }

    fn usage(machines: u32, seed: u64) -> UsageTrace {
        let mut cfg = UsageTraceConfig::paper_defaults();
        cfg.machines = machines;
        UsageTrace::generate(&cfg, seed)
    }

    #[test]
    fn dedicated_mpp_completes_every_job() {
        let t = jobs(1);
        let out = dedicated_mpp(&t, 32);
        assert_eq!(out.jobs.len(), t.len());
        for (arrival, start, completion) in &out.jobs {
            assert!(start >= arrival);
            assert!(completion > start);
        }
        assert!(
            (out.mean_dilation() - 1.0).abs() < 1e-9,
            "dedicated runs undilated"
        );
    }

    #[test]
    fn dedicated_mpp_respects_capacity_via_queueing() {
        // A single-node MPP must serialise everything: total response far
        // above the 32-node partition's.
        let t = jobs(2);
        let small = dedicated_mpp(&t, 32);
        let smaller = dedicated_mpp(&t, t.jobs.iter().map(|j| j.nodes).max().unwrap());
        assert!(smaller.mean_response_s() >= small.mean_response_s());
    }

    #[test]
    fn now_cluster_completes_every_job() {
        let t = jobs(3);
        let out = now_cluster(&t, &usage(64, 4), &MixedConfig::paper_defaults());
        assert_eq!(out.jobs.len(), t.len());
    }

    #[test]
    fn sixty_four_workstations_run_the_mpp_workload_with_small_slowdown() {
        // The paper: "the parallel workload of a 32-node MPP runs only 10
        // percent slower when running on 64 workstations that are handling
        // a typical sequential workload as well."
        let t = jobs(5);
        let out = now_cluster(&t, &usage(64, 6), &MixedConfig::paper_defaults());
        let dilation = out.mean_dilation();
        assert!(
            (1.0..=1.35).contains(&dilation),
            "dilation at 64 workstations: {dilation}"
        );
        // And thanks to the extra capacity, overall responsiveness is not
        // worse than the dedicated machine either.
        let baseline = dedicated_mpp(&t, 32);
        let slowdown = out.mean_slowdown_vs(&baseline);
        assert!(slowdown < 1.3, "response slowdown {slowdown}");
    }

    #[test]
    fn slowdown_falls_as_the_now_grows() {
        let series = figure3_series(7);
        // Compare the small-cluster end against the large-cluster end
        // (single points are noisy; the trend is the claim).
        let head = (series[0].1 + series[1].1) / 2.0;
        let tail = (series[4].1 + series[5].1) / 2.0;
        assert!(
            tail < head,
            "dilation should fall with cluster size: {series:?}"
        );
        // And the tail approaches the dedicated machine.
        assert!(
            tail < 1.1,
            "large NOWs should be close to dedicated: {tail}"
        );
    }

    #[test]
    fn users_trigger_migrations() {
        let t = jobs(8);
        let out = now_cluster(&t, &usage(48, 9), &MixedConfig::paper_defaults());
        assert!(out.migrations > 0, "daytime users must reclaim machines");
    }

    #[test]
    fn jobs_never_run_on_active_machines() {
        // Indirect check: with *all* machines permanently active the
        // cluster can never place anything, so we use a usage trace with
        // no users instead and check migrations are zero.
        let t = jobs(10);
        let mut cfg = UsageTraceConfig::paper_defaults();
        cfg.machines = 64;
        cfg.fully_idle_fraction = 1.0;
        let quiet = UsageTrace::generate(&cfg, 11);
        let out = now_cluster(&t, &quiet, &MixedConfig::paper_defaults());
        assert_eq!(out.migrations, 0);
        assert!(
            (out.mean_dilation() - 1.0).abs() < 1e-9,
            "no users, no dilation"
        );
        // An always-idle 64-node NOW beats the 32-node MPP outright.
        let baseline = dedicated_mpp(&t, 32);
        assert!(out.mean_slowdown_vs(&baseline) <= 1.0 + 1e-9);
    }

    #[test]
    fn reserve_machines_absorb_demanding_workloads() {
        // The paper's remedy for demand beyond idle capacity: add
        // noninteractive machines. A tight 40-machine NOW plus 24 reserves
        // dilates no more than the bare 40-machine NOW.
        let t = jobs(19);
        let base_usage = usage(40, 19);
        let bare = now_cluster(&t, &base_usage, &MixedConfig::paper_defaults());
        let reserved = now_cluster(
            &t,
            &usage(40, 19).with_reserves(24),
            &MixedConfig::paper_defaults(),
        );
        assert!(
            reserved.mean_dilation() <= bare.mean_dilation() + 1e-9,
            "reserves must help: {} vs {}",
            reserved.mean_dilation(),
            bare.mean_dilation()
        );
        assert!(reserved.migrations <= bare.migrations);
    }

    #[test]
    fn deterministic_given_seeds() {
        let t = jobs(12);
        let u = usage(56, 13);
        let a = now_cluster(&t, &u, &MixedConfig::paper_defaults());
        let b = now_cluster(&t, &u, &MixedConfig::paper_defaults());
        assert_eq!(a, b);
    }
}
