//! Software fault isolation: the enabling technology for a user-level
//! global OS.
//!
//! GLUnix interposes on applications *without kernel changes* by rewriting
//! their object code: a check before every store and indirect branch keeps
//! the application inside its sandbox, and the same rewriting redirects
//! system calls into the global-OS layer. The paper (citing Wahbe et al.,
//! SOSP 1993) puts the runtime overhead at **3 to 7 percent** after
//! aggressive compiler optimisation.
//!
//! This module provides the overhead model used when GLUnix runs a process
//! under interposition, plus a small instruction-mix calculator that shows
//! where the 3–7 percent comes from.

use now_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// The instruction mix of a sandboxed program, as fractions of dynamic
/// instructions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InstructionMix {
    /// Fraction of instructions that are stores.
    pub stores: f64,
    /// Fraction of instructions that are indirect branches.
    pub indirect_branches: f64,
}

impl InstructionMix {
    /// A typical RISC integer workload: ~10 percent stores, ~2 percent
    /// indirect branches.
    pub fn typical_integer() -> Self {
        InstructionMix {
            stores: 0.10,
            indirect_branches: 0.02,
        }
    }

    /// A floating-point kernel: fewer stores per instruction.
    pub fn typical_float() -> Self {
        InstructionMix {
            stores: 0.06,
            indirect_branches: 0.01,
        }
    }
}

/// The sandbox cost model: extra instructions inserted per guarded
/// operation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SfiModel {
    /// Extra instructions per store (address mask + check).
    pub per_store: f64,
    /// Extra instructions per indirect branch.
    pub per_indirect_branch: f64,
}

impl SfiModel {
    /// Wahbe et al.'s optimised encoding: about half an extra instruction
    /// per store after scheduling (checks fill delay slots), two per
    /// indirect branch.
    pub fn optimised() -> Self {
        SfiModel {
            per_store: 0.5,
            per_indirect_branch: 2.0,
        }
    }

    /// Naive encoding without compiler scheduling: several instructions
    /// per guarded operation.
    pub fn naive() -> Self {
        SfiModel {
            per_store: 4.0,
            per_indirect_branch: 5.0,
        }
    }

    /// The multiplicative runtime overhead for a program with `mix`:
    /// `1 + extra instructions per original instruction`.
    pub fn overhead_factor(&self, mix: InstructionMix) -> f64 {
        1.0 + mix.stores * self.per_store + mix.indirect_branches * self.per_indirect_branch
    }

    /// Applies the overhead to a computation time.
    pub fn apply(&self, mix: InstructionMix, time: SimDuration) -> SimDuration {
        time.mul_f64(self.overhead_factor(mix))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimised_overhead_is_3_to_7_percent() {
        // The paper: "the overhead of enforcing firewalls in software can
        // fall to between 3 and 7 percent."
        let model = SfiModel::optimised();
        for mix in [
            InstructionMix::typical_integer(),
            InstructionMix::typical_float(),
        ] {
            let f = model.overhead_factor(mix);
            assert!(
                (1.03..=1.095).contains(&f),
                "overhead factor {f} outside the paper's band"
            );
        }
    }

    #[test]
    fn naive_encoding_is_much_worse() {
        let naive = SfiModel::naive().overhead_factor(InstructionMix::typical_integer());
        let opt = SfiModel::optimised().overhead_factor(InstructionMix::typical_integer());
        assert!(naive > opt + 0.2, "naive {naive} vs optimised {opt}");
    }

    #[test]
    fn float_code_pays_less_than_integer_code() {
        let m = SfiModel::optimised();
        assert!(
            m.overhead_factor(InstructionMix::typical_float())
                < m.overhead_factor(InstructionMix::typical_integer())
        );
    }

    #[test]
    fn apply_scales_time() {
        let m = SfiModel::optimised();
        let mix = InstructionMix::typical_integer();
        let base = SimDuration::from_secs(100);
        let sandboxed = m.apply(mix, base);
        let factor = sandboxed.as_secs_f64() / base.as_secs_f64();
        assert!((factor - m.overhead_factor(mix)).abs() < 1e-9);
    }

    #[test]
    fn zero_mix_is_free() {
        let m = SfiModel::optimised();
        let mix = InstructionMix {
            stores: 0.0,
            indirect_branches: 0.0,
        };
        assert!((m.overhead_factor(mix) - 1.0).abs() < 1e-12);
    }
}
