//! Gang scheduling versus uncoordinated local scheduling: the Figure 4
//! experiment.
//!
//! MPP operating systems *coschedule* a parallel program — all its
//! processes run simultaneously — while a NOW of independent Unix kernels
//! timeshares each node obliviously. Figure 4 measures what that costs for
//! four application patterns as competing jobs are added:
//!
//! * **random small messages** (two such apps in the paper): one-way
//!   traffic to random peers; ample receiver buffering makes it nearly
//!   immune to scheduling skew.
//! * **Column**: infrequent but huge bursts to a single destination; the
//!   burst overflows the destination's buffer whenever its process is not
//!   running, stalling the sender.
//! * **Em3d**: bulk-synchronous neighbor exchange with barriers; every
//!   step waits for the slowest peer's quantum to come around.
//! * **Connect**: fine-grained request/reply; progress requires the
//!   requester and responder to be scheduled *simultaneously*, which
//!   uncoordinated schedules rarely arrange.
//!
//! The simulator runs at quantum granularity: within a quantum scheduled
//! processes advance through compute/communicate phases (message and
//! round-trip times are microseconds, four orders below the quantum, so
//! same-quantum interactions complete "instantly" and cross-quantum
//! messages sit in receive buffers). Under local scheduling each node's
//! app process lands in a uniformly random slot of each rotation —
//! modelling the quantum drift and interrupt jitter of real uncoordinated
//! kernels.

use now_probe::Probe;
use now_sim::{SimDuration, SimRng};
use serde::{Deserialize, Serialize};

/// Communication pattern of a parallel application.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CommPattern {
    /// One-way small messages to uniformly random peers each step.
    RandomSmall {
        /// Messages per step.
        msgs_per_step: u32,
    },
    /// A burst of messages to one (per-step random) destination.
    Burst {
        /// Messages in each burst.
        msgs_per_step: u32,
    },
    /// Neighbor exchange on a ring followed by a barrier.
    NeighborBarrier,
    /// Blocking request/reply pairs to random peers.
    RequestReply {
        /// Round trips per step.
        reqs_per_step: u32,
    },
}

/// A parallel application model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AppSpec {
    /// Label used in reports.
    pub name: &'static str,
    /// Main-loop iterations.
    pub steps: u32,
    /// Computation per step per process.
    pub compute_per_step: SimDuration,
    /// Communication pattern.
    pub pattern: CommPattern,
}

impl AppSpec {
    /// The paper's four benchmark classes, sized so a dedicated run takes
    /// a few hundred milliseconds.
    pub fn figure4_apps() -> [AppSpec; 4] {
        [
            AppSpec {
                name: "random small msgs",
                steps: 100,
                compute_per_step: SimDuration::from_millis(2),
                pattern: CommPattern::RandomSmall { msgs_per_step: 64 },
            },
            AppSpec {
                name: "Column",
                steps: 20,
                compute_per_step: SimDuration::from_millis(2),
                pattern: CommPattern::Burst {
                    msgs_per_step: 6_000,
                },
            },
            AppSpec {
                name: "Em3d",
                steps: 100,
                compute_per_step: SimDuration::from_millis(2),
                pattern: CommPattern::NeighborBarrier,
            },
            AppSpec {
                name: "Connect",
                steps: 50,
                compute_per_step: SimDuration::from_millis(2),
                pattern: CommPattern::RequestReply { reqs_per_step: 20 },
            },
        ]
    }
}

/// How the cluster schedules the parallel job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scheduling {
    /// All of the job's processes run in the same quantum of each rotation.
    Gang,
    /// Each node picks the job's slot independently (and it drifts).
    Local,
}

/// Simulation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoschedConfig {
    /// Nodes the application spans.
    pub nodes: u32,
    /// Scheduling quantum.
    pub quantum: SimDuration,
    /// Competing (timeshared) jobs per node.
    pub competing_jobs: u32,
    /// Receive-buffer capacity per process, messages.
    pub recv_buffer: u32,
    /// Sender CPU cost per small message.
    pub msg_cpu: SimDuration,
    /// Round-trip time when both ends are scheduled.
    pub rtt: SimDuration,
    /// Seed for slot placement and destination choices.
    pub seed: u64,
}

impl CoschedConfig {
    /// Figure 4's setup: 16 nodes, 100-ms quanta, 4,096-message buffers,
    /// Active-Message-class costs.
    pub fn paper_defaults(competing_jobs: u32) -> Self {
        CoschedConfig {
            nodes: 16,
            quantum: SimDuration::from_millis(100),
            competing_jobs,
            recv_buffer: 4_096,
            msg_cpu: SimDuration::from_micros(5),
            rtt: SimDuration::from_micros(50),
            seed: 1,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    Compute { remaining: SimDuration },
    Send { dst: u32, sent: u32 },
    Requests { dst: u32, done: u32 },
    Barrier,
    Finished,
}

struct Proc {
    step: u32,
    phase: Phase,
    /// Highest step whose sends this process has completed (for barriers).
    sent_step: i64,
}

/// Runs `app` under `scheduling` and returns its completion time.
///
/// # Panics
///
/// Panics on degenerate configurations (fewer than 2 nodes, zero steps).
pub fn run(app: &AppSpec, scheduling: Scheduling, config: &CoschedConfig) -> SimDuration {
    run_probed(app, scheduling, config, &Probe::disabled())
}

/// [`run`] with telemetry:
///
/// * `cosched.quanta` — quanta elapsed until completion;
/// * `cosched.slot_moves` — nodes whose app slot migrated between
///   rotations (always zero under gang scheduling);
/// * `cosched.sender_stalls` / `cosched.responder_blocked` — senders
///   stalled on a full remote buffer, requesters blocked on a descheduled
///   responder;
/// * `cosched.scheduled_nodes` histogram — per-quantum count of nodes
///   running the app (the slot-fill profile);
/// * `cosched.slot_skew` histogram — per-rotation spread (max − min) of
///   the app's slot across nodes.
///
/// # Panics
///
/// Panics on degenerate configurations (fewer than 2 nodes, zero steps).
pub fn run_probed(
    app: &AppSpec,
    scheduling: Scheduling,
    config: &CoschedConfig,
    probe: &Probe,
) -> SimDuration {
    assert!(config.nodes >= 2, "a parallel app needs at least two nodes");
    assert!(app.steps > 0, "the app must do something");
    let n = config.nodes as usize;
    let mut rng = SimRng::new(config.seed);
    let mut procs: Vec<Proc> = (0..n)
        .map(|_| Proc {
            step: 0,
            phase: Phase::Compute {
                remaining: app.compute_per_step,
            },
            sent_step: -1,
        })
        .collect();
    let mut inbox = vec![0u32; n]; // buffered messages per process
    let slots = 1 + config.competing_jobs as u64;
    let mut quantum_index: u64 = 0;
    // Slot of the app process on each node for the current rotation.
    let mut slot_of: Vec<u64> = vec![0; n];

    loop {
        let rotation_pos = quantum_index % slots;
        if rotation_pos == 0 {
            // New rotation: place the app's slot on each node.
            let mut moves = 0u64;
            for s in slot_of.iter_mut() {
                let next = match scheduling {
                    Scheduling::Gang => 0,
                    Scheduling::Local => rng.gen_range(0..slots),
                };
                if quantum_index > 0 && next != *s {
                    moves += 1;
                }
                *s = next;
            }
            if probe.is_enabled() {
                probe.count("cosched.slot_moves", moves);
                let skew = slot_of.iter().max().unwrap_or(&0) - slot_of.iter().min().unwrap_or(&0);
                probe.histogram("cosched.slot_skew").record(skew);
            }
        }
        let scheduled: Vec<bool> = slot_of.iter().map(|&s| s == rotation_pos).collect();
        if probe.is_enabled() {
            let fill = scheduled.iter().filter(|&&s| s).count() as u64;
            probe.histogram("cosched.scheduled_nodes").record(fill);
        }

        // Scheduled processes drain their receive buffers first.
        for (p, &sched) in scheduled.iter().enumerate() {
            if sched {
                inbox[p] = 0;
            }
        }

        // Advance scheduled processes until budgets exhaust or everyone
        // blocks.
        let mut budget: Vec<SimDuration> = (0..n)
            .map(|p| {
                if scheduled[p] {
                    config.quantum
                } else {
                    SimDuration::ZERO
                }
            })
            .collect();
        let mut progress = true;
        while progress {
            progress = false;
            for p in 0..n {
                if !scheduled[p] || budget[p].is_zero() {
                    continue;
                }
                if advance(
                    p,
                    app,
                    config,
                    &mut procs,
                    &mut inbox,
                    &scheduled,
                    &mut budget,
                    &mut rng,
                    probe,
                ) {
                    progress = true;
                }
            }
        }

        quantum_index += 1;
        if procs.iter().all(|p| p.phase == Phase::Finished) {
            probe.count("cosched.quanta", quantum_index);
            return config.quantum * quantum_index;
        }
        // Safety valve: a genuinely wedged configuration would loop
        // forever; nothing in the model should ever need this many quanta.
        assert!(
            quantum_index < 2_000_000,
            "scheduling simulation failed to converge"
        );
    }
}

/// Advances process `p` one micro-action. Returns whether anything
/// changed.
#[allow(clippy::too_many_arguments)]
fn advance(
    p: usize,
    app: &AppSpec,
    config: &CoschedConfig,
    procs: &mut [Proc],
    inbox: &mut [u32],
    scheduled: &[bool],
    budget: &mut [SimDuration],
    rng: &mut SimRng,
    probe: &Probe,
) -> bool {
    let n = procs.len();
    match procs[p].phase {
        Phase::Finished => false,
        Phase::Compute { remaining } => {
            let spend = remaining.min(budget[p]);
            budget[p] -= spend;
            let left = remaining - spend;
            if left.is_zero() {
                // Enter the communication phase for this step.
                procs[p].phase = match app.pattern {
                    CommPattern::RandomSmall { .. } | CommPattern::Burst { .. } => {
                        let dst = pick_other(rng, n, p);
                        Phase::Send {
                            dst: dst as u32,
                            sent: 0,
                        }
                    }
                    CommPattern::NeighborBarrier => {
                        // Sends to ring neighbors are tiny: complete them
                        // within this action.
                        procs[p].sent_step = i64::from(procs[p].step);
                        Phase::Barrier
                    }
                    CommPattern::RequestReply { .. } => {
                        let dst = pick_other(rng, n, p);
                        Phase::Requests {
                            dst: dst as u32,
                            done: 0,
                        }
                    }
                };
            } else {
                procs[p].phase = Phase::Compute { remaining: left };
            }
            !spend.is_zero() || left.is_zero()
        }
        Phase::Send { dst, sent } => {
            let total = match app.pattern {
                CommPattern::RandomSmall { msgs_per_step } => msgs_per_step,
                CommPattern::Burst { msgs_per_step } => msgs_per_step,
                _ => unreachable!("send phase only for message patterns"),
            };
            let mut sent_now = 0;
            let mut sent_total = sent;
            let mut cur_dst = dst as usize;
            while sent_total < total && budget[p] >= config.msg_cpu {
                // Random-small re-picks a destination per message; Column
                // keeps hammering one.
                if matches!(app.pattern, CommPattern::RandomSmall { .. }) {
                    cur_dst = pick_other(rng, n, p);
                }
                if scheduled[cur_dst] {
                    // Receiver is running: consumed immediately.
                } else if inbox[cur_dst] < config.recv_buffer {
                    inbox[cur_dst] += 1;
                } else {
                    // Buffer full at a descheduled receiver: the sender
                    // stalls for the rest of its quantum.
                    probe.count("cosched.sender_stalls", 1);
                    budget[p] = SimDuration::ZERO;
                    procs[p].phase = Phase::Send {
                        dst: cur_dst as u32,
                        sent: sent_total,
                    };
                    return sent_now > 0;
                }
                budget[p] -= config.msg_cpu;
                sent_total += 1;
                sent_now += 1;
            }
            if sent_total == total {
                procs[p].sent_step = i64::from(procs[p].step);
                finish_step(p, procs, app);
            } else {
                procs[p].phase = Phase::Send {
                    dst: cur_dst as u32,
                    sent: sent_total,
                };
            }
            sent_now > 0
        }
        Phase::Barrier => {
            // Pass when both ring neighbors have completed their sends for
            // this step (their messages are in our buffer or delivered).
            let step = i64::from(procs[p].step);
            let left = (p + n - 1) % n;
            let right = (p + 1) % n;
            if procs[left].sent_step >= step && procs[right].sent_step >= step {
                finish_step(p, procs, app);
                true
            } else {
                false
            }
        }
        Phase::Requests { dst, done } => {
            let total = match app.pattern {
                CommPattern::RequestReply { reqs_per_step } => reqs_per_step,
                _ => unreachable!("request phase only for request/reply"),
            };
            let mut done_now = 0;
            let mut done_total = done;
            let mut cur_dst = dst as usize;
            while done_total < total && budget[p] >= config.rtt {
                if !scheduled[cur_dst] {
                    // The responder is not running: the request sits until
                    // a quantum where it is. Blocked.
                    probe.count("cosched.responder_blocked", 1);
                    budget[p] = SimDuration::ZERO;
                    procs[p].phase = Phase::Requests {
                        dst: cur_dst as u32,
                        done: done_total,
                    };
                    return done_now > 0;
                }
                budget[p] -= config.rtt;
                done_total += 1;
                done_now += 1;
                cur_dst = pick_other(rng, n, p);
            }
            if done_total == total {
                procs[p].sent_step = i64::from(procs[p].step);
                finish_step(p, procs, app);
            } else {
                procs[p].phase = Phase::Requests {
                    dst: cur_dst as u32,
                    done: done_total,
                };
            }
            done_now > 0
        }
    }
}

fn finish_step(p: usize, procs: &mut [Proc], app: &AppSpec) {
    procs[p].step += 1;
    procs[p].phase = if procs[p].step >= app.steps {
        // A finished process keeps its buffers drained and its sends
        // visible; mark sent_step beyond any barrier.
        procs[p].sent_step = i64::MAX;
        Phase::Finished
    } else {
        Phase::Compute {
            remaining: app.compute_per_step,
        }
    };
}

fn pick_other(rng: &mut SimRng, n: usize, me: usize) -> usize {
    let mut d = rng.index(n - 1);
    if d >= me {
        d += 1;
    }
    d
}

/// The slowdown of local scheduling relative to gang scheduling for the
/// same application and competing load.
pub fn slowdown(app: &AppSpec, config: &CoschedConfig) -> f64 {
    slowdown_probed(app, config, &Probe::disabled())
}

/// [`slowdown`] with telemetry (both the gang and local runs fire the
/// `cosched.*` probes described on [`run_probed`]).
pub fn slowdown_probed(app: &AppSpec, config: &CoschedConfig, probe: &Probe) -> f64 {
    let gang = run_probed(app, Scheduling::Gang, config, probe);
    let local = run_probed(app, Scheduling::Local, config, probe);
    local.ratio(gang)
}

/// Generates the Figure 4 series: for each application, slowdown at 0..=3
/// competing jobs.
pub fn figure4_series() -> Vec<(String, Vec<(f64, f64)>)> {
    figure4_series_probed(&Probe::disabled())
}

/// [`figure4_series`] with telemetry aggregated across every run.
pub fn figure4_series_probed(probe: &Probe) -> Vec<(String, Vec<(f64, f64)>)> {
    AppSpec::figure4_apps()
        .iter()
        .map(|app| {
            let points = (0..=3)
                .map(|j| {
                    let config = CoschedConfig::paper_defaults(j);
                    (f64::from(j), slowdown_probed(app, &config, probe))
                })
                .collect();
            (app.name.to_string(), points)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn apps() -> [AppSpec; 4] {
        AppSpec::figure4_apps()
    }

    fn slow(app: &AppSpec, j: u32) -> f64 {
        slowdown(app, &CoschedConfig::paper_defaults(j))
    }

    #[test]
    fn no_competition_means_no_slowdown() {
        // With zero competing jobs, local scheduling == gang scheduling.
        for app in &apps() {
            let s = slow(app, 0);
            assert!((s - 1.0).abs() < 1e-9, "{}: slowdown {s} at j=0", app.name);
        }
    }

    #[test]
    fn random_small_messages_barely_slow_down() {
        // "as long as enough buffering exists on the destination
        // processor, the sending processor is not significantly slowed."
        let app = &apps()[0];
        for j in 1..=3 {
            let s = slow(app, j);
            assert!(s < 1.6, "random-small slowdown {s} at j={j}");
        }
    }

    #[test]
    fn column_overflows_buffers_and_slows() {
        // "The Column benchmark runs slowly even though it communicates
        // infrequently, because it overflows the buffers."
        let app = &apps()[1];
        let s = slow(app, 2);
        let random = slow(&apps()[0], 2);
        assert!(s > 2.0, "Column slowdown {s}");
        assert!(s > random * 1.5, "Column {s} vs random {random}");
    }

    #[test]
    fn em3d_suffers_at_synchronization_points() {
        let app = &apps()[2];
        let s = slow(app, 2);
        let random = slow(&apps()[0], 2);
        assert!(s > 3.0, "Em3d slowdown {s}");
        assert!(s > random * 2.0);
    }

    #[test]
    fn connect_performs_very_poorly() {
        let connect = slow(&apps()[3], 2);
        for other in &apps()[..3] {
            let s = slow(other, 2);
            assert!(
                connect > s * 1.5,
                "Connect ({connect}) must dominate {} ({s})",
                other.name
            );
        }
        assert!(connect > 10.0, "Connect slowdown {connect}");
    }

    #[test]
    fn slowdowns_grow_with_competing_jobs() {
        // For the sensitive apps, more competing jobs means worse skew.
        for app in &apps()[1..] {
            let s1 = slow(app, 1);
            let s3 = slow(app, 3);
            assert!(
                s3 > s1 * 0.9,
                "{}: slowdown should not collapse ({s1} -> {s3})",
                app.name
            );
        }
        let connect1 = slow(&apps()[3], 1);
        let connect3 = slow(&apps()[3], 3);
        assert!(connect3 > connect1, "Connect must degrade with load");
    }

    #[test]
    fn gang_time_scales_with_timeslice_share() {
        // Gang-scheduled completion time grows with the number of
        // competing jobs (the app gets 1/(1+j) of the machine).
        let app = &apps()[0];
        let t1 = run(app, Scheduling::Gang, &CoschedConfig::paper_defaults(0));
        let t3 = run(app, Scheduling::Gang, &CoschedConfig::paper_defaults(2));
        let ratio = t3.ratio(t1);
        assert!((2.0..4.5).contains(&ratio), "gang scaling {ratio}");
    }

    #[test]
    fn deterministic_given_seed() {
        let app = &apps()[3];
        let config = CoschedConfig::paper_defaults(2);
        assert_eq!(
            run(app, Scheduling::Local, &config),
            run(app, Scheduling::Local, &config)
        );
    }

    #[test]
    fn figure4_series_shape() {
        let series = figure4_series();
        assert_eq!(series.len(), 4);
        for (name, points) in &series {
            assert_eq!(points.len(), 4, "{name}");
            assert!((points[0].1 - 1.0).abs() < 1e-9, "{name} at j=0");
        }
    }
}
