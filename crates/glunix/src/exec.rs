//! Remote execution of sequential jobs — `glurun`, the everyday face of
//! GLUnix.
//!
//! Sequential jobs submitted anywhere in the building run on the
//! least-loaded available workstation, inside a software-fault-isolation
//! sandbox (the 3–7 percent tax from [`crate::sfi`]). Jobs checkpoint
//! periodically; when a node crashes, its jobs restart elsewhere from the
//! last checkpoint — "programs can restart from their last checkpoint,
//! while programs running on other CPUs continue unaffected."

use now_sim::{EventQueue, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::sfi::{InstructionMix, SfiModel};

/// A sequential job submitted to GLUnix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SeqJob {
    /// Submission time.
    pub arrival: SimTime,
    /// CPU demand on a dedicated, un-sandboxed workstation.
    pub service: SimDuration,
}

/// Scheduler parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExecConfig {
    /// Apply the SFI sandbox (GLUnix interposition) to remote jobs.
    pub sandbox: bool,
    /// Checkpoint period; on node failure a job loses at most this much
    /// progress.
    pub checkpoint_every: SimDuration,
    /// Time to restart from a checkpoint on a new node (fetch image from
    /// xFS and resume).
    pub restart_cost: SimDuration,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            sandbox: true,
            checkpoint_every: SimDuration::from_secs(300),
            restart_cost: SimDuration::from_secs(5),
        }
    }
}

/// Outcome of one batch run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecOutcome {
    /// Completion time per job, in submission order.
    pub completions: Vec<SimTime>,
    /// Job count placed on each node.
    pub placements: Vec<u32>,
    /// Restarts performed due to node failures.
    pub restarts: u64,
}

impl ExecOutcome {
    /// Mean response time in seconds.
    pub fn mean_response_s(&self, jobs: &[SeqJob]) -> f64 {
        assert_eq!(jobs.len(), self.completions.len());
        if jobs.is_empty() {
            return 0.0;
        }
        jobs.iter()
            .zip(&self.completions)
            .map(|(j, c)| c.saturating_since(j.arrival).as_secs_f64())
            .sum::<f64>()
            / jobs.len() as f64
    }
}

/// Runs `jobs` on `nodes` workstations with least-loaded placement.
/// `failures` is a list of `(time, node)` crash events: the node drops its
/// jobs (restarted elsewhere from checkpoint) and stays down.
///
/// Jobs time-share a node processor-sharing style: with `k` jobs on a
/// node, each progresses at rate `1/k`.
///
/// # Panics
///
/// Panics if there are no nodes, or all nodes fail while jobs remain.
pub fn run_batch(
    jobs: &[SeqJob],
    nodes: u32,
    failures: &[(SimTime, u32)],
    config: &ExecConfig,
) -> ExecOutcome {
    assert!(nodes > 0, "need at least one workstation");
    let sfi = SfiModel::optimised();
    let factor = if config.sandbox {
        sfi.overhead_factor(InstructionMix::typical_integer())
    } else {
        1.0
    };

    #[derive(Debug, Clone, Copy)]
    enum Ev {
        Arrive(usize),
        NodeFails(u32),
        /// Progress re-evaluation point (a completion estimate).
        Check,
    }

    #[derive(Debug, Clone, Copy)]
    struct Running {
        node: u32,
        /// Sandboxed work remaining.
        remaining: SimDuration,
        /// Work completed at the last checkpoint.
        checkpointed: SimDuration,
        /// Total sandboxed demand (for checkpoint bookkeeping).
        total: SimDuration,
        last_update: SimTime,
        /// Elapsed nanoseconds not yet converted to progress (the
        /// remainder of the elapsed/share division) — without it, frequent
        /// settlements would silently discard sub-share slivers and the
        /// simulation would crawl.
        carry_ns: u64,
    }

    let mut q = EventQueue::new();
    for (i, j) in jobs.iter().enumerate() {
        q.schedule_at(j.arrival, Ev::Arrive(i));
    }
    for &(t, n) in failures {
        q.schedule_at(t, Ev::NodeFails(n));
    }

    let mut node_up = vec![true; nodes as usize];
    let mut node_jobs = vec![0u32; nodes as usize];
    let mut placements = vec![0u32; nodes as usize];
    let mut running: Vec<Option<Running>> = vec![None; jobs.len()];
    let mut completions: Vec<Option<SimTime>> = vec![None; jobs.len()];
    let mut restarts = 0u64;
    let mut outstanding = 0usize;

    // Progress accounting: advance every running job by elapsed/load.
    fn settle(
        running: &mut [Option<Running>],
        node_jobs: &[u32],
        now: SimTime,
        checkpoint_every: SimDuration,
    ) {
        for r in running.iter_mut().flatten() {
            let share = u64::from(node_jobs[r.node as usize].max(1));
            let elapsed = now.saturating_since(r.last_update).as_nanos() + r.carry_ns;
            let progressed = SimDuration::from_nanos(elapsed / share);
            r.carry_ns = elapsed % share;
            r.remaining = r.remaining.saturating_sub(progressed);
            // Right after a restart, remaining may exceed the original
            // demand by the restart cost; progress saturates at zero.
            let done_after = r.total.saturating_sub(r.remaining);
            // Checkpoints taken at fixed progress intervals.
            let cp = checkpoint_every;
            if !cp.is_zero() {
                let k = done_after.as_nanos() / cp.as_nanos();
                let cp_done = SimDuration::from_nanos(k * cp.as_nanos());
                if cp_done > r.checkpointed {
                    r.checkpointed = cp_done.min(done_after);
                }
            }
            r.last_update = now;
        }
    }

    // Completion estimate: schedule a Check at the earliest finish time.
    fn schedule_check(q: &mut EventQueue<Ev>, running: &[Option<Running>], node_jobs: &[u32]) {
        let mut earliest: Option<SimTime> = None;
        for r in running.iter().flatten() {
            let share = u64::from(node_jobs[r.node as usize].max(1));
            let eta = r.last_update + r.remaining * share;
            earliest = Some(earliest.map_or(eta, |e| e.min(eta)));
        }
        if let Some(t) = earliest {
            q.schedule_at(t, Ev::Check);
        }
    }

    let place = |node_up: &[bool], node_jobs: &[u32]| -> u32 {
        node_up
            .iter()
            .enumerate()
            .filter(|(_, &up)| up)
            .min_by_key(|(n, _)| (node_jobs[*n], *n))
            .map(|(n, _)| n as u32)
            .expect("at least one node is up")
    };

    while let Some((now, ev)) = q.pop() {
        settle(&mut running, &node_jobs, now, config.checkpoint_every);
        match ev {
            Ev::Arrive(i) => {
                let demand = jobs[i].service.mul_f64(factor);
                let node = place(&node_up, &node_jobs);
                node_jobs[node as usize] += 1;
                placements[node as usize] += 1;
                running[i] = Some(Running {
                    node,
                    remaining: demand,
                    checkpointed: SimDuration::ZERO,
                    total: demand,
                    last_update: now,
                    carry_ns: 0,
                });
                outstanding += 1;
            }
            Ev::NodeFails(n) => {
                if !node_up[n as usize] {
                    continue;
                }
                node_up[n as usize] = false;
                node_jobs[n as usize] = 0;
                assert!(
                    node_up.iter().any(|&u| u),
                    "all nodes failed with jobs outstanding"
                );
                for r in running.iter_mut().flatten() {
                    if r.node == n {
                        // Restart elsewhere from the checkpoint: lose
                        // progress since it, pay the restart cost.
                        restarts += 1;
                        let new_node = place(&node_up, &node_jobs);
                        node_jobs[new_node as usize] += 1;
                        placements[new_node as usize] += 1;
                        r.node = new_node;
                        r.remaining = r.total.saturating_sub(r.checkpointed) + config.restart_cost;
                        r.last_update = now;
                        r.carry_ns = 0;
                    }
                }
            }
            Ev::Check => {}
        }
        // Reap finished jobs.
        for (i, slot) in running.iter_mut().enumerate() {
            if let Some(r) = slot {
                if r.remaining.is_zero() {
                    node_jobs[r.node as usize] -= 1;
                    completions[i] = Some(now);
                    *slot = None;
                    outstanding -= 1;
                }
            }
        }
        if outstanding > 0 || !q.is_empty() {
            schedule_check(&mut q, &running, &node_jobs);
        }
        if outstanding == 0 && q.is_empty() {
            break;
        }
    }

    ExecOutcome {
        completions: completions
            .into_iter()
            .map(|c| c.expect("every job completes"))
            .collect(),
        placements,
        restarts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(at_s: u64, service_s: u64) -> SeqJob {
        SeqJob {
            arrival: SimTime::from_secs(at_s),
            service: SimDuration::from_secs(service_s),
        }
    }

    fn no_sandbox() -> ExecConfig {
        ExecConfig {
            sandbox: false,
            ..ExecConfig::default()
        }
    }

    #[test]
    fn single_job_completes_after_its_service() {
        let jobs = [job(0, 100)];
        let out = run_batch(&jobs, 4, &[], &no_sandbox());
        assert_eq!(out.completions[0], SimTime::from_secs(100));
    }

    #[test]
    fn sandbox_adds_three_to_seven_percent() {
        let jobs = [job(0, 1_000)];
        let bare = run_batch(&jobs, 1, &[], &no_sandbox());
        let sandboxed = run_batch(&jobs, 1, &[], &ExecConfig::default());
        let ratio = sandboxed.completions[0].as_secs_f64() / bare.completions[0].as_secs_f64();
        assert!((1.03..=1.095).contains(&ratio), "SFI tax {ratio}");
    }

    #[test]
    fn load_balancer_spreads_jobs() {
        let jobs: Vec<SeqJob> = (0..8).map(|_| job(0, 50)).collect();
        let out = run_batch(&jobs, 4, &[], &no_sandbox());
        assert_eq!(out.placements, vec![2, 2, 2, 2]);
        // With perfect spreading, two jobs share each node: 100 s each.
        for c in &out.completions {
            assert_eq!(*c, SimTime::from_secs(100));
        }
    }

    #[test]
    fn timesharing_slows_colocated_jobs() {
        // Two jobs on one node finish in 2x their service.
        let jobs = [job(0, 100), job(0, 100)];
        let out = run_batch(&jobs, 1, &[], &no_sandbox());
        assert_eq!(out.completions[0], SimTime::from_secs(200));
        assert_eq!(out.completions[1], SimTime::from_secs(200));
    }

    #[test]
    fn staggered_arrivals_use_processor_sharing() {
        // Job A alone for 100 s (half done), then shares with B.
        let jobs = [job(0, 200), job(100, 50)];
        let out = run_batch(&jobs, 1, &[], &no_sandbox());
        // From t=100: A has 100 left, B has 50; sharing halves rates. B
        // finishes at t=200 (50 done in 100 s of half-rate). A then has 50
        // left, full rate: done at 250.
        assert_eq!(out.completions[1], SimTime::from_secs(200));
        assert_eq!(out.completions[0], SimTime::from_secs(250));
    }

    #[test]
    fn node_failure_restarts_from_checkpoint() {
        let config = ExecConfig {
            sandbox: false,
            checkpoint_every: SimDuration::from_secs(100),
            restart_cost: SimDuration::from_secs(10),
        };
        // One 1,000-s job; its node dies at t=250 (after the t=200
        // checkpoint). It restarts elsewhere with 800 s + 10 s to go.
        let jobs = [job(0, 1_000)];
        let out = run_batch(&jobs, 2, &[(SimTime::from_secs(250), 0)], &config);
        assert_eq!(out.restarts, 1);
        assert_eq!(out.completions[0], SimTime::from_secs(250 + 800 + 10));
    }

    #[test]
    fn other_nodes_jobs_are_unaffected_by_a_crash() {
        let config = no_sandbox();
        let jobs = [job(0, 500), job(0, 500)];
        // Three nodes, jobs on 0 and 1; node 0 dies at 100 and its job
        // restarts on the empty node 2 -- node 1's job never notices.
        let out = run_batch(&jobs, 3, &[(SimTime::from_secs(100), 0)], &config);
        let unaffected = out
            .completions
            .iter()
            .filter(|&&c| c == SimTime::from_secs(500))
            .count();
        assert_eq!(unaffected, 1, "{:?}", out.completions);
        assert_eq!(out.restarts, 1);
        // The restarted job pays its lost progress plus the restart cost.
        let restarted = *out.completions.iter().max().unwrap();
        assert_eq!(restarted, SimTime::from_secs(100 + 500 + 5));
    }

    #[test]
    fn failure_loses_at_most_one_checkpoint_interval() {
        let config = ExecConfig {
            sandbox: false,
            checkpoint_every: SimDuration::from_secs(50),
            restart_cost: SimDuration::ZERO,
        };
        let jobs = [job(0, 400)];
        let out = run_batch(&jobs, 2, &[(SimTime::from_secs(399), 0)], &config);
        // Progress 399 s, checkpoint at 350: remaining 50; finish 399+50.
        assert_eq!(out.completions[0], SimTime::from_secs(449));
    }

    #[test]
    fn deterministic() {
        let jobs: Vec<SeqJob> = (0..20).map(|i| job(i * 3, 40 + i)).collect();
        let fails = [(SimTime::from_secs(60), 1u32)];
        let a = run_batch(&jobs, 5, &fails, &ExecConfig::default());
        let b = run_batch(&jobs, 5, &fails, &ExecConfig::default());
        assert_eq!(a, b);
    }
}
