//! # now-glunix — the global operating-system layer
//!
//! GLUnix glues the workstations' unmodified local Unixes into one system:
//! jobs see a single machine, resources are recruited building-wide, and
//! the two sociological guarantees hold — interactive users never lose
//! their machine (or its memory contents), and parallel jobs get
//! coscheduled, migratable processors.
//!
//! The crate covers each piece the paper describes:
//!
//! * [`membership`] — who is in the NOW, who is idle, failure detection;
//!   node crashes affect only their own processes.
//! * [`sfi`] — software fault isolation, the technology that lets GLUnix
//!   interpose a protected global-OS layer at user level for a 3–7 percent
//!   overhead.
//! * [`migrate`] — process migration with memory save/restore over the
//!   parallel file system and ATM (64 MB in under 4 seconds).
//! * [`cosched`] — parallel-application models (random small messages,
//!   Column, Em3d, Connect) under gang vs uncoordinated local scheduling:
//!   **Figure 4**.
//! * [`mixed`] — the trace-driven study overlaying the LANL parallel
//!   workload on interactively-used workstations: **Figure 3**.
//! * [`exec`] — `glurun`: least-loaded remote execution of sequential
//!   jobs with SFI sandboxing and checkpoint/restart on node failure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cosched;
pub mod crossval;
pub mod exec;
pub mod membership;
pub mod migrate;
pub mod mixed;
pub mod sfi;
