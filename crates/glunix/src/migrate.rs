//! Process migration with memory state: the mechanism behind both
//! guarantees.
//!
//! When a user returns to their workstation, GLUnix migrates the external
//! process off it — *and restores the machine's saved memory contents*, so
//! the interactive user never notices. The feasibility hinges on the NOW's
//! own technologies: "With ATM bandwidth and a parallel file system, 64
//! Mbytes of DRAM can be restored in under 4 seconds."

use now_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// The I/O path available for saving and restoring memory images.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MigrationModel {
    /// The node's network link bandwidth, MB/s (ATM: 19.4).
    pub link_mb_s: f64,
    /// The file system's sustained bandwidth for the image, MB/s
    /// (parallel file system: hundreds; a single disk: ~2–6).
    pub fs_mb_s: f64,
    /// Fixed per-migration coordination cost.
    pub fixed: SimDuration,
}

impl MigrationModel {
    /// The NOW configuration: 155-Mbps ATM link + parallel file system at
    /// 80 percent of 256 × 2-MB/s disks.
    pub fn now_atm_pfs() -> Self {
        MigrationModel {
            link_mb_s: 19.4,
            fs_mb_s: 410.0,
            fixed: SimDuration::from_millis(100),
        }
    }

    /// The conventional configuration: same link, one NFS server disk.
    pub fn now_atm_single_disk() -> Self {
        MigrationModel {
            link_mb_s: 19.4,
            fs_mb_s: 2.0,
            fixed: SimDuration::from_millis(100),
        }
    }

    /// Time to move a `mem_mb`-MB memory image one way (save *or*
    /// restore): bottlenecked by the slower of the node's link and the
    /// file system.
    pub fn transfer_time(&self, mem_mb: u64) -> SimDuration {
        let bw = self.link_mb_s.min(self.fs_mb_s);
        self.fixed + SimDuration::from_secs_f64(mem_mb as f64 / bw)
    }

    /// Full migration of a process with `mem_mb` MB of state: save on the
    /// source, restore on the destination. The two transfers use different
    /// links and pipeline through the file system, so the wall-clock cost
    /// is one transfer plus a pipeline bubble.
    pub fn migration_time(&self, mem_mb: u64) -> SimDuration {
        self.transfer_time(mem_mb) + self.fixed * 2
    }
}

/// The paper's daily-disruption budget: external processes may delay any
/// interactive user at most this many times per day.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DisruptionBudget {
    /// Maximum user-visible delays per day.
    pub per_day: u32,
}

impl Default for DisruptionBudget {
    fn default() -> Self {
        DisruptionBudget { per_day: 4 }
    }
}

/// Tracks per-machine disruption counts against the budget.
#[derive(Debug, Clone)]
pub struct DisruptionTracker {
    budget: DisruptionBudget,
    counts: Vec<u32>,
}

impl DisruptionTracker {
    /// A tracker for `machines` machines.
    pub fn new(machines: u32, budget: DisruptionBudget) -> Self {
        DisruptionTracker {
            budget,
            counts: vec![0; machines as usize],
        }
    }

    /// May external work still be placed on `machine` today?
    pub fn may_disrupt(&self, machine: u32) -> bool {
        self.counts[machine as usize] < self.budget.per_day
    }

    /// Records that the user of `machine` was delayed once.
    pub fn record(&mut self, machine: u32) {
        self.counts[machine as usize] += 1;
    }

    /// Midnight: the budget resets.
    pub fn reset(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn restore_64mb_in_under_4_seconds_with_pfs() {
        // The paper's headline migration number.
        let m = MigrationModel::now_atm_pfs();
        let t = m.transfer_time(64);
        assert!(t < SimDuration::from_secs(4), "64 MB restore took {t}");
        assert!(
            t > SimDuration::from_secs(3),
            "ATM link should be the bottleneck: {t}"
        );
    }

    #[test]
    fn single_disk_makes_restore_painful() {
        let m = MigrationModel::now_atm_single_disk();
        let t = m.transfer_time(64);
        assert!(
            t > SimDuration::from_secs(30),
            "2 MB/s should take >30 s, got {t}"
        );
    }

    #[test]
    fn migration_is_roughly_twice_a_transfer() {
        let m = MigrationModel::now_atm_pfs();
        let one = m.transfer_time(64);
        let full = m.migration_time(64);
        assert!(full > one);
        assert!(full < one * 2);
    }

    #[test]
    fn transfer_scales_with_memory() {
        let m = MigrationModel::now_atm_pfs();
        assert!(m.transfer_time(128) > m.transfer_time(64));
    }

    #[test]
    fn disruption_budget_limits_placements() {
        let mut t = DisruptionTracker::new(2, DisruptionBudget { per_day: 2 });
        assert!(t.may_disrupt(0));
        t.record(0);
        t.record(0);
        assert!(!t.may_disrupt(0));
        assert!(t.may_disrupt(1), "budgets are per machine");
        t.reset();
        assert!(t.may_disrupt(0), "midnight resets the budget");
    }
}
