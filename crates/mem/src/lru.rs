//! An exact least-recently-used cache over copyable keys.
//!
//! Used for page frames here and for file-block caches in `now-cache`.
//! Recency is tracked with a monotone counter and an ordered index, giving
//! `O(log n)` operations and exact (not approximate) LRU order — important
//! because cache-policy experiments compare algorithms whose differences
//! can be subtle.

use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;

/// The result of touching a key in the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Touch<K> {
    /// The key was present.
    Hit,
    /// The key was inserted; nothing was evicted (cache had room).
    MissInserted,
    /// The key was inserted and the least-recently-used entry was evicted.
    MissEvicted {
        /// The evicted key.
        victim: K,
        /// Whether the victim had been marked dirty.
        dirty: bool,
    },
}

/// An exact-LRU cache mapping keys to a dirty bit.
///
/// # Example
///
/// ```
/// use now_mem::LruCache;
///
/// let mut lru = LruCache::new(2);
/// lru.touch(1, false);
/// lru.touch(2, false);
/// lru.touch(1, false);          // 1 is now most recent
/// let t = lru.touch(3, false);  // evicts 2, the LRU
/// assert!(matches!(t, now_mem::Touch::MissEvicted { victim: 2, .. }));
/// ```
#[derive(Debug, Clone)]
pub struct LruCache<K> {
    capacity: usize,
    /// key -> (recency stamp, dirty)
    entries: HashMap<K, (u64, bool)>,
    /// recency stamp -> key (unique stamps)
    order: BTreeMap<u64, K>,
    clock: u64,
}

impl<K: Eq + Hash + Copy> LruCache<K> {
    /// Creates a cache holding at most `capacity` keys.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        LruCache {
            capacity,
            entries: HashMap::with_capacity(capacity),
            order: BTreeMap::new(),
            clock: 0,
        }
    }

    /// Capacity in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True if `key` is resident (does not affect recency).
    pub fn contains(&self, key: &K) -> bool {
        self.entries.contains_key(key)
    }

    /// Accesses `key`, making it most-recently-used; inserts on miss,
    /// evicting the LRU entry if full. `write` marks the entry dirty
    /// (sticky until eviction or removal).
    pub fn touch(&mut self, key: K, write: bool) -> Touch<K> {
        self.clock += 1;
        if let Some((stamp, dirty)) = self.entries.get_mut(&key) {
            self.order.remove(&*stamp);
            *stamp = self.clock;
            *dirty |= write;
            self.order.insert(self.clock, key);
            return Touch::Hit;
        }
        let evicted = if self.entries.len() >= self.capacity {
            let (&oldest, &victim) = self.order.iter().next().expect("full cache has entries");
            self.order.remove(&oldest);
            let (_, dirty) = self.entries.remove(&victim).expect("indexed entry exists");
            Some((victim, dirty))
        } else {
            None
        };
        self.entries.insert(key, (self.clock, write));
        self.order.insert(self.clock, key);
        match evicted {
            Some((victim, dirty)) => Touch::MissEvicted { victim, dirty },
            None => Touch::MissInserted,
        }
    }

    /// Removes `key` if present, returning its dirty bit.
    pub fn remove(&mut self, key: &K) -> Option<bool> {
        let (stamp, dirty) = self.entries.remove(key)?;
        self.order.remove(&stamp);
        Some(dirty)
    }

    /// The least-recently-used key, if any (does not affect recency).
    pub fn lru(&self) -> Option<&K> {
        self.order.values().next()
    }

    /// Iterates over resident keys in LRU-to-MRU order.
    pub fn iter(&self) -> impl Iterator<Item = &K> {
        self.order.values()
    }

    /// Approximate heap + inline footprint in bytes. Bounded by the
    /// cache's capacity, so serving reports can contrast (fixed) workload
    /// memory with (fixed) observation memory.
    pub fn approx_bytes(&self) -> usize {
        // HashMap entry: key + (stamp, dirty) + bucket overhead; BTreeMap
        // entry: stamp + key + node overhead. A coarse per-entry estimate
        // is enough for self-accounting.
        let per_entry = std::mem::size_of::<K>() * 2 + std::mem::size_of::<(u64, bool)>() + 48;
        std::mem::size_of::<Self>() + self.capacity.max(self.entries.len()) * per_entry
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss_basics() {
        let mut c = LruCache::new(2);
        assert_eq!(c.touch(1, false), Touch::MissInserted);
        assert_eq!(c.touch(1, false), Touch::Hit);
        assert_eq!(c.len(), 1);
        assert!(c.contains(&1));
        assert!(!c.contains(&2));
    }

    #[test]
    fn evicts_exact_lru_order() {
        let mut c = LruCache::new(3);
        c.touch(1, false);
        c.touch(2, false);
        c.touch(3, false);
        c.touch(1, false); // order now 2,3,1
        assert_eq!(
            c.touch(4, false),
            Touch::MissEvicted {
                victim: 2,
                dirty: false
            }
        );
        assert_eq!(
            c.touch(5, false),
            Touch::MissEvicted {
                victim: 3,
                dirty: false
            }
        );
        assert!(c.contains(&1));
    }

    #[test]
    fn dirty_bit_is_sticky_and_reported_on_eviction() {
        let mut c = LruCache::new(1);
        c.touch(7, true);
        c.touch(7, false); // read does not clean it
        let t = c.touch(8, false);
        assert_eq!(
            t,
            Touch::MissEvicted {
                victim: 7,
                dirty: true
            }
        );
    }

    #[test]
    fn remove_returns_dirty_state() {
        let mut c = LruCache::new(4);
        c.touch(1, true);
        c.touch(2, false);
        assert_eq!(c.remove(&1), Some(true));
        assert_eq!(c.remove(&2), Some(false));
        assert_eq!(c.remove(&99), None);
        assert!(c.is_empty());
    }

    #[test]
    fn lru_peek_matches_eviction_choice() {
        let mut c = LruCache::new(3);
        for k in [10, 20, 30] {
            c.touch(k, false);
        }
        c.touch(10, false);
        assert_eq!(c.lru(), Some(&20));
        let t = c.touch(40, false);
        assert!(matches!(t, Touch::MissEvicted { victim: 20, .. }));
    }

    #[test]
    fn iter_is_lru_to_mru() {
        let mut c = LruCache::new(3);
        c.touch(1, false);
        c.touch(2, false);
        c.touch(3, false);
        c.touch(1, false);
        let order: Vec<i32> = c.iter().copied().collect();
        assert_eq!(order, vec![2, 3, 1]);
    }

    #[test]
    fn never_exceeds_capacity() {
        let mut c = LruCache::new(5);
        for k in 0..1_000 {
            c.touch(k, k % 3 == 0);
            assert!(c.len() <= 5);
        }
        assert_eq!(c.len(), 5);
    }

    #[test]
    fn sequential_scan_bigger_than_cache_always_misses() {
        // The classic LRU pathology that makes unaided paging thrash: a
        // cyclic scan one element larger than the cache never hits.
        let mut c = LruCache::new(10);
        for _ in 0..3 {
            for k in 0..11 {
                let _ = c.touch(k, false);
            }
        }
        let mut hits = 0;
        for k in 0..11 {
            if matches!(c.touch(k, false), Touch::Hit) {
                hits += 1;
            }
        }
        assert_eq!(hits, 0, "cyclic scan defeats LRU entirely");
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        LruCache::<u32>::new(0);
    }
}
