//! The demand pager: a bounded local frame pool backed by disk or network
//! RAM.
//!
//! Timing follows how 1990s VM systems actually behaved:
//!
//! * **First touch** of a page is a zero-fill soft fault (no I/O).
//! * **Disk paging** uses BSD-style swap clustering: pages are written out
//!   and brought back in runs of [`SWAP_CLUSTER`] pages, so one
//!   seek+rotation amortises over the cluster. This is what keeps the
//!   disk-vs-network-RAM gap at the paper's 5–10× rather than the raw 37×
//!   a fully random swap would give.
//! * **Network RAM paging** streams: for sequential faults the fixed
//!   software cost overlaps the pipeline and only the wire time stalls the
//!   processor (minus whatever computation happened since the last fault).
//! * **Write-back** of dirty victims is asynchronous (it is counted, not
//!   charged), as in real pagers with free-frame reserves.

use now_probe::Probe;
use now_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::lru::Touch;
use crate::{DiskModel, LruCache, NetworkRam, RemoteAccessCost};

/// Pages a disk swap device clusters per transfer.
pub const SWAP_CLUSTER: u64 = 8;

/// How a network-RAM page fetch is priced.
///
/// The pager knows *which* idle host a page streams back from; this trait
/// decides what that costs. [`FixedPath`] charges the Table 2 constants
/// (the legacy arithmetic, bit-for-bit); an engine component can instead
/// pass a path that routes the fetch over a live shared fabric, where the
/// price depends on what everyone else is doing to the wires.
pub trait RemotePath {
    /// Service time for fetching `bytes` of page data back from idle
    /// `host`. `sequential` faults stream: the pipeline hides fixed costs
    /// and only residual wire time should be charged.
    fn netram_fetch(
        &mut self,
        host: u32,
        sequential: bool,
        bytes: u64,
        cost: RemoteAccessCost,
    ) -> SimDuration;
}

/// The constant-cost remote path: Table 2 arithmetic, no shared fabric.
#[derive(Debug, Clone, Copy, Default)]
pub struct FixedPath;

impl RemotePath for FixedPath {
    fn netram_fetch(
        &mut self,
        _host: u32,
        sequential: bool,
        bytes: u64,
        cost: RemoteAccessCost,
    ) -> SimDuration {
        if sequential {
            cost.pipelined(bytes)
        } else {
            cost.access(bytes)
        }
    }
}

/// Identifies a virtual page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PageId(pub u64);

/// How an access was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Resident: no fault.
    Hit,
    /// First touch: zero-fill, no I/O.
    SoftFault,
    /// Fetched from another workstation's DRAM.
    NetRamFault,
    /// Fetched from the swap disk.
    DiskFault,
}

/// Counters and accumulated stall time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PagerStats {
    /// Total accesses.
    pub accesses: u64,
    /// Accesses satisfied from local frames.
    pub hits: u64,
    /// Zero-fill first touches.
    pub soft_faults: u64,
    /// Pages fetched from network RAM.
    pub netram_faults: u64,
    /// Pages fetched from disk.
    pub disk_faults: u64,
    /// Dirty victims queued for (asynchronous) write-back.
    pub writebacks: u64,
    /// Remote pages relocated to disk because their host left the pool.
    pub host_evicted_pages: u64,
    /// Remote pages destroyed outright because their host *crashed*
    /// (no warning, no relocation); their contents must be regenerated.
    pub host_lost_pages: u64,
    /// Total processor stall charged to paging.
    pub stall: SimDuration,
}

/// Where evicted pages go and faults are served from.
#[derive(Debug, Clone)]
enum Backing {
    /// Classic swap disk.
    Disk(DiskModel),
    /// Network RAM pool, spilling to disk when the pool is full.
    NetRam {
        pool: NetworkRam,
        overflow: DiskModel,
    },
}

/// A demand pager for one process's address space.
///
/// Drive it with [`Pager::access`], passing the computation time since the
/// previous access so sequential prefetch can overlap fetches with work.
#[derive(Debug, Clone)]
pub struct Pager {
    frames: LruCache<PageId>,
    backing: Backing,
    page_bytes: u64,
    /// Pages that have been touched at least once (exist somewhere).
    materialised: std::collections::HashSet<PageId>,
    /// Pages currently out on the swap disk.
    on_disk: std::collections::HashSet<PageId>,
    last_access: Option<PageId>,
    stats: PagerStats,
    probe: Probe,
    /// Simulated now, if a driving component supplies it; lets fault
    /// service time land in per-device utilization ledgers.
    clock: Option<SimTime>,
}

impl Pager {
    /// A pager with `frames` local page frames backed by a swap disk.
    pub fn with_disk(frames: usize, page_bytes: u64, disk: DiskModel) -> Self {
        Pager::new(frames, page_bytes, Backing::Disk(disk))
    }

    /// A pager backed by network RAM, spilling to `overflow` when the pool
    /// fills.
    pub fn with_netram(
        frames: usize,
        page_bytes: u64,
        pool: NetworkRam,
        overflow: DiskModel,
    ) -> Self {
        Pager::new(frames, page_bytes, Backing::NetRam { pool, overflow })
    }

    fn new(frames: usize, page_bytes: u64, backing: Backing) -> Self {
        assert!(page_bytes > 0, "pages must have a size");
        Pager {
            frames: LruCache::new(frames),
            backing,
            page_bytes,
            materialised: Default::default(),
            on_disk: Default::default(),
            last_access: None,
            stats: PagerStats::default(),
            probe: Probe::disabled(),
            clock: None,
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> PagerStats {
        self.stats
    }

    /// Attaches a telemetry probe. Counters mirror [`PagerStats`] under
    /// `pager.*` names; the `pager.soft.ns` / `pager.netram.ns` /
    /// `pager.disk.ns` histograms break fault *service* time down by where
    /// the page came from (before any overlap with computation), matching
    /// the paper's Table 2 decomposition.
    pub fn set_probe(&mut self, probe: Probe) {
        if let Backing::NetRam { pool, .. } = &mut self.backing {
            pool.set_probe(probe.clone());
        }
        self.probe = probe;
    }

    /// Tells the pager the current simulated time. A component driving
    /// the pager from an engine calls this before each access so that
    /// fault service intervals feed the `mem.disk.swap` /
    /// `mem.netram.pool` utilization ledgers; standalone use (no clock)
    /// skips ledger recording but prices faults identically.
    pub fn set_clock(&mut self, now: SimTime) {
        self.clock = Some(now);
    }

    /// An idle host donating memory departed (its user returned): the
    /// pages it held are relocated to disk, as GLUnix saves recruited
    /// memory before handing a machine back. The relocation is
    /// asynchronous (the paper: 64 MB moves in under 4 s over the parallel
    /// file system), so no stall is charged to this process; subsequent
    /// faults on those pages pay disk prices instead of network-RAM
    /// prices.
    ///
    /// No-op for a disk-backed pager.
    pub fn handle_host_eviction(&mut self, host: u32) {
        if let Backing::NetRam { pool, .. } = &mut self.backing {
            let lost = pool.evict_host(host);
            self.stats.host_evicted_pages += lost.len() as u64;
            for page in lost {
                self.on_disk.insert(page);
            }
        }
    }

    /// An idle host donating memory *crashed*: unlike the graceful
    /// departure of [`handle_host_eviction`](Self::handle_host_eviction),
    /// there is no time to relocate anything — pages whose only copy
    /// lived in the dead host's DRAM are destroyed and their next touch
    /// is a zero-fill (the application regenerates the data). In
    /// mirrored mode ([`set_netram_mirrored`](Self::set_netram_mirrored))
    /// the pool promotes surviving copies and nothing is lost. Counts
    /// `pager.host_lost_pages` on the probe.
    ///
    /// No-op for a disk-backed pager.
    pub fn handle_host_crash(&mut self, host: u32) {
        if let Backing::NetRam { pool, .. } = &mut self.backing {
            let lost = pool.evict_host(host);
            self.stats.host_lost_pages += lost.len() as u64;
            self.probe.count("pager.host_lost_pages", lost.len() as u64);
            for page in lost {
                self.materialised.remove(&page);
                self.on_disk.remove(&page);
            }
        }
    }

    /// A crashed (or departed) host finished rebooting: its frames rejoin
    /// the pool, empty. No-op for a disk-backed pager.
    pub fn handle_host_rejoin(&mut self, host: u32) {
        if let Backing::NetRam { pool, .. } = &mut self.backing {
            pool.rejoin_host(host);
        }
    }

    /// Switches the network-RAM pool to mirrored mode (two copies of
    /// every page on distinct hosts — crash-survivable at half capacity).
    /// Must be called before any page is stored. No-op for a disk-backed
    /// pager.
    pub fn set_netram_mirrored(&mut self, on: bool) {
        if let Backing::NetRam { pool, .. } = &mut self.backing {
            pool.set_mirrored(on);
        }
    }

    /// Number of local frames.
    pub fn frames(&self) -> usize {
        self.frames.capacity()
    }

    /// Accesses `page`, charging any fault stall. `compute_since_last` is
    /// how much computation the process performed since its previous memory
    /// access; sequential fetches overlap with it.
    ///
    /// Returns the fault classification and the stall charged.
    pub fn access(
        &mut self,
        page: PageId,
        write: bool,
        compute_since_last: SimDuration,
    ) -> (FaultKind, SimDuration) {
        self.access_via(page, write, compute_since_last, &mut FixedPath)
    }

    /// [`Pager::access`] with an explicit [`RemotePath`] pricing
    /// network-RAM fetches. `access` is exactly `access_via` with
    /// [`FixedPath`].
    pub fn access_via(
        &mut self,
        page: PageId,
        write: bool,
        compute_since_last: SimDuration,
        path: &mut dyn RemotePath,
    ) -> (FaultKind, SimDuration) {
        self.stats.accesses += 1;
        self.probe.count("pager.accesses", 1);
        let sequential = self
            .last_access
            .is_some_and(|last| page.0 == last.0.wrapping_add(1));
        self.last_access = Some(page);

        let touch = self.frames.touch(page, write);
        // Handle the eviction a miss may have caused.
        if let Touch::MissEvicted { victim, dirty } = touch {
            self.evict(victim, dirty);
        }
        if matches!(touch, Touch::Hit) {
            self.stats.hits += 1;
            self.probe.count("pager.hits", 1);
            return (FaultKind::Hit, SimDuration::ZERO);
        }

        // Miss: classify and charge.
        let (kind, service) = self.fetch(page, sequential, path);
        if self.probe.is_enabled() {
            let (counter, histogram) = match kind {
                FaultKind::Hit => unreachable!("a miss was classified"),
                FaultKind::SoftFault => ("pager.soft_faults", "pager.soft.ns"),
                FaultKind::NetRamFault => ("pager.netram_faults", "pager.netram.ns"),
                FaultKind::DiskFault => ("pager.disk_faults", "pager.disk.ns"),
            };
            self.probe.count(counter, 1);
            self.probe.record(histogram, service);
            // With a clock the service time also lands in the backing
            // device's utilization ledger.
            if let Some(now) = self.clock {
                let device = match kind {
                    FaultKind::DiskFault => Some("mem.disk.swap"),
                    FaultKind::NetRamFault => Some("mem.netram.pool"),
                    _ => None,
                };
                if let Some(device) = device {
                    self.probe.busy(device, now, now + service);
                }
            }
        }
        let stall = match kind {
            FaultKind::SoftFault => service,
            // Sequential faults overlap the pipeline with computation.
            _ if sequential => service.saturating_sub(compute_since_last),
            _ => service,
        };
        self.stats.stall += stall;
        (kind, stall)
    }

    fn evict(&mut self, victim: PageId, dirty: bool) {
        if dirty {
            self.stats.writebacks += 1;
            self.probe.count("pager.writebacks", 1);
        }
        match &mut self.backing {
            Backing::Disk(_) => {
                // All victims land in swap (write-back is asynchronous).
                self.on_disk.insert(victim);
            }
            Backing::NetRam { pool, .. } => {
                if pool.store(victim) {
                    // Held in some idle host's DRAM.
                } else {
                    self.on_disk.insert(victim);
                }
            }
        }
    }

    fn fetch(
        &mut self,
        page: PageId,
        sequential: bool,
        path: &mut dyn RemotePath,
    ) -> (FaultKind, SimDuration) {
        if self.materialised.insert(page) {
            // Zero-fill: a trap and a page clear.
            self.stats.soft_faults += 1;
            return (FaultKind::SoftFault, SimDuration::from_micros(50));
        }
        match &mut self.backing {
            Backing::Disk(disk) => {
                self.on_disk.remove(&page);
                self.stats.disk_faults += 1;
                let cost = if sequential {
                    disk.sequential_per_block(self.page_bytes, SWAP_CLUSTER)
                } else {
                    disk.random_access(self.page_bytes)
                };
                (FaultKind::DiskFault, cost)
            }
            Backing::NetRam { pool, overflow } => {
                if let Some(host) = pool.take(page) {
                    self.stats.netram_faults += 1;
                    let cost = path.netram_fetch(host, sequential, self.page_bytes, pool.cost());
                    (FaultKind::NetRamFault, cost)
                } else {
                    // Spilled to disk earlier.
                    self.on_disk.remove(&page);
                    self.stats.disk_faults += 1;
                    let cost = if sequential {
                        overflow.sequential_per_block(self.page_bytes, SWAP_CLUSTER)
                    } else {
                        overflow.random_access(self.page_bytes)
                    };
                    (FaultKind::DiskFault, cost)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RemoteAccessCost;

    fn disk_pager(frames: usize) -> Pager {
        Pager::with_disk(frames, 8_192, DiskModel::workstation_1994())
    }

    fn netram_pager(frames: usize, pool_pages: u64) -> Pager {
        Pager::with_netram(
            frames,
            8_192,
            NetworkRam::new(4, pool_pages / 4, RemoteAccessCost::table2_atm(), 8_192),
            DiskModel::workstation_1994(),
        )
    }

    #[test]
    fn first_touch_is_soft() {
        let mut p = disk_pager(4);
        let (kind, stall) = p.access(PageId(0), true, SimDuration::ZERO);
        assert_eq!(kind, FaultKind::SoftFault);
        assert!(stall < SimDuration::from_micros(100));
        assert_eq!(p.stats().soft_faults, 1);
    }

    #[test]
    fn resident_pages_hit_for_free() {
        let mut p = disk_pager(4);
        p.access(PageId(0), false, SimDuration::ZERO);
        let (kind, stall) = p.access(PageId(0), false, SimDuration::ZERO);
        assert_eq!(kind, FaultKind::Hit);
        assert_eq!(stall, SimDuration::ZERO);
    }

    #[test]
    fn working_set_within_frames_never_faults_again() {
        let mut p = disk_pager(8);
        for round in 0..5 {
            for i in 0..8 {
                let (kind, _) = p.access(PageId(i), true, SimDuration::ZERO);
                if round > 0 {
                    assert_eq!(kind, FaultKind::Hit);
                }
            }
        }
        assert_eq!(p.stats().disk_faults, 0);
    }

    #[test]
    fn overflow_to_disk_costs_disk_time() {
        let mut p = disk_pager(2);
        // Touch 0,1,2: evicts 0. Touch 0 again: disk fault.
        for i in 0..3 {
            p.access(PageId(i), true, SimDuration::ZERO);
        }
        let (kind, stall) = p.access(PageId(0), false, SimDuration::ZERO);
        assert_eq!(kind, FaultKind::DiskFault);
        // Random access: the full 14.8 ms.
        assert!((14.0..16.0).contains(&stall.as_millis_f64()), "{stall}");
    }

    #[test]
    fn netram_fault_is_an_order_of_magnitude_cheaper_than_disk() {
        let mut pn = netram_pager(2, 64);
        let mut pd = disk_pager(2);
        for p in [&mut pn, &mut pd] {
            for i in 0..3 {
                p.access(PageId(i), true, SimDuration::ZERO);
            }
        }
        let (kn, sn) = pn.access(PageId(0), false, SimDuration::ZERO);
        let (kd, sd) = pd.access(PageId(0), false, SimDuration::ZERO);
        assert_eq!(kn, FaultKind::NetRamFault);
        assert_eq!(kd, FaultKind::DiskFault);
        assert!(
            sd.as_micros_f64() / sn.as_micros_f64() > 10.0,
            "disk {sd} vs netram {sn}"
        );
    }

    #[test]
    fn sequential_faults_overlap_computation() {
        let mut p = netram_pager(2, 64);
        // Materialise and evict pages 0..6.
        for i in 0..6 {
            p.access(PageId(i), true, SimDuration::ZERO);
        }
        // Re-scan sequentially with plenty of compute between accesses:
        // pipelined wire time (≈400 µs) is fully hidden.
        let compute = SimDuration::from_micros(500);
        // First access of the scan is non-sequential (5 -> 0).
        p.access(PageId(0), false, compute);
        let (kind, stall) = p.access(PageId(1), false, compute);
        assert_eq!(kind, FaultKind::NetRamFault);
        assert_eq!(stall, SimDuration::ZERO, "prefetch hides the wire");
        // With little compute, the residual wire time stalls.
        let (_, stall2) = p.access(PageId(2), false, SimDuration::from_micros(100));
        assert!(stall2 > SimDuration::ZERO);
        assert!(stall2 < SimDuration::from_micros(400));
    }

    #[test]
    fn random_faults_pay_full_cost() {
        let mut p = netram_pager(2, 64);
        for i in 0..8 {
            p.access(PageId(i), true, SimDuration::ZERO);
        }
        // Random revisit: full Table 2 cost even with compute to spare.
        let (kind, stall) = p.access(PageId(3), false, SimDuration::from_secs(1));
        assert_eq!(kind, FaultKind::NetRamFault);
        assert!(
            (1_000.0..1_110.0).contains(&stall.as_micros_f64()),
            "{stall}"
        );
    }

    #[test]
    fn netram_pool_overflow_spills_to_disk() {
        // Pool of 4 pages total; frames 2; touch many pages.
        let mut p = netram_pager(2, 4);
        for i in 0..12 {
            p.access(PageId(i), true, SimDuration::ZERO);
        }
        // Victims 0..3 filled the pool; later victims spilled to disk.
        let (kind, _) = p.access(PageId(5), false, SimDuration::ZERO);
        assert_eq!(kind, FaultKind::DiskFault);
        let (kind0, _) = p.access(PageId(0), false, SimDuration::ZERO);
        assert_eq!(kind0, FaultKind::NetRamFault);
        assert!(p.stats().disk_faults >= 1);
    }

    #[test]
    fn dirty_victims_are_counted_for_writeback() {
        let mut p = disk_pager(1);
        p.access(PageId(0), true, SimDuration::ZERO);
        p.access(PageId(1), false, SimDuration::ZERO); // evicts dirty 0
        assert_eq!(p.stats().writebacks, 1);
        p.access(PageId(2), false, SimDuration::ZERO); // evicts clean 1
        assert_eq!(p.stats().writebacks, 1);
    }

    #[test]
    fn host_eviction_relocates_pages_to_disk() {
        // Frames 2, pool 4 hosts x 16 pages; fill pages 0..10 so victims
        // land in the pool round-robin.
        let mut p = Pager::with_netram(
            2,
            8_192,
            NetworkRam::new(4, 16, RemoteAccessCost::table2_atm(), 8_192),
            DiskModel::workstation_1994(),
        );
        for i in 0..10 {
            p.access(PageId(i), true, SimDuration::ZERO);
        }
        // Host 0 departs: its pages move to disk without stalling us.
        let stall_before = p.stats().stall;
        p.handle_host_eviction(0);
        assert!(p.stats().host_evicted_pages > 0);
        assert_eq!(p.stats().stall, stall_before, "relocation is asynchronous");
        // Every previously evicted page is still readable; the relocated
        // ones now pay disk prices, the rest stay on network RAM.
        let mut disk = 0;
        let mut netram = 0;
        for i in 0..8 {
            match p.access(PageId(i), false, SimDuration::ZERO).0 {
                FaultKind::DiskFault => disk += 1,
                FaultKind::NetRamFault => netram += 1,
                FaultKind::Hit => {}
                k => panic!("unexpected {k:?} for page {i}"),
            }
        }
        assert!(disk > 0, "relocated pages must come from disk");
        assert!(netram > 0, "surviving hosts still serve theirs");
    }

    #[test]
    fn host_crash_destroys_pages_until_regenerated() {
        let mut p = Pager::with_netram(
            2,
            8_192,
            NetworkRam::new(4, 16, RemoteAccessCost::table2_atm(), 8_192),
            DiskModel::workstation_1994(),
        );
        for i in 0..10 {
            p.access(PageId(i), true, SimDuration::ZERO);
        }
        p.handle_host_crash(0);
        let lost = p.stats().host_lost_pages;
        assert!(lost > 0);
        // Re-touching every evicted page: the dead host's pages are soft
        // faults (regenerated), the others still stream from network RAM.
        let mut soft = 0;
        let mut netram = 0;
        for i in 0..8 {
            match p.access(PageId(i), false, SimDuration::ZERO).0 {
                FaultKind::SoftFault => soft += 1,
                FaultKind::NetRamFault => netram += 1,
                FaultKind::Hit => {}
                k => panic!("unexpected {k:?} for page {i}"),
            }
        }
        assert_eq!(soft as u64, lost, "every lost page zero-fills");
        assert!(netram > 0, "surviving hosts still serve theirs");
    }

    #[test]
    fn mirrored_pool_survives_host_crash_without_losing_pages() {
        let mut p = Pager::with_netram(
            2,
            8_192,
            NetworkRam::new(4, 16, RemoteAccessCost::table2_atm(), 8_192),
            DiskModel::workstation_1994(),
        );
        p.set_netram_mirrored(true);
        for i in 0..10 {
            p.access(PageId(i), true, SimDuration::ZERO);
        }
        p.handle_host_crash(0);
        assert_eq!(p.stats().host_lost_pages, 0, "mirrors cover the crash");
        for i in 0..8 {
            let (kind, _) = p.access(PageId(i), false, SimDuration::ZERO);
            assert!(
                matches!(kind, FaultKind::NetRamFault | FaultKind::Hit),
                "page {i} got {kind:?}"
            );
        }
    }

    #[test]
    fn rejoined_host_serves_new_pages() {
        let mut p = Pager::with_netram(
            2,
            8_192,
            NetworkRam::new(2, 4, RemoteAccessCost::table2_atm(), 8_192),
            DiskModel::workstation_1994(),
        );
        for i in 0..6 {
            p.access(PageId(i), true, SimDuration::ZERO);
        }
        p.handle_host_crash(0);
        p.handle_host_rejoin(0);
        // New evictions can use host 0's frames again: touch fresh pages
        // and verify some land in the pool rather than spilling to disk.
        for i in 10..16 {
            p.access(PageId(i), true, SimDuration::ZERO);
        }
        let disk_before = p.stats().disk_faults;
        for i in 10..14 {
            p.access(PageId(i), false, SimDuration::ZERO);
        }
        assert!(
            p.stats().netram_faults > 0 && p.stats().disk_faults == disk_before,
            "rejoined capacity keeps the working set in network RAM: {:?}",
            p.stats()
        );
    }

    #[test]
    fn host_eviction_is_noop_for_disk_pager() {
        let mut p = disk_pager(2);
        for i in 0..5 {
            p.access(PageId(i), true, SimDuration::ZERO);
        }
        p.handle_host_eviction(0);
        assert_eq!(p.stats().host_evicted_pages, 0);
    }

    #[test]
    fn clocked_faults_feed_device_utilization_ledgers() {
        let registry = now_probe::Registry::new();
        let mut p = netram_pager(2, 4);
        p.set_probe(registry.probe());
        // Advance a fake clock by each stall so intervals stay ordered;
        // pages 0..12 overflow both frames and the 4-page pool, so both
        // disk and network-RAM faults occur on the rescan.
        let mut now = SimTime::ZERO;
        for i in 0..12 {
            p.set_clock(now);
            let (_, stall) = p.access(PageId(i), true, SimDuration::ZERO);
            now += stall + SimDuration::from_micros(10);
        }
        for i in 0..12 {
            p.set_clock(now);
            let (_, stall) = p.access(PageId(i), false, SimDuration::ZERO);
            now += stall + SimDuration::from_micros(10);
        }
        let s = p.stats();
        assert!(s.disk_faults > 0 && s.netram_faults > 0, "{s:?}");
        let snap = registry.snapshot();
        for name in ["mem.disk.swap", "mem.netram.pool"] {
            let util = snap.util(name).unwrap_or_else(|| panic!("{name} ledger"));
            assert!(util.busy_ns > 0, "{name} saw no busy time");
            assert_eq!(util.busy_ns + util.idle_ns(), util.wall_ns, "{name}");
            assert_eq!(util.clipped_ns, 0, "{name} intervals are ordered");
        }
    }

    #[test]
    fn unclocked_pager_prices_faults_identically_without_ledgers() {
        let registry = now_probe::Registry::new();
        let mut clocked = netram_pager(2, 4);
        let mut plain = netram_pager(2, 4);
        clocked.set_probe(registry.probe());
        let mut now = SimTime::ZERO;
        for i in [0, 1, 2, 3, 0, 2, 1, 3, 4, 0] {
            clocked.set_clock(now);
            let (k1, s1) = clocked.access(PageId(i), true, SimDuration::ZERO);
            let (k2, s2) = plain.access(PageId(i), true, SimDuration::ZERO);
            assert_eq!((k1, s1), (k2, s2), "page {i}");
            now += s1 + SimDuration::from_micros(5);
        }
        assert_eq!(clocked.stats(), plain.stats());
    }

    #[test]
    fn stats_account_every_access() {
        let mut p = netram_pager(4, 64);
        for i in 0..20 {
            p.access(PageId(i % 7), i % 3 == 0, SimDuration::from_micros(10));
        }
        let s = p.stats();
        assert_eq!(s.accesses, 20);
        assert_eq!(s.hits + s.soft_faults + s.netram_faults + s.disk_faults, 20);
    }
}
