//! # now-mem — virtual memory and network RAM for the simulated NOW
//!
//! "Network RAM can fulfill the original promise of virtual memory": with a
//! switched LAN, paging to another workstation's idle DRAM is an order of
//! magnitude faster than paging to disk, so problems bigger than local
//! memory become *runnable* again instead of thrashing. This crate builds
//! the pieces behind that claim and behind Figure 2:
//!
//! * [`DiskModel`] — seek + rotation + transfer timing for a 1994
//!   workstation disk (the paper's 14.8 ms for an 8-KB access).
//! * [`LruCache`] — a generic exact-LRU cache, used here for page frames
//!   and by `now-cache` for file blocks.
//! * [`Pager`] — a demand pager with a bounded local frame pool backed by
//!   disk or by [`NetworkRam`], with sequential prefetch: the mechanism
//!   that lets network RAM stream pages at wire bandwidth.
//! * [`NetworkRam`] — a pool of idle machines' DRAM reachable over the
//!   interconnect, with per-page remote-access costs from Table 2 (or
//!   derived from any [`now_net::Network`]).
//! * [`multigrid`] — the iterative multigrid application model whose
//!   execution time Figure 2 plots for three memory configurations.
//!
//! # Example
//!
//! ```
//! use now_mem::multigrid::{self, MemoryConfig};
//!
//! // A 96-MB problem on a 32-MB workstation: thrashing to disk is several
//! // times slower than paging to network RAM.
//! let disk = multigrid::run(96, MemoryConfig::local32_disk()).total;
//! let netram = multigrid::run(96, MemoryConfig::local32_netram()).total;
//! assert!(disk.as_secs_f64() > 3.0 * netram.as_secs_f64());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod disk;
mod lru;
mod netram;
mod pager;

pub mod multigrid;

pub use disk::DiskModel;
pub use lru::{LruCache, Touch};
pub use multigrid::{MultigridComponent, PageEvent};
pub use netram::{NetworkRam, RemoteAccessCost};
pub use pager::{FaultKind, FixedPath, PageId, Pager, PagerStats, RemotePath};
