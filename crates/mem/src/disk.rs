//! The 1994 workstation disk: big, cheap, and slow to get started.
//!
//! The paper's I/O-bottleneck argument rests on disks improving in
//! *capacity* but not *performance*; the constants here reproduce the
//! 14.8-ms 8-KB access of Table 2 while exposing the seek/rotation/transfer
//! split, so sequential streaming (which amortises the mechanical parts)
//! can be modelled separately from random access.

use now_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Timing model of one disk.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiskModel {
    /// Average seek time.
    pub avg_seek: SimDuration,
    /// Average rotational delay (half a revolution).
    pub avg_rotation: SimDuration,
    /// Media transfer rate, MB/s.
    pub transfer_mb_s: f64,
    /// Fixed controller/driver overhead per request.
    pub controller: SimDuration,
}

impl DiskModel {
    /// A 1994 workstation disk (5,400 rpm class): 8-ms seek, 5.6-ms
    /// rotation, 6.5-MB/s media rate. An 8-KB random access costs 14.8 ms,
    /// matching Table 2.
    pub fn workstation_1994() -> Self {
        DiskModel {
            avg_seek: SimDuration::from_micros(8_000),
            avg_rotation: SimDuration::from_micros(5_560),
            transfer_mb_s: 6.5,
            controller: SimDuration::from_micros(20),
        }
    }

    /// Time for one random access of `bytes`.
    pub fn random_access(&self, bytes: u64) -> SimDuration {
        self.controller + self.avg_seek + self.avg_rotation + self.transfer_time(bytes)
    }

    /// Media transfer time alone for `bytes` (no seek/rotation) — the
    /// steady-state cost per block when streaming sequentially.
    pub fn transfer_time(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / (self.transfer_mb_s * 1e6))
    }

    /// Effective time per block when reading `blocks` consecutive blocks of
    /// `bytes` each: one seek+rotation amortised over the run.
    ///
    /// # Panics
    ///
    /// Panics if `blocks` is zero.
    pub fn sequential_per_block(&self, bytes: u64, blocks: u64) -> SimDuration {
        assert!(blocks > 0, "a run has at least one block");
        let mechanical = self.controller + self.avg_seek + self.avg_rotation;
        self.transfer_time(bytes) + mechanical / blocks
    }

    /// Sustained sequential bandwidth in MB/s (long runs).
    pub fn sequential_mb_s(&self) -> f64 {
        self.transfer_mb_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_8kb_access_is_14_8_ms() {
        // Table 2's disk constant.
        let d = DiskModel::workstation_1994();
        let ms = d.random_access(8_192).as_millis_f64();
        assert!((14.3..15.3).contains(&ms), "got {ms} ms");
    }

    #[test]
    fn sequential_amortises_the_mechanics() {
        let d = DiskModel::workstation_1994();
        let random = d.random_access(8_192);
        let streamed = d.sequential_per_block(8_192, 1_000);
        assert!(
            streamed.as_micros_f64() * 8.0 < random.as_micros_f64(),
            "streaming {streamed} vs random {random}"
        );
        // Long-run cost approaches pure transfer time.
        let pure = d.transfer_time(8_192);
        assert!(streamed.as_micros_f64() < pure.as_micros_f64() * 1.05);
    }

    #[test]
    fn single_block_run_equals_random_access() {
        let d = DiskModel::workstation_1994();
        assert_eq!(d.sequential_per_block(8_192, 1), d.random_access(8_192));
    }

    #[test]
    fn transfer_scales_linearly() {
        let d = DiskModel::workstation_1994();
        let t1 = d.transfer_time(8_192);
        let t2 = d.transfer_time(16_384);
        // Each conversion rounds to the nanosecond independently.
        let diff = t2.as_nanos().abs_diff(t1.as_nanos() * 2);
        assert!(diff <= 2, "non-linear by {diff} ns");
    }

    #[test]
    fn bigger_transfers_still_dominated_by_mechanics_at_8kb() {
        // The I/O-bottleneck premise: for small blocks, mechanical time is
        // >90% of a random access.
        let d = DiskModel::workstation_1994();
        let mech = d.avg_seek + d.avg_rotation;
        let total = d.random_access(8_192);
        assert!(mech.as_micros_f64() / total.as_micros_f64() > 0.85);
    }
}
