//! Network RAM: the aggregate idle DRAM of the building as a paging
//! device.
//!
//! A faulting workstation sends a small request to a host holding the page
//! and receives the 8-KB page back; the cost is Table 2's remote-memory
//! column (1.05 ms over ATM) rather than the 14.8-ms disk. The pool tracks
//! per-host capacity so a paging-intensive job actually consumes idle
//! memory somewhere, and spills to disk when the building is out of free
//! DRAM.

use std::collections::BTreeMap;

use now_net::Network;
use now_probe::Probe;
use now_sim::SimDuration;
use serde::{Deserialize, Serialize};

use crate::PageId;

/// Cost of one remote-memory page access.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RemoteAccessCost {
    /// Fixed cost per access: request message, software overhead, copies.
    pub fixed: SimDuration,
    /// Per-byte transfer cost (reciprocal of effective bandwidth).
    pub per_byte: SimDuration,
}

impl RemoteAccessCost {
    /// Table 2's 155-Mbps ATM column: 650 µs fixed (copy + overhead), 8 KB
    /// in 400 µs on the wire — 1.05 ms total for a page.
    pub fn table2_atm() -> Self {
        RemoteAccessCost {
            fixed: SimDuration::from_micros(650),
            per_byte: SimDuration::from_nanos(49), // ≈400 µs / 8,192 B
        }
    }

    /// Table 2's Ethernet column: same fixed software cost, 6.25 ms of
    /// wire time per 8-KB page — 6.9 ms total.
    pub fn table2_ethernet() -> Self {
        RemoteAccessCost {
            fixed: SimDuration::from_micros(650),
            per_byte: SimDuration::from_nanos(763), // ≈6,250 µs / 8,192 B
        }
    }

    /// Derives the cost from a live [`Network`] by probing a small request
    /// and a page-sized response between nodes 0 and 1.
    pub fn from_network(net: &mut Network, page_bytes: u64) -> Self {
        let small = net.one_way_small_message_us();
        let mbps = net.bandwidth_at_mbps(page_bytes, 4);
        RemoteAccessCost {
            fixed: SimDuration::from_micros_f64(small * 2.0), // request + response software
            per_byte: SimDuration::from_secs_f64(8.0 / (mbps * 1e6)),
        }
    }

    /// Cost of one access of `bytes`.
    pub fn access(&self, bytes: u64) -> SimDuration {
        self.fixed + self.per_byte * bytes
    }

    /// Steady-state per-page cost when pages stream with prefetching: the
    /// wire/bandwidth term only (fixed costs overlap the pipeline).
    pub fn pipelined(&self, bytes: u64) -> SimDuration {
        self.per_byte * bytes
    }
}

/// Where a page lives in the pool: its primary host, plus an optional
/// mirror copy on a second host when the pool runs in mirrored mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Placement {
    primary: u32,
    mirror: Option<u32>,
}

/// The building-wide pool of idle DRAM.
///
/// # Example
///
/// ```
/// use now_mem::{NetworkRam, RemoteAccessCost, PageId};
///
/// let mut pool = NetworkRam::new(4, 1_000, RemoteAccessCost::table2_atm(), 8_192);
/// assert_eq!(pool.free_pages(), 4_000);
/// assert!(pool.store(PageId(7)));
/// assert!(pool.holds(PageId(7)));
/// ```
#[derive(Debug, Clone)]
pub struct NetworkRam {
    hosts: u32,
    per_host_pages: u64,
    cost: RemoteAccessCost,
    page_bytes: u64,
    /// Which host(s) hold each page. Ordered so iteration (host eviction,
    /// debugging dumps) is identical across processes — a `HashMap` here
    /// made fault replays differ run to run.
    locations: BTreeMap<PageId, Placement>,
    /// Used pages per host.
    used: Vec<u64>,
    next_host: u32,
    mirrored: bool,
    probe: Probe,
}

impl NetworkRam {
    /// Creates a pool of `hosts` idle machines donating `per_host_pages`
    /// page frames each.
    ///
    /// # Panics
    ///
    /// Panics if there are no hosts or no frames.
    pub fn new(hosts: u32, per_host_pages: u64, cost: RemoteAccessCost, page_bytes: u64) -> Self {
        assert!(hosts > 0, "network RAM needs at least one idle host");
        assert!(per_host_pages > 0, "hosts must donate at least one frame");
        NetworkRam {
            hosts,
            per_host_pages,
            cost,
            page_bytes,
            locations: BTreeMap::new(),
            used: vec![0; hosts as usize],
            next_host: 0,
            mirrored: false,
            probe: Probe::disabled(),
        }
    }

    /// Attaches a telemetry probe counting `netram.pages_out` (stores into
    /// the pool), `netram.pages_in` (fetches back), `netram.pages_lost`
    /// (pages dropped when a donating host departs), and
    /// `netram.pages_mirror_saved` (pages that survived a departure via
    /// their mirror copy).
    pub fn set_probe(&mut self, probe: Probe) {
        self.probe = probe;
    }

    /// Switches the pool to mirrored mode: every page is stored on two
    /// distinct hosts, halving capacity but surviving any single host
    /// crash without data loss.
    ///
    /// # Panics
    ///
    /// Panics if the pool already holds pages (the mode is a construction
    /// choice, not a runtime toggle) or has fewer than two hosts.
    pub fn set_mirrored(&mut self, on: bool) {
        assert!(
            self.locations.is_empty(),
            "mirroring must be chosen before any page is stored"
        );
        assert!(!on || self.hosts >= 2, "mirroring needs at least two hosts");
        self.mirrored = on;
    }

    /// Whether the pool mirrors every page on a second host.
    pub fn is_mirrored(&self) -> bool {
        self.mirrored
    }

    /// Total free frames across the pool (departed hosts contribute none).
    pub fn free_pages(&self) -> u64 {
        self.used.iter().map(|&u| self.per_host_pages - u).sum()
    }

    /// True if the pool currently holds `page`.
    pub fn holds(&self, page: PageId) -> bool {
        self.locations.contains_key(&page)
    }

    /// Stores `page` on some idle host (round-robin over hosts with room);
    /// in mirrored mode a second copy goes to a distinct host. Returns
    /// `false` if the pool is full — the caller must spill to disk. A
    /// mirrored store that cannot find two hosts with room spills rather
    /// than keep an unprotected single copy.
    pub fn store(&mut self, page: PageId) -> bool {
        if self.locations.contains_key(&page) {
            return true;
        }
        let Some(primary) = self.claim_frame(None) else {
            return false;
        };
        let mirror = if self.mirrored {
            match self.claim_frame(Some(primary)) {
                Some(m) => Some(m),
                None => {
                    self.used[primary as usize] -= 1;
                    return false;
                }
            }
        } else {
            None
        };
        self.locations.insert(page, Placement { primary, mirror });
        self.probe.count("netram.pages_out", 1);
        true
    }

    /// Claims one free frame round-robin, skipping `exclude`.
    fn claim_frame(&mut self, exclude: Option<u32>) -> Option<u32> {
        for _ in 0..self.hosts {
            let h = self.next_host;
            self.next_host = (self.next_host + 1) % self.hosts;
            if Some(h) == exclude {
                continue;
            }
            if self.used[h as usize] < self.per_host_pages {
                self.used[h as usize] += 1;
                return Some(h);
            }
        }
        None
    }

    /// Removes `page` from the pool, freeing its frame(s), and returns the
    /// primary host that held it — so a caller charging real fabric
    /// traffic knows which node the page streams from. Returns `None` if
    /// the pool does not hold the page.
    pub fn take(&mut self, page: PageId) -> Option<u32> {
        let place = self.locations.remove(&page)?;
        self.used[place.primary as usize] -= 1;
        if let Some(m) = place.mirror {
            self.used[m as usize] -= 1;
        }
        self.probe.count("netram.pages_in", 1);
        Some(place.primary)
    }

    /// Fetches `page` back from the pool, freeing its frame. Returns the
    /// access cost, or `None` if the pool does not hold the page.
    pub fn fetch(&mut self, page: PageId) -> Option<SimDuration> {
        self.take(page)?;
        Some(self.cost.access(self.page_bytes))
    }

    /// The cost model in use.
    pub fn cost(&self) -> RemoteAccessCost {
        self.cost
    }

    /// Page size in bytes.
    pub fn page_bytes(&self) -> u64 {
        self.page_bytes
    }

    /// A host departed (its user returned, or it crashed): pages whose
    /// only copy lived there are dropped and returned so the caller can
    /// recover them; in mirrored mode the surviving copy is promoted and
    /// the page stays resident. Capacity shrinks until
    /// [`rejoin_host`](Self::rejoin_host). The returned ids are in page
    /// order — `locations` iterates sorted, so the recovery order (and
    /// anything downstream of it) is identical across processes.
    pub fn evict_host(&mut self, host: u32) -> Vec<PageId> {
        assert!(host < self.hosts, "host out of range");
        let mut lost = Vec::new();
        let mut saved = 0u64;
        self.locations.retain(|&page, place| {
            if place.primary == host {
                match place.mirror.take() {
                    Some(m) => {
                        place.primary = m;
                        saved += 1;
                        true
                    }
                    None => {
                        lost.push(page);
                        false
                    }
                }
            } else {
                if place.mirror == Some(host) {
                    place.mirror = None;
                }
                true
            }
        });
        self.used[host as usize] = self.per_host_pages; // mark unusable
        self.probe.count("netram.pages_lost", lost.len() as u64);
        self.probe.count("netram.pages_mirror_saved", saved);
        lost
    }

    /// A departed host comes back (reboot, or its user left again): its
    /// frames become usable and empty. Pages it held before departing are
    /// *not* restored — [`evict_host`](Self::evict_host) already dropped
    /// or promoted them.
    pub fn rejoin_host(&mut self, host: u32) {
        assert!(host < self.hosts, "host out of range");
        debug_assert!(
            self.locations
                .values()
                .all(|p| p.primary != host && p.mirror != Some(host)),
            "rejoining host still referenced by placements"
        );
        self.used[host as usize] = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> NetworkRam {
        NetworkRam::new(3, 4, RemoteAccessCost::table2_atm(), 8_192)
    }

    #[test]
    fn table2_atm_page_cost_is_about_1050us() {
        let c = RemoteAccessCost::table2_atm();
        let us = c.access(8_192).as_micros_f64();
        assert!((1_000.0..1_110.0).contains(&us), "got {us}");
    }

    #[test]
    fn table2_ethernet_page_cost_is_about_6900us() {
        let c = RemoteAccessCost::table2_ethernet();
        let us = c.access(8_192).as_micros_f64();
        assert!((6_700.0..7_100.0).contains(&us), "got {us}");
    }

    #[test]
    fn pipelined_cost_is_wire_only() {
        let c = RemoteAccessCost::table2_atm();
        assert!(c.pipelined(8_192) < c.access(8_192));
        let us = c.pipelined(8_192).as_micros_f64();
        assert!((350.0..450.0).contains(&us), "got {us}");
    }

    #[test]
    fn store_and_fetch_roundtrip() {
        let mut p = pool();
        assert!(p.store(PageId(1)));
        assert!(p.holds(PageId(1)));
        assert_eq!(p.free_pages(), 11);
        let cost = p.fetch(PageId(1)).unwrap();
        assert!(cost > SimDuration::ZERO);
        assert!(!p.holds(PageId(1)));
        assert_eq!(p.free_pages(), 12);
    }

    #[test]
    fn fetch_of_absent_page_is_none() {
        let mut p = pool();
        assert_eq!(p.fetch(PageId(42)), None);
    }

    #[test]
    fn pool_fills_and_rejects() {
        let mut p = pool();
        for i in 0..12 {
            assert!(p.store(PageId(i)), "frame {i} should fit");
        }
        assert_eq!(p.free_pages(), 0);
        assert!(!p.store(PageId(99)), "full pool must refuse");
    }

    #[test]
    fn double_store_is_idempotent() {
        let mut p = pool();
        assert!(p.store(PageId(5)));
        assert!(p.store(PageId(5)));
        assert_eq!(p.free_pages(), 11);
    }

    #[test]
    fn pages_spread_across_hosts() {
        let mut p = pool();
        for i in 0..6 {
            p.store(PageId(i));
        }
        // Round-robin: each of 3 hosts holds 2.
        assert!(p.used.iter().all(|&u| u == 2), "{:?}", p.used);
    }

    #[test]
    fn evicting_a_host_loses_its_pages_and_capacity() {
        let mut p = pool();
        for i in 0..6 {
            p.store(PageId(i));
        }
        let lost = p.evict_host(1);
        assert_eq!(lost.len(), 2);
        for page in &lost {
            assert!(!p.holds(*page));
        }
        // Host 1's 4 frames are unusable; hosts 0 and 2 still hold 2 pages
        // each, leaving 2 free frames apiece.
        assert_eq!(p.free_pages(), 4);
    }

    #[test]
    fn rejoined_host_donates_frames_again() {
        let mut p = pool();
        for i in 0..6 {
            p.store(PageId(i));
        }
        let lost = p.evict_host(1);
        assert_eq!(lost.len(), 2);
        assert_eq!(p.free_pages(), 4);
        p.rejoin_host(1);
        // Host 1 is back with 4 empty frames; its old pages stay lost.
        assert_eq!(p.free_pages(), 8);
        for page in &lost {
            assert!(!p.holds(*page));
        }
    }

    #[test]
    fn mirrored_pool_survives_a_host_crash() {
        let mut p = pool();
        p.set_mirrored(true);
        for i in 0..4 {
            assert!(p.store(PageId(i)));
        }
        // 8 of 12 frames consumed: two copies per page.
        assert_eq!(p.free_pages(), 4);
        let lost = p.evict_host(0);
        assert!(
            lost.is_empty(),
            "mirror copies must cover the crash: {lost:?}"
        );
        for i in 0..4 {
            assert!(p.holds(PageId(i)));
        }
        // Every page is still fetchable from its surviving copy.
        for i in 0..4 {
            assert!(p.fetch(PageId(i)).is_some());
        }
    }

    #[test]
    fn mirrored_store_spills_rather_than_single_copy() {
        // Two hosts, one frame each: the second mirrored page cannot get
        // two distinct frames, so the store must refuse (spill to disk).
        let mut p = NetworkRam::new(2, 1, RemoteAccessCost::table2_atm(), 8_192);
        p.set_mirrored(true);
        assert!(p.store(PageId(0)));
        assert_eq!(p.free_pages(), 0);
        assert!(!p.store(PageId(1)));
    }

    #[test]
    fn mirrored_pool_halves_capacity() {
        let mut p = pool();
        p.set_mirrored(true);
        let mut stored = 0;
        while p.store(PageId(stored)) {
            stored += 1;
        }
        // 12 frames, 2 per page.
        assert_eq!(stored, 6);
    }

    #[test]
    fn from_network_matches_fabric_scale() {
        let mut net = now_net::presets::am_atm(4);
        let c = RemoteAccessCost::from_network(&mut net, 8_192);
        // AM over ATM should beat the Table 2 kernel-driver constants.
        assert!(c.access(8_192) < RemoteAccessCost::table2_atm().access(8_192));
    }
}
