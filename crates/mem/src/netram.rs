//! Network RAM: the aggregate idle DRAM of the building as a paging
//! device.
//!
//! A faulting workstation sends a small request to a host holding the page
//! and receives the 8-KB page back; the cost is Table 2's remote-memory
//! column (1.05 ms over ATM) rather than the 14.8-ms disk. The pool tracks
//! per-host capacity so a paging-intensive job actually consumes idle
//! memory somewhere, and spills to disk when the building is out of free
//! DRAM.

use std::collections::HashMap;

use now_net::Network;
use now_probe::Probe;
use now_sim::SimDuration;
use serde::{Deserialize, Serialize};

use crate::PageId;

/// Cost of one remote-memory page access.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RemoteAccessCost {
    /// Fixed cost per access: request message, software overhead, copies.
    pub fixed: SimDuration,
    /// Per-byte transfer cost (reciprocal of effective bandwidth).
    pub per_byte: SimDuration,
}

impl RemoteAccessCost {
    /// Table 2's 155-Mbps ATM column: 650 µs fixed (copy + overhead), 8 KB
    /// in 400 µs on the wire — 1.05 ms total for a page.
    pub fn table2_atm() -> Self {
        RemoteAccessCost {
            fixed: SimDuration::from_micros(650),
            per_byte: SimDuration::from_nanos(49), // ≈400 µs / 8,192 B
        }
    }

    /// Table 2's Ethernet column: same fixed software cost, 6.25 ms of
    /// wire time per 8-KB page — 6.9 ms total.
    pub fn table2_ethernet() -> Self {
        RemoteAccessCost {
            fixed: SimDuration::from_micros(650),
            per_byte: SimDuration::from_nanos(763), // ≈6,250 µs / 8,192 B
        }
    }

    /// Derives the cost from a live [`Network`] by probing a small request
    /// and a page-sized response between nodes 0 and 1.
    pub fn from_network(net: &mut Network, page_bytes: u64) -> Self {
        let small = net.one_way_small_message_us();
        let mbps = net.bandwidth_at_mbps(page_bytes, 4);
        RemoteAccessCost {
            fixed: SimDuration::from_micros_f64(small * 2.0), // request + response software
            per_byte: SimDuration::from_secs_f64(8.0 / (mbps * 1e6)),
        }
    }

    /// Cost of one access of `bytes`.
    pub fn access(&self, bytes: u64) -> SimDuration {
        self.fixed + self.per_byte * bytes
    }

    /// Steady-state per-page cost when pages stream with prefetching: the
    /// wire/bandwidth term only (fixed costs overlap the pipeline).
    pub fn pipelined(&self, bytes: u64) -> SimDuration {
        self.per_byte * bytes
    }
}

/// The building-wide pool of idle DRAM.
///
/// # Example
///
/// ```
/// use now_mem::{NetworkRam, RemoteAccessCost, PageId};
///
/// let mut pool = NetworkRam::new(4, 1_000, RemoteAccessCost::table2_atm(), 8_192);
/// assert_eq!(pool.free_pages(), 4_000);
/// assert!(pool.store(PageId(7)));
/// assert!(pool.holds(PageId(7)));
/// ```
#[derive(Debug, Clone)]
pub struct NetworkRam {
    hosts: u32,
    per_host_pages: u64,
    cost: RemoteAccessCost,
    page_bytes: u64,
    /// Which host holds each page.
    locations: HashMap<PageId, u32>,
    /// Used pages per host.
    used: Vec<u64>,
    next_host: u32,
    probe: Probe,
}

impl NetworkRam {
    /// Creates a pool of `hosts` idle machines donating `per_host_pages`
    /// page frames each.
    ///
    /// # Panics
    ///
    /// Panics if there are no hosts or no frames.
    pub fn new(hosts: u32, per_host_pages: u64, cost: RemoteAccessCost, page_bytes: u64) -> Self {
        assert!(hosts > 0, "network RAM needs at least one idle host");
        assert!(per_host_pages > 0, "hosts must donate at least one frame");
        NetworkRam {
            hosts,
            per_host_pages,
            cost,
            page_bytes,
            locations: HashMap::new(),
            used: vec![0; hosts as usize],
            next_host: 0,
            probe: Probe::disabled(),
        }
    }

    /// Attaches a telemetry probe counting `netram.pages_out` (stores into
    /// the pool), `netram.pages_in` (fetches back), and
    /// `netram.pages_lost` (pages dropped when a donating host departs).
    pub fn set_probe(&mut self, probe: Probe) {
        self.probe = probe;
    }

    /// Total free frames across the pool (departed hosts contribute none).
    pub fn free_pages(&self) -> u64 {
        self.used.iter().map(|&u| self.per_host_pages - u).sum()
    }

    /// True if the pool currently holds `page`.
    pub fn holds(&self, page: PageId) -> bool {
        self.locations.contains_key(&page)
    }

    /// Stores `page` on some idle host (round-robin over hosts with room).
    /// Returns `false` if the pool is full — the caller must spill to disk.
    pub fn store(&mut self, page: PageId) -> bool {
        if self.locations.contains_key(&page) {
            return true;
        }
        for _ in 0..self.hosts {
            let h = self.next_host;
            self.next_host = (self.next_host + 1) % self.hosts;
            if self.used[h as usize] < self.per_host_pages {
                self.used[h as usize] += 1;
                self.locations.insert(page, h);
                self.probe.count("netram.pages_out", 1);
                return true;
            }
        }
        false
    }

    /// Removes `page` from the pool, freeing its frame, and returns the
    /// host that held it — so a caller charging real fabric traffic knows
    /// which node the page streams from. Returns `None` if the pool does
    /// not hold the page.
    pub fn take(&mut self, page: PageId) -> Option<u32> {
        let host = self.locations.remove(&page)?;
        self.used[host as usize] -= 1;
        self.probe.count("netram.pages_in", 1);
        Some(host)
    }

    /// Fetches `page` back from the pool, freeing its frame. Returns the
    /// access cost, or `None` if the pool does not hold the page.
    pub fn fetch(&mut self, page: PageId) -> Option<SimDuration> {
        self.take(page)?;
        Some(self.cost.access(self.page_bytes))
    }

    /// The cost model in use.
    pub fn cost(&self) -> RemoteAccessCost {
        self.cost
    }

    /// Page size in bytes.
    pub fn page_bytes(&self) -> u64 {
        self.page_bytes
    }

    /// A host departed (its user returned): all its pages are lost and the
    /// ids that must be recovered from disk are returned. Capacity shrinks.
    pub fn evict_host(&mut self, host: u32) -> Vec<PageId> {
        assert!(host < self.hosts, "host out of range");
        let mut lost: Vec<PageId> = self
            .locations
            .iter()
            .filter(|(_, &h)| h == host)
            .map(|(&p, _)| p)
            .collect();
        // The map hashes by a per-process seed; sort so the recovery order
        // (and anything downstream of it) is reproducible across runs.
        lost.sort_unstable();
        for p in &lost {
            self.locations.remove(p);
        }
        self.used[host as usize] = self.per_host_pages; // mark unusable
        self.probe.count("netram.pages_lost", lost.len() as u64);
        lost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> NetworkRam {
        NetworkRam::new(3, 4, RemoteAccessCost::table2_atm(), 8_192)
    }

    #[test]
    fn table2_atm_page_cost_is_about_1050us() {
        let c = RemoteAccessCost::table2_atm();
        let us = c.access(8_192).as_micros_f64();
        assert!((1_000.0..1_110.0).contains(&us), "got {us}");
    }

    #[test]
    fn table2_ethernet_page_cost_is_about_6900us() {
        let c = RemoteAccessCost::table2_ethernet();
        let us = c.access(8_192).as_micros_f64();
        assert!((6_700.0..7_100.0).contains(&us), "got {us}");
    }

    #[test]
    fn pipelined_cost_is_wire_only() {
        let c = RemoteAccessCost::table2_atm();
        assert!(c.pipelined(8_192) < c.access(8_192));
        let us = c.pipelined(8_192).as_micros_f64();
        assert!((350.0..450.0).contains(&us), "got {us}");
    }

    #[test]
    fn store_and_fetch_roundtrip() {
        let mut p = pool();
        assert!(p.store(PageId(1)));
        assert!(p.holds(PageId(1)));
        assert_eq!(p.free_pages(), 11);
        let cost = p.fetch(PageId(1)).unwrap();
        assert!(cost > SimDuration::ZERO);
        assert!(!p.holds(PageId(1)));
        assert_eq!(p.free_pages(), 12);
    }

    #[test]
    fn fetch_of_absent_page_is_none() {
        let mut p = pool();
        assert_eq!(p.fetch(PageId(42)), None);
    }

    #[test]
    fn pool_fills_and_rejects() {
        let mut p = pool();
        for i in 0..12 {
            assert!(p.store(PageId(i)), "frame {i} should fit");
        }
        assert_eq!(p.free_pages(), 0);
        assert!(!p.store(PageId(99)), "full pool must refuse");
    }

    #[test]
    fn double_store_is_idempotent() {
        let mut p = pool();
        assert!(p.store(PageId(5)));
        assert!(p.store(PageId(5)));
        assert_eq!(p.free_pages(), 11);
    }

    #[test]
    fn pages_spread_across_hosts() {
        let mut p = pool();
        for i in 0..6 {
            p.store(PageId(i));
        }
        // Round-robin: each of 3 hosts holds 2.
        assert!(p.used.iter().all(|&u| u == 2), "{:?}", p.used);
    }

    #[test]
    fn evicting_a_host_loses_its_pages_and_capacity() {
        let mut p = pool();
        for i in 0..6 {
            p.store(PageId(i));
        }
        let lost = p.evict_host(1);
        assert_eq!(lost.len(), 2);
        for page in &lost {
            assert!(!p.holds(*page));
        }
        // Host 1's 4 frames are unusable; hosts 0 and 2 still hold 2 pages
        // each, leaving 2 free frames apiece.
        assert_eq!(p.free_pages(), 4);
    }

    #[test]
    fn from_network_matches_fabric_scale() {
        let mut net = now_net::presets::am_atm(4);
        let c = RemoteAccessCost::from_network(&mut net, 8_192);
        // AM over ATM should beat the Table 2 kernel-driver constants.
        assert!(c.access(8_192) < RemoteAccessCost::table2_atm().access(8_192));
    }
}
