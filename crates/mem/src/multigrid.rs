//! The multigrid application model behind Figure 2.
//!
//! Figure 2 plots estimated execution time of an iterative multigrid solver
//! as the problem grows, on three machines: 32 MB of DRAM plus disk
//! paging, 128 MB of DRAM, and 32 MB plus paging to other machines' DRAM.
//! The qualitative claims:
//!
//! * while the problem fits in local DRAM all three are identical;
//! * past local DRAM, network RAM runs **10–30 percent slower** than a
//!   machine with enough DRAM;
//! * thrashing to disk is **5–10× slower** than network RAM.
//!
//! The model runs a fixed number of smoothing iterations over the problem's
//! pages through a real [`Pager`], so the curves come from LRU behaviour
//! and the Table 2 cost constants, not from asserting the conclusion.

use now_probe::causal::category;
use now_probe::{Gauge, Probe};
use now_sim::{Component, CostMode, Ctx, Engine, EventCast, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::pager::{FixedPath, RemotePath};
use crate::{DiskModel, NetworkRam, PageId, Pager, PagerStats, RemoteAccessCost};

/// Bytes per page (8 KB, as in Table 2).
pub const PAGE_BYTES: u64 = 8_192;

/// Application parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MultigridConfig {
    /// Sustained scalar floating-point rate of the workstation, MFLOPS.
    pub mflops: f64,
    /// Floating-point operations per grid point per smoothing sweep.
    pub flops_per_point: f64,
    /// Smoothing sweeps (V-cycle work folded in) per run.
    pub sweeps: u32,
}

impl MultigridConfig {
    /// A 1994 high-end workstation: 40 MFLOPS sustained, 12 flops per
    /// point per sweep, 5 sweeps.
    pub fn paper_defaults() -> Self {
        MultigridConfig {
            mflops: 40.0,
            flops_per_point: 12.0,
            sweeps: 5,
        }
    }

    /// Pure computation time per page per sweep (1,024 doubles per 8-KB
    /// page).
    pub fn compute_per_page(&self) -> SimDuration {
        let points = PAGE_BYTES as f64 / 8.0;
        SimDuration::from_secs_f64(points * self.flops_per_point / (self.mflops * 1e6))
    }
}

/// The three memory configurations of Figure 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MemoryConfig {
    /// All problem pages fit (or not) in `mb` of local DRAM; overflow pages
    /// to the local disk.
    LocalWithDisk {
        /// Local DRAM, MB.
        mb: u64,
    },
    /// `mb` of local DRAM; overflow pages to idle machines' DRAM over the
    /// network, spilling to disk only if the pool fills.
    LocalWithNetRam {
        /// Local DRAM, MB.
        mb: u64,
        /// Idle machines donating memory.
        hosts: u32,
        /// Donated DRAM per idle machine, MB.
        mb_per_host: u64,
        /// Remote page access cost model.
        cost: RemoteAccessCost,
    },
}

impl MemoryConfig {
    /// Figure 2's "32 Mbytes of DRAM plus disk" machine.
    pub fn local32_disk() -> Self {
        MemoryConfig::LocalWithDisk { mb: 32 }
    }

    /// Figure 2's "128 Mbytes of DRAM" machine.
    pub fn local128() -> Self {
        MemoryConfig::LocalWithDisk { mb: 128 }
    }

    /// Figure 2's "32 Mbytes plus paging to DRAM on other machines"
    /// machine: sixteen idle hosts donating 16 MB each over ATM.
    pub fn local32_netram() -> Self {
        MemoryConfig::LocalWithNetRam {
            mb: 32,
            hosts: 16,
            mb_per_host: 16,
            cost: RemoteAccessCost::table2_atm(),
        }
    }

    /// Builds the demand pager this configuration describes (local frame
    /// pool backed by disk or network RAM) — for callers composing their
    /// own engine, e.g. a coupled cluster scenario.
    pub fn build_pager(&self) -> Pager {
        let disk = DiskModel::workstation_1994();
        match *self {
            MemoryConfig::LocalWithDisk { mb } => {
                Pager::with_disk((mb * 1024 * 1024 / PAGE_BYTES) as usize, PAGE_BYTES, disk)
            }
            MemoryConfig::LocalWithNetRam {
                mb,
                hosts,
                mb_per_host,
                cost,
            } => Pager::with_netram(
                (mb * 1024 * 1024 / PAGE_BYTES) as usize,
                PAGE_BYTES,
                NetworkRam::new(
                    hosts,
                    mb_per_host * 1024 * 1024 / PAGE_BYTES,
                    cost,
                    PAGE_BYTES,
                ),
                disk,
            ),
        }
    }
}

/// Events driving a [`MultigridComponent`]: each `Step` performs one page
/// access and schedules the next; the host events deliver pool-membership
/// changes from a fault coordinator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageEvent {
    /// Access the next page of the sweep.
    Step,
    /// A network-RAM host (by pool index) crashed: its pages are
    /// destroyed, or survive via mirrors in mirrored mode.
    HostCrashed(u32),
    /// A crashed host rebooted and donates empty frames again.
    HostRejoined(u32),
}

/// The multigrid solver as an engine [`Component`]: one page access per
/// event, self-chained at `compute + stall` spacing.
///
/// Under [`CostMode::Fixed`] network-RAM fetches charge the Table 2
/// constants through [`FixedPath`] — the legacy arithmetic, bit-for-bit.
/// Under [`CostMode::Fabric`] each fetch streams the page from the idle
/// host's node over the engine's shared fabric, so competing traffic on
/// the same wires shows up directly as paging stall.
pub struct MultigridComponent {
    pager: Pager,
    per_page: SimDuration,
    pages: u64,
    total_accesses: u64,
    idx: u64,
    compute: SimDuration,
    stall: SimDuration,
    /// Fabric node this process runs on.
    node: u32,
    /// Fabric nodes of the idle hosts donating DRAM, indexed by pool host.
    host_nodes: Vec<u32>,
    netram_service: SimDuration,
    netram_fetches: u64,
    fetch_gauge: Gauge,
}

/// A [`RemotePath`] that streams each fetched page over the engine's
/// shared fabric: sequential faults pipeline a one-way page transfer,
/// random faults pay a full request/response round trip.
struct EnginePath<'a, 'c, M> {
    ctx: &'a mut Ctx<'c, M>,
    node: u32,
    hosts: &'a [u32],
    /// Cost-breakdown accumulators over the fetches of one access, for
    /// causal blame attribution.
    overhead: SimDuration,
    wait: SimDuration,
    wire: SimDuration,
}

impl<M> RemotePath for EnginePath<'_, '_, M> {
    fn netram_fetch(
        &mut self,
        host: u32,
        sequential: bool,
        bytes: u64,
        _cost: RemoteAccessCost,
    ) -> SimDuration {
        let src = self.hosts[host as usize % self.hosts.len()];
        let now = self.ctx.now();
        let cost = if sequential {
            // Streaming: the request pipeline is hidden, the page rides
            // one way on the wire.
            self.ctx.transfer_detailed(src, self.node, bytes)
        } else {
            // Cold fetch: small request out, the page back.
            self.ctx.rpc_detailed(self.node, src, 64, bytes)
        };
        self.overhead += cost.overhead;
        self.wait += cost.wait;
        self.wire += cost.wire;
        cost.delivered.saturating_since(now)
    }
}

/// Wraps any path to record the raw (pre-overlap) service time of every
/// fetch, feeding the latency metric without touching the stall rule.
struct Sampling<'p> {
    inner: &'p mut dyn RemotePath,
    sum: SimDuration,
    count: u64,
}

impl RemotePath for Sampling<'_> {
    fn netram_fetch(
        &mut self,
        host: u32,
        sequential: bool,
        bytes: u64,
        cost: RemoteAccessCost,
    ) -> SimDuration {
        let service = self.inner.netram_fetch(host, sequential, bytes, cost);
        self.sum += service;
        self.count += 1;
        service
    }
}

impl MultigridComponent {
    /// A component that will perform `total_accesses` accesses sweeping
    /// `pages` pages in order, with `per_page` computation between
    /// accesses.
    pub fn new(pager: Pager, per_page: SimDuration, pages: u64, total_accesses: u64) -> Self {
        assert!(pages > 0, "problem must have pages");
        MultigridComponent {
            pager,
            per_page,
            pages,
            total_accesses,
            idx: 0,
            compute: SimDuration::ZERO,
            stall: SimDuration::ZERO,
            node: 0,
            host_nodes: Vec::new(),
            netram_service: SimDuration::ZERO,
            netram_fetches: 0,
            fetch_gauge: Gauge::default(),
        }
    }

    /// Attaches a telemetry probe publishing the `mem.netram_fetch_us`
    /// gauge (running mean fetch service time).
    pub fn set_probe(&mut self, probe: &Probe) {
        self.fetch_gauge = probe.gauge("mem.netram_fetch_us");
    }

    /// Places the process on fabric node `node` with the network-RAM pool
    /// hosts living on `host_nodes`. Required for [`CostMode::Fabric`]
    /// engines; ignored under [`CostMode::Fixed`].
    #[must_use]
    pub fn with_placement(mut self, node: u32, host_nodes: Vec<u32>) -> Self {
        self.node = node;
        self.host_nodes = host_nodes;
        self
    }

    /// The run outcome accumulated so far (complete once the engine
    /// drains).
    pub fn result(&self) -> RunResult {
        RunResult {
            compute: self.compute,
            stall: self.stall,
            total: self.compute + self.stall,
            pager: self.pager.stats(),
        }
    }

    /// Mean service time of a network-RAM page fetch, in microseconds
    /// (`None` before the first fetch). Under [`CostMode::Fabric`] this is
    /// the observed door-to-door fabric latency — the contention metric.
    pub fn mean_netram_fetch_us(&self) -> Option<f64> {
        (self.netram_fetches > 0)
            .then(|| self.netram_service.as_micros_f64() / self.netram_fetches as f64)
    }
}

impl<M: EventCast<PageEvent> + 'static> Component<M> for MultigridComponent {
    fn on_event(&mut self, ctx: &mut Ctx<'_, M>, event: M) {
        match event.downcast() {
            PageEvent::Step => {}
            PageEvent::HostCrashed(host) => {
                self.pager.handle_host_crash(host);
                return;
            }
            PageEvent::HostRejoined(host) => {
                self.pager.handle_host_rejoin(host);
                return;
            }
        }
        if self.idx >= self.total_accesses {
            return;
        }
        let page = PageId(self.idx % self.pages);
        // Faults serviced by this access start now; the pager uses the
        // clock to fill the backing-device utilization ledgers.
        self.pager.set_clock(ctx.now());
        let mut fabric = (SimDuration::ZERO, SimDuration::ZERO, SimDuration::ZERO);
        let (fetched, fetches, stall) = match ctx.cost_mode() {
            CostMode::Fixed => {
                let mut sampler = Sampling {
                    inner: &mut FixedPath,
                    sum: SimDuration::ZERO,
                    count: 0,
                };
                let (_, stall) = self
                    .pager
                    .access_via(page, true, self.per_page, &mut sampler);
                (sampler.sum, sampler.count, stall)
            }
            CostMode::Fabric => {
                let mut path = EnginePath {
                    ctx,
                    node: self.node,
                    hosts: &self.host_nodes,
                    overhead: SimDuration::ZERO,
                    wait: SimDuration::ZERO,
                    wire: SimDuration::ZERO,
                };
                let mut sampler = Sampling {
                    inner: &mut path,
                    sum: SimDuration::ZERO,
                    count: 0,
                };
                let (_, stall) = self
                    .pager
                    .access_via(page, true, self.per_page, &mut sampler);
                let out = (sampler.sum, sampler.count, stall);
                fabric = (path.overhead, path.wait, path.wire);
                out
            }
        };
        self.netram_service += fetched;
        self.netram_fetches += fetches;
        self.idx += 1;
        self.compute += self.per_page;
        self.stall += stall;
        if let Some(us) = self.mean_netram_fetch_us() {
            self.fetch_gauge.set(us);
        }
        // Attribute the edge to the next access: compute, then the fabric
        // terms of this access's fetches, then whatever paging stall the
        // fetches don't explain (pager bookkeeping, disk, overlap residue).
        let (overhead, wait, wire) = fabric;
        ctx.blame(category::COMPUTE, self.per_page);
        ctx.blame(category::AM_OVERHEAD, overhead);
        ctx.blame(category::FABRIC_WAIT, wait);
        ctx.blame(category::WIRE, wire);
        ctx.blame(
            category::PAGING,
            stall.saturating_sub(overhead + wait + wire),
        );
        if self.idx < self.total_accesses {
            ctx.schedule_after(self.per_page + stall, M::upcast(PageEvent::Step));
        } else {
            ctx.mark("paging.complete", ctx.now() + self.per_page + stall);
        }
    }
}

/// Result of one multigrid run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// Pure computation time.
    pub compute: SimDuration,
    /// Processor stall charged to paging.
    pub stall: SimDuration,
    /// Total execution time.
    pub total: SimDuration,
    /// Pager counters.
    pub pager: PagerStats,
}

impl RunResult {
    /// Slowdown relative to another run.
    pub fn slowdown_vs(&self, other: &RunResult) -> f64 {
        self.total.as_secs_f64() / other.total.as_secs_f64()
    }
}

/// Runs a `problem_mb`-MB multigrid problem under `memory` with the paper's
/// application parameters.
pub fn run(problem_mb: u64, memory: MemoryConfig) -> RunResult {
    run_with(problem_mb, memory, MultigridConfig::paper_defaults())
}

/// [`run`] with telemetry: the pager's `pager.*` / `netram.*` probes fire,
/// and the whole run is recorded as a `mem/multigrid` span of simulated
/// time (with the problem size as an argument).
pub fn run_probed(problem_mb: u64, memory: MemoryConfig, probe: &Probe) -> RunResult {
    run_with_probed(problem_mb, memory, MultigridConfig::paper_defaults(), probe)
}

/// Runs with explicit application parameters.
///
/// # Panics
///
/// Panics if the problem is empty.
pub fn run_with(problem_mb: u64, memory: MemoryConfig, app: MultigridConfig) -> RunResult {
    run_with_probed(problem_mb, memory, app, &Probe::disabled())
}

/// [`run_with`] with telemetry (see [`run_probed`]).
///
/// # Panics
///
/// Panics if the problem is empty.
pub fn run_with_probed(
    problem_mb: u64,
    memory: MemoryConfig,
    app: MultigridConfig,
    probe: &Probe,
) -> RunResult {
    assert!(problem_mb > 0, "problem must have pages");
    let pages = problem_mb * 1024 * 1024 / PAGE_BYTES;
    let mut pager = memory.build_pager();
    pager.set_probe(probe.clone());
    // A smoothing sweep reads and writes each page in order; the engine
    // (in fixed-cost mode) drives the same access sequence the hand-rolled
    // loop used to, so results are bit-identical.
    let mut engine = Engine::new();
    let solver = MultigridComponent::new(
        pager,
        app.compute_per_page(),
        pages,
        u64::from(app.sweeps) * pages,
    );
    let id = engine.register(solver);
    engine.schedule_at(id, SimTime::ZERO, PageEvent::Step);
    engine.run();
    let result = engine.component::<MultigridComponent>(id).result();
    if probe.is_enabled() {
        probe
            .span("mem", "multigrid", SimTime::ZERO)
            .arg("problem_mb", problem_mb as f64)
            .end(SimTime::ZERO + result.total);
    }
    result
}

/// The problem sizes (MB) Figure 2 sweeps.
pub fn figure2_sizes() -> Vec<u64> {
    vec![8, 16, 24, 32, 48, 64, 80, 96, 112, 120]
}

/// Generates the three Figure 2 curves as `(size_mb, seconds)` series in
/// the order: 32 MB + disk, 128 MB, 32 MB + network RAM.
pub fn figure2_series() -> [(String, Vec<(f64, f64)>); 3] {
    let configs = [
        ("32 MB + disk paging", MemoryConfig::local32_disk()),
        ("128 MB local DRAM", MemoryConfig::local128()),
        ("32 MB + network RAM", MemoryConfig::local32_netram()),
    ];
    configs.map(|(name, cfg)| {
        let points = figure2_sizes()
            .into_iter()
            .map(|mb| (mb as f64, run(mb, cfg.clone()).total.as_secs_f64()))
            .collect();
        (name.to_string(), points)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_configs_identical_when_problem_fits() {
        let small = 24; // < 32 MB
        let disk = run(small, MemoryConfig::local32_disk());
        let big = run(small, MemoryConfig::local128());
        let netram = run(small, MemoryConfig::local32_netram());
        assert_eq!(disk.total, big.total);
        assert_eq!(netram.total, big.total);
        assert_eq!(disk.pager.disk_faults, 0);
        assert_eq!(netram.pager.netram_faults, 0);
    }

    #[test]
    fn netram_is_10_to_30_percent_slower_than_big_dram() {
        // The paper: "programs run 10 to 30 percent slower using network
        // RAM than if the program fits entirely in local DRAM."
        for mb in [64, 96, 120] {
            let netram = run(mb, MemoryConfig::local32_netram());
            let big = run(mb, MemoryConfig::local128());
            let slowdown = netram.slowdown_vs(&big);
            assert!(
                (1.08..=1.35).contains(&slowdown),
                "{mb} MB: netram slowdown {slowdown}"
            );
        }
    }

    #[test]
    fn netram_is_5_to_10x_faster_than_disk_thrash() {
        // The paper: "using network RAM is 5 to 10 times faster than
        // thrashing to disk."
        for mb in [64, 96, 120] {
            let netram = run(mb, MemoryConfig::local32_netram());
            let disk = run(mb, MemoryConfig::local32_disk());
            let speedup = disk.slowdown_vs(&netram);
            assert!(
                (4.0..=11.0).contains(&speedup),
                "{mb} MB: netram speedup over disk {speedup}"
            );
        }
    }

    #[test]
    fn big_dram_machine_never_pages_up_to_its_capacity() {
        let r = run(120, MemoryConfig::local128());
        assert_eq!(r.pager.disk_faults, 0);
        assert_eq!(r.pager.netram_faults, 0);
        assert_eq!(r.stall.as_nanos(), r.pager.soft_faults * 50_000);
    }

    #[test]
    fn execution_time_grows_with_problem_size() {
        for cfg in [
            MemoryConfig::local32_disk(),
            MemoryConfig::local128(),
            MemoryConfig::local32_netram(),
        ] {
            let mut last = SimDuration::ZERO;
            for mb in [16, 48, 96] {
                let r = run(mb, cfg.clone());
                assert!(r.total > last, "{cfg:?} not monotone at {mb} MB");
                last = r.total;
            }
        }
    }

    #[test]
    fn thrashing_onset_is_at_local_capacity() {
        // At 32 MB the problem exactly fills the frames: no steady-state
        // faults. Just past it, faulting starts.
        let at = run(32, MemoryConfig::local32_disk());
        assert_eq!(at.pager.disk_faults, 0);
        let past = run(40, MemoryConfig::local32_disk());
        assert!(past.pager.disk_faults > 0);
    }

    #[test]
    fn figure2_series_has_three_labelled_curves() {
        // (Uses the same code path as the repro binary; small smoke check.)
        let series = figure2_series();
        assert_eq!(series.len(), 3);
        for (name, points) in &series {
            assert!(!name.is_empty());
            assert_eq!(points.len(), figure2_sizes().len());
        }
        // Disk curve ends far above the netram curve.
        let disk_end = series[0].1.last().unwrap().1;
        let netram_end = series[2].1.last().unwrap().1;
        assert!(disk_end > 4.0 * netram_end);
    }

    #[test]
    fn pager_sees_every_access() {
        let r = run(16, MemoryConfig::local128());
        let pages = 16 * 1024 * 1024 / PAGE_BYTES;
        assert_eq!(r.pager.accesses, pages * 5);
    }
}
