//! Property tests for LRU and pager invariants.

use now_mem::{DiskModel, LruCache, NetworkRam, PageId, Pager, RemoteAccessCost, Touch};
use now_sim::SimDuration;
use proptest::prelude::*;

proptest! {
    /// The cache never exceeds capacity and `contains` agrees with
    /// touch-hit behaviour.
    #[test]
    fn lru_capacity_and_membership(
        cap in 1usize..32,
        keys in prop::collection::vec(0u64..64, 1..300),
    ) {
        let mut c = LruCache::new(cap);
        for &k in &keys {
            let contained = c.contains(&k);
            let t = c.touch(k, false);
            prop_assert_eq!(matches!(t, Touch::Hit), contained);
            prop_assert!(c.len() <= cap);
            prop_assert!(c.contains(&k), "just-touched key resident");
        }
    }

    /// The LRU cache behaves identically to a naive reference
    /// implementation (vector ordered by recency).
    #[test]
    fn lru_matches_reference_model(
        cap in 1usize..16,
        ops in prop::collection::vec((0u64..32, any::<bool>()), 1..200),
    ) {
        let mut c = LruCache::new(cap);
        let mut reference: Vec<u64> = Vec::new(); // LRU at front, MRU at back
        for &(k, w) in &ops {
            let t = c.touch(k, w);
            if let Some(pos) = reference.iter().position(|&x| x == k) {
                prop_assert!(matches!(t, Touch::Hit));
                reference.remove(pos);
                reference.push(k);
            } else {
                reference.push(k);
                if reference.len() > cap {
                    let victim = reference.remove(0);
                    match t {
                        Touch::MissEvicted { victim: v, .. } => prop_assert_eq!(v, victim),
                        other => prop_assert!(false, "expected eviction, got {other:?}"),
                    }
                } else {
                    prop_assert!(matches!(t, Touch::MissInserted));
                }
            }
        }
        let got: Vec<u64> = c.iter().copied().collect();
        prop_assert_eq!(got, reference);
    }

    /// Pager conservation: hits + faults == accesses, and every page ever
    /// touched is either resident, in the pool, or on disk — re-accessing
    /// it never yields a soft fault twice.
    #[test]
    fn pager_accounts_every_access(
        frames in 1usize..16,
        pool_pages in 4u64..32,
        accesses in prop::collection::vec((0u64..48, any::<bool>()), 1..300),
    ) {
        let pool = NetworkRam::new(4, pool_pages, RemoteAccessCost::table2_atm(), 8_192);
        let mut p = Pager::with_netram(frames, 8_192, pool, DiskModel::workstation_1994());
        let mut seen = std::collections::HashSet::new();
        for &(page, write) in &accesses {
            let (kind, _) = p.access(PageId(page), write, SimDuration::from_micros(100));
            let first = seen.insert(page);
            prop_assert_eq!(
                matches!(kind, now_mem::FaultKind::SoftFault),
                first,
                "soft fault iff first touch of {}",
                page
            );
        }
        let s = p.stats();
        prop_assert_eq!(s.accesses as usize, accesses.len());
        prop_assert_eq!(s.hits + s.soft_faults + s.netram_faults + s.disk_faults, s.accesses);
        prop_assert_eq!(s.soft_faults as usize, seen.len());
    }

    /// Stall time is monotone in the access stream: adding accesses never
    /// reduces cumulative stall.
    #[test]
    fn pager_stall_monotone(accesses in prop::collection::vec(0u64..32, 2..100)) {
        let mut p = Pager::with_disk(4, 8_192, DiskModel::workstation_1994());
        let mut last = SimDuration::ZERO;
        for &page in &accesses {
            p.access(PageId(page), true, SimDuration::ZERO);
            let s = p.stats().stall;
            prop_assert!(s >= last);
            last = s;
        }
    }
}
