//! The Active Messages telemetry taps: protocol counters balance, the RTT
//! histogram measures first-launch-to-reply, and bulk transfers count
//! their fragments.

use now_am::{bulk_put_probed, ActiveMessages, AmConfig, FRAGMENT_BYTES};
use now_net::{presets, NodeId};
use now_probe::Registry;
use now_sim::SimTime;

#[test]
fn lossless_run_counts_requests_and_replies() {
    let registry = Registry::new();
    let mut am = ActiveMessages::new(presets::am_atm(8), AmConfig::default(), 1);
    am.set_probe(registry.probe());
    for i in 0..40u64 {
        am.request_at(
            SimTime::from_micros(i * 5),
            NodeId((i % 7) as u32),
            NodeId(7),
            256,
        );
    }
    am.run_to_completion();
    let s = registry.snapshot();
    assert_eq!(s.counter("am.requests"), Some(40));
    assert_eq!(s.counter("am.delivered"), Some(40));
    assert_eq!(s.counter("am.replies"), Some(40));
    assert_eq!(s.counter("am.retransmits"), None, "no loss, no retries");
    let rtt = s.histogram("am.rtt.ns").unwrap();
    assert_eq!(rtt.count, 40, "one RTT sample per matched reply");
    assert!(rtt.min.unwrap() > 0);
}

#[test]
fn lossy_run_counts_losses_and_retransmits() {
    let registry = Registry::new();
    let config = AmConfig {
        loss_probability: 0.3,
        ..AmConfig::default()
    };
    let mut am = ActiveMessages::new(presets::am_atm(4), config, 7);
    am.set_probe(registry.probe());
    for i in 0..60u64 {
        am.request_at(SimTime::from_micros(i * 40), NodeId(0), NodeId(3), 128);
    }
    am.run_to_completion();
    let s = registry.snapshot();
    let losses = s.counter("am.wire_losses").unwrap_or(0);
    let retries = s.counter("am.retransmits").unwrap_or(0);
    assert!(losses > 0, "30% loss must drop something over 60 requests");
    assert!(retries > 0, "losses must force retransmission");
    // Exactly-once: every request is eventually delivered exactly once.
    assert_eq!(s.counter("am.delivered"), Some(60));
    // RTT is measured from the *first* launch, so a retried request's RTT
    // spans at least one timeout; the histogram max shows that.
    let rtt = s.histogram("am.rtt.ns").unwrap();
    assert_eq!(rtt.count, 60);
    assert!(rtt.max.unwrap() > rtt.min.unwrap());
}

#[test]
fn bulk_put_counts_fragments() {
    let registry = Registry::new();
    let mut net = presets::am_atm(4);
    let bytes = 3 * FRAGMENT_BYTES + 100;
    let out = bulk_put_probed(
        &mut net,
        NodeId(0),
        NodeId(2),
        bytes,
        SimTime::ZERO,
        &registry.probe(),
    );
    assert!(out.completed_at > SimTime::ZERO);
    let s = registry.snapshot();
    assert_eq!(s.counter("am.bulk.puts"), Some(1));
    assert_eq!(s.counter("am.bulk.fragments"), Some(4));
    assert_eq!(s.counter("am.bulk.bytes"), Some(bytes));
    assert_eq!(s.histogram("am.bulk.put.ns").unwrap().count, 1);
}
