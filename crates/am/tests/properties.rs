//! Property tests for the Active Messages protocol invariants.

use now_am::{ActiveMessages, AmConfig, Notification};
use now_net::{presets, NodeId};
use now_sim::{SimDuration, SimTime};
use proptest::prelude::*;

/// A random workload: (send offset µs, src, dst-offset) triples.
fn workload(nodes: u32) -> impl Strategy<Value = Vec<(u64, u32, u32)>> {
    prop::collection::vec((0u64..5_000, 0..nodes, 1..nodes), 1..60)
}

proptest! {
    /// Exactly-once delivery: every accepted request is delivered exactly
    /// once and acknowledged exactly once, under any loss rate below 1.
    #[test]
    fn exactly_once_under_loss(
        sends in workload(5),
        loss in 0.0f64..0.5,
        seed in any::<u64>(),
    ) {
        let config = AmConfig {
            loss_probability: loss,
            timeout: SimDuration::from_micros(700),
            max_retries: 200,
            ..AmConfig::default()
        };
        let mut am = ActiveMessages::new(presets::am_atm(5), config, seed);
        let mut expected = 0u64;
        for (t, src, doff) in sends {
            let dst = (src + doff) % 5;
            if dst == src { continue; }
            am.request_at(SimTime::from_micros(t), NodeId(src), NodeId(dst), 64);
            expected += 1;
        }
        let notes = am.run_to_completion();
        let s = am.stats();
        prop_assert_eq!(s.delivered, expected, "deliveries");
        prop_assert_eq!(s.replies, expected, "replies");
        prop_assert_eq!(s.failed, 0, "no failures below retry budget");
        let delivered_ids: std::collections::HashSet<_> = notes
            .iter()
            .filter_map(|n| match n {
                Notification::RequestDelivered { id, .. } => Some(*id),
                _ => None,
            })
            .collect();
        prop_assert_eq!(delivered_ids.len() as u64, expected, "ids unique");
    }

    /// Credit conservation: when the system quiesces, every (src, dst) pair
    /// has all its credits back.
    #[test]
    fn credits_conserved(sends in workload(4), seed in any::<u64>()) {
        let mut am = ActiveMessages::new(presets::am_atm(4), AmConfig::default(), seed);
        let mut pairs = std::collections::HashSet::new();
        for (t, src, doff) in sends {
            let dst = (src + doff) % 4;
            if dst == src { continue; }
            am.request_at(SimTime::from_micros(t), NodeId(src), NodeId(dst), 128);
            pairs.insert((src, dst));
        }
        let _ = am.run_to_completion();
        for (src, dst) in pairs {
            prop_assert_eq!(
                am.credits_available(NodeId(src), NodeId(dst)),
                AmConfig::default().credits
            );
        }
    }

    /// Determinism: same seed and workload, same notification stream.
    #[test]
    fn replay_identical(sends in workload(4), seed in any::<u64>(), loss in 0.0f64..0.4) {
        let run = || {
            let config = AmConfig {
                loss_probability: loss,
                timeout: SimDuration::from_micros(900),
                max_retries: 100,
                ..AmConfig::default()
            };
            let mut am = ActiveMessages::new(presets::am_atm(4), config, seed);
            for (t, src, doff) in &sends {
                let dst = (src + doff) % 4;
                if dst == *src { continue; }
                am.request_at(SimTime::from_micros(*t), NodeId(*src), NodeId(dst), 64);
            }
            am.run_to_completion()
        };
        prop_assert_eq!(run(), run());
    }

    /// Descheduling any subset of receivers and rescheduling them later
    /// never loses a request.
    #[test]
    fn scheduling_never_loses_requests(
        sends in workload(4),
        desched_mask in 1u32..15, // at least one node descheduled, node 0 excluded below
        seed in any::<u64>(),
    ) {
        let config = AmConfig {
            timeout: SimDuration::from_micros(600),
            max_retries: 500,
            recv_buffer_msgs: 2,
            ..AmConfig::default()
        };
        let mut am = ActiveMessages::new(presets::am_atm(4), config, seed);
        for n in 1..4u32 {
            if desched_mask & (1 << n) != 0 {
                am.set_running(NodeId(n), false);
            }
        }
        let mut expected = 0u64;
        for (t, src, doff) in sends {
            let dst = (src + doff) % 4;
            if dst == src { continue; }
            am.request_at(SimTime::from_micros(t), NodeId(src), NodeId(dst), 64);
            expected += 1;
        }
        // Let traffic churn against the descheduled receivers, then wake
        // everyone and drain.
        let mut notes = am.advance_until(SimTime::from_micros(8_000));
        for n in 0..4u32 {
            notes.extend(am.set_running(NodeId(n), true));
        }
        notes.extend(am.run_to_completion());
        let s = am.stats();
        prop_assert_eq!(s.delivered, expected);
        prop_assert_eq!(s.failed, 0);
    }
}
