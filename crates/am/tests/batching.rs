//! Batching equivalence and reconciliation properties.
//!
//! The contract under test: a zero flush quantum reproduces the unbatched
//! protocol byte-identically; `max_batch_msgs == 1` makes every message
//! its own batch without perturbing the notification stream; and the
//! batch counters reconcile exactly with `am.requests`.

use now_am::{ActiveMessages, AmConfig, AmStats, BatchConfig, Notification};
use now_net::{presets, NodeId};
use now_sim::{SimDuration, SimTime};
use proptest::prelude::*;

/// A random workload: (send offset µs, src, dst-offset) triples.
fn workload(nodes: u32) -> impl Strategy<Value = Vec<(u64, u32, u32)>> {
    prop::collection::vec((0u64..5_000, 0..nodes, 1..nodes), 1..60)
}

fn run(config: AmConfig, sends: &[(u64, u32, u32)], seed: u64) -> (Vec<Notification>, AmStats) {
    let mut am = ActiveMessages::new(presets::am_atm(5), config, seed);
    for &(t, src, doff) in sends {
        let dst = (src + doff) % 5;
        if dst == src {
            continue;
        }
        am.request_at(SimTime::from_micros(t), NodeId(src), NodeId(dst), 64);
    }
    let notes = am.run_to_completion();
    (notes, am.stats())
}

proptest! {
    /// `flush_quantum == 0` disables batching entirely: notifications and
    /// stats are byte-identical to the stock config whatever the other
    /// batch knobs say, for random scenarios under loss.
    #[test]
    fn zero_quantum_is_byte_identical(
        sends in workload(5),
        loss in 0.0f64..0.4,
        seed in any::<u64>(),
    ) {
        let base = AmConfig {
            loss_probability: loss,
            timeout: SimDuration::from_micros(700),
            max_retries: 200,
            ..AmConfig::default()
        };
        let off = AmConfig {
            batch: BatchConfig {
                flush_quantum: SimDuration::ZERO,
                max_batch_bytes: 123,
                max_batch_msgs: 7,
            },
            ..base
        };
        let (n1, s1) = run(base, &sends, seed);
        let (n2, s2) = run(off, &sends, seed);
        prop_assert_eq!(n1, n2);
        prop_assert_eq!(s1, s2);
    }

    /// With `max_batch_msgs == 1` every message is its own batch, flushed
    /// by the size bound before any quantum timer is armed — the same
    /// event-queue operations as the unbatched path, so the notification
    /// stream (order and contents) matches at any quantum, and even the
    /// loss model's random draws line up.
    #[test]
    fn batch_of_one_matches_unbatched(
        sends in workload(5),
        loss in 0.0f64..0.4,
        quantum_us in 1u64..50,
        seed in any::<u64>(),
    ) {
        let base = AmConfig {
            loss_probability: loss,
            timeout: SimDuration::from_micros(700),
            max_retries: 200,
            ..AmConfig::default()
        };
        let one = AmConfig {
            batch: BatchConfig {
                flush_quantum: SimDuration::from_micros(quantum_us),
                max_batch_msgs: 1,
                ..BatchConfig::disabled()
            },
            ..base
        };
        let (n1, _) = run(base, &sends, seed);
        let (n2, s2) = run(one, &sends, seed);
        prop_assert_eq!(n1, n2);
        prop_assert_eq!(s2.batches, s2.flush_on_size, "all size-flushed");
        prop_assert_eq!(s2.flush_timeouts, 0, "the quantum timer never arms");
        prop_assert_eq!(s2.batched_msgs, s2.requests);
    }

    /// Batch accounting reconciles: every accepted request rides exactly
    /// one batch, and every batch flushes for exactly one reason.
    #[test]
    fn batch_counters_reconcile(
        sends in workload(5),
        quantum_us in 1u64..50,
        seed in any::<u64>(),
    ) {
        let config = AmConfig {
            timeout: SimDuration::from_secs(1),
            batch: BatchConfig {
                flush_quantum: SimDuration::from_micros(quantum_us),
                ..BatchConfig::disabled()
            },
            ..AmConfig::default()
        };
        let (_, s) = run(config, &sends, seed);
        prop_assert_eq!(s.batched_msgs, s.requests);
        prop_assert_eq!(s.batches, s.flush_timeouts + s.flush_on_size);
        prop_assert_eq!(s.delivered, s.requests, "lossless wire delivers all");
        prop_assert_eq!(s.replies, s.requests);
    }
}
