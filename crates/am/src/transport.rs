//! Engine transports backed by the live `now-net` fabric models.
//!
//! The simulation engine ([`now_sim::Engine`]) charges remote traffic
//! through the [`Transport`] trait. These implementations close the loop
//! with the `now-net` crate: every transfer runs through a real fabric
//! model — occupancy, queue wait, and (for [`CsmaTransport`]) CSMA/CD
//! collisions — so components that share one transport contend with each
//! other exactly as the paper argues NOW subsystems must.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use now_net::{CsmaBus, Fabric, Network, NicAttachment, NodeId, SoftwareCosts};
use now_probe::Probe;
use now_sim::{SimDuration, SimTime, TransferCost, Transport};

use crate::layer::BatchConfig;

/// A [`Transport`] that charges every transfer against one shared
/// [`Network`] — fabric occupancy, software stack, and NIC overhead
/// included.
///
/// The network lives behind an `Arc<Mutex<_>>` so several observers (for
/// example a benchmark harness sampling probe counters) can hold the same
/// occupancy state the engine is charging against. Each engine drives its
/// transport from one thread at a time — partitioned runs move whole
/// engines between threads rather than sharing one — so the lock is
/// uncontended; it exists to satisfy the `Transport: Send` bound.
///
/// # Example
///
/// ```
/// use now_am::FabricTransport;
/// use now_net::presets;
/// use now_sim::{SimTime, Transport};
///
/// let mut t = FabricTransport::new(presets::am_atm(8));
/// let delivered = t.transfer(0, 5, 8_192, SimTime::ZERO);
/// assert!(delivered > SimTime::ZERO);
/// // Local copies are free: no fabric involved.
/// assert_eq!(t.transfer(3, 3, 8_192, SimTime::ZERO), SimTime::ZERO);
/// ```
#[derive(Debug, Clone)]
pub struct FabricTransport {
    net: Arc<Mutex<Network>>,
}

impl FabricTransport {
    /// Wraps a network in a transport, taking sole ownership.
    pub fn new(net: Network) -> Self {
        FabricTransport {
            net: Arc::new(Mutex::new(net)),
        }
    }

    /// Wraps an already-shared network handle, so the caller can keep
    /// observing (or probing) the same occupancy state the engine charges.
    pub fn shared(net: Arc<Mutex<Network>>) -> Self {
        FabricTransport { net }
    }

    /// The shared network handle.
    pub fn handle(&self) -> Arc<Mutex<Network>> {
        self.net.clone()
    }
}

impl Transport for FabricTransport {
    fn transfer(&mut self, src: u32, dst: u32, bytes: u64, now: SimTime) -> SimTime {
        self.transfer_detailed(src, dst, bytes, now).delivered
    }

    fn transfer_detailed(&mut self, src: u32, dst: u32, bytes: u64, now: SimTime) -> TransferCost {
        if src == dst {
            return TransferCost::free(now); // local copy: the fabric is not involved
        }
        let out = self
            .net
            .lock()
            .unwrap()
            .transfer(NodeId(src), NodeId(dst), bytes, now);
        TransferCost {
            delivered: out.delivered_at,
            overhead: out.send_cpu + out.recv_cpu,
            wait: out.wire_start.saturating_since(now + out.send_cpu),
            wire: out.wire_done_at.saturating_since(out.wire_start),
        }
    }
}

/// A [`Transport`] over a raw CSMA/CD Ethernet bus: the baseline NOW's
/// shared medium, where arbitration and collisions — not just
/// serialisation — eat the budget as stations contend.
///
/// Software stack and NIC costs are charged around the wire exactly as
/// [`Network::transfer`] charges them, so the two transports differ only
/// in the fabric model.
#[derive(Debug, Clone)]
pub struct CsmaTransport {
    bus: CsmaBus,
    stack: SoftwareCosts,
    nic: NicAttachment,
}

impl CsmaTransport {
    /// Builds a transport over classic 10-Mbps Ethernet with the given
    /// software stack and NIC attachment.
    pub fn new(bus: CsmaBus, stack: SoftwareCosts, nic: NicAttachment) -> Self {
        CsmaTransport { bus, stack, nic }
    }

    /// Collisions burned on the bus so far.
    pub fn collisions(&self) -> u64 {
        self.bus.collisions()
    }

    /// Frames carried so far.
    pub fn frames(&self) -> u64 {
        self.bus.frames()
    }
}

impl Transport for CsmaTransport {
    fn transfer(&mut self, src: u32, dst: u32, bytes: u64, now: SimTime) -> SimTime {
        self.transfer_detailed(src, dst, bytes, now).delivered
    }

    fn transfer_detailed(&mut self, src: u32, dst: u32, bytes: u64, now: SimTime) -> TransferCost {
        if src == dst {
            return TransferCost::free(now);
        }
        let send_cpu = self.stack.send_cost(bytes) + self.nic.extra_overhead();
        let recv_cpu = self.stack.recv_cost(bytes) + self.nic.extra_overhead();
        let wire_request = now + send_cpu;
        let timing = self
            .bus
            .transfer(NodeId(src), NodeId(dst), bytes, wire_request);
        TransferCost {
            delivered: timing.rx_done + recv_cpu,
            overhead: send_cpu + recv_cpu,
            wait: timing.tx_start.saturating_since(wire_request),
            wire: timing.rx_done.saturating_since(timing.tx_start),
        }
    }
}

/// One open aggregation window on a `(src, dst)` pair.
#[derive(Debug, Clone, Copy)]
struct Window {
    /// Transfers starting before this instant may join the window.
    open_until: SimTime,
    /// Members so far (including the leader).
    msgs: u32,
    /// Payload bytes so far.
    bytes: u64,
}

/// Wraps any [`Transport`] with per-`(src, dst)` aggregation windows: the
/// *leader* transfer of each window pays the full per-message software
/// overhead `o`, and every transfer that follows within one flush quantum
/// rides the same wire launch with its overhead term zeroed — the LogP
/// amortization the paper argues for, applied at the engine's transport
/// seam so every `now-core` scenario can batch without protocol changes.
///
/// With batching disabled ([`BatchConfig::enabled`] false) every call
/// passes straight through to the inner transport, byte-identically, so
/// the wrapper can be installed unconditionally.
///
/// Joiners still run the inner model (keeping fabric occupancy and
/// determinism exact); only the reported CPU overhead is amortized, so
/// `delivered == now + wait + wire` for a joiner and
/// `delivered == now + overhead + wait + wire` for a leader.
#[derive(Debug, Clone)]
pub struct BatchingTransport<T> {
    inner: T,
    config: BatchConfig,
    probe: Probe,
    windows: HashMap<(u32, u32), Window>,
}

impl<T> BatchingTransport<T> {
    /// Wraps `inner` with the given batching window configuration.
    pub fn new(inner: T, config: BatchConfig) -> Self {
        BatchingTransport {
            inner,
            config,
            probe: Probe::disabled(),
            windows: HashMap::new(),
        }
    }

    /// Attaches a telemetry probe: `am.batches`, `am.batched_msgs`,
    /// `am.flush_timeouts`, `am.flush_on_size` counters and the
    /// `net.batch_occupancy` gauge (members in the most recent window).
    pub fn set_probe(&mut self, probe: Probe) {
        self.probe = probe;
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// The wrapped transport, mutably.
    pub fn inner_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: Transport> Transport for BatchingTransport<T> {
    fn transfer(&mut self, src: u32, dst: u32, bytes: u64, now: SimTime) -> SimTime {
        self.transfer_detailed(src, dst, bytes, now).delivered
    }

    fn transfer_detailed(&mut self, src: u32, dst: u32, bytes: u64, now: SimTime) -> TransferCost {
        if !self.config.enabled() || src == dst {
            return self.inner.transfer_detailed(src, dst, bytes, now);
        }
        let cost = self.inner.transfer_detailed(src, dst, bytes, now);
        let max_msgs = self.config.max_batch_msgs.max(1);
        let joined = match self.windows.get_mut(&(src, dst)) {
            Some(w)
                if now < w.open_until
                    && w.msgs < max_msgs
                    && w.bytes + bytes <= self.config.max_batch_bytes =>
            {
                w.msgs += 1;
                w.bytes += bytes;
                Some(w.msgs)
            }
            _ => None,
        };
        if let Some(occupancy) = joined {
            self.probe.count("am.batched_msgs", 1);
            self.probe
                .gauge_set("net.batch_occupancy", f64::from(occupancy));
            return TransferCost {
                delivered: now + cost.wait + cost.wire,
                overhead: SimDuration::ZERO,
                wait: cost.wait,
                wire: cost.wire,
            };
        }
        // Leader: pays `o` in full and opens a fresh window; the window it
        // displaces closes by timeout (expired) or by a size bound (full).
        if let Some(old) = self.windows.insert(
            (src, dst),
            Window {
                open_until: now + self.config.flush_quantum,
                msgs: 1,
                bytes,
            },
        ) {
            if now >= old.open_until {
                self.probe.count("am.flush_timeouts", 1);
            } else {
                self.probe.count("am.flush_on_size", 1);
            }
        }
        self.probe.count("am.batches", 1);
        self.probe.count("am.batched_msgs", 1);
        self.probe.gauge_set("net.batch_occupancy", 1.0);
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use now_net::presets;
    use now_sim::SimDuration;

    #[test]
    fn fabric_transport_matches_network_arithmetic() {
        let mut net = presets::am_atm(8);
        let expect = net
            .transfer(NodeId(1), NodeId(2), 4_096, SimTime::ZERO)
            .delivered_at;
        let mut t = FabricTransport::new(presets::am_atm(8));
        assert_eq!(t.transfer(1, 2, 4_096, SimTime::ZERO), expect);
    }

    #[test]
    fn shared_handle_sees_the_engine_occupancy() {
        let net = Arc::new(Mutex::new(presets::am_atm(8)));
        let mut t = FabricTransport::shared(net.clone());
        // Drive traffic through the transport, then observe contention
        // through the retained handle: a later transfer queues behind it.
        let first = t.transfer(0, 1, 1 << 20, SimTime::ZERO);
        // Same destination link: the switched fabric must queue it.
        let second = net
            .lock()
            .unwrap()
            .transfer(NodeId(2), NodeId(1), 64, SimTime::ZERO)
            .delivered_at;
        assert!(first > SimTime::ZERO);
        assert!(
            second.saturating_since(SimTime::ZERO) > SimDuration::from_micros(100),
            "the small message should queue behind the megabyte transfer"
        );
    }

    #[test]
    fn local_transfers_are_free_on_both_transports() {
        let mut f = FabricTransport::new(presets::am_atm(4));
        let mut c = CsmaTransport::new(
            CsmaBus::ethernet_10(4, 1),
            SoftwareCosts::tcp_kernel(),
            NicAttachment::IoBus,
        );
        let now = SimTime::from_micros(7);
        assert_eq!(Transport::transfer(&mut f, 2, 2, 1 << 20, now), now);
        assert_eq!(Transport::transfer(&mut c, 2, 2, 1 << 20, now), now);
    }

    #[test]
    fn detailed_breakdown_partitions_delivery_time() {
        let mut t = FabricTransport::new(presets::am_atm(8));
        // Uncontended reference cost first.
        let quiet = t.transfer_detailed(4, 5, 8_192, SimTime::ZERO);
        assert_eq!(SimTime::ZERO + quiet.total(), quiet.delivered);
        // Load the path to node 1 so a follow-up transfer contends.
        t.transfer(0, 1, 1 << 20, SimTime::ZERO);
        let now = SimTime::from_micros(1);
        let cost = t.transfer_detailed(0, 1, 8_192, now);
        assert_eq!(now + cost.total(), cost.delivered, "pieces partition");
        assert!(cost.overhead > SimDuration::ZERO);
        assert!(cost.wire > SimDuration::ZERO);
        assert!(
            cost.wait + cost.wire > quiet.wait + quiet.wire,
            "contention must show up in the wait/wire terms, \
             not vanish from the breakdown"
        );

        let mut c = CsmaTransport::new(
            CsmaBus::ethernet_10(4, 1),
            SoftwareCosts::tcp_kernel(),
            NicAttachment::IoBus,
        );
        let cost = c.transfer_detailed(0, 1, 1_024, SimTime::ZERO);
        assert_eq!(SimTime::ZERO + cost.total(), cost.delivered);
    }

    #[test]
    fn csma_contention_grows_collisions() {
        let mut t = CsmaTransport::new(
            CsmaBus::ethernet_10(8, 11),
            SoftwareCosts::am_hpam(),
            NicAttachment::IoBus,
        );
        let mut now = SimTime::ZERO;
        for i in 0..500u32 {
            // Offered essentially back-to-back: arbitration must kick in.
            now += SimDuration::from_nanos(u64::from(i));
            Transport::transfer(&mut t, i % 8, (i + 1) % 8, 200, now);
        }
        assert_eq!(t.frames(), 500);
        assert!(t.collisions() > 0, "saturated CSMA must collide");
    }
}
