//! Bulk transfer and collective operations over Active Messages.
//!
//! Active Messages proper carries a handful of words; larger payloads go
//! as *bulk puts* — the payload is fragmented onto the wire and the
//! receiver's handler fires once, when the last fragment lands. The
//! paper's communication layer (and Split-C's `store`/`get` on top of it)
//! works exactly this way. Collectives — barrier and broadcast — are then
//! trees of small request/replies, as in the LogP analyses the Berkeley
//! group published.

use now_net::{Network, NodeId};
use now_probe::Probe;
use now_sim::{SimDuration, SimTime};

/// Maximum payload carried per fragment (an ATM-friendly unit well under
/// common MTUs once headers are added).
pub const FRAGMENT_BYTES: u64 = 4_096;

/// Outcome of a bulk put.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BulkOutcome {
    /// Fragments sent.
    pub fragments: u64,
    /// When the destination handler for the completed transfer ran.
    pub completed_at: SimTime,
    /// Sender CPU time consumed across all fragments.
    pub send_cpu: SimDuration,
}

/// Transfers `bytes` from `src` to `dst` starting at `start`, fragmenting
/// at [`FRAGMENT_BYTES`]. Fragments pipeline on the wire: the sender
/// injects the next fragment as soon as its CPU frees, and completion is
/// the delivery of the last fragment.
///
/// # Panics
///
/// Panics if `src == dst` or `bytes` is zero.
pub fn bulk_put(
    net: &mut Network,
    src: NodeId,
    dst: NodeId,
    bytes: u64,
    start: SimTime,
) -> BulkOutcome {
    bulk_put_probed(net, src, dst, bytes, start, &Probe::disabled())
}

/// [`bulk_put`] with telemetry: bumps `am.bulk.puts` / `am.bulk.fragments`
/// / `am.bulk.bytes` and records the whole put's duration in the
/// `am.bulk.put.ns` histogram. Note the per-fragment wire telemetry comes
/// from whatever probe is attached to `net` itself.
pub fn bulk_put_probed(
    net: &mut Network,
    src: NodeId,
    dst: NodeId,
    bytes: u64,
    start: SimTime,
    probe: &Probe,
) -> BulkOutcome {
    assert_ne!(src, dst, "bulk puts are remote");
    assert!(bytes > 0, "empty puts are not a thing");
    let mut remaining = bytes;
    let mut now = start;
    let mut fragments = 0;
    let mut send_cpu = SimDuration::ZERO;
    let mut completed_at = start;
    while remaining > 0 {
        let chunk = remaining.min(FRAGMENT_BYTES);
        let out = net.transfer(src, dst, chunk, now);
        fragments += 1;
        send_cpu += out.send_cpu;
        completed_at = out.delivered_at;
        now = out.sender_free_at;
        remaining -= chunk;
    }
    if probe.is_enabled() {
        probe.count("am.bulk.puts", 1);
        probe.count("am.bulk.fragments", fragments);
        probe.count("am.bulk.bytes", bytes);
        probe.record("am.bulk.put.ns", completed_at.saturating_since(start));
    }
    BulkOutcome {
        fragments,
        completed_at,
        send_cpu,
    }
}

/// Runs a dissemination barrier among nodes `0..n` starting at `start`:
/// in round `k`, node `i` signals node `(i + 2^k) mod n`; after
/// `ceil(log2 n)` rounds everyone has transitively heard from everyone.
/// Returns the time the last node leaves the barrier.
///
/// # Panics
///
/// Panics if `n` is 0 or exceeds the network size.
pub fn barrier(net: &mut Network, n: u32, start: SimTime) -> SimTime {
    assert!(n >= 1 && n <= net.nodes(), "barrier span out of range");
    if n == 1 {
        return start;
    }
    // Per-node time at which the node has finished the previous round.
    let mut ready: Vec<SimTime> = vec![start; n as usize];
    let mut shift = 1u32;
    while shift < n {
        let mut next: Vec<SimTime> = ready.clone();
        for i in 0..n {
            let peer = (i + shift) % n;
            let out = net.transfer(NodeId(i), NodeId(peer), 16, ready[i as usize]);
            // The peer can proceed only once it has both finished its own
            // round and heard the signal.
            let p = &mut next[peer as usize];
            *p = (*p).max(out.delivered_at);
            // The sender is busy until its send completes.
            let s = &mut next[i as usize];
            *s = (*s).max(out.sender_free_at);
        }
        ready = next;
        shift *= 2;
    }
    ready.into_iter().max().expect("n >= 1")
}

/// Broadcasts a small message from node 0 to nodes `1..n` along a binomial
/// tree. Returns when the last node has it.
///
/// # Panics
///
/// Panics if `n` is 0 or exceeds the network size.
pub fn broadcast(net: &mut Network, n: u32, start: SimTime) -> SimTime {
    assert!(n >= 1 && n <= net.nodes(), "broadcast span out of range");
    let mut has_it: Vec<Option<SimTime>> = vec![None; n as usize];
    has_it[0] = Some(start);
    let mut shift = 1u32;
    let mut latest = start;
    while shift < n {
        // Snapshot who is informed before this round: newly-informed nodes
        // first send in the *next* round (that is what makes it a tree).
        let informed: Vec<Option<SimTime>> = has_it.clone();
        for i in 0..n {
            let target = i + shift;
            if target >= n {
                continue;
            }
            if let Some(t) = informed[i as usize] {
                if informed[target as usize].is_none() {
                    let out = net.transfer(NodeId(i), NodeId(target), 16, t);
                    has_it[target as usize] = Some(out.delivered_at);
                    has_it[i as usize] = Some(out.sender_free_at);
                    latest = latest.max(out.delivered_at);
                }
            }
        }
        shift *= 2;
    }
    latest
}

#[cfg(test)]
mod tests {
    use super::*;
    use now_net::presets;

    #[test]
    fn bulk_put_fragments_correctly() {
        let mut net = presets::am_atm(2);
        let out = bulk_put(&mut net, NodeId(0), NodeId(1), 10_000, SimTime::ZERO);
        assert_eq!(out.fragments, 3); // 4096 + 4096 + 1808
        assert!(out.completed_at > SimTime::ZERO);
    }

    #[test]
    fn bulk_put_single_fragment_for_small_payloads() {
        let mut net = presets::am_atm(2);
        let out = bulk_put(&mut net, NodeId(0), NodeId(1), 100, SimTime::ZERO);
        assert_eq!(out.fragments, 1);
    }

    #[test]
    fn bulk_put_approaches_wire_bandwidth() {
        // A 1-MB put over AM/ATM should achieve most of 155 Mbps.
        let mut net = presets::am_atm(2);
        let bytes = 1 << 20;
        let out = bulk_put(&mut net, NodeId(0), NodeId(1), bytes, SimTime::ZERO);
        let secs = out
            .completed_at
            .saturating_since(SimTime::ZERO)
            .as_secs_f64();
        let mbps = bytes as f64 * 8.0 / secs / 1e6;
        assert!(mbps > 120.0, "achieved {mbps} Mbps");
    }

    #[test]
    fn bulk_put_pipelines_rather_than_stop_and_wait() {
        // Pipelined: total time ≈ wire time of the whole payload, not
        // fragments x RTT.
        let mut net = presets::am_atm(2);
        let bytes = 64 * FRAGMENT_BYTES;
        let out = bulk_put(&mut net, NodeId(0), NodeId(1), bytes, SimTime::ZERO);
        let total = out.completed_at.saturating_since(SimTime::ZERO);
        let single = {
            let mut fresh = presets::am_atm(2);
            let o = fresh.transfer(NodeId(0), NodeId(1), FRAGMENT_BYTES, SimTime::ZERO);
            o.delivered_at.saturating_since(SimTime::ZERO)
        };
        assert!(
            total < single * 64,
            "pipelining must beat stop-and-wait: {total} vs {}",
            single * 64
        );
    }

    #[test]
    fn barrier_completes_in_logarithmic_rounds() {
        let mut net = presets::am_myrinet(64);
        let t64 = barrier(&mut net, 64, SimTime::ZERO).saturating_since(SimTime::ZERO);
        let mut net2 = presets::am_myrinet(64);
        let t8 = barrier(&mut net2, 8, SimTime::ZERO).saturating_since(SimTime::ZERO);
        // 64 nodes need 6 rounds, 8 nodes need 3: about 2x, nowhere near 8x.
        let ratio = t64.as_micros_f64() / t8.as_micros_f64();
        assert!((1.5..=3.5).contains(&ratio), "barrier scaling {ratio}");
    }

    #[test]
    fn trivial_collectives() {
        let mut net = presets::am_atm(4);
        assert_eq!(
            barrier(&mut net, 1, SimTime::from_micros(5)),
            SimTime::from_micros(5)
        );
        assert_eq!(
            broadcast(&mut net, 1, SimTime::from_micros(5)),
            SimTime::from_micros(5)
        );
    }

    #[test]
    fn broadcast_beats_linear_send() {
        // At 100 nodes the tree's log-depth beats even a perfectly
        // pipelined linear send. (At small n with 4-µs AM overhead, linear
        // pipelining is genuinely competitive — which is itself a LogP
        // lesson.)
        let n = 100;
        let mut net = presets::am_atm(n);
        let tree = broadcast(&mut net, n, SimTime::ZERO).saturating_since(SimTime::ZERO);
        // Linear: node 0 sends to each other node back-to-back.
        let mut net2 = presets::am_atm(n);
        let mut t = SimTime::ZERO;
        let mut last = SimTime::ZERO;
        for i in 1..n {
            let out = net2.transfer(NodeId(0), NodeId(i), 16, t);
            t = out.sender_free_at;
            last = last.max(out.delivered_at);
        }
        let linear = last.saturating_since(SimTime::ZERO);
        assert!(
            tree.as_micros_f64() < linear.as_micros_f64() * 0.7,
            "tree {tree} vs linear {linear}"
        );
    }

    #[test]
    fn barrier_on_now_meets_sub_millisecond_scale() {
        // 100 nodes with AM over ATM: a barrier should cost well under a
        // millisecond — the enabling number for gang-scheduled fine-grained
        // parallelism on a NOW.
        let mut net = presets::am_atm(100);
        let t = barrier(&mut net, 100, SimTime::ZERO).saturating_since(SimTime::ZERO);
        assert!(t < SimDuration::from_millis(1), "100-node barrier took {t}");
    }
}
