//! Microbenchmarks over the Active Messages engine: ping-pong latency,
//! bandwidth sweeps, and hot-spot throughput — the measurements the paper
//! reports for its communication prototypes.

use now_net::{Network, NodeId};
use now_sim::{SimDuration, SimTime};

use crate::{ActiveMessages, AmConfig, BatchConfig, Notification};

/// One point of a sweep: message size against achieved metric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchPoint {
    /// Message payload, bytes.
    pub bytes: u64,
    /// Metric value (µs for latency, Mbps for bandwidth).
    pub value: f64,
}

/// Round-trip time of a `bytes`-byte request plus its reply, averaged over
/// `iters` back-to-back exchanges between nodes 0 and 1.
///
/// # Panics
///
/// Panics if the network has fewer than two nodes or `iters` is zero.
pub fn ping_pong(net: Network, config: AmConfig, bytes: u64, iters: u32) -> SimDuration {
    assert!(net.nodes() >= 2, "ping-pong needs two nodes");
    assert!(iters > 0, "need at least one iteration");
    let mut am = ActiveMessages::new(net, config, 1);
    let mut start = SimTime::ZERO;
    let mut total = SimDuration::ZERO;
    for _ in 0..iters {
        am.request_at(start, NodeId(0), NodeId(1), bytes);
        let mut reply_at = None;
        while let Some(n) = am.advance() {
            if let Notification::ReplyDelivered { at, .. } = n {
                reply_at = Some(at);
                break;
            }
        }
        let at = reply_at.expect("lossless ping must complete");
        total += at.saturating_since(start);
        start = at;
    }
    total / u64::from(iters)
}

/// Achieved one-way bandwidth (Mbps) for a stream of `count` requests of
/// each size in `sizes`, sender pipelining up to the credit limit.
pub fn bandwidth_sweep(
    net: Network,
    config: AmConfig,
    sizes: &[u64],
    count: u32,
) -> Vec<BenchPoint> {
    sizes
        .iter()
        .map(|&bytes| {
            let mut am = ActiveMessages::new(net.clone(), config, 2);
            for _ in 0..count {
                am.request_at(SimTime::ZERO, NodeId(0), NodeId(1), bytes);
            }
            let notes = am.run_to_completion();
            let last = notes
                .iter()
                .filter_map(|n| match n {
                    Notification::RequestDelivered { at, .. } => Some(*at),
                    _ => None,
                })
                .max()
                .expect("stream must deliver");
            let secs = last.saturating_since(SimTime::ZERO).as_secs_f64();
            BenchPoint {
                bytes,
                value: bytes as f64 * 8.0 * count as f64 / secs / 1e6,
            }
        })
        .collect()
}

/// Throughput (requests/s handled) when `senders` nodes all target node 0 —
/// the hot-spot pattern that stresses receive-link and buffer behaviour.
pub fn hotspot_throughput(net: Network, config: AmConfig, senders: u32, per_sender: u32) -> f64 {
    assert!(net.nodes() > senders, "need a receiver beyond the senders");
    let mut am = ActiveMessages::new(net, config, 3);
    for s in 1..=senders {
        for i in 0..per_sender {
            am.request_at(SimTime::from_micros(u64::from(i)), NodeId(s), NodeId(0), 64);
        }
    }
    let notes = am.run_to_completion();
    let last = notes
        .iter()
        .filter_map(|n| match n {
            Notification::RequestDelivered { at, .. } => Some(*at),
            _ => None,
        })
        .max()
        .expect("hotspot must deliver");
    let total = u64::from(senders) * u64::from(per_sender);
    total as f64 / last.saturating_since(SimTime::ZERO).as_secs_f64()
}

/// One point of the message-rate-vs-batch-quantum sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RatePoint {
    /// Flush quantum, microseconds (0 = batching off).
    pub quantum_us: u64,
    /// Requests delivered per simulated second.
    pub msgs_per_s: f64,
    /// Mean members per wire transfer (1.0 with batching off).
    pub mean_batch: f64,
}

/// Message rate through the hot-spot pattern at a given flush quantum:
/// `senders` nodes each fire `per_sender` minimal (8-byte) requests at
/// node 0, four per microsecond, and the achieved rate is requests
/// delivered per simulated second. Re-derives the paper's "overhead is
/// everything" claim at modern scale: for small messages the per-message
/// protocol cost — a credit held and a reply paid across a round trip
/// dominated by `o` and switch latency, not by wire bytes — bounds the
/// rate, and a batch pays all of it once for every member.
pub fn batched_hotspot_rate(
    net: Network,
    mut config: AmConfig,
    quantum_us: u64,
    senders: u32,
    per_sender: u32,
) -> RatePoint {
    assert!(net.nodes() > senders, "need a receiver beyond the senders");
    config.batch = BatchConfig {
        flush_quantum: SimDuration::from_micros(quantum_us),
        max_batch_bytes: 32 * 1024,
        max_batch_msgs: 64,
    };
    let mut am = ActiveMessages::new(net, config, 3);
    for s in 1..=senders {
        for i in 0..per_sender {
            am.request_at(
                SimTime::from_nanos(u64::from(i) * 250),
                NodeId(s),
                NodeId(0),
                8,
            );
        }
    }
    let notes = am.run_to_completion();
    let last = notes
        .iter()
        .filter_map(|n| match n {
            Notification::RequestDelivered { at, .. } => Some(*at),
            _ => None,
        })
        .max()
        .expect("hotspot must deliver");
    let stats = am.stats();
    let total = u64::from(senders) * u64::from(per_sender);
    debug_assert_eq!(stats.delivered, total, "lossless hotspot delivers all");
    let mean_batch = if stats.batches > 0 {
        stats.batched_msgs as f64 / stats.batches as f64
    } else {
        1.0
    };
    RatePoint {
        quantum_us,
        msgs_per_s: total as f64 / last.saturating_since(SimTime::ZERO).as_secs_f64(),
        mean_batch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use now_net::presets;

    #[test]
    fn ping_pong_cm5_matches_paper_scale() {
        // CM-5 AM: ~1.7 µs overhead each side, ~4 µs latency; round trip
        // should be in the low tens of microseconds including the reply.
        let rtt = ping_pong(presets::cm5(2), AmConfig::default(), 16, 10);
        let us = rtt.as_micros_f64();
        assert!((10.0..40.0).contains(&us), "CM-5 RTT {us} µs");
    }

    #[test]
    fn ping_pong_tcp_is_an_order_of_magnitude_slower_than_am() {
        let am = ping_pong(presets::am_fddi(2), AmConfig::default(), 64, 5);
        let tcp = ping_pong(presets::tcp_ethernet(2), AmConfig::default(), 64, 5);
        let ratio = tcp.ratio(am);
        assert!(ratio > 8.0, "TCP/AM round-trip ratio {ratio}");
    }

    #[test]
    fn bandwidth_grows_with_message_size() {
        // Generous timeout: large in-flight windows must not trip spurious
        // retransmissions during a bandwidth test.
        let config = AmConfig {
            credits: 8,
            timeout: now_sim::SimDuration::from_secs(1),
            ..AmConfig::default()
        };
        let points = bandwidth_sweep(presets::am_atm(2), config, &[64, 512, 4_096, 32_768], 16);
        assert!(points.windows(2).all(|w| w[0].value < w[1].value));
        // Large messages approach the 155-Mbps wire.
        assert!(points.last().unwrap().value > 80.0);
    }

    #[test]
    fn hotspot_scales_until_receiver_saturates() {
        let config = AmConfig {
            credits: 8,
            ..AmConfig::default()
        };
        let t2 = hotspot_throughput(presets::am_atm(8), config, 2, 50);
        let t6 = hotspot_throughput(presets::am_atm(8), config, 6, 50);
        // More senders should not reduce total delivered throughput.
        assert!(t6 > t2 * 0.8, "hotspot collapse: {t2} vs {t6}");
    }

    #[test]
    fn batching_amortizes_overhead_into_rate_gain() {
        let config = AmConfig {
            timeout: now_sim::SimDuration::from_secs(1),
            ..AmConfig::default()
        };
        let base = batched_hotspot_rate(presets::am_atm(8), config, 0, 4, 256);
        let batched = batched_hotspot_rate(presets::am_atm(8), config, 32, 4, 256);
        assert!((base.mean_batch - 1.0).abs() < f64::EPSILON);
        assert!(
            batched.mean_batch > 4.0,
            "mean batch {}",
            batched.mean_batch
        );
        let gain = batched.msgs_per_s / base.msgs_per_s;
        assert!(gain >= 5.0, "rate gain only {gain:.2}x");
    }

    #[test]
    fn ping_pong_is_deterministic() {
        let a = ping_pong(presets::am_atm(2), AmConfig::default(), 256, 8);
        let b = ping_pong(presets::am_atm(2), AmConfig::default(), 256, 8);
        assert_eq!(a, b);
    }
}
