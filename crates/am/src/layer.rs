//! The Active Messages protocol engine.

use std::collections::{HashMap, HashSet, VecDeque};

use now_net::{Network, NodeId};
use now_probe::Probe;
use now_sim::{EventId, EventQueue, SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};

/// Identifies one logical request for its whole lifetime (across
/// retransmissions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MsgId(pub u64);

/// Protocol parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AmConfig {
    /// Outstanding requests allowed per (sender, destination) pair before
    /// the sender stalls.
    pub credits: u32,
    /// How long a sender waits for a reply before retransmitting.
    pub timeout: SimDuration,
    /// Retransmissions attempted before the request is declared failed.
    pub max_retries: u32,
    /// Messages buffered at a descheduled receiver before arrivals are
    /// dropped (to be recovered by sender timeout).
    pub recv_buffer_msgs: u32,
    /// Probability that any single wire crossing is lost.
    pub loss_probability: f64,
    /// Size of a reply message on the wire, bytes.
    pub reply_bytes: u64,
    /// Per-destination aggregation (disabled by default: a zero flush
    /// quantum reproduces the per-message protocol byte-identically).
    #[serde(default)]
    pub batch: BatchConfig,
}

impl Default for AmConfig {
    /// CM-5-like defaults: 4 credits, generous buffer, lossless wire.
    fn default() -> Self {
        AmConfig {
            credits: 4,
            timeout: SimDuration::from_millis(10),
            max_retries: 10,
            recv_buffer_msgs: 64,
            loss_probability: 0.0,
            reply_bytes: 16,
            batch: BatchConfig::disabled(),
        }
    }
}

/// Per-`(src, dst)` request aggregation: small requests issued within one
/// flush quantum coalesce into a single wire transfer, so the per-message
/// software overhead `o` — the term the paper shows dominating small
/// messages — is paid once per batch instead of once per message.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatchConfig {
    /// How long the first request of a batch waits for company before the
    /// batch is flushed. Zero disables batching entirely: every request
    /// takes the classic per-message path, byte-identically.
    pub flush_quantum: SimDuration,
    /// Payload bytes that flush a batch early.
    pub max_batch_bytes: u64,
    /// Member count that flushes a batch early. Clamped to at least 1;
    /// exactly 1 makes every message its own batch.
    pub max_batch_msgs: u32,
}

impl BatchConfig {
    /// Batching off: the per-message protocol, unchanged.
    pub fn disabled() -> Self {
        BatchConfig {
            flush_quantum: SimDuration::ZERO,
            max_batch_bytes: 32 * 1024,
            max_batch_msgs: 32,
        }
    }

    /// Batching with a `quantum_us`-microsecond flush quantum and the
    /// default size bounds (`0` yields [`BatchConfig::disabled`]).
    pub fn quantum_us(quantum_us: u64) -> Self {
        BatchConfig {
            flush_quantum: SimDuration::from_micros(quantum_us),
            ..BatchConfig::disabled()
        }
    }

    /// Is aggregation active?
    pub fn enabled(&self) -> bool {
        self.flush_quantum > SimDuration::ZERO
    }
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig::disabled()
    }
}

/// A registered handler label: batch headers carry this two-byte id on
/// the wire instead of the `&'static str` it interns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct HandlerId(pub u16);

/// The registered handler-id table: interns the `&'static str` handler
/// and blame labels this crate puts on the wire or into causal records,
/// so protocol headers ship a [`HandlerId`] instead of a string.
///
/// Registration order is fixed at construction (the protocol labels are
/// interned first), so ids are stable across runs and across peers built
/// from the same binary — the property that lets a header id be decoded
/// without negotiation.
#[derive(Debug, Clone, Default)]
pub struct HandlerTable {
    names: Vec<&'static str>,
}

/// The request handler every [`ActiveMessages::request_at`] message runs.
pub const HANDLER_REQUEST: &str = "am.request";
/// The reply handler that returns the sender's credit.
pub const HANDLER_REPLY: &str = "am.reply";
/// The batch-header handler: unpacks members and runs each in FIFO order.
pub const HANDLER_BATCH: &str = "am.batch";

/// Every label the protocol engine and the fabric transports attach to
/// wire headers or blame records, in interning order.
const PROTOCOL_LABELS: [&str; 6] = [
    HANDLER_REQUEST,
    HANDLER_REPLY,
    HANDLER_BATCH,
    "net.overhead",
    "net.wait",
    "net.wire",
];

impl HandlerTable {
    /// A table pre-loaded with the protocol's own labels.
    pub fn with_protocol_labels() -> Self {
        let mut table = HandlerTable::default();
        for label in PROTOCOL_LABELS {
            table.register(label);
        }
        table
    }

    /// Interns `name`, returning its id (existing id if already interned).
    ///
    /// # Panics
    ///
    /// Panics when the table outgrows the two-byte id space.
    pub fn register(&mut self, name: &'static str) -> HandlerId {
        if let Some(i) = self.names.iter().position(|&n| n == name) {
            return HandlerId(i as u16);
        }
        assert!(
            self.names.len() < usize::from(u16::MAX),
            "handler-id space exhausted"
        );
        self.names.push(name);
        HandlerId((self.names.len() - 1) as u16)
    }

    /// The label an id was registered under.
    ///
    /// # Panics
    ///
    /// Panics on an unregistered id.
    pub fn name(&self, id: HandlerId) -> &'static str {
        self.names[usize::from(id.0)]
    }

    /// The id a label was registered under, if any.
    pub fn lookup(&self, name: &str) -> Option<HandlerId> {
        self.names
            .iter()
            .position(|&n| n == name)
            .map(|i| HandlerId(i as u16))
    }

    /// Registered labels.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// What the protocol engine reports back as simulation advances.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Notification {
    /// A request's handler ran at the destination.
    RequestDelivered {
        /// The request.
        id: MsgId,
        /// Sender.
        src: NodeId,
        /// Destination whose handler ran.
        dst: NodeId,
        /// Handler execution time.
        at: SimTime,
    },
    /// The reply reached the original sender (its credit is home).
    ReplyDelivered {
        /// The request being acknowledged.
        id: MsgId,
        /// When the sender processed the reply.
        at: SimTime,
    },
    /// The request exhausted its retries.
    RequestFailed {
        /// The request.
        id: MsgId,
        /// When the sender gave up.
        at: SimTime,
    },
}

/// Counters exposed for tests and reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AmStats {
    /// Requests accepted from the application.
    pub requests: u64,
    /// Handler invocations (exactly one per delivered request).
    pub delivered: u64,
    /// Replies received by senders.
    pub replies: u64,
    /// Wire retransmissions.
    pub retransmits: u64,
    /// Arrivals dropped because the receiver buffer was full.
    pub buffer_drops: u64,
    /// Wire crossings lost to the loss model.
    pub wire_losses: u64,
    /// Requests that exhausted retries.
    pub failed: u64,
    /// Duplicate requests suppressed at receivers.
    pub duplicates: u64,
    /// Batches assembled (one wire transfer each). Zero with batching off.
    pub batches: u64,
    /// Requests that rode a batch. With batching on, every accepted
    /// request batches, so this reconciles with `requests`.
    pub batched_msgs: u64,
    /// Batches flushed by the quantum timer expiring.
    pub flush_timeouts: u64,
    /// Batches flushed early by a size bound (bytes or member count).
    /// `batches == flush_timeouts + flush_on_size` always.
    pub flush_on_size: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WireKind {
    Request { bytes: u64, attempt: u32 },
    Reply,
}

#[derive(Debug, Clone, Copy)]
enum Event {
    /// A message finished arriving at `dst` (CPU-side delivery point).
    Arrive {
        id: MsgId,
        src: NodeId,
        dst: NodeId,
        kind: WireKind,
    },
    /// Sender-side retransmission timer for `id`.
    Timeout { id: MsgId },
    /// Application-scheduled send.
    UserSend { id: MsgId },
    /// The flush-quantum timer of the open `(src, dst)` batch expired.
    Flush { src: NodeId, dst: NodeId },
}

/// Why a batch left its aggregation queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FlushCause {
    /// The flush quantum expired.
    Quantum,
    /// A size bound (bytes or member count) was hit.
    Size,
}

/// An open aggregation queue: requests from one `(src, dst)` pair waiting
/// out the flush quantum together.
#[derive(Debug, Default)]
struct Aggregation {
    /// `(member id, payload bytes)` in arrival order — the FIFO order
    /// delivery notifications fan back out in.
    members: Vec<(MsgId, u64)>,
    /// Payload bytes aggregated so far.
    bytes: u64,
    /// The pending [`Event::Flush`], cancelled on an early size flush.
    flush_event: Option<EventId>,
}

/// An in-flight batch: the wire-level unit the credit/timeout/retry
/// machinery sees, with the member list its notifications fan out from.
#[derive(Debug)]
struct Batch {
    /// The handler id the batch header carries on the wire.
    handler: HandlerId,
    /// `(member id, payload bytes)` in FIFO order.
    members: Vec<(MsgId, u64)>,
}

#[derive(Debug, Clone)]
struct OutstandingReq {
    src: NodeId,
    dst: NodeId,
    attempt: u32,
    timeout_event: EventId,
    /// When the *first* attempt went on the wire (for RTT accounting).
    issued: SimTime,
}

#[derive(Debug, Default)]
struct EndpointState {
    /// Is the owning process currently scheduled (able to run handlers)?
    running: bool,
    /// Buffered arrivals awaiting the process being scheduled.
    inbox: VecDeque<(MsgId, NodeId, u64)>,
    /// Request ids already handled here (for duplicate suppression).
    handled: HashSet<MsgId>,
}

/// The Active Messages engine: a deterministic discrete-event simulation of
/// the protocol over a [`Network`].
///
/// Drive it with [`ActiveMessages::request_at`] and
/// [`ActiveMessages::advance`]; integrate with a scheduler through
/// [`ActiveMessages::set_running`].
#[derive(Debug)]
pub struct ActiveMessages {
    net: Network,
    config: AmConfig,
    queue: EventQueue<Event>,
    rng: SimRng,
    endpoints: Vec<EndpointState>,
    /// Credits available from each sender to each destination.
    credits: HashMap<(NodeId, NodeId), u32>,
    /// Requests awaiting credits, FIFO per (src, dst).
    stalled: HashMap<(NodeId, NodeId), VecDeque<MsgId>>,
    /// In-flight requests by id.
    outstanding: HashMap<MsgId, OutstandingReq>,
    /// Parameters of requests not yet sent (scheduled or stalled).
    pending_params: HashMap<MsgId, (NodeId, NodeId, u64)>,
    /// Open aggregation queues, one per `(src, dst)` with batching on.
    agg: HashMap<(NodeId, NodeId), Aggregation>,
    /// In-flight batches keyed by their wire-level [`MsgId`].
    batches: HashMap<MsgId, Batch>,
    /// Free list of member buffers recycled across batches, so the
    /// steady-state batching path allocates nothing once warm.
    batch_pool: Vec<Vec<(MsgId, u64)>>,
    /// Notifications fanned out of a batch beyond the first, drained by
    /// [`ActiveMessages::advance`] before the event queue is popped so
    /// per-member notifications come out in FIFO order.
    pending_notes: VecDeque<Notification>,
    /// The registered handler-id table batch headers index into.
    handlers: HandlerTable,
    /// The id batch headers carry (the request handler's).
    request_handler: HandlerId,
    next_id: u64,
    stats: AmStats,
    probe: Probe,
}

impl ActiveMessages {
    /// Creates an engine over `net` with all processes initially running.
    pub fn new(net: Network, config: AmConfig, seed: u64) -> Self {
        let nodes = net.nodes() as usize;
        let mut endpoints = Vec::with_capacity(nodes);
        for _ in 0..nodes {
            endpoints.push(EndpointState {
                running: true,
                ..Default::default()
            });
        }
        let mut handlers = HandlerTable::with_protocol_labels();
        let request_handler = handlers.register(HANDLER_BATCH);
        ActiveMessages {
            net,
            config,
            queue: EventQueue::new(),
            rng: SimRng::new(seed),
            endpoints,
            credits: HashMap::new(),
            stalled: HashMap::new(),
            outstanding: HashMap::new(),
            pending_params: HashMap::new(),
            agg: HashMap::new(),
            batches: HashMap::new(),
            batch_pool: Vec::new(),
            pending_notes: VecDeque::new(),
            handlers,
            request_handler,
            next_id: 0,
            stats: AmStats::default(),
            probe: Probe::disabled(),
        }
    }

    /// The registered handler-id table (batch headers carry its ids).
    pub fn handlers(&self) -> &HandlerTable {
        &self.handlers
    }

    /// Attaches a telemetry probe. Counters mirror [`AmStats`] under
    /// `am.*` names, the `am.rtt.ns` histogram tracks request-to-reply
    /// round trips (measured from the first wire attempt), and the probe
    /// is propagated to the underlying [`Network`].
    pub fn set_probe(&mut self, probe: Probe) {
        self.net.set_probe(probe.clone());
        self.probe = probe;
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Protocol counters so far.
    pub fn stats(&self) -> AmStats {
        self.stats
    }

    /// The underlying network (for probes).
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.net
    }

    /// Schedules a request of `bytes` from `src` to `dst` at time `at`.
    ///
    /// Returns the request's [`MsgId`]; completion is reported through
    /// [`Notification::ReplyDelivered`] (or `RequestFailed`).
    ///
    /// # Panics
    ///
    /// Panics if `src == dst`, a node is out of range, or `at` is in the
    /// simulation's past.
    pub fn request_at(&mut self, at: SimTime, src: NodeId, dst: NodeId, bytes: u64) -> MsgId {
        assert_ne!(src, dst, "Active Messages are remote by definition");
        assert!(
            src.0 < self.net.nodes() && dst.0 < self.net.nodes(),
            "node out of range"
        );
        let id = MsgId(self.next_id);
        self.next_id += 1;
        self.pending_params.insert(id, (src, dst, bytes));
        self.queue.schedule_at(at, Event::UserSend { id });
        self.stats.requests += 1;
        self.probe.count("am.requests", 1);
        id
    }

    /// Marks the process on `node` as scheduled (`true`) or descheduled
    /// (`false`). Scheduling a node drains its buffered arrivals: handlers
    /// run and replies go out, timestamped at the engine's current time.
    pub fn set_running(&mut self, node: NodeId, running: bool) -> Vec<Notification> {
        let was = self.endpoints[node.0 as usize].running;
        self.endpoints[node.0 as usize].running = running;
        let mut notes = Vec::new();
        if running && !was {
            let drained: Vec<_> = self.endpoints[node.0 as usize].inbox.drain(..).collect();
            let now = self.queue.now();
            for (id, src, _bytes) in drained {
                notes.push(self.handle_request(id, src, node, now));
                // A drained batch fans its remaining members out here, in
                // the same FIFO order `advance` would deliver them.
                while let Some(n) = self.pending_notes.pop_front() {
                    notes.push(n);
                }
            }
        }
        notes
    }

    /// Advances the simulation by one event, returning a notification when
    /// the event is application-visible. Returns `None` when no events
    /// remain.
    pub fn advance(&mut self) -> Option<Notification> {
        // Per-member notifications fanned out of a batch drain before the
        // next event pops, keeping the one-notification-per-advance API
        // while a single arrival delivers many requests.
        if let Some(note) = self.pending_notes.pop_front() {
            return Some(note);
        }
        while let Some((now, ev)) = self.queue.pop() {
            if let Some(note) = self.dispatch(now, ev) {
                return Some(note);
            }
        }
        None
    }

    /// Runs the simulation to quiescence, collecting all notifications.
    pub fn run_to_completion(&mut self) -> Vec<Notification> {
        let mut out = Vec::new();
        while let Some(n) = self.advance() {
            out.push(n);
        }
        out
    }

    /// Processes every event with timestamp at or before `t`, collecting
    /// notifications, then stops (the clock does not advance past the last
    /// processed event). Lets a caller interleave protocol time with
    /// external decisions such as scheduling.
    pub fn advance_until(&mut self, t: SimTime) -> Vec<Notification> {
        let mut out = Vec::new();
        while let Some(next) = self.queue.peek_time() {
            if next > t {
                break;
            }
            let (now, ev) = self.queue.pop().expect("peeked event exists");
            if let Some(n) = self.dispatch(now, ev) {
                out.push(n);
            }
            while let Some(n) = self.pending_notes.pop_front() {
                out.push(n);
            }
        }
        out
    }

    /// True if no events remain.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }

    fn credits_mut(&mut self, src: NodeId, dst: NodeId) -> &mut u32 {
        let cap = self.config.credits;
        self.credits.entry((src, dst)).or_insert(cap)
    }

    fn dispatch(&mut self, now: SimTime, ev: Event) -> Option<Notification> {
        match ev {
            Event::UserSend { id } => {
                let (src, dst, _bytes) = *self
                    .pending_params
                    .get(&id)
                    .expect("user send for unknown id");
                if self.config.batch.enabled() {
                    self.enqueue_into_batch(id, src, dst, now);
                } else if *self.credits_mut(src, dst) > 0 {
                    self.launch(id, now, 0, now);
                } else {
                    self.stalled.entry((src, dst)).or_default().push_back(id);
                }
                None
            }
            Event::Flush { src, dst } => {
                self.flush_batch(src, dst, now, FlushCause::Quantum);
                None
            }
            Event::Timeout { id } => {
                let Some(req) = self.outstanding.get(&id).cloned() else {
                    return None; // reply already arrived
                };
                if req.attempt >= self.config.max_retries {
                    self.outstanding.remove(&id);
                    // Release the credit so the pair does not deadlock.
                    self.return_credit(req.src, req.dst, now);
                    if let Some(batch) = self.batches.remove(&id) {
                        // The whole batch fails: one RequestFailed per
                        // member, FIFO, the first returned directly.
                        self.pending_params.remove(&id);
                        let n = batch.members.len() as u64;
                        self.stats.failed += n;
                        self.probe.count("am.failed", n);
                        let mut members = batch.members;
                        let mut it = members.drain(..);
                        let (first, _) = it.next().expect("a batch is never empty");
                        for (m, _) in it {
                            self.pending_notes
                                .push_back(Notification::RequestFailed { id: m, at: now });
                        }
                        self.batch_pool.push(members);
                        return Some(Notification::RequestFailed { id: first, at: now });
                    }
                    self.stats.failed += 1;
                    self.probe.count("am.failed", 1);
                    return Some(Notification::RequestFailed { id, at: now });
                }
                self.stats.retransmits += 1;
                self.probe.count("am.retransmits", 1);
                self.outstanding.remove(&id);
                self.launch(id, now, req.attempt + 1, req.issued);
                None
            }
            Event::Arrive { id, src, dst, kind } => {
                if self.rng.chance(self.config.loss_probability) {
                    self.stats.wire_losses += 1;
                    self.probe.count("am.wire_losses", 1);
                    return None;
                }
                match kind {
                    WireKind::Request { bytes, .. } => {
                        self.arrive_request(id, src, dst, bytes, now)
                    }
                    WireKind::Reply => self.arrive_reply(id, dst, now),
                }
            }
        }
    }

    /// Puts a request on the wire (first attempt or retransmission).
    /// `issued` is when the request's first attempt launched, carried
    /// across retransmissions for RTT accounting.
    fn launch(&mut self, id: MsgId, now: SimTime, attempt: u32, issued: SimTime) {
        let (src, dst, bytes) = *self.pending_params.get(&id).expect("launch for unknown id");
        if attempt == 0 {
            let c = self.credits_mut(src, dst);
            debug_assert!(*c > 0, "launch without credit");
            *c -= 1;
        }
        let out = self.net.transfer(src, dst, bytes, now);
        self.queue.schedule_at(
            out.delivered_at,
            Event::Arrive {
                id,
                src,
                dst,
                kind: WireKind::Request { bytes, attempt },
            },
        );
        let timeout_event = self
            .queue
            .schedule_at(now + self.config.timeout, Event::Timeout { id });
        let _ = bytes;
        self.outstanding.insert(
            id,
            OutstandingReq {
                src,
                dst,
                attempt,
                timeout_event,
                issued,
            },
        );
    }

    /// Adds a scheduled request to its pair's aggregation queue. A full
    /// queue (member or byte bound) flushes immediately — without ever
    /// arming the quantum timer when the first member already fills it,
    /// so `max_batch_msgs == 1` performs exactly the same event-queue
    /// operations as the unbatched path. Otherwise the first member of a
    /// fresh queue arms one [`Event::Flush`] a quantum out.
    fn enqueue_into_batch(&mut self, id: MsgId, src: NodeId, dst: NodeId, now: SimTime) {
        let bytes = self.pending_params.get(&id).expect("batching unknown id").2;
        let cfg = self.config.batch;
        let max_msgs = cfg.max_batch_msgs.max(1);
        let (full, armed) = {
            let entry = self.agg.entry((src, dst)).or_default();
            if entry.members.capacity() == 0 {
                if let Some(buf) = self.batch_pool.pop() {
                    entry.members = buf;
                }
            }
            entry.members.push((id, bytes));
            entry.bytes += bytes;
            (
                entry.members.len() as u32 >= max_msgs || entry.bytes >= cfg.max_batch_bytes,
                entry.flush_event.is_some(),
            )
        };
        if full {
            self.flush_batch(src, dst, now, FlushCause::Size);
        } else if !armed {
            let ev = self
                .queue
                .schedule_at(now + cfg.flush_quantum, Event::Flush { src, dst });
            self.agg
                .get_mut(&(src, dst))
                .expect("queue just populated")
                .flush_event = Some(ev);
        }
    }

    /// Closes the `(src, dst)` aggregation queue: its members become one
    /// wire-level batch message — one overhead and one wire charge for the
    /// summed payload — that the credit/timeout/retry machinery carries
    /// exactly like a single request.
    fn flush_batch(&mut self, src: NodeId, dst: NodeId, now: SimTime, cause: FlushCause) {
        let Some(agg) = self.agg.remove(&(src, dst)) else {
            return; // already flushed by a size bound
        };
        if let (FlushCause::Size, Some(ev)) = (cause, agg.flush_event) {
            self.queue.cancel(ev);
        }
        debug_assert!(!agg.members.is_empty(), "a batch is never empty");
        self.stats.batches += 1;
        self.probe.count("am.batches", 1);
        match cause {
            FlushCause::Quantum => {
                self.stats.flush_timeouts += 1;
                self.probe.count("am.flush_timeouts", 1);
            }
            FlushCause::Size => {
                self.stats.flush_on_size += 1;
                self.probe.count("am.flush_on_size", 1);
            }
        }
        let n = agg.members.len() as u64;
        self.stats.batched_msgs += n;
        self.probe.count("am.batched_msgs", n);
        // Member parameters are subsumed by the batch header from here on.
        for &(m, _) in &agg.members {
            self.pending_params.remove(&m);
        }
        let batch_id = MsgId(self.next_id);
        self.next_id += 1;
        self.pending_params.insert(batch_id, (src, dst, agg.bytes));
        self.batches.insert(
            batch_id,
            Batch {
                handler: self.request_handler,
                members: agg.members,
            },
        );
        if *self.credits_mut(src, dst) > 0 {
            self.launch(batch_id, now, 0, now);
        } else {
            self.stalled
                .entry((src, dst))
                .or_default()
                .push_back(batch_id);
        }
    }

    fn arrive_request(
        &mut self,
        id: MsgId,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        now: SimTime,
    ) -> Option<Notification> {
        let ep = &mut self.endpoints[dst.0 as usize];
        if ep.handled.contains(&id) {
            // Duplicate (our reply was lost): re-reply, do not re-run the
            // handler.
            self.stats.duplicates += 1;
            self.probe.count("am.duplicates", 1);
            self.send_reply(id, dst, src, now);
            return None;
        }
        if ep.running {
            Some(self.handle_request(id, src, dst, now))
        } else if ep.inbox.iter().any(|&(qid, _, _)| qid == id) {
            // A retransmission of a message we already buffered.
            self.stats.duplicates += 1;
            self.probe.count("am.duplicates", 1);
            None
        } else if (ep.inbox.len() as u32) < self.config.recv_buffer_msgs {
            ep.inbox.push_back((id, src, bytes));
            None
        } else {
            self.stats.buffer_drops += 1;
            self.probe.count("am.buffer_drops", 1);
            None // sender's timeout recovers it
        }
    }

    /// Runs the handler at `dst` and sends the reply.
    fn handle_request(
        &mut self,
        id: MsgId,
        src: NodeId,
        dst: NodeId,
        now: SimTime,
    ) -> Notification {
        let inserted = self.endpoints[dst.0 as usize].handled.insert(id);
        debug_assert!(inserted, "handler must run exactly once");
        if self.batches.contains_key(&id) {
            // A batch header: the unpacking handler runs each member in
            // FIFO order. One reply acknowledges the whole batch.
            let n = self.batches[&id].members.len() as u64;
            self.stats.delivered += n;
            self.probe.count("am.delivered", n);
            self.send_reply(id, dst, src, now);
            let batch = &self.batches[&id];
            debug_assert_eq!(self.handlers.name(batch.handler), HANDLER_BATCH);
            let mut it = batch.members.iter();
            let &(first, _) = it.next().expect("a batch is never empty");
            for &(m, _) in it {
                self.pending_notes
                    .push_back(Notification::RequestDelivered {
                        id: m,
                        src,
                        dst,
                        at: now,
                    });
            }
            return Notification::RequestDelivered {
                id: first,
                src,
                dst,
                at: now,
            };
        }
        self.stats.delivered += 1;
        self.probe.count("am.delivered", 1);
        self.send_reply(id, dst, src, now);
        Notification::RequestDelivered {
            id,
            src,
            dst,
            at: now,
        }
    }

    fn send_reply(&mut self, id: MsgId, from: NodeId, to: NodeId, now: SimTime) {
        let out = self.net.transfer(from, to, self.config.reply_bytes, now);
        self.queue.schedule_at(
            out.delivered_at,
            Event::Arrive {
                id,
                src: from,
                dst: to,
                kind: WireKind::Reply,
            },
        );
    }

    fn arrive_reply(&mut self, id: MsgId, at: NodeId, now: SimTime) -> Option<Notification> {
        let Some(req) = self.outstanding.remove(&id) else {
            return None; // duplicate reply
        };
        debug_assert_eq!(req.src, at, "reply must return to the sender");
        self.queue.cancel(req.timeout_event);
        if let Some(batch) = self.batches.remove(&id) {
            // The batch acknowledgment completes every member; the RTT
            // histogram records the batch round trip once.
            let n = batch.members.len() as u64;
            self.stats.replies += n;
            self.probe.count("am.replies", n);
            self.probe
                .record("am.rtt.ns", now.saturating_since(req.issued));
            self.pending_params.remove(&id);
            self.return_credit(req.src, req.dst, now);
            let mut members = batch.members;
            let mut it = members.drain(..);
            let (first, _) = it.next().expect("a batch is never empty");
            for (m, _) in it {
                self.pending_notes
                    .push_back(Notification::ReplyDelivered { id: m, at: now });
            }
            self.batch_pool.push(members);
            return Some(Notification::ReplyDelivered { id: first, at: now });
        }
        self.stats.replies += 1;
        self.probe.count("am.replies", 1);
        self.probe
            .record("am.rtt.ns", now.saturating_since(req.issued));
        self.pending_params.remove(&id);
        self.return_credit(req.src, req.dst, now);
        Some(Notification::ReplyDelivered { id, at: now })
    }

    /// Returns a credit to the pair and unstalls the next queued request.
    fn return_credit(&mut self, src: NodeId, dst: NodeId, now: SimTime) {
        *self.credits_mut(src, dst) += 1;
        if let Some(queue) = self.stalled.get_mut(&(src, dst)) {
            if let Some(next) = queue.pop_front() {
                let c = self.credits_mut(src, dst);
                debug_assert!(*c > 0);
                self.launch(next, now, 0, now);
            }
        }
    }

    /// Total credits currently available plus consumed by in-flight
    /// first-attempt requests for a pair — used by tests to check credit
    /// conservation.
    pub fn credits_available(&self, src: NodeId, dst: NodeId) -> u32 {
        self.credits
            .get(&(src, dst))
            .copied()
            .unwrap_or(self.config.credits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use now_net::presets;

    fn engine(nodes: u32) -> ActiveMessages {
        ActiveMessages::new(presets::am_atm(nodes), AmConfig::default(), 7)
    }

    #[test]
    fn single_request_delivers_and_replies() {
        let mut am = engine(2);
        let id = am.request_at(SimTime::ZERO, NodeId(0), NodeId(1), 64);
        let notes = am.run_to_completion();
        assert_eq!(notes.len(), 2);
        assert!(matches!(
            notes[0],
            Notification::RequestDelivered { id: got, src: NodeId(0), dst: NodeId(1), .. } if got == id
        ));
        assert!(matches!(notes[1], Notification::ReplyDelivered { id: got, .. } if got == id));
        let s = am.stats();
        assert_eq!(s.requests, 1);
        assert_eq!(s.delivered, 1);
        assert_eq!(s.replies, 1);
        assert_eq!(s.retransmits, 0);
    }

    #[test]
    fn credits_limit_outstanding_requests() {
        let mut am = engine(2);
        // Fire 10 requests at once with 4 credits.
        for _ in 0..10 {
            am.request_at(SimTime::ZERO, NodeId(0), NodeId(1), 64);
        }
        // After the UserSend events fire, only 4 are on the wire.
        // Advance until the first delivery to check stall occurred.
        let notes = am.run_to_completion();
        let delivered = notes
            .iter()
            .filter(|n| matches!(n, Notification::RequestDelivered { .. }))
            .count();
        assert_eq!(delivered, 10, "all eventually delivered");
        assert_eq!(am.stats().replies, 10);
        // All credits returned at the end.
        assert_eq!(am.credits_available(NodeId(0), NodeId(1)), 4);
    }

    #[test]
    fn descheduled_receiver_buffers_until_scheduled() {
        let mut am = engine(2);
        am.set_running(NodeId(1), false);
        am.request_at(SimTime::ZERO, NodeId(0), NodeId(1), 64);
        // Run well past the arrival: nothing delivered yet.
        let early = am.advance_until(SimTime::from_micros(500));
        assert!(early.is_empty(), "handler must not run while descheduled");
        assert_eq!(am.stats().delivered, 0);
        // Schedule it: drains the inbox.
        let notes = am.set_running(NodeId(1), true);
        assert_eq!(notes.len(), 1);
        assert!(matches!(notes[0], Notification::RequestDelivered { .. }));
        // The reply then flows back.
        let rest = am.run_to_completion();
        assert!(rest
            .iter()
            .any(|n| matches!(n, Notification::ReplyDelivered { .. })));
    }

    #[test]
    fn buffer_overflow_drops_and_timeout_recovers() {
        let net = presets::am_atm(2);
        let config = AmConfig {
            credits: 16,
            recv_buffer_msgs: 2,
            timeout: SimDuration::from_micros(500),
            ..AmConfig::default()
        };
        let mut am = ActiveMessages::new(net, config, 3);
        am.set_running(NodeId(1), false);
        for _ in 0..6 {
            am.request_at(SimTime::ZERO, NodeId(0), NodeId(1), 64);
        }
        // Let the arrivals and a few timeout rounds pass, then schedule the
        // receiver before retries are exhausted.
        let early = am.advance_until(SimTime::from_micros(2_000));
        assert!(early.is_empty(), "nothing delivers while descheduled");
        assert!(am.stats().buffer_drops > 0, "buffer must overflow");
        am.set_running(NodeId(1), true);
        let _ = am.run_to_completion();
        let s = am.stats();
        assert_eq!(s.delivered, 6, "every request eventually handled");
        assert!(s.retransmits > 0, "recovery is via retransmission");
        assert_eq!(s.failed, 0);
    }

    #[test]
    fn lossy_wire_still_delivers_exactly_once() {
        let net = presets::am_atm(4);
        let config = AmConfig {
            loss_probability: 0.3,
            timeout: SimDuration::from_micros(800),
            max_retries: 50,
            ..AmConfig::default()
        };
        let mut am = ActiveMessages::new(net, config, 11);
        let n = 40;
        for i in 0..n {
            am.request_at(
                SimTime::from_micros(i * 5),
                NodeId((i % 3) as u32),
                NodeId(3),
                128,
            );
        }
        let _ = am.run_to_completion();
        let s = am.stats();
        assert_eq!(s.delivered, n, "exactly-once delivery under loss");
        assert_eq!(s.replies, n);
        assert_eq!(s.failed, 0);
        assert!(s.wire_losses > 0, "the loss model must have fired");
        assert!(s.retransmits >= s.wire_losses / 2);
    }

    #[test]
    fn duplicates_are_suppressed_not_rehandled() {
        // Force duplicates: lossy replies with fast timeout.
        let net = presets::am_atm(2);
        let config = AmConfig {
            loss_probability: 0.4,
            timeout: SimDuration::from_micros(600),
            max_retries: 100,
            ..AmConfig::default()
        };
        let mut am = ActiveMessages::new(net, config, 5);
        for i in 0..20 {
            am.request_at(SimTime::from_micros(i * 3), NodeId(0), NodeId(1), 64);
        }
        let _ = am.run_to_completion();
        let s = am.stats();
        assert_eq!(s.delivered, 20);
        assert!(s.duplicates > 0, "this seed should produce duplicates");
    }

    #[test]
    fn exhausted_retries_fail_and_release_credit() {
        let net = presets::am_atm(2);
        let config = AmConfig {
            loss_probability: 1.0, // nothing ever arrives
            timeout: SimDuration::from_micros(100),
            max_retries: 3,
            credits: 1,
            ..AmConfig::default()
        };
        let mut am = ActiveMessages::new(net, config, 2);
        let id = am.request_at(SimTime::ZERO, NodeId(0), NodeId(1), 64);
        let id2 = am.request_at(SimTime::ZERO, NodeId(0), NodeId(1), 64);
        let notes = am.run_to_completion();
        let failed: Vec<MsgId> = notes
            .iter()
            .filter_map(|n| match n {
                Notification::RequestFailed { id, .. } => Some(*id),
                _ => None,
            })
            .collect();
        assert_eq!(
            failed,
            vec![id, id2],
            "both fail, second after credit release"
        );
        assert_eq!(am.stats().failed, 2);
        assert_eq!(am.credits_available(NodeId(0), NodeId(1)), 1);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut am = ActiveMessages::new(
                presets::am_atm(4),
                AmConfig {
                    loss_probability: 0.2,
                    timeout: SimDuration::from_micros(700),
                    ..AmConfig::default()
                },
                99,
            );
            for i in 0..30u64 {
                am.request_at(
                    SimTime::from_micros(i * 7),
                    NodeId((i % 3) as u32),
                    NodeId(((i + 1) % 4) as u32).max(NodeId(3)),
                    64 + i,
                );
            }
            let notes = am.run_to_completion();
            (notes, am.stats())
        };
        let (n1, s1) = run();
        let (n2, s2) = run();
        assert_eq!(n1, n2);
        assert_eq!(s1, s2);
    }

    #[test]
    fn round_trip_time_is_tens_of_microseconds_on_am_atm() {
        let mut am = engine(2);
        let t0 = SimTime::from_micros(100);
        am.request_at(t0, NodeId(0), NodeId(1), 64);
        let notes = am.run_to_completion();
        let reply_at = notes
            .iter()
            .find_map(|n| match n {
                Notification::ReplyDelivered { at, .. } => Some(*at),
                _ => None,
            })
            .unwrap();
        let rtt = reply_at.saturating_since(t0).as_micros_f64();
        assert!(
            (20.0..120.0).contains(&rtt),
            "AM/ATM round trip {rtt} µs out of expected range"
        );
    }

    #[test]
    #[should_panic(expected = "remote by definition")]
    fn self_request_panics() {
        engine(2).request_at(SimTime::ZERO, NodeId(0), NodeId(0), 64);
    }
}
