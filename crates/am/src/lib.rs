//! # now-am — Active Messages on the simulated NOW
//!
//! Active Messages (von Eicken et al., ISCA 1992) is the lean communication
//! layer the paper credits with cutting software overhead by an order of
//! magnitude: each message names a user-level handler that runs on arrival,
//! the user talks to the network interface directly, and the protocol is a
//! simple request/reply pair with sender-managed retry.
//!
//! This crate implements the protocol faithfully enough that the paper's
//! *systems* arguments can be exercised, not just its microbenchmarks:
//!
//! * **Request/reply with credits** — each sender holds a fixed number of
//!   credits per destination; a request consumes one, the reply returns it.
//!   A sender out of credits queues locally (it "stalls"), which is exactly
//!   the mechanism behind Figure 4's Column benchmark pathology.
//! * **Receiver buffering** — a message arriving while the destination
//!   process is descheduled is buffered; when the bounded buffer overflows
//!   the message is dropped and recovered by the sender's timeout. This is
//!   the coupling between communication and *coscheduling* that Figure 4
//!   measures.
//! * **Timeout, retry, and duplicate suppression** — messages may be lost
//!   (a configurable probability) or dropped; senders retransmit up to a
//!   bound; receivers deduplicate so handlers run exactly once.
//!
//! The layer runs inside a deterministic discrete-event simulation
//! ([`ActiveMessages::advance`] steps it) and accounts CPU overhead and
//! wire occupancy through [`now_net::Network`].
//!
//! # Example
//!
//! ```
//! use now_am::{ActiveMessages, AmConfig, Notification};
//! use now_net::{presets, NodeId};
//! use now_sim::SimTime;
//!
//! let net = presets::am_atm(4);
//! let mut am = ActiveMessages::new(net, AmConfig::default(), 1);
//! let id = am.request_at(SimTime::ZERO, NodeId(0), NodeId(1), 64);
//! let mut delivered = false;
//! while let Some(n) = am.advance() {
//!     if let Notification::RequestDelivered { id: got, .. } = n {
//!         assert_eq!(got, id);
//!         delivered = true;
//!     }
//! }
//! assert!(delivered);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bench;
mod bulk;
mod layer;
mod transport;

pub use bench::{
    bandwidth_sweep, batched_hotspot_rate, hotspot_throughput, ping_pong, BenchPoint, RatePoint,
};
pub use bulk::{barrier, broadcast, bulk_put, bulk_put_probed, BulkOutcome, FRAGMENT_BYTES};
pub use layer::{
    ActiveMessages, AmConfig, AmStats, BatchConfig, HandlerId, HandlerTable, MsgId, Notification,
    HANDLER_BATCH, HANDLER_REPLY, HANDLER_REQUEST,
};
pub use transport::{BatchingTransport, CsmaTransport, FabricTransport};
