//! Property tests: invariants the content-addressed store, the partial
//! cache, and the distribution strategies must hold for every input.

use bytes::Bytes;
use now_cas::{
    BlockStore, CasEvent, CooperativeFetch, FetchConfig, FetchStrategy, ImageCatalog,
    ImageCatalogSpec, ImageManifest, PartialCache, RegistryFetch,
};
use now_sim::{Engine, SimTime};
use proptest::prelude::*;

/// Runs one distribution to completion in fixed-cost mode and returns
/// the delivered-content digest.
fn distribute_digest(strategy: FetchStrategy, fetchers: u32, budget: u64, seed: u64) -> u64 {
    let catalog = ImageCatalog::generate(&ImageCatalogSpec::smoke(seed));
    let config = FetchConfig::new(fetchers, 2, budget, seed ^ 0x9e37_79b9);
    let mut engine: Engine<CasEvent> = Engine::new();
    let id = match strategy {
        FetchStrategy::Registry => engine.register(RegistryFetch::new(catalog, config)),
        FetchStrategy::Cooperative => engine.register(CooperativeFetch::new(catalog, config)),
    };
    engine.schedule_at(id, SimTime::ZERO, CasEvent::Start);
    engine.run();
    match strategy {
        FetchStrategy::Registry => {
            let core = engine.component::<RegistryFetch>(id).core();
            assert!(core.complete(), "every fetcher must drain its plan");
            assert_eq!(core.stats().verify_failures, 0, "no corrupt deliveries");
            core.content_digest()
        }
        FetchStrategy::Cooperative => {
            let core = engine.component::<CooperativeFetch>(id).core();
            assert!(core.complete(), "every fetcher must drain its plan");
            assert_eq!(core.stats().verify_failures, 0, "no corrupt deliveries");
            core.content_digest()
        }
    }
}

/// A manifest over one synthetic file, for cache tests.
fn manifest_for(blocks: &[Vec<u8>], store: &mut BlockStore) -> ImageManifest {
    let data: Vec<u8> = blocks.concat();
    ImageManifest::build("img", &[("/data".to_string(), data)], store)
}

proptest! {
    /// Chunking then reassembling through the store round-trips every
    /// byte, whatever the data and chunk size.
    #[test]
    fn chunk_reassemble_round_trips(
        data in prop::collection::vec(any::<u8>(), 0..4096),
        chunk in 1usize..512,
        seed in any::<u64>(),
    ) {
        let mut store = BlockStore::new(seed, chunk);
        let hashes = store.add_bytes(&data);
        prop_assert_eq!(hashes.len(), data.len().div_ceil(chunk));
        let mut rebuilt = Vec::with_capacity(data.len());
        for h in &hashes {
            let bytes = store.get(*h).expect("just inserted");
            rebuilt.extend_from_slice(&bytes);
        }
        prop_assert_eq!(rebuilt, data);
    }

    /// Reference counting conserves blocks: total refs equal inserts
    /// minus successful releases, and a chunk dies exactly with its
    /// last reference.
    #[test]
    fn refcounts_conserve_blocks(
        chunks in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..32), 1..40),
        releases in prop::collection::vec(any::<usize>(), 0..80),
        seed in any::<u64>(),
    ) {
        let mut store = BlockStore::new(seed, 64);
        let hashes: Vec<_> = chunks
            .iter()
            .map(|c| store.insert(Bytes::copy_from_slice(c)))
            .collect();
        let mut live = chunks.len() as i64;
        for idx in &releases {
            let h = hashes[idx % hashes.len()];
            if store.release(h) {
                live -= 1;
            }
        }
        prop_assert_eq!(store.total_refs() as i64, live);
        prop_assert_eq!(
            store.stats().releases as i64,
            chunks.len() as i64 - live
        );
        for h in &hashes {
            // Present iff some reference survives; refs never negative.
            prop_assert_eq!(store.contains(*h), store.refs(*h) > 0);
        }
        // Unique bytes always match the surviving content exactly.
        let resident: u64 = store
            .hashes()
            .map(|h| store.get(h).expect("listed").len() as u64)
            .sum();
        prop_assert_eq!(store.stats().unique_bytes, resident);
    }

    /// The partial cache never exceeds its budget (beyond the single
    /// oversized-block allowance), tracks used bytes exactly, and
    /// survives arbitrary get/insert/clear ("node crash") sequences.
    #[test]
    fn partial_cache_budget_invariants(
        blocks in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..64), 2..24),
        ops in prop::collection::vec((0u8..8, any::<usize>()), 1..120),
        budget in 16u64..256,
        seed in any::<u64>(),
    ) {
        let mut store = BlockStore::new(seed, 32);
        let manifest = manifest_for(&blocks, &mut store);
        let hashes = manifest.unique_blocks();
        let mut cache = PartialCache::new(manifest, budget);
        for (op, idx) in &ops {
            let h = hashes[idx % hashes.len()];
            match op {
                0 => {
                    // A fault: the node loses its block data, never its
                    // manifest.
                    let dropped = cache.clear();
                    prop_assert_eq!(cache.used_bytes(), 0);
                    prop_assert_eq!(cache.len(), 0);
                    prop_assert_eq!(cache.missing(), hashes.len());
                    prop_assert!(dropped.len() <= hashes.len());
                }
                1 | 2 => {
                    let got = cache.get(h);
                    prop_assert_eq!(got.is_some(), cache.contains(h));
                    if let Some(bytes) = got {
                        prop_assert_eq!(
                            &bytes[..],
                            &store.get(h).expect("manifest block")[..]
                        );
                    }
                }
                _ => {
                    let bytes = store.get(h).expect("manifest block");
                    cache.insert(h, bytes);
                    prop_assert!(cache.contains(h), "fresh insert stays resident");
                }
            }
            // Budget holds whenever more than one block is resident.
            if cache.len() > 1 {
                prop_assert!(cache.used_bytes() <= budget);
            }
            // Used bytes are exactly the resident blocks' sizes.
            let resident: u64 = hashes
                .iter()
                .filter(|h| cache.contains(**h))
                .map(|h| store.get(*h).expect("manifest block").len() as u64)
                .sum();
            prop_assert_eq!(cache.used_bytes(), resident);
            prop_assert_eq!(cache.missing() + cache.len(), hashes.len());
        }
    }

    /// Registry-only and cooperative distribution deliver byte-identical
    /// images for any cluster size, budget, and catalog seed — eviction
    /// pressure included.
    #[test]
    fn strategies_agree_on_content(
        fetchers in 1u32..10,
        budget_blocks in 1u64..8,
        seed in 0u64..1000,
    ) {
        let budget = budget_blocks * 16 * 1024;
        let registry = distribute_digest(FetchStrategy::Registry, fetchers, budget, seed);
        let cooperative =
            distribute_digest(FetchStrategy::Cooperative, fetchers, budget, seed);
        prop_assert_eq!(registry, cooperative);
        // And the digest is a function of the catalog alone, not of the
        // budget: an unconstrained run delivers the same bytes.
        let roomy = distribute_digest(FetchStrategy::Cooperative, fetchers, u64::MAX, seed);
        prop_assert_eq!(cooperative, roomy);
    }
}
