//! Image-distribution strategies as engine components.
//!
//! A set of fetcher nodes cold-start container images whose manifests
//! they already hold (the [`PartialCache`] keeps hierarchies resident);
//! the missing block *data* must come over the fabric. Two strategies
//! compete:
//!
//! * [`RegistryFetch`] — every node pulls every missing block from the
//!   registry, whose handful of NICs serialize under load. This is the
//!   classic `docker pull` stampede: cold-start time grows with the
//!   node count once the registry links saturate.
//! * [`CooperativeFetch`] — nodes first ask the registry's tracker which
//!   peer already holds a block and fetch it peer-to-peer, falling back
//!   to the registry for blocks nobody has yet. Data legs spread over
//!   the per-node links, so cold-start time flattens as nodes are added.
//!
//! Under [`CostMode::Fabric`] every leg reserves real occupancy on the
//! shared interconnect and the crossover between the strategies *emerges*
//! from contention; under [`CostMode::Fixed`] constant per-leg costs are
//! charged instead (fast unit tests). Time on the critical path is blamed
//! to [`category::CAS_REGISTRY`], [`category::CAS_PEER`] and
//! [`category::CAS_DISK`], so the blame table partitions the cold-start
//! makespan by *cause*.

use std::collections::{BTreeMap, BTreeSet};

use now_probe::causal::category;
use now_probe::{Gauge, Probe};
use now_sim::{Component, CostMode, Ctx, EventCast, SimDuration, SimRng, SimTime};

use crate::cache::PartialCache;
use crate::image::ImageCatalog;
use crate::manifest::ImageManifest;
use crate::store::{BlockHash, BlockStore};

/// Events of the distribution scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CasEvent {
    /// Kick-off: every fetcher starts its download plan at once (the
    /// synchronized cold start — a cluster-wide rollout).
    Start,
    /// One fetcher finished its previous step and fetches its next block.
    NodeStep {
        /// Fetcher index in `0..fetchers`.
        node: u32,
    },
}

/// Which distribution strategy a component runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchStrategy {
    /// All block data comes from the registry NICs.
    Registry,
    /// Peers first, registry fallback.
    Cooperative,
}

impl FetchStrategy {
    /// Human-readable name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            FetchStrategy::Registry => "registry",
            FetchStrategy::Cooperative => "cooperative",
        }
    }
}

/// Shape of one distribution run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FetchConfig {
    /// Fetcher nodes, on fabric nodes `0..fetchers`.
    pub fetchers: u32,
    /// Registry NICs, on fabric nodes `fetchers..fetchers + registry_nics`.
    /// Requests round-robin over them; each NIC's link serializes.
    pub registry_nics: u32,
    /// Per-node block-data budget in bytes (the partial cache's limit).
    pub cache_budget: u64,
    /// Size of a block request message.
    pub request_bytes: u64,
    /// Size of a tracker lookup request (cooperative only).
    pub lookup_bytes: u64,
    /// Size of a tracker lookup reply (cooperative only).
    pub lookup_reply_bytes: u64,
    /// Registry disk service per cold (first-touch) block; later touches
    /// hit the registry's page cache.
    pub disk_read: SimDuration,
    /// CPU time a peer spends serving one block from its cache.
    pub peer_service: SimDuration,
    /// Seed for the per-node download-order shuffle.
    pub seed: u64,
    /// Fixed-mode cost of one network leg (replaces fabric pricing).
    pub fixed_hop: SimDuration,
    /// Fixed-mode serialization cost per payload byte, in nanoseconds.
    pub fixed_ns_per_byte: u64,
}

impl FetchConfig {
    /// A config with the workload knobs set and the cost constants at
    /// their defaults (128 B requests, 96/32 B lookups, 2 ms cold disk
    /// reads, 50 µs peer service).
    pub fn new(fetchers: u32, registry_nics: u32, cache_budget: u64, seed: u64) -> Self {
        assert!(fetchers > 0, "need at least one fetcher");
        assert!(registry_nics > 0, "the registry needs at least one NIC");
        FetchConfig {
            fetchers,
            registry_nics,
            cache_budget,
            request_bytes: 128,
            lookup_bytes: 96,
            lookup_reply_bytes: 32,
            disk_read: SimDuration::from_millis(2),
            peer_service: SimDuration::from_micros(50),
            seed,
            fixed_hop: SimDuration::from_micros(10),
            fixed_ns_per_byte: 50,
        }
    }

    /// Fabric nodes a run needs: fetchers plus registry NICs.
    pub fn fabric_nodes(&self) -> u32 {
        self.fetchers + self.registry_nics
    }
}

/// Counters of one distribution run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FetchStats {
    /// Blocks delivered to fetchers (every node counts its own).
    pub delivered_blocks: u64,
    /// Blocks served off the registry NICs.
    pub registry_blocks: u64,
    /// Payload bytes served off the registry NICs.
    pub registry_bytes: u64,
    /// Blocks served peer-to-peer.
    pub peer_blocks: u64,
    /// Payload bytes served peer-to-peer.
    pub peer_bytes: u64,
    /// Cold first-touch registry disk reads.
    pub disk_reads: u64,
    /// Tracker lookups issued (cooperative only).
    pub lookups: u64,
    /// Tracker lookups that found a peer holding the block.
    pub lookup_hits: u64,
    /// Blocks evicted from partial caches under the byte budget.
    pub evictions: u64,
    /// Delivered blocks whose bytes did not re-hash to the manifest's
    /// hash — always zero unless the simulation corrupts data.
    pub verify_failures: u64,
}

/// Shared mechanics of both strategies: per-node plans, the partial
/// caches, holder tracking, and the cost/blame accounting. The strategy
/// only decides where each block's data leg comes from.
pub struct FetchCore {
    strategy: FetchStrategy,
    config: FetchConfig,
    store: BlockStore,
    manifests: Vec<ImageManifest>,
    /// Per node: the image it boots (index into `manifests`).
    images: Vec<usize>,
    /// Per node: its download order (unique blocks, shuffled per node so
    /// simultaneous cold starts don't convoy on the same first block).
    plans: Vec<Vec<BlockHash>>,
    /// Per node: position in its plan.
    pos: Vec<usize>,
    caches: Vec<PartialCache>,
    /// Which fetchers currently hold each block resident (maintained
    /// through evictions) — the tracker's state.
    holders: BTreeMap<BlockHash, BTreeSet<u32>>,
    /// Blocks already read off the registry disk (its page cache).
    warmed: BTreeSet<BlockHash>,
    /// Per node: manifest hash → recomputed hash of the bytes received.
    delivered: Vec<BTreeMap<BlockHash, BlockHash>>,
    /// Round-robin cursors: registry NIC per request, peer per hit.
    rr_nic: u64,
    rr_peer: u64,
    /// Nodes still downloading.
    remaining: u32,
    /// Per node: completion time.
    completions: Vec<SimTime>,
    makespan: SimTime,
    stats: FetchStats,
    delivered_gauge: Gauge,
    registry_bytes_gauge: Gauge,
    peer_bytes_gauge: Gauge,
    disk_reads_gauge: Gauge,
    cached_bytes_gauge: Gauge,
    probe: Probe,
}

impl FetchCore {
    fn new(catalog: ImageCatalog, strategy: FetchStrategy, config: FetchConfig) -> Self {
        assert!(
            !catalog.manifests.is_empty(),
            "catalog needs at least one image"
        );
        let mut rng = SimRng::new(config.seed);
        let n = config.fetchers as usize;
        let images: Vec<usize> = (0..n).map(|i| i % catalog.manifests.len()).collect();
        let plans: Vec<Vec<BlockHash>> = images
            .iter()
            .map(|&img| {
                let mut plan = catalog.manifests[img].unique_blocks();
                let mut fork = rng.fork();
                fork.shuffle(&mut plan);
                plan
            })
            .collect();
        let caches = images
            .iter()
            .map(|&img| PartialCache::new(catalog.manifests[img].clone(), config.cache_budget))
            .collect();
        FetchCore {
            strategy,
            config,
            store: catalog.store,
            manifests: catalog.manifests,
            images,
            plans,
            pos: vec![0; n],
            caches,
            holders: BTreeMap::new(),
            warmed: BTreeSet::new(),
            delivered: vec![BTreeMap::new(); n],
            rr_nic: 0,
            rr_peer: 0,
            remaining: config.fetchers,
            completions: vec![SimTime::ZERO; n],
            makespan: SimTime::ZERO,
            stats: FetchStats::default(),
            delivered_gauge: Gauge::default(),
            registry_bytes_gauge: Gauge::default(),
            peer_bytes_gauge: Gauge::default(),
            disk_reads_gauge: Gauge::default(),
            cached_bytes_gauge: Gauge::default(),
            probe: Probe::disabled(),
        }
    }

    /// Attaches the `cas.*` gauges the flight recorder samples, plus the
    /// `cas.disk` utilization ledger (registry disk busy time on cold
    /// first-touch reads).
    pub fn set_probe(&mut self, probe: &Probe) {
        self.delivered_gauge = probe.gauge("cas.delivered_blocks");
        self.registry_bytes_gauge = probe.gauge("cas.registry_bytes");
        self.peer_bytes_gauge = probe.gauge("cas.peer_bytes");
        self.disk_reads_gauge = probe.gauge("cas.disk_reads");
        self.cached_bytes_gauge = probe.gauge("cas.cached_bytes");
        self.probe = probe.clone();
    }

    /// The strategy this core runs.
    pub fn strategy(&self) -> FetchStrategy {
        self.strategy
    }

    /// The run's configuration.
    pub fn config(&self) -> &FetchConfig {
        &self.config
    }

    /// The registry's block store (dedup stats live here).
    pub fn store(&self) -> &BlockStore {
        &self.store
    }

    /// The image manifests being distributed.
    pub fn manifests(&self) -> &[ImageManifest] {
        &self.manifests
    }

    /// The partial caches, one per fetcher.
    pub fn caches(&self) -> &[PartialCache] {
        &self.caches
    }

    /// Counters so far.
    pub fn stats(&self) -> FetchStats {
        self.stats
    }

    /// Per-node completion times (zero until a node finishes).
    pub fn completions(&self) -> &[SimTime] {
        &self.completions
    }

    /// When the last fetcher finished — the cold-start makespan.
    pub fn makespan(&self) -> SimTime {
        self.makespan
    }

    /// Whether every fetcher has finished its plan.
    pub fn complete(&self) -> bool {
        self.remaining == 0
    }

    /// A digest over the *bytes each node actually received*: for every
    /// node, the recomputed hashes of its delivered blocks are folded in
    /// the manifest's unique-block order. Arrival order, strategy, and
    /// later evictions cannot change it — only the content can — so a
    /// registry run and a cooperative run of the same catalog must digest
    /// equal.
    pub fn content_digest(&self) -> u64 {
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for node in 0..self.config.fetchers as usize {
            let manifest = &self.manifests[self.images[node]];
            for hash in manifest.unique_blocks() {
                let got = self.delivered[node].get(&hash).copied().unwrap_or_default();
                for &b in &got.0.to_le_bytes() {
                    h ^= u64::from(b);
                    h = h.wrapping_mul(PRIME);
                }
            }
        }
        h
    }

    /// Approximate resident footprint: store, caches, plans, tracker.
    pub fn approx_bytes(&self) -> usize {
        let caches: usize = self.caches.iter().map(PartialCache::approx_bytes).sum();
        let plans: usize = self.plans.iter().map(|p| p.len() * 8).sum();
        self.store.approx_bytes() + caches + plans + self.holders.len() * 64
    }

    /// Fabric node of fetcher `node` (identity placement).
    fn fetcher_fabric(&self, node: u32) -> u32 {
        node
    }

    /// Next registry NIC, round-robin per request.
    fn next_nic(&mut self) -> u32 {
        let nic =
            self.config.fetchers + (self.rr_nic % u64::from(self.config.registry_nics)) as u32;
        self.rr_nic += 1;
        nic
    }

    /// A peer (not `node`) holding `hash`, round-robin over the holder
    /// set so serving load spreads; `None` if nobody else has it.
    fn pick_peer(&mut self, node: u32, hash: BlockHash) -> Option<u32> {
        let holders: Vec<u32> = self
            .holders
            .get(&hash)?
            .iter()
            .copied()
            .filter(|&h| h != node)
            .collect();
        if holders.is_empty() {
            return None;
        }
        let peer = holders[(self.rr_peer % holders.len() as u64) as usize];
        self.rr_peer += 1;
        Some(peer)
    }

    /// Fixed-mode cost of one network leg carrying `bytes` of payload.
    fn fixed_leg(&self, bytes: u64) -> SimDuration {
        self.config.fixed_hop + SimDuration::from_nanos(bytes * self.config.fixed_ns_per_byte)
    }

    /// Accepts a delivered block at `node`: verify the bytes against the
    /// manifest hash, cache them, and update the tracker through any
    /// evictions the insert forced.
    fn accept(&mut self, node: u32, hash: BlockHash, bytes: bytes::Bytes) {
        let recomputed = self.store.hash_of(&bytes);
        if recomputed != hash {
            self.stats.verify_failures += 1;
        }
        self.delivered[node as usize].insert(hash, recomputed);
        self.stats.delivered_blocks += 1;
        for victim in self.caches[node as usize].insert(hash, bytes) {
            self.stats.evictions += 1;
            if let Some(set) = self.holders.get_mut(&victim) {
                set.remove(&node);
                if set.is_empty() {
                    self.holders.remove(&victim);
                }
            }
        }
        if self.caches[node as usize].contains(hash) {
            self.holders.entry(hash).or_default().insert(node);
        }
    }

    fn publish_gauges(&self) {
        self.delivered_gauge.set(self.stats.delivered_blocks as f64);
        self.registry_bytes_gauge
            .set(self.stats.registry_bytes as f64);
        self.peer_bytes_gauge.set(self.stats.peer_bytes as f64);
        self.disk_reads_gauge.set(self.stats.disk_reads as f64);
        let cached: u64 = self.caches.iter().map(PartialCache::used_bytes).sum();
        self.cached_bytes_gauge.set(cached as f64);
    }

    /// Kick-off: one step event per fetcher, all at `now` (synchronized
    /// cold start). Children of the root, so one trace covers the run.
    fn on_start<M: EventCast<CasEvent>>(&mut self, ctx: &mut Ctx<'_, M>) {
        let now = ctx.now();
        for node in 0..self.config.fetchers {
            ctx.schedule_at(now, M::upcast(CasEvent::NodeStep { node }));
        }
    }

    /// One fetch step: price the next block of `node`'s plan, blame the
    /// legs, and schedule the node's next step at the delivery time.
    fn on_node_step<M: EventCast<CasEvent>>(&mut self, ctx: &mut Ctx<'_, M>, node: u32) {
        let idx = node as usize;
        if self.pos[idx] >= self.plans[idx].len() {
            // Plan exhausted: the edge into this event was the last
            // block's delivery, so `now` is this node's completion.
            self.completions[idx] = ctx.now();
            self.remaining -= 1;
            if self.remaining == 0 {
                self.makespan = ctx.now();
                ctx.mark("distribute.complete", ctx.now());
            }
            self.publish_gauges();
            return;
        }
        let hash = self.plans[idx][self.pos[idx]];
        self.pos[idx] += 1;
        let delivered_at = match self.strategy {
            FetchStrategy::Registry => self.fetch_registry(ctx, node, hash, false),
            FetchStrategy::Cooperative => self.fetch_cooperative(ctx, node, hash),
        };
        ctx.schedule_at(delivered_at, M::upcast(CasEvent::NodeStep { node }));
    }

    /// Pulls `hash` from a registry NIC: request leg, first-touch disk,
    /// data leg. With `looked_up` the request already travelled as a
    /// tracker lookup (cooperative fallback), so only disk + data are
    /// priced here. Returns the delivery time and leaves the blame for
    /// the caller's schedule to drain.
    fn fetch_registry<M: EventCast<CasEvent>>(
        &mut self,
        ctx: &mut Ctx<'_, M>,
        node: u32,
        hash: BlockHash,
        looked_up: bool,
    ) -> SimTime {
        let bytes = self.store.get(hash).expect("registry holds the catalog");
        let len = bytes.len() as u64;
        let cold = self.warmed.insert(hash);
        let disk = if cold {
            self.stats.disk_reads += 1;
            ctx.blame(category::CAS_DISK, self.config.disk_read);
            self.config.disk_read
        } else {
            SimDuration::ZERO
        };
        let src = self.fetcher_fabric(node);
        let (disk_starts, delivered_at) = match ctx.cost_mode() {
            CostMode::Fixed => {
                let request = if looked_up {
                    SimDuration::ZERO
                } else {
                    self.fixed_leg(self.config.request_bytes)
                };
                let data = self.fixed_leg(len);
                ctx.blame(category::CAS_REGISTRY, request + data);
                let disk_starts = ctx.now() + request;
                (disk_starts, disk_starts + disk + data)
            }
            CostMode::Fabric => {
                let nic = self.next_nic();
                let disk_starts = if looked_up {
                    ctx.now()
                } else {
                    let req = ctx.transfer_detailed(src, nic, self.config.request_bytes);
                    ctx.blame(category::CAS_REGISTRY, req.total());
                    req.delivered
                };
                let data = ctx.transfer_detailed_at(nic, src, len, disk_starts + disk);
                ctx.blame(category::CAS_REGISTRY, data.total());
                (disk_starts, data.delivered)
            }
        };
        if cold {
            // The registry disk seeks exactly once per block; feed the
            // read into its utilization ledger.
            self.probe.busy("cas.disk", disk_starts, disk_starts + disk);
        }
        self.stats.registry_blocks += 1;
        self.stats.registry_bytes += len;
        self.accept(node, hash, bytes);
        self.publish_gauges();
        delivered_at
    }

    /// Asks the tracker who holds `hash`, then fetches from a peer's
    /// cache or falls back to the registry.
    fn fetch_cooperative<M: EventCast<CasEvent>>(
        &mut self,
        ctx: &mut Ctx<'_, M>,
        node: u32,
        hash: BlockHash,
    ) -> SimTime {
        self.stats.lookups += 1;
        let src = self.fetcher_fabric(node);
        // The lookup travels to a registry NIC in both outcomes; on a
        // miss it doubles as the block request.
        let lookup_done = match ctx.cost_mode() {
            CostMode::Fixed => {
                let cost =
                    self.fixed_leg(self.config.lookup_bytes + self.config.lookup_reply_bytes);
                ctx.blame(category::CAS_REGISTRY, cost);
                ctx.now() + cost
            }
            CostMode::Fabric => {
                let nic = self.next_nic();
                let cost = ctx.rpc_detailed(
                    src,
                    nic,
                    self.config.lookup_bytes,
                    self.config.lookup_reply_bytes,
                );
                ctx.blame(category::CAS_REGISTRY, cost.total());
                cost.delivered
            }
        };
        match self.pick_peer(node, hash) {
            Some(peer) => {
                self.stats.lookup_hits += 1;
                let bytes = self.caches[peer as usize]
                    .get(hash)
                    .expect("tracker only lists resident holders");
                let len = bytes.len() as u64;
                let delivered_at = match ctx.cost_mode() {
                    CostMode::Fixed => {
                        let data = self.fixed_leg(len);
                        ctx.blame(category::CAS_PEER, self.config.peer_service + data);
                        lookup_done + self.config.peer_service + data
                    }
                    CostMode::Fabric => {
                        let departs = lookup_done + self.config.peer_service;
                        let data =
                            ctx.transfer_detailed_at(self.fetcher_fabric(peer), src, len, departs);
                        ctx.blame(category::CAS_PEER, self.config.peer_service + data.total());
                        data.delivered
                    }
                };
                self.stats.peer_blocks += 1;
                self.stats.peer_bytes += len;
                self.accept(node, hash, bytes);
                self.publish_gauges();
                delivered_at
            }
            None => self.fetch_registry(ctx, node, hash, true),
        }
    }

    fn on_event<M: EventCast<CasEvent>>(&mut self, ctx: &mut Ctx<'_, M>, event: M) {
        match event.downcast() {
            CasEvent::Start => self.on_start(ctx),
            CasEvent::NodeStep { node } => self.on_node_step(ctx, node),
        }
    }
}

impl std::fmt::Debug for FetchCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FetchCore")
            .field("strategy", &self.strategy)
            .field("fetchers", &self.config.fetchers)
            .field("remaining", &self.remaining)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

/// The registry-only strategy as an engine [`Component`].
#[derive(Debug)]
pub struct RegistryFetch(FetchCore);

impl RegistryFetch {
    /// A registry-only distribution of `catalog` under `config`.
    pub fn new(catalog: ImageCatalog, config: FetchConfig) -> Self {
        RegistryFetch(FetchCore::new(catalog, FetchStrategy::Registry, config))
    }

    /// The shared mechanics (stats, caches, makespan).
    pub fn core(&self) -> &FetchCore {
        &self.0
    }

    /// Attaches the `cas.*` gauges.
    pub fn set_probe(&mut self, probe: &Probe) {
        self.0.set_probe(probe);
    }
}

impl<M: EventCast<CasEvent> + 'static> Component<M> for RegistryFetch {
    fn on_event(&mut self, ctx: &mut Ctx<'_, M>, event: M) {
        self.0.on_event(ctx, event);
    }
}

/// The cooperative (peers-first) strategy as an engine [`Component`].
#[derive(Debug)]
pub struct CooperativeFetch(FetchCore);

impl CooperativeFetch {
    /// A cooperative distribution of `catalog` under `config`.
    pub fn new(catalog: ImageCatalog, config: FetchConfig) -> Self {
        CooperativeFetch(FetchCore::new(catalog, FetchStrategy::Cooperative, config))
    }

    /// The shared mechanics (stats, caches, makespan).
    pub fn core(&self) -> &FetchCore {
        &self.0
    }

    /// Attaches the `cas.*` gauges.
    pub fn set_probe(&mut self, probe: &Probe) {
        self.0.set_probe(probe);
    }
}

impl<M: EventCast<CasEvent> + 'static> Component<M> for CooperativeFetch {
    fn on_event(&mut self, ctx: &mut Ctx<'_, M>, event: M) {
        self.0.on_event(ctx, event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::ImageCatalogSpec;
    use now_sim::Engine;

    fn run(strategy: FetchStrategy, fetchers: u32, budget: u64) -> (FetchStats, SimTime, u64) {
        let catalog = ImageCatalog::generate(&ImageCatalogSpec::smoke(42));
        let config = FetchConfig::new(fetchers, 2, budget, 7);
        let mut engine: Engine<CasEvent> = Engine::new();
        let id = match strategy {
            FetchStrategy::Registry => engine.register(RegistryFetch::new(catalog, config)),
            FetchStrategy::Cooperative => engine.register(CooperativeFetch::new(catalog, config)),
        };
        engine.schedule_at(id, SimTime::ZERO, CasEvent::Start);
        engine.run();
        match strategy {
            FetchStrategy::Registry => {
                let c = engine.component::<RegistryFetch>(id).core();
                assert!(c.complete(), "every fetcher must drain its plan");
                (c.stats(), c.makespan(), c.content_digest())
            }
            FetchStrategy::Cooperative => {
                let c = engine.component::<CooperativeFetch>(id).core();
                assert!(c.complete(), "every fetcher must drain its plan");
                (c.stats(), c.makespan(), c.content_digest())
            }
        }
    }

    #[test]
    fn registry_delivers_and_verifies_every_block() {
        let (stats, makespan, _) = run(FetchStrategy::Registry, 4, u64::MAX);
        assert!(stats.delivered_blocks > 0);
        assert_eq!(stats.registry_blocks, stats.delivered_blocks);
        assert_eq!(stats.peer_blocks, 0);
        assert_eq!(stats.lookups, 0);
        assert_eq!(stats.verify_failures, 0);
        assert!(makespan > SimTime::ZERO);
    }

    #[test]
    fn cooperative_offloads_the_registry() {
        let (stats, _, _) = run(FetchStrategy::Cooperative, 8, u64::MAX);
        assert_eq!(stats.lookups, stats.delivered_blocks);
        assert_eq!(
            stats.peer_blocks + stats.registry_blocks,
            stats.delivered_blocks
        );
        assert!(
            stats.peer_blocks > stats.registry_blocks,
            "with 8 nodes sharing 4 images most blocks should come from \
             peers: {stats:?}"
        );
        assert_eq!(stats.verify_failures, 0);
    }

    #[test]
    fn both_strategies_deliver_identical_content() {
        let (_, _, registry) = run(FetchStrategy::Registry, 6, u64::MAX);
        let (_, _, cooperative) = run(FetchStrategy::Cooperative, 6, u64::MAX);
        assert_eq!(
            registry, cooperative,
            "the bytes a node boots from must not depend on the strategy"
        );
    }

    #[test]
    fn tight_budgets_evict_but_still_deliver() {
        // Budget of 3 chunks per node: far below any image.
        let (stats, _, digest) = run(FetchStrategy::Cooperative, 6, 3 * 16 * 1024);
        assert!(stats.evictions > 0, "budget must force evictions");
        assert_eq!(stats.verify_failures, 0);
        let (_, _, full) = run(FetchStrategy::Cooperative, 6, u64::MAX);
        assert_eq!(digest, full, "evictions must not change delivered bytes");
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run(FetchStrategy::Cooperative, 8, 64 * 1024);
        let b = run(FetchStrategy::Cooperative, 8, 64 * 1024);
        assert_eq!(a, b);
    }

    #[test]
    fn cold_registry_reads_feed_the_disk_ledger() {
        let catalog = ImageCatalog::generate(&ImageCatalogSpec::smoke(42));
        let config = FetchConfig::new(4, 2, u64::MAX, 7);
        let registry = now_probe::Registry::new();
        let mut engine: Engine<CasEvent> = Engine::new();
        let mut fetch = RegistryFetch::new(catalog, config);
        fetch.set_probe(&registry.probe());
        let id = engine.register(fetch);
        engine.schedule_at(id, SimTime::ZERO, CasEvent::Start);
        engine.run();
        let core = engine.component::<RegistryFetch>(id).core();
        let disk_reads = core.stats().disk_reads;
        assert!(disk_reads > 0);
        let snap = registry.snapshot();
        let util = snap.util("cas.disk").expect("cas.disk ledger");
        // One interval per cold read; concurrent fetchers overlap in sim
        // time, so clipping may trim, but busy never exceeds wall.
        assert_eq!(util.intervals, disk_reads);
        assert!(util.busy_ns > 0);
        assert_eq!(util.busy_ns + util.idle_ns(), util.wall_ns);
        assert!(util.busy_ns <= util.wall_ns);
    }
}
