//! A per-node partial image cache: the manifest hierarchy is always
//! resident, block data is fetched on demand and evicted LRU under a
//! byte budget — the realize-rs "Unreal cache" shape.

use std::collections::BTreeMap;

use bytes::Bytes;

use crate::manifest::ImageManifest;
use crate::store::BlockHash;

/// Counters of one [`PartialCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PartialCacheStats {
    /// Lookups that found the block resident.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Blocks inserted.
    pub inserts: u64,
    /// Blocks evicted to respect the budget.
    pub evictions: u64,
    /// Bytes evicted to respect the budget.
    pub evicted_bytes: u64,
}

/// One node's view of an image: the manifest (paths, sizes, chunk
/// hashes) is always resident and never evicted; chunk *data* is cached
/// under `budget_bytes` with LRU eviction. A node can therefore list and
/// stat every file of an image it has barely downloaded.
#[derive(Debug, Clone)]
pub struct PartialCache {
    manifest: ImageManifest,
    budget_bytes: u64,
    used_bytes: u64,
    clock: u64,
    /// Resident data keyed by hash; the stamp locates the LRU entry.
    blocks: BTreeMap<BlockHash, (Bytes, u64)>,
    /// Recency order: stamp -> hash, oldest first.
    lru: BTreeMap<u64, BlockHash>,
    stats: PartialCacheStats,
}

impl PartialCache {
    /// An empty cache for `manifest` holding at most `budget_bytes` of
    /// block data.
    pub fn new(manifest: ImageManifest, budget_bytes: u64) -> Self {
        PartialCache {
            manifest,
            budget_bytes,
            used_bytes: 0,
            clock: 0,
            blocks: BTreeMap::new(),
            lru: BTreeMap::new(),
            stats: PartialCacheStats::default(),
        }
    }

    /// The always-resident manifest.
    pub fn manifest(&self) -> &ImageManifest {
        &self.manifest
    }

    /// The data budget in bytes.
    pub fn budget_bytes(&self) -> u64 {
        self.budget_bytes
    }

    /// Resident block-data bytes (never exceeds the budget once a second
    /// block exists to evict).
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// Resident blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether no block data is resident.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Whether `hash` is resident, without touching recency.
    pub fn contains(&self, hash: BlockHash) -> bool {
        self.blocks.contains_key(&hash)
    }

    /// The block's data if resident, touching its recency (both local
    /// reads and peer serves count as use).
    pub fn get(&mut self, hash: BlockHash) -> Option<Bytes> {
        let clock = self.clock;
        match self.blocks.get_mut(&hash) {
            Some((bytes, stamp)) => {
                self.stats.hits += 1;
                self.lru.remove(stamp);
                *stamp = clock;
                self.lru.insert(clock, hash);
                self.clock += 1;
                Some(bytes.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts a fetched block, evicting least-recently-used blocks until
    /// the budget holds again; returns the evicted hashes (oldest first).
    /// The newly inserted block is never its own victim, so a single
    /// over-budget block stays resident until something else arrives.
    pub fn insert(&mut self, hash: BlockHash, bytes: Bytes) -> Vec<BlockHash> {
        if self.blocks.contains_key(&hash) {
            return Vec::new();
        }
        self.stats.inserts += 1;
        self.used_bytes += bytes.len() as u64;
        let stamp = self.clock;
        self.clock += 1;
        self.blocks.insert(hash, (bytes, stamp));
        self.lru.insert(stamp, hash);
        let mut evicted = Vec::new();
        while self.used_bytes > self.budget_bytes && self.blocks.len() > 1 {
            let (&oldest, &victim) = self.lru.iter().next().expect("blocks resident");
            if victim == hash {
                break; // never evict the block just fetched
            }
            self.lru.remove(&oldest);
            let (bytes, _) = self.blocks.remove(&victim).expect("indexed by lru");
            self.used_bytes -= bytes.len() as u64;
            self.stats.evictions += 1;
            self.stats.evicted_bytes += bytes.len() as u64;
            evicted.push(victim);
        }
        evicted
    }

    /// Drops every resident block — a node crash losing its cache (the
    /// manifest, like any flist, survives on the registry and stays
    /// resident here). Returns the dropped hashes in hash order.
    pub fn clear(&mut self) -> Vec<BlockHash> {
        let dropped: Vec<BlockHash> = self.blocks.keys().copied().collect();
        self.blocks.clear();
        self.lru.clear();
        self.used_bytes = 0;
        dropped
    }

    /// Distinct manifest blocks not yet resident.
    pub fn missing(&self) -> usize {
        self.manifest
            .unique_blocks()
            .iter()
            .filter(|h| !self.blocks.contains_key(h))
            .count()
    }

    /// Counters so far.
    pub fn stats(&self) -> PartialCacheStats {
        self.stats
    }

    /// Approximate resident footprint: manifest + data + index overhead.
    pub fn approx_bytes(&self) -> usize {
        self.manifest.approx_bytes() + self.used_bytes as usize + self.blocks.len() * 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::BlockStore;

    fn cache(budget: u64) -> (PartialCache, BlockStore) {
        let mut store = BlockStore::new(3, 8);
        let files = vec![("/a".to_string(), (0u8..64).collect::<Vec<u8>>())];
        let manifest = ImageManifest::build("img", &files, &mut store);
        (PartialCache::new(manifest, budget), store)
    }

    #[test]
    fn lru_eviction_respects_the_budget() {
        let (mut cache, store) = cache(16); // room for two 8-byte chunks
        let hashes = cache.manifest().unique_blocks();
        assert_eq!(hashes.len(), 8);
        for &h in &hashes[..2] {
            assert!(cache.insert(h, store.get(h).unwrap()).is_empty());
        }
        // Touch the first chunk so the second becomes LRU.
        assert!(cache.get(hashes[0]).is_some());
        let evicted = cache.insert(hashes[2], store.get(hashes[2]).unwrap());
        assert_eq!(evicted, vec![hashes[1]], "LRU victim");
        assert!(cache.used_bytes() <= 16);
        assert!(cache.contains(hashes[0]));
        assert!(!cache.contains(hashes[1]));
    }

    #[test]
    fn manifest_stays_resident_through_clear() {
        let (mut cache, store) = cache(64);
        let hashes = cache.manifest().unique_blocks();
        for &h in &hashes {
            cache.insert(h, store.get(h).unwrap());
        }
        assert_eq!(cache.missing(), 0);
        let dropped = cache.clear();
        assert_eq!(dropped.len(), 8);
        assert_eq!(cache.used_bytes(), 0);
        assert_eq!(cache.missing(), 8, "data gone");
        assert_eq!(cache.manifest().entries.len(), 1, "hierarchy resident");
    }

    #[test]
    fn stats_conserve_blocks() {
        let (mut cache, store) = cache(24);
        let hashes = cache.manifest().unique_blocks();
        for &h in &hashes {
            cache.insert(h, store.get(h).unwrap());
        }
        let s = cache.stats();
        assert_eq!(s.inserts, 8);
        assert_eq!(
            s.inserts - s.evictions,
            cache.len() as u64,
            "inserted minus evicted must equal resident"
        );
        assert!(cache.used_bytes() <= 24);
    }
}
