//! Content-addressed storage and cooperative image distribution for the
//! simulated NOW.
//!
//! The paper's serving story assumes workstations can be drafted into a
//! cluster quickly; in practice the cold-start cost of shipping identical
//! software images to N nodes is dominated by redundant bytes. This crate
//! models the modern answer — content addressing — end to end:
//!
//! * [`BlockStore`] — deterministic seeded chunk hashing and a
//!   deduplicating, refcounted block index;
//! * [`ImageManifest`] — flist-style manifests: the file hierarchy with
//!   every chunk named by hash, small enough to stay always-resident;
//! * [`ImageCatalog`] — a `docker2fl`-style synthetic generator whose
//!   base-layer sharing makes the dedup factor tunable and measurable;
//! * [`PartialCache`] — a per-node cache where the manifest never leaves
//!   but block data is fetched on demand and evicted LRU under a budget;
//! * [`RegistryFetch`] / [`CooperativeFetch`] — the two distribution
//!   strategies as engine components, priced on the shared fabric with
//!   causal blame split into `cas.registry`, `cas.peer` and `cas.disk`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod fetch;
mod image;
mod manifest;
mod store;

pub use cache::{PartialCache, PartialCacheStats};
pub use fetch::{
    CasEvent, CooperativeFetch, FetchConfig, FetchCore, FetchStats, FetchStrategy, RegistryFetch,
};
pub use image::{ImageCatalog, ImageCatalogSpec};
pub use manifest::{ImageManifest, ManifestEntry};
pub use store::{BlockHash, BlockStore, DedupStats, DEFAULT_CHUNK_BYTES};
