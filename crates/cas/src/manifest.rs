//! flist-style image manifests: an ordered file listing whose data lives
//! in a [`BlockStore`], referenced by hash.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use crate::store::{BlockHash, BlockStore};

/// One file of an image: its path, exact byte length, and the ordered
/// chunk hashes that reassemble it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ManifestEntry {
    /// Absolute path inside the image.
    pub path: String,
    /// Exact byte length (the last chunk may be short).
    pub size: u64,
    /// Chunk hashes in file order.
    pub blocks: Vec<BlockHash>,
}

/// An image as a manifest: the full file hierarchy, ordered, with every
/// chunk named by content hash — the flist idea. The manifest itself is
/// small (paths and hashes); the data stays in the store and is fetched
/// on demand.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ImageManifest {
    /// Image name (e.g. `app-3`).
    pub name: String,
    /// Chunk size the image was split at.
    pub chunk_bytes: usize,
    /// Files in listing order.
    pub entries: Vec<ManifestEntry>,
}

impl ImageManifest {
    /// Builds a manifest by chunking `files` (path, content) through
    /// `store`, taking one reference per chunk occurrence.
    pub fn build(name: &str, files: &[(String, Vec<u8>)], store: &mut BlockStore) -> Self {
        let entries = files
            .iter()
            .map(|(path, data)| ManifestEntry {
                path: path.clone(),
                size: data.len() as u64,
                blocks: store.add_bytes(data),
            })
            .collect();
        ImageManifest {
            name: name.to_string(),
            chunk_bytes: store.chunk_bytes(),
            entries,
        }
    }

    /// Total image bytes (with duplicates — what a flat tarball would ship).
    pub fn logical_bytes(&self) -> u64 {
        self.entries.iter().map(|e| e.size).sum()
    }

    /// Chunk references across all files (with duplicates).
    pub fn block_refs(&self) -> usize {
        self.entries.iter().map(|e| e.blocks.len()).sum()
    }

    /// The distinct chunk hashes of the image, in first-reference order —
    /// the download list of a node cold-starting this image.
    pub fn unique_blocks(&self) -> Vec<BlockHash> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for entry in &self.entries {
            for &hash in &entry.blocks {
                if seen.insert(hash) {
                    out.push(hash);
                }
            }
        }
        out
    }

    /// A 64-bit digest of the manifest: name, listing order, sizes, and
    /// every chunk hash. Two manifests digest equal iff they describe the
    /// same image content in the same layout.
    pub fn digest(&self) -> u64 {
        let mut h = fold(0xcbf2_9ce4_8422_2325, self.name.as_bytes());
        h = fold_u64(h, self.chunk_bytes as u64);
        for entry in &self.entries {
            h = fold(h, entry.path.as_bytes());
            h = fold_u64(h, entry.size);
            for &block in &entry.blocks {
                h = fold_u64(h, block.0);
            }
        }
        h
    }

    /// Reassembles every file from `store`, byte-exact, or `None` if any
    /// chunk is missing.
    pub fn assemble(&self, store: &BlockStore) -> Option<Vec<(String, Vec<u8>)>> {
        self.entries
            .iter()
            .map(|entry| {
                let mut data = Vec::with_capacity(entry.size as usize);
                for &hash in &entry.blocks {
                    data.extend_from_slice(&store.get(hash)?);
                }
                data.truncate(entry.size as usize);
                (data.len() as u64 == entry.size).then_some((entry.path.clone(), data))
            })
            .collect()
    }

    /// Approximate resident footprint of the manifest itself — what a
    /// [`PartialCache`](crate::PartialCache) keeps always-resident.
    pub fn approx_bytes(&self) -> usize {
        self.entries
            .iter()
            .map(|e| e.path.len() + 16 + e.blocks.len() * 8)
            .sum()
    }
}

/// FNV-1a fold of a byte slice into an accumulator.
fn fold(mut h: u64, bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// FNV-1a fold of one little-endian u64.
fn fold_u64(h: u64, v: u64) -> u64 {
    fold(h, &v.to_le_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn files() -> Vec<(String, Vec<u8>)> {
        vec![
            ("/base/lib.so".to_string(), vec![1u8; 20]),
            ("/app/main".to_string(), vec![2u8; 13]),
            ("/app/copy".to_string(), vec![1u8; 20]),
        ]
    }

    #[test]
    fn build_and_assemble_round_trip() {
        let mut store = BlockStore::new(9, 8);
        let manifest = ImageManifest::build("img", &files(), &mut store);
        assert_eq!(manifest.logical_bytes(), 53);
        let back = manifest.assemble(&store).expect("all chunks stored");
        assert_eq!(back, files());
    }

    #[test]
    fn unique_blocks_dedup_across_files() {
        let mut store = BlockStore::new(9, 8);
        let manifest = ImageManifest::build("img", &files(), &mut store);
        // /base/lib.so and /app/copy are identical (3 chunks each) and
        // the constant fill dedups the two full chunks within a file too.
        assert_eq!(manifest.block_refs(), 8);
        assert_eq!(manifest.unique_blocks().len(), 4);
        assert_eq!(store.total_refs(), 8);
    }

    #[test]
    fn digest_tracks_content_and_layout() {
        let mut store = BlockStore::new(9, 8);
        let a = ImageManifest::build("img", &files(), &mut store);
        let b = ImageManifest::build("img", &files(), &mut store);
        assert_eq!(a.digest(), b.digest());
        let mut renamed = files();
        renamed[1].0 = "/app/other".to_string();
        let c = ImageManifest::build("img", &renamed, &mut store);
        assert_ne!(a.digest(), c.digest());
    }
}
