//! A `docker2fl`-style synthetic image catalog: several images that share
//! a seeded base layer, so the catalog's dedup factor is tunable and the
//! distribution scenario has something real to deduplicate.

use now_sim::SimRng;
use serde::{Deserialize, Serialize};

use crate::manifest::ImageManifest;
use crate::store::{BlockStore, DEFAULT_CHUNK_BYTES};

/// Shape of a synthetic image catalog.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ImageCatalogSpec {
    /// Images in the catalog (each node cold-starts one of them).
    pub images: u32,
    /// Files in the base layer, byte-identical across every image — the
    /// shared runtime/distro content dedup feeds on.
    pub base_files: u32,
    /// Per-image application files, unique content per image.
    pub app_files: u32,
    /// Mean file size in bytes; actual sizes spread deterministically
    /// over `[file_bytes / 2, file_bytes * 3 / 2]`.
    pub file_bytes: u64,
    /// Chunk size the store splits files at.
    pub chunk_bytes: usize,
    /// Seed for content, sizes, and the hash space.
    pub seed: u64,
}

impl ImageCatalogSpec {
    /// A small catalog for tests and smoke runs: 4 images sharing a
    /// 12-file base layer with 6 app files each — dedup factor ~2.
    pub fn smoke(seed: u64) -> Self {
        ImageCatalogSpec {
            images: 4,
            base_files: 12,
            app_files: 6,
            file_bytes: 48 * 1024,
            chunk_bytes: DEFAULT_CHUNK_BYTES,
            seed,
        }
    }
}

/// A generated catalog: the registry's block store holding every chunk,
/// and one manifest per image.
#[derive(Debug, Clone)]
pub struct ImageCatalog {
    /// The registry content, fully deduplicated and refcounted.
    pub store: BlockStore,
    /// One manifest per image, in image order.
    pub manifests: Vec<ImageManifest>,
}

impl ImageCatalog {
    /// Generates the catalog described by `spec`, deterministically.
    ///
    /// The base layer is generated once and chunked into every image, so
    /// base chunks carry one reference per image; app files are forked
    /// per image and unique. Dedup factor follows directly from the
    /// base/app byte ratio and the image count.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate spec (no images or no files).
    pub fn generate(spec: &ImageCatalogSpec) -> ImageCatalog {
        assert!(spec.images > 0, "catalog needs at least one image");
        assert!(
            spec.base_files + spec.app_files > 0,
            "images need at least one file"
        );
        let mut rng = SimRng::new(spec.seed);
        let mut store = BlockStore::new(rng.fork_seed(), spec.chunk_bytes);
        let size_range = (spec.file_bytes / 2).max(1)..(spec.file_bytes * 3 / 2).max(2);

        let base: Vec<(String, Vec<u8>)> = (0..spec.base_files)
            .map(|i| {
                let len = rng.gen_range(size_range.clone()) as usize;
                (
                    format!("/base/lib{i:03}.so"),
                    fill_bytes(rng.fork_seed(), len),
                )
            })
            .collect();

        let manifests = (0..spec.images)
            .map(|img| {
                let mut files = base.clone();
                files.extend((0..spec.app_files).map(|i| {
                    let len = rng.gen_range(size_range.clone()) as usize;
                    (
                        format!("/app/img{img:03}/file{i:03}.bin"),
                        fill_bytes(rng.fork_seed(), len),
                    )
                }));
                ImageManifest::build(&format!("img-{img}"), &files, &mut store)
            })
            .collect();

        ImageCatalog { store, manifests }
    }

    /// A digest over every manifest — the catalog's expected content.
    pub fn digest(&self) -> u64 {
        self.manifests
            .iter()
            .fold(0xcbf2_9ce4_8422_2325u64, |h, m| {
                let mut h = h ^ m.digest();
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
                h
            })
    }
}

/// Deterministic pseudo-random content: a splitmix64 stream, stable
/// across platforms and independent of the `rand` backend.
fn fill_bytes(seed: u64, len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len + 8);
    let mut x = seed;
    while out.len() < len {
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        out.extend_from_slice(&z.to_le_bytes());
    }
    out.truncate(len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = ImageCatalogSpec::smoke(42);
        let a = ImageCatalog::generate(&spec);
        let b = ImageCatalog::generate(&spec);
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.store.stats(), b.store.stats());
    }

    #[test]
    fn base_sharing_sets_the_dedup_factor() {
        let spec = ImageCatalogSpec::smoke(42);
        let catalog = ImageCatalog::generate(&spec);
        assert_eq!(catalog.manifests.len(), 4);
        let f = catalog.store.dedup_factor();
        // 12 base + 6 app files per image over 4 images: roughly
        // (12+6)*4 logical for 12+6*4 unique ≈ 2x, content sizes jitter.
        assert!(f > 1.5 && f < 2.5, "dedup factor {f} out of range");
        // More images over the same base push the factor up.
        let bigger = ImageCatalog::generate(&ImageCatalogSpec { images: 8, ..spec });
        assert!(bigger.store.dedup_factor() > f);
    }

    #[test]
    fn every_image_reassembles_from_the_store() {
        let catalog = ImageCatalog::generate(&ImageCatalogSpec::smoke(7));
        for manifest in &catalog.manifests {
            let files = manifest.assemble(&catalog.store).expect("complete store");
            assert_eq!(files.len(), 18);
            let bytes: u64 = files.iter().map(|(_, d)| d.len() as u64).sum();
            assert_eq!(bytes, manifest.logical_bytes());
        }
    }

    #[test]
    fn different_seeds_produce_different_content() {
        let a = ImageCatalog::generate(&ImageCatalogSpec::smoke(1));
        let b = ImageCatalog::generate(&ImageCatalogSpec::smoke(2));
        assert_ne!(a.digest(), b.digest());
    }
}
