//! The content-addressed block store: seeded chunk hashing, fixed-size
//! chunking, and a deduplicating refcounted index.

use std::collections::BTreeMap;
use std::fmt;

use bytes::Bytes;
use serde::{Deserialize, Serialize};

/// Default chunk size: 16 KB, two xFS blocks — small enough that the
/// base-layer sharing of real images shows up, large enough that the
/// per-chunk fabric overhead stays a minor term.
pub const DEFAULT_CHUNK_BYTES: usize = 16 * 1024;

/// A stable 64-bit content hash of one chunk.
///
/// FNV-1a over the chunk bytes, mixed with the store's seed and finished
/// with a splitmix64-style avalanche — deterministic across platforms and
/// processes, with no external hashing dependency. The seed keys the hash
/// space so tests can prove nothing depends on particular hash values.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct BlockHash(pub u64);

impl BlockHash {
    /// Hashes `bytes` under `seed`.
    pub fn of(seed: u64, bytes: &[u8]) -> BlockHash {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET ^ seed.wrapping_mul(PRIME);
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
        // Avalanche the FNV state so nearby chunks spread over the space.
        h ^= h >> 30;
        h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h ^= h >> 27;
        h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^= h >> 31;
        BlockHash(h)
    }
}

impl fmt::Display for BlockHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Deduplication accounting of a [`BlockStore`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DedupStats {
    /// Bytes offered for insertion (every reference counted).
    pub logical_bytes: u64,
    /// Bytes actually stored (unique chunks only).
    pub unique_bytes: u64,
    /// Chunk insertions offered.
    pub inserts: u64,
    /// Insertions that found their chunk already stored.
    pub dedup_hits: u64,
    /// References released.
    pub releases: u64,
}

impl DedupStats {
    /// Logical bytes per stored byte — the headline dedup factor.
    pub fn dedup_factor(&self) -> f64 {
        if self.unique_bytes == 0 {
            return 1.0;
        }
        self.logical_bytes as f64 / self.unique_bytes as f64
    }
}

#[derive(Debug, Clone)]
struct StoredBlock {
    bytes: Bytes,
    refs: u64,
}

/// A deterministic content-addressed block store.
///
/// Chunks are indexed by [`BlockHash`] in a `BTreeMap`, so every walk of
/// the store (exports, debugging dumps, gauge aggregation) is in hash
/// order whatever the insertion history — no iteration-order
/// nondeterminism can leak into reports. Each stored chunk carries a
/// reference count; [`BlockStore::release`] drops a reference and frees
/// the chunk when the last one goes.
///
/// # Example
///
/// ```
/// use now_cas::BlockStore;
///
/// let mut store = BlockStore::new(7, 4);
/// let hashes = store.add_bytes(b"aaaabbbbaaaa");
/// assert_eq!(hashes.len(), 3);
/// assert_eq!(hashes[0], hashes[2], "identical chunks share a hash");
/// assert_eq!(store.len(), 2, "and share storage");
/// assert_eq!(store.refs(hashes[0]), 2);
/// ```
#[derive(Debug, Clone)]
pub struct BlockStore {
    seed: u64,
    chunk_bytes: usize,
    blocks: BTreeMap<BlockHash, StoredBlock>,
    stats: DedupStats,
}

impl BlockStore {
    /// An empty store hashing under `seed` and chunking at `chunk_bytes`.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_bytes` is zero.
    pub fn new(seed: u64, chunk_bytes: usize) -> Self {
        assert!(chunk_bytes > 0, "chunk size must be positive");
        BlockStore {
            seed,
            chunk_bytes,
            blocks: BTreeMap::new(),
            stats: DedupStats::default(),
        }
    }

    /// The hash-space seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The fixed chunk size in bytes.
    pub fn chunk_bytes(&self) -> usize {
        self.chunk_bytes
    }

    /// Hashes `bytes` exactly as this store would on insertion.
    pub fn hash_of(&self, bytes: &[u8]) -> BlockHash {
        BlockHash::of(self.seed, bytes)
    }

    /// Inserts one chunk, deduplicating against existing content, and
    /// returns its hash. Each call adds one reference.
    pub fn insert(&mut self, bytes: Bytes) -> BlockHash {
        let hash = BlockHash::of(self.seed, &bytes);
        self.stats.inserts += 1;
        self.stats.logical_bytes += bytes.len() as u64;
        match self.blocks.get_mut(&hash) {
            Some(block) => {
                debug_assert_eq!(block.bytes, bytes, "64-bit hash collision");
                block.refs += 1;
                self.stats.dedup_hits += 1;
            }
            None => {
                self.stats.unique_bytes += bytes.len() as u64;
                self.blocks.insert(hash, StoredBlock { bytes, refs: 1 });
            }
        }
        hash
    }

    /// Chunks `data` at the store's chunk size and inserts every chunk
    /// (the last one may be short), returning the ordered hash list.
    pub fn add_bytes(&mut self, data: &[u8]) -> Vec<BlockHash> {
        data.chunks(self.chunk_bytes)
            .map(|chunk| self.insert(Bytes::copy_from_slice(chunk)))
            .collect()
    }

    /// The bytes of a stored chunk (cheap clone of a shared buffer).
    pub fn get(&self, hash: BlockHash) -> Option<Bytes> {
        self.blocks.get(&hash).map(|b| b.bytes.clone())
    }

    /// Whether a chunk with this hash is stored.
    pub fn contains(&self, hash: BlockHash) -> bool {
        self.blocks.contains_key(&hash)
    }

    /// Live references to a chunk (0 if absent).
    pub fn refs(&self, hash: BlockHash) -> u64 {
        self.blocks.get(&hash).map_or(0, |b| b.refs)
    }

    /// Releases one reference; the chunk is freed with its last one.
    /// Returns `true` if the hash was present.
    pub fn release(&mut self, hash: BlockHash) -> bool {
        let Some(block) = self.blocks.get_mut(&hash) else {
            return false;
        };
        self.stats.releases += 1;
        block.refs -= 1;
        if block.refs == 0 {
            let freed = self.blocks.remove(&hash).expect("present above");
            self.stats.unique_bytes -= freed.bytes.len() as u64;
        }
        true
    }

    /// Unique chunks stored.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the store holds no chunks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Sum of live references over all chunks.
    pub fn total_refs(&self) -> u64 {
        self.blocks.values().map(|b| b.refs).sum()
    }

    /// Stored hashes in hash order.
    pub fn hashes(&self) -> impl Iterator<Item = BlockHash> + '_ {
        self.blocks.keys().copied()
    }

    /// Dedup accounting so far.
    pub fn stats(&self) -> DedupStats {
        self.stats
    }

    /// Logical bytes per stored byte (see [`DedupStats::dedup_factor`]).
    pub fn dedup_factor(&self) -> f64 {
        self.stats.dedup_factor()
    }

    /// Approximate resident footprint: unique bytes plus index overhead.
    pub fn approx_bytes(&self) -> usize {
        self.stats.unique_bytes as usize + self.blocks.len() * 48
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashing_is_seeded_and_content_addressed() {
        let a = BlockHash::of(1, b"hello");
        assert_eq!(a, BlockHash::of(1, b"hello"), "deterministic");
        assert_ne!(a, BlockHash::of(2, b"hello"), "seed keys the space");
        assert_ne!(a, BlockHash::of(1, b"hellp"), "content addressed");
    }

    #[test]
    fn dedup_counts_references_not_copies() {
        let mut store = BlockStore::new(42, 8);
        let h1 = store.insert(Bytes::from_static(b"12345678"));
        let h2 = store.insert(Bytes::from_static(b"12345678"));
        let h3 = store.insert(Bytes::from_static(b"abcdefgh"));
        assert_eq!(h1, h2);
        assert_ne!(h1, h3);
        assert_eq!(store.len(), 2);
        assert_eq!(store.refs(h1), 2);
        assert_eq!(store.total_refs(), 3);
        let s = store.stats();
        assert_eq!(s.inserts, 3);
        assert_eq!(s.dedup_hits, 1);
        assert_eq!(s.logical_bytes, 24);
        assert_eq!(s.unique_bytes, 16);
        assert!((s.dedup_factor() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn release_frees_only_the_last_reference() {
        let mut store = BlockStore::new(0, 4);
        let h = store.insert(Bytes::from_static(b"data"));
        store.insert(Bytes::from_static(b"data"));
        assert!(store.release(h));
        assert!(store.contains(h), "one reference left");
        assert!(store.release(h));
        assert!(!store.contains(h), "freed with the last reference");
        assert_eq!(store.stats().unique_bytes, 0);
        assert!(!store.release(h), "releasing an absent hash is reported");
    }

    #[test]
    fn chunking_splits_at_the_fixed_size_with_a_short_tail() {
        let mut store = BlockStore::new(5, 10);
        let hashes = store.add_bytes(&[7u8; 25]);
        assert_eq!(hashes.len(), 3);
        assert_eq!(store.get(hashes[0]).unwrap().len(), 10);
        assert_eq!(store.get(hashes[2]).unwrap().len(), 5, "short tail");
        assert_eq!(hashes[0], hashes[1], "identical full chunks dedup");
        assert_ne!(hashes[0], hashes[2], "the tail is its own chunk");
    }
}
