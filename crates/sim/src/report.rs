//! Plain-text tables and series for the experiment harness.
//!
//! Every reproduced table and figure is ultimately printed as text. This
//! module provides a small, dependency-free formatter that aligns columns and
//! renders figure data as `(x, y)` series plus an ASCII sketch, so
//! `repro --fig3`-style output is readable in a terminal and diffable in
//! `EXPERIMENTS.md`.

use std::fmt::Write as _;

/// A simple aligned text table.
///
/// # Example
///
/// ```
/// use now_sim::report::TextTable;
///
/// let mut t = TextTable::new(&["Machine", "Total (s)"]);
/// t.row(&["C-90 (16)", "27"]);
/// t.row(&["RS-6000 + low-overhead msgs", "21"]);
/// let s = t.render();
/// assert!(s.contains("C-90"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    title: Option<String>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        TextTable {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            title: None,
        }
    }

    /// Sets a title line printed above the table.
    pub fn title(&mut self, title: &str) -> &mut Self {
        self.title = Some(title.to_string());
        self
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row has a different number of cells than the header.
    pub fn row(&mut self, cells: &[&str]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
        self
    }

    /// Appends a row of already-owned strings (convenient with `format!`).
    pub fn row_owned(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if let Some(title) = &self.title {
            let _ = writeln!(out, "== {title} ==");
        }
        let mut line = String::new();
        for (i, h) in self.headers.iter().enumerate() {
            let _ = write!(line, "{:<width$}", h, width = widths[i]);
            if i + 1 < ncols {
                line.push_str("  ");
            }
        }
        let _ = writeln!(out, "{}", line.trim_end());
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let mut line = String::new();
            for (i, cell) in row.iter().enumerate() {
                let _ = write!(line, "{:<width$}", cell, width = widths[i]);
                if i + 1 < ncols {
                    line.push_str("  ");
                }
            }
            let _ = writeln!(out, "{}", line.trim_end());
        }
        out
    }
}

/// A named `(x, y)` series — the data behind one curve of a figure.
#[derive(Debug, Clone)]
pub struct Series {
    /// Curve label, e.g. `"32 MB + network RAM"`.
    pub name: String,
    /// Data points in x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a named series from points.
    pub fn new(name: &str, points: Vec<(f64, f64)>) -> Self {
        Series {
            name: name.to_string(),
            points,
        }
    }
}

/// Renders one or more series as a data listing plus an ASCII chart, the
/// format used for every reproduced figure.
///
/// The chart is a crude sketch — the listing underneath is the ground truth
/// recorded in `EXPERIMENTS.md`.
pub fn render_figure(title: &str, x_label: &str, y_label: &str, series: &[Series]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    let _ = writeln!(out, "x: {x_label}   y: {y_label}");

    // Data listing.
    for s in series {
        let _ = writeln!(out, "-- {}", s.name);
        for (x, y) in &s.points {
            let _ = writeln!(out, "   {x:>12.4}  {y:>12.4}");
        }
    }

    // ASCII sketch on a shared scale.
    let all: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .collect();
    if all.len() >= 2 {
        let (xmin, xmax) = all
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), (x, _)| {
                (lo.min(*x), hi.max(*x))
            });
        let (ymin, ymax) = all
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), (_, y)| {
                (lo.min(*y), hi.max(*y))
            });
        if xmax > xmin && ymax > ymin {
            const W: usize = 60;
            const H: usize = 16;
            let mut grid = vec![vec![b' '; W]; H];
            let marks = [b'*', b'o', b'+', b'x', b'#', b'@'];
            for (si, s) in series.iter().enumerate() {
                let mark = marks[si % marks.len()];
                for (x, y) in &s.points {
                    let cx = (((x - xmin) / (xmax - xmin)) * (W - 1) as f64).round() as usize;
                    let cy = (((y - ymin) / (ymax - ymin)) * (H - 1) as f64).round() as usize;
                    grid[H - 1 - cy][cx] = mark;
                }
            }
            let _ = writeln!(out, "   {ymax:.3} ┐");
            for row in grid {
                let _ = writeln!(out, "         │{}", String::from_utf8_lossy(&row));
            }
            let _ = writeln!(out, "   {ymin:.3} └{}", "─".repeat(W));
            let _ = writeln!(out, "          {xmin:<.3}{:>pad$.3}", xmax, pad = W - 4);
            let mut legend = String::new();
            for (si, s) in series.iter().enumerate() {
                let _ = write!(legend, "  {} {}", marks[si % marks.len()] as char, s.name);
            }
            let _ = writeln!(out, "{legend}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let mut t = TextTable::new(&["a", "bbbb"]);
        t.row(&["xxxx", "y"]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines[0], "a     bbbb");
        assert_eq!(lines[2], "xxxx  y");
    }

    #[test]
    fn table_title_and_len() {
        let mut t = TextTable::new(&["c"]);
        assert!(t.is_empty());
        t.title("Table 3");
        t.row(&["1"]).row(&["2"]);
        assert_eq!(t.len(), 2);
        assert!(t.render().starts_with("== Table 3 =="));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn table_rejects_ragged_rows() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(&["only one"]);
    }

    #[test]
    fn figure_lists_all_points() {
        let s = vec![
            Series::new("up", vec![(0.0, 0.0), (1.0, 1.0)]),
            Series::new("down", vec![(0.0, 1.0), (1.0, 0.0)]),
        ];
        let r = render_figure("Fig X", "x", "y", &s);
        assert!(r.contains("-- up"));
        assert!(r.contains("-- down"));
        assert!(r.contains("0.0000"));
        assert!(r.contains("1.0000"));
        assert!(r.contains('*') && r.contains('o'), "both marks drawn");
    }

    #[test]
    fn figure_with_single_point_omits_chart() {
        let s = vec![Series::new("dot", vec![(1.0, 1.0)])];
        let r = render_figure("Fig", "x", "y", &s);
        assert!(r.contains("-- dot"));
        assert!(!r.contains('┐'), "no axis for degenerate range");
    }

    #[test]
    fn row_owned_accepts_formatted_cells() {
        let mut t = TextTable::new(&["n", "sq"]);
        for n in 1..=3 {
            t.row_owned(vec![n.to_string(), (n * n).to_string()]);
        }
        assert_eq!(t.len(), 3);
        assert!(t.render().contains("9"));
    }
}
