//! # now-sim — deterministic discrete-event simulation kernel
//!
//! This crate is the substrate for every simulator in the NOW reproduction.
//! The paper's evidence (network RAM, cooperative caching, mixed
//! parallel/interactive workloads, coscheduling) is trace-driven simulation;
//! this kernel provides the pieces those simulators share:
//!
//! * [`SimTime`] / [`SimDuration`] — nanosecond-resolution simulated time as
//!   distinct newtypes, so instants and spans cannot be confused.
//! * [`EventQueue`] — a priority queue of timestamped events with
//!   *deterministic* tie-breaking (FIFO among equal timestamps) and
//!   cancellation, so a simulation with a fixed seed replays identically.
//! * [`Engine`] / [`Component`] — a routed event bus over the queue:
//!   subsystems register as components, exchange typed events with
//!   deterministic delivery order, and charge remote traffic either at
//!   constant cost ([`CostModel::Fixed`]) or against one shared
//!   [`Transport`] fabric ([`CostModel::Fabric`]), so coupled simulations
//!   model cross-subsystem contention.
//! * [`PartitionedEngine`] — conservative parallel execution: one run
//!   sharded into N partitions on scoped threads, synchronized by
//!   fabric-latency lookahead windows with a deterministic barrier merge,
//!   so the partitioned run reproduces the serial history exactly.
//! * [`SimRng`] — a seeded random source with the distributions the workload
//!   generators need (uniform, exponential, Zipf, Pareto, normal) implemented
//!   locally so results do not drift with external crate versions.
//! * [`stats`] — online accumulators (mean/variance, percentiles, histograms,
//!   time-weighted utilization) used to summarise simulation output.
//! * [`report`] — plain-text table formatting used by the experiment harness
//!   to print paper-style tables and figure series.
//!
//! # Example
//!
//! A tiny simulation: schedule arrivals, process them in order.
//!
//! ```
//! use now_sim::{EventQueue, SimDuration, SimTime};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Arrive(u32), Depart(u32) }
//!
//! let mut q = EventQueue::new();
//! q.schedule_after(SimDuration::from_micros(10), Ev::Arrive(1));
//! q.schedule_after(SimDuration::from_micros(10), Ev::Arrive(2)); // same time: FIFO
//! q.schedule_after(SimDuration::from_micros(25), Ev::Depart(1));
//!
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!(t, SimTime::from_micros(10));
//! assert_eq!(ev, Ev::Arrive(1));
//! assert_eq!(q.pop().unwrap().1, Ev::Arrive(2));
//! assert_eq!(q.pop().unwrap().1, Ev::Depart(1));
//! assert!(q.pop().is_none());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod partition;
mod profile;
mod queue;
mod rng;
mod time;

pub mod parallel;
pub mod report;
pub mod stats;

pub use engine::{
    CausalRecord, CausalSink, Component, ComponentId, CostMode, CostModel, Ctx, Engine, EventCast,
    TransferCost, Transport,
};
pub use partition::{Lookahead, PartitionedEngine};
pub use profile::{ComponentProfile, HostProfile};
pub use queue::{EventId, EventQueue};
pub use rng::{SimRng, ZipfSampler};
pub use time::{SimDuration, SimTime};
