//! The composable simulation engine: typed components over one
//! [`EventQueue`].
//!
//! Every simulator in this workspace used to hand-roll the same loop:
//! `while let Some((now, ev)) = q.pop() { ... }`. That shape made each
//! subsystem its own closed world — paging, cooperative caching, and
//! parallel jobs could never contend for the same wires because each loop
//! owned a private clock and charged *constant* costs for remote traffic.
//!
//! The [`Engine`] keeps the queue's determinism (timestamp order, FIFO
//! among equal timestamps) and adds two things:
//!
//! * **Routing** — events carry a destination [`ComponentId`]; registered
//!   [`Component`]s receive their events through [`Component::on_event`]
//!   and schedule follow-ups or message other components through [`Ctx`].
//!   Delivery order among equal timestamps is the order the events were
//!   scheduled, regardless of component registration order.
//! * **A cost model** — components ask [`Ctx::transfer`] / [`Ctx::rpc`]
//!   what remote traffic costs. Under [`CostModel::Fixed`] there is no
//!   shared fabric and components charge their own constants (the legacy
//!   behaviour, bit-for-bit). Under [`CostModel::Fabric`] every transfer
//!   reserves real occupancy on one shared [`Transport`], so independent
//!   workloads slow each other down — the composition the paper argues
//!   for.
//!
//! Heterogeneous engines (several subsystems on one fabric) wrap each
//! subsystem's event enum in one routed enum via [`EventCast`]; a
//! component written against its own event type then drops into any engine
//! whose event type embeds it.

use std::any::Any;
use std::cell::Cell;
use std::sync::Arc;
use std::time::Instant;

use crate::profile::{ComponentProfile, HostProfile};
use crate::{EventId, EventQueue, SimDuration, SimTime};

/// Identifies a component registered with an [`Engine`], in registration
/// order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ComponentId(pub usize);

/// Lossless embedding of a component's event type `E` into an engine's
/// routed event type `M`.
///
/// The identity embedding (`M = E`) is provided for every type, so a
/// single-component engine needs no wrapper enum. A coupled engine defines
/// one variant per subsystem and implements `EventCast` per variant;
/// [`EventCast::downcast`] may panic when handed the wrong variant — that
/// only happens when an event was routed to the wrong component, which is
/// a simulation bug.
pub trait EventCast<E>: Sized {
    /// Wraps a component-level event for the engine's queue.
    fn upcast(ev: E) -> Self;
    /// Unwraps an event delivered to the component.
    ///
    /// # Panics
    ///
    /// Implementations panic if `self` does not hold an `E` — the event
    /// was routed to the wrong component.
    fn downcast(self) -> E;
}

impl<E> EventCast<E> for E {
    fn upcast(ev: E) -> E {
        ev
    }
    fn downcast(self) -> E {
        self
    }
}

/// A shared communication fabric the engine charges remote traffic
/// against.
///
/// Implementations are occupancy models: each call reserves wire and
/// software time and returns when the payload is *delivered*, so back-to-
/// back calls from competing components queue behind each other.
///
/// `Send` because a partitioned run moves each partition's engine (cost
/// model included) onto a worker thread for the duration of a window; the
/// transport is still only ever called from one thread at a time.
pub trait Transport: Send {
    /// Moves `bytes` from node `src` to node `dst`, requested at `now`,
    /// and returns the delivery time. `src == dst` is a local copy and
    /// must cost nothing (return `now`).
    fn transfer(&mut self, src: u32, dst: u32, bytes: u64, now: SimTime) -> SimTime;

    /// A request/response pair: `request_bytes` to `dst`, then
    /// `response_bytes` back. Returns when the response is delivered.
    fn rpc(
        &mut self,
        src: u32,
        dst: u32,
        request_bytes: u64,
        response_bytes: u64,
        now: SimTime,
    ) -> SimTime {
        let there = self.transfer(src, dst, request_bytes, now);
        self.transfer(dst, src, response_bytes, there)
    }

    /// [`Transport::transfer`] with a cost breakdown: where the time
    /// between request and delivery went. The default treats the whole
    /// interval as wire time; occupancy transports override it to split
    /// out software overhead and contention wait.
    fn transfer_detailed(&mut self, src: u32, dst: u32, bytes: u64, now: SimTime) -> TransferCost {
        let delivered = self.transfer(src, dst, bytes, now);
        TransferCost::opaque(now, delivered)
    }

    /// [`Transport::rpc`] with a cost breakdown (sums of both legs).
    fn rpc_detailed(
        &mut self,
        src: u32,
        dst: u32,
        request_bytes: u64,
        response_bytes: u64,
        now: SimTime,
    ) -> TransferCost {
        let there = self.transfer_detailed(src, dst, request_bytes, now);
        let back = self.transfer_detailed(dst, src, response_bytes, there.delivered);
        TransferCost {
            delivered: back.delivered,
            overhead: there.overhead + back.overhead,
            wait: there.wait + back.wait,
            wire: there.wire + back.wire,
        }
    }
}

/// Where the time of one fabric exchange went, as reported by
/// [`Transport::transfer_detailed`]. The pieces partition the interval
/// between request and delivery: `overhead + wait + wire` equals
/// `delivered - requested_at` exactly for occupancy transports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferCost {
    /// When the payload (or, for rpcs, the response) was delivered.
    pub delivered: SimTime,
    /// Software send/receive processing charged to the endpoints
    /// (the LogP `o` term).
    pub overhead: SimDuration,
    /// Time spent queued behind competing traffic before the wire was
    /// free — the fabric-contention term.
    pub wait: SimDuration,
    /// Serialization plus propagation once transmission started.
    pub wire: SimDuration,
}

impl TransferCost {
    /// A free local copy: delivered at `now`, nothing charged.
    pub fn free(now: SimTime) -> Self {
        TransferCost {
            delivered: now,
            overhead: SimDuration::ZERO,
            wait: SimDuration::ZERO,
            wire: SimDuration::ZERO,
        }
    }

    /// An opaque exchange: the whole interval counts as wire time. Used
    /// by transports that do not expose a breakdown.
    pub fn opaque(requested_at: SimTime, delivered: SimTime) -> Self {
        TransferCost {
            delivered,
            overhead: SimDuration::ZERO,
            wait: SimDuration::ZERO,
            wire: delivered.saturating_since(requested_at),
        }
    }

    /// Total charged time (`overhead + wait + wire`).
    pub fn total(&self) -> SimDuration {
        self.overhead + self.wait + self.wire
    }
}

/// Provenance of one scheduled event (or synthetic mark): which event
/// caused it, which components are involved, when it was scheduled and
/// when it fires, plus any blame segments attached via [`Ctx::blame`].
///
/// Records form a DAG rooted at seed events ([`Engine::schedule_at`],
/// `parent == None`): a child's `scheduled_at` is its parent's firing
/// time, so walking parents from any record back to a root telescopes
/// into an exact account of elapsed simulated time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CausalRecord {
    /// The scheduled event's queue sequence number ([`EventId::seq`]).
    /// Synthetic marks use a disjoint id space (high bit set).
    pub seq: u64,
    /// Sequence number of the event during whose handling this one was
    /// scheduled; `None` for seeds.
    pub parent: Option<u64>,
    /// Trace id: every seed starts a fresh trace, descendants inherit it.
    pub trace: u64,
    /// Component that scheduled the event; `None` for seeds.
    pub src: Option<ComponentId>,
    /// Component the event is addressed to.
    pub dst: ComponentId,
    /// Simulated time at which the event was scheduled.
    pub scheduled_at: SimTime,
    /// Simulated time at which the event fires (for marks: the labelled
    /// completion time).
    pub fires_at: SimTime,
    /// Label attached via [`Ctx::mark`]; empty for ordinary events.
    pub label: &'static str,
    /// Attribution segments explaining the edge leading to this event:
    /// `(category, duration)` pairs queued via [`Ctx::blame`].
    pub blame: Vec<(&'static str, SimDuration)>,
}

/// Consumer of [`CausalRecord`]s produced by an [`Engine`] with causal
/// tracing enabled (see [`Engine::set_causal_sink`]).
///
/// `Send + Sync` because a partitioned run shares one sink across all
/// partition engines, which record from their worker threads concurrently.
pub trait CausalSink: Send + Sync {
    /// Accepts one record. Called during event dispatch; implementations
    /// should be cheap and must not re-enter the engine.
    fn record(&self, record: CausalRecord);
}

/// Seq-space base for synthetic marks, disjoint from queue sequence
/// numbers (a queue would need 2^63 events to collide).
const MARK_SEQ_BASE: u64 = 1 << 63;

/// Moves the queued blame segments into an owned `Vec` for a
/// [`CausalRecord`], leaving the shared buffer (and its capacity) behind
/// for the next event. An empty buffer yields `Vec::new()` — no
/// allocation — so events that attach no blame stay free.
fn drain_blame(buf: &mut Vec<(&'static str, SimDuration)>) -> Vec<(&'static str, SimDuration)> {
    if buf.is_empty() {
        Vec::new()
    } else {
        buf.split_off(0)
    }
}

struct CausalState {
    sink: Arc<dyn CausalSink>,
    next_trace: u64,
    next_mark: u64,
    /// Record provenance only for traces where `trace % sample_every == 0`
    /// (1 = every trace, the [`Engine::set_causal_sink`] behaviour).
    /// Trace ids are assigned deterministically in scheduling order, so
    /// which chains are sampled is a pure function of the workload — equal
    /// seeds sample equal chains and output stays byte-identical.
    sample_every: u64,
    /// Added to every emitted seq and trace id (and to parent links) so
    /// the engines of a partitioned run write into disjoint id ranges of
    /// one shared sink — partition `p` gets `p << 44`, leaving 2^44 local
    /// events per partition before a collision could occur. Zero for
    /// serial engines. Sampling applies to the *offset* trace id, so
    /// partitioned runs that sample should use `sample_every == 1` (the
    /// scenario layer's blame path does).
    seq_offset: u64,
}

impl CausalState {
    fn sampled(&self, trace: u64) -> bool {
        trace.is_multiple_of(self.sample_every)
    }

    /// A local queue seq (or parent seq) lifted into the shared id space.
    fn global_seq(&self, local: u64) -> u64 {
        debug_assert!(
            self.seq_offset == 0 || local < (1 << 44),
            "partition overflowed its causal id range"
        );
        self.seq_offset + local
    }
}

/// How an [`Engine`] prices remote traffic.
pub enum CostModel {
    /// No shared fabric: components charge their own constant costs.
    /// Legacy single-subsystem runs use this mode and reproduce the
    /// pre-engine results byte-for-byte.
    Fixed,
    /// All traffic traverses one live fabric and contends for its
    /// occupancy.
    Fabric(Box<dyn Transport>),
}

/// The cost-model discriminant, for components that branch on it without
/// needing the transport itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostMode {
    /// See [`CostModel::Fixed`].
    Fixed,
    /// See [`CostModel::Fabric`].
    Fabric,
}

/// A simulated subsystem driven by an [`Engine`].
///
/// The `Any` supertrait lets callers recover the concrete component (and
/// its accumulated results) after a run via [`Engine::component`]. The
/// `Send` supertrait lets a partitioned run move the component (inside its
/// partition's engine) onto a worker thread for the duration of a window;
/// components are still only ever driven from one thread at a time.
pub trait Component<M>: Any + Send {
    /// Handles one event addressed to this component.
    fn on_event(&mut self, ctx: &mut Ctx<'_, M>, event: M);
}

struct Envelope<M> {
    dst: ComponentId,
    /// Trace id the event belongs to (0 when causal tracing is off).
    trace: u64,
    event: M,
}

/// A cross-partition event captured at the sender, carried to the window
/// barrier, and injected into the destination partition's queue by the
/// coordinator (see `partition.rs`). Provenance travels with it: the
/// parent seq is already lifted into the shared (offset) id space, so the
/// receiver can link its delivery record straight back to the sender's.
pub(crate) struct RemoteEnvelope<M> {
    pub(crate) dst: ComponentId,
    pub(crate) fires_at: SimTime,
    /// When (and by whom) the event was scheduled, for the delivery
    /// record's `scheduled_at`/`src`.
    pub(crate) sent_at: SimTime,
    pub(crate) src: ComponentId,
    /// Globally-offset seq of the event being handled when this one was
    /// scheduled (`None` never occurs: only components send remotely).
    pub(crate) parent_seq: u64,
    pub(crate) trace: u64,
    pub(crate) blame: Vec<(&'static str, SimDuration)>,
    pub(crate) event: M,
}

/// Per-window routing state a partitioned run threads through [`Ctx`]:
/// who owns which component, which partition this engine is, the
/// lookahead contract remote sends must honour, and the outbox collecting
/// them until the barrier.
pub(crate) struct WindowRouting<M> {
    /// `home[c]` = partition owning component `c`.
    pub(crate) home: Arc<[u32]>,
    pub(crate) my_partition: u32,
    /// Minimum delay any cross-partition event must have. `None` means
    /// the partitioning is *closed* — components were grouped so that no
    /// cross-partition traffic exists — and any remote send panics.
    pub(crate) lookahead: Option<SimDuration>,
    pub(crate) outbox: Vec<RemoteEnvelope<M>>,
}

impl<M> WindowRouting<M> {
    fn owns(&self, dst: ComponentId) -> bool {
        // Components beyond the map (registered after the run started —
        // impossible today) default to local, which fails loudly at
        // dispatch rather than silently misrouting.
        self.home.get(dst.0).copied().unwrap_or(self.my_partition) == self.my_partition
    }
}

/// The view a component gets of the engine while handling an event:
/// the clock, scheduling, the message bus, and the cost model.
pub struct Ctx<'a, M> {
    queue: &'a mut EventQueue<Envelope<M>>,
    cost: &'a mut CostModel,
    self_id: ComponentId,
    causal: Option<&'a mut CausalState>,
    /// Seq of the event currently being handled.
    current_seq: u64,
    /// Trace id of the event currently being handled.
    current_trace: u64,
    /// Blame segments queued via [`Ctx::blame`], attached to the next
    /// scheduled event or mark. Borrowed from the engine's reusable
    /// buffer, so dispatch allocates nothing per envelope: the buffer's
    /// capacity survives across events, and the disabled path never
    /// pushes into it at all.
    pending_blame: &'a mut Vec<(&'static str, SimDuration)>,
    /// Cross-partition routing, present only inside a partitioned window.
    /// Serial runs pay a single `is_some` branch per schedule.
    remote: Option<&'a mut WindowRouting<M>>,
    /// Host-time accumulator for cost-model calls, present only with the
    /// profiler enabled (see [`Engine::enable_profiler`]). Dispatch
    /// subtracts what lands here from the component's own time, so
    /// component and fabric host time stay separable. A `Cell` because
    /// the engine reads it back after the handler returns while the
    /// transfer methods only hold `&self`-style access through `Ctx`.
    fabric_ns: Option<&'a Cell<u64>>,
}

/// Runs `f`, adding its wall time to `cell` when profiling is on. The
/// disabled path is a single `match` on `None`.
fn fabric_timed<R>(cell: Option<&Cell<u64>>, f: impl FnOnce() -> R) -> R {
    match cell {
        None => f(),
        Some(cell) => {
            let start = Instant::now();
            let result = f();
            cell.set(cell.get() + start.elapsed().as_nanos() as u64);
            result
        }
    }
}

impl<M> Ctx<'_, M> {
    /// Schedules an envelope and, when causal tracing is on, records its
    /// provenance (parent = current event) with any pending blame.
    ///
    /// Inside a partitioned window, an envelope addressed to a component
    /// homed in another partition is diverted to the window outbox
    /// instead of the local queue; the conservative lookahead makes that
    /// safe (see the panic conditions below).
    ///
    /// # Panics
    ///
    /// In a partitioned run, panics if a remote send violates the
    /// lookahead contract: under a closed partitioning any remote send is
    /// a partitioning bug, and under a window of `L` a remote event must
    /// fire at least `L` after now (otherwise the destination partition
    /// may already have advanced past `time`, and delivering would
    /// rewrite history).
    fn schedule_envelope(&mut self, dst: ComponentId, time: SimTime, event: M) -> EventId {
        let trace = self.current_trace;
        if let Some(routing) = self.remote.as_deref_mut() {
            if !routing.owns(dst) {
                let now = self.queue.now();
                match routing.lookahead {
                    None => panic!(
                        "cross-partition event to {dst:?} under a closed partitioning; \
                         the partition map promised no remote traffic"
                    ),
                    Some(lookahead) => {
                        let horizon = now.checked_add(lookahead);
                        assert!(
                            horizon.is_some_and(|h| time >= h),
                            "cross-partition event at {time} violates the lookahead \
                             window: must fire at least {lookahead} after now ({now})"
                        );
                    }
                }
                let parent_seq = self
                    .causal
                    .as_ref()
                    .map_or(self.current_seq, |c| c.global_seq(self.current_seq));
                routing.outbox.push(RemoteEnvelope {
                    dst,
                    fires_at: time,
                    sent_at: now,
                    src: self.self_id,
                    parent_seq,
                    trace,
                    blame: drain_blame(self.pending_blame),
                    event,
                });
                return EventId::CROSS_PARTITION;
            }
        }
        let id = self.queue.schedule_at(time, Envelope { dst, trace, event });
        if let Some(causal) = self.causal.as_ref().filter(|c| c.sampled(trace)) {
            causal.sink.record(CausalRecord {
                seq: causal.global_seq(id.seq()),
                parent: Some(causal.global_seq(self.current_seq)),
                trace,
                src: Some(self.self_id),
                dst,
                scheduled_at: self.queue.now(),
                fires_at: time,
                label: "",
                blame: drain_blame(self.pending_blame),
            });
        }
        id
    }

    /// True when the engine records causal provenance. Components may use
    /// this to skip work that only feeds attribution.
    pub fn causal_enabled(&self) -> bool {
        self.causal.is_some()
    }

    /// True when the *current* event's trace is among the sampled 1-in-N
    /// (always true with tracing on at the default sampling of 1; always
    /// false with tracing off). Components may use this to skip work that
    /// only feeds attribution of this specific chain.
    pub fn trace_sampled(&self) -> bool {
        self.causal
            .as_ref()
            .is_some_and(|c| c.sampled(self.current_trace))
    }

    /// Schedules an event to this component at absolute time `time` as the
    /// root of a *fresh* trace, exactly as [`Engine::schedule_at`] seeds
    /// one before the run. Open-loop workload generators use this so every
    /// request chain is its own trace: the engine can then sample 1-in-N
    /// chains end-to-end ([`Engine::set_causal_sink_sampled`]) and causal
    /// memory stays proportional to sampled chains, not events. Pending
    /// [`Ctx::blame`] is left for the current chain, not attached here.
    ///
    /// # Panics
    ///
    /// Panics if `time` is in the past.
    pub fn schedule_root_at(&mut self, time: SimTime, event: M) -> EventId {
        let dst = self.self_id;
        let trace = match &mut self.causal {
            Some(causal) => {
                causal.next_trace += 1;
                causal.global_seq(causal.next_trace)
            }
            None => 0,
        };
        let id = self.queue.schedule_at(time, Envelope { dst, trace, event });
        if let Some(causal) = self.causal.as_ref().filter(|c| c.sampled(trace)) {
            causal.sink.record(CausalRecord {
                seq: causal.global_seq(id.seq()),
                parent: None,
                trace,
                src: Some(self.self_id),
                dst,
                scheduled_at: self.queue.now(),
                fires_at: time,
                label: "",
                blame: Vec::new(),
            });
        }
        id
    }

    /// Attributes `amount` of the time leading up to the *next* scheduled
    /// event (or [`Ctx::mark`]) to `category`. Segments accumulate in call
    /// order and are drained by the next `schedule_*`/`send_to*`/`mark`;
    /// anything left when the handler returns is discarded. A no-op when
    /// causal tracing is off, the current trace is not sampled, or
    /// `amount` is zero.
    pub fn blame(&mut self, category: &'static str, amount: SimDuration) {
        if self.trace_sampled() && amount > SimDuration::ZERO {
            self.pending_blame.push((category, amount));
        }
    }

    /// Emits a labelled terminal record at time `at` (e.g. a scenario
    /// completion) without scheduling anything. The mark's parent is the
    /// current event, so critical-path extraction can start from it.
    /// Pending blame attaches to the mark. A no-op when tracing is off or
    /// the current trace is not sampled.
    pub fn mark(&mut self, label: &'static str, at: SimTime) {
        let trace_sampled = self.trace_sampled();
        if let Some(causal) = &mut self.causal {
            if !trace_sampled {
                return;
            }
            let seq = MARK_SEQ_BASE + causal.seq_offset + causal.next_mark;
            causal.next_mark += 1;
            causal.sink.record(CausalRecord {
                seq,
                parent: Some(causal.global_seq(self.current_seq)),
                trace: self.current_trace,
                src: Some(self.self_id),
                dst: self.self_id,
                scheduled_at: self.queue.now(),
                fires_at: at,
                label,
                blame: drain_blame(self.pending_blame),
            });
        }
    }
    /// Current simulated time (the timestamp of the event being handled).
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// The id of the component handling the current event.
    pub fn self_id(&self) -> ComponentId {
        self.self_id
    }

    /// Which cost model the engine is running under.
    pub fn cost_mode(&self) -> CostMode {
        match self.cost {
            CostModel::Fixed => CostMode::Fixed,
            CostModel::Fabric(_) => CostMode::Fabric,
        }
    }

    /// Schedules an event to this component at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is in the past (see [`EventQueue::schedule_at`]).
    pub fn schedule_at(&mut self, time: SimTime, event: M) -> EventId {
        let dst = self.self_id;
        self.schedule_envelope(dst, time, event)
    }

    /// Schedules an event to this component `delay` from now.
    pub fn schedule_after(&mut self, delay: SimDuration, event: M) -> EventId {
        self.schedule_at(self.queue.now() + delay, event)
    }

    /// Sends an event to another component, delivered at the current
    /// timestamp after everything already scheduled for it (FIFO).
    pub fn send_to(&mut self, dst: ComponentId, event: M) -> EventId {
        self.send_to_at(dst, self.queue.now(), event)
    }

    /// Sends an event to another component at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is in the past.
    pub fn send_to_at(&mut self, dst: ComponentId, time: SimTime, event: M) -> EventId {
        self.schedule_envelope(dst, time, event)
    }

    /// Cancels a previously scheduled event. Returns `true` if it was
    /// still pending.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }

    /// Charges a one-way transfer of `bytes` from node `src` to node
    /// `dst` against the shared fabric, returning the delivery time.
    ///
    /// # Panics
    ///
    /// Panics under [`CostModel::Fixed`]: fixed-mode components charge
    /// their own constants instead of consulting a fabric.
    pub fn transfer(&mut self, src: u32, dst: u32, bytes: u64) -> SimTime {
        let now = self.queue.now();
        self.transfer_at(src, dst, bytes, now)
    }

    /// [`Ctx::transfer`] starting at an explicit time `at` (at or after
    /// now) — for chaining the hops of a multi-hop exchange, where each
    /// leg departs when the previous one delivered.
    ///
    /// # Panics
    ///
    /// Panics under [`CostModel::Fixed`] (see [`Ctx::transfer`]).
    pub fn transfer_at(&mut self, src: u32, dst: u32, bytes: u64, at: SimTime) -> SimTime {
        match self.cost {
            CostModel::Fixed => panic!(
                "fabric transfer requested under CostModel::Fixed; \
                 fixed-mode components charge their own constants"
            ),
            CostModel::Fabric(t) => {
                fabric_timed(self.fabric_ns, || t.transfer(src, dst, bytes, at))
            }
        }
    }

    /// Charges a request/response exchange against the shared fabric,
    /// returning when the response is delivered.
    ///
    /// # Panics
    ///
    /// Panics under [`CostModel::Fixed`] (see [`Ctx::transfer`]).
    pub fn rpc(&mut self, src: u32, dst: u32, request_bytes: u64, response_bytes: u64) -> SimTime {
        let now = self.queue.now();
        match self.cost {
            CostModel::Fixed => panic!(
                "fabric rpc requested under CostModel::Fixed; \
                 fixed-mode components charge their own constants"
            ),
            CostModel::Fabric(t) => fabric_timed(self.fabric_ns, || {
                t.rpc(src, dst, request_bytes, response_bytes, now)
            }),
        }
    }

    /// [`Ctx::transfer`] with a cost breakdown ([`TransferCost`]), for
    /// components attributing their service time via [`Ctx::blame`].
    ///
    /// # Panics
    ///
    /// Panics under [`CostModel::Fixed`] (see [`Ctx::transfer`]).
    pub fn transfer_detailed(&mut self, src: u32, dst: u32, bytes: u64) -> TransferCost {
        let now = self.queue.now();
        self.transfer_detailed_at(src, dst, bytes, now)
    }

    /// [`Ctx::transfer_at`] with a cost breakdown.
    ///
    /// # Panics
    ///
    /// Panics under [`CostModel::Fixed`] (see [`Ctx::transfer`]).
    pub fn transfer_detailed_at(
        &mut self,
        src: u32,
        dst: u32,
        bytes: u64,
        at: SimTime,
    ) -> TransferCost {
        match self.cost {
            CostModel::Fixed => panic!(
                "fabric transfer requested under CostModel::Fixed; \
                 fixed-mode components charge their own constants"
            ),
            CostModel::Fabric(t) => {
                fabric_timed(self.fabric_ns, || t.transfer_detailed(src, dst, bytes, at))
            }
        }
    }

    /// [`Ctx::rpc`] with a cost breakdown (both legs summed).
    ///
    /// # Panics
    ///
    /// Panics under [`CostModel::Fixed`] (see [`Ctx::rpc`]).
    pub fn rpc_detailed(
        &mut self,
        src: u32,
        dst: u32,
        request_bytes: u64,
        response_bytes: u64,
    ) -> TransferCost {
        let now = self.queue.now();
        match self.cost {
            CostModel::Fixed => panic!(
                "fabric rpc requested under CostModel::Fixed; \
                 fixed-mode components charge their own constants"
            ),
            CostModel::Fabric(t) => fabric_timed(self.fabric_ns, || {
                t.rpc_detailed(src, dst, request_bytes, response_bytes, now)
            }),
        }
    }
}

/// A deterministic discrete-event engine routing typed events to
/// registered [`Component`]s.
///
/// # Example
///
/// ```
/// use now_sim::{Component, Ctx, Engine, SimDuration, SimTime};
///
/// struct Counter {
///     left: u32,
///     fired: u32,
/// }
///
/// impl Component<u32> for Counter {
///     fn on_event(&mut self, ctx: &mut Ctx<'_, u32>, ev: u32) {
///         self.fired += ev;
///         if self.left > 0 {
///             self.left -= 1;
///             ctx.schedule_after(SimDuration::from_micros(10), 1);
///         }
///     }
/// }
///
/// let mut engine = Engine::new();
/// let id = engine.register(Counter { left: 3, fired: 0 });
/// engine.schedule_at(id, SimTime::ZERO, 1);
/// engine.run();
/// assert_eq!(engine.component::<Counter>(id).fired, 4);
/// assert_eq!(engine.now(), SimTime::from_micros(30));
/// ```
pub struct Engine<M> {
    queue: EventQueue<Envelope<M>>,
    /// Indexed by [`ComponentId`]. `None` entries are *gaps*: components
    /// that exist globally but are homed in another partition of a
    /// partitioned run, kept so every partition's engine shares one
    /// global id space and dispatch stays a direct index. Serial engines
    /// never hold gaps.
    components: Vec<Option<Box<dyn Component<M>>>>,
    cost: CostModel,
    causal: Option<CausalState>,
    /// Reusable [`Ctx::blame`] staging buffer: allocated at most once per
    /// engine, lent to each dispatch's `Ctx` instead of constructing a
    /// fresh `Vec` per envelope.
    blame_buf: Vec<(&'static str, SimDuration)>,
    /// Host-time profiler state; `None` (the default) keeps dispatch free
    /// of any timing work.
    profiler: Option<ProfilerState>,
}

/// Accumulators behind [`Engine::enable_profiler`]: per-component host
/// time with the cost-model share split out.
struct ProfilerState {
    /// Display labels in registration order; indices past the end render
    /// as `component<i>`.
    labels: Vec<String>,
    /// Handler wall-ns per component, cost model excluded.
    self_ns: Vec<u64>,
    /// Cost-model wall-ns charged while handling each component's events.
    fabric_ns: Vec<u64>,
    /// Events dispatched per component.
    events: Vec<u64>,
    /// Wall-ns inside [`Engine::run`].
    wall_ns: u64,
    /// Scratch cell the dispatch lends to [`Ctx`] so transfer calls can
    /// report their wall time back.
    fabric_cell: Cell<u64>,
}

impl ProfilerState {
    fn new(labels: &[&str]) -> ProfilerState {
        ProfilerState {
            labels: labels.iter().map(|l| l.to_string()).collect(),
            self_ns: Vec::new(),
            fabric_ns: Vec::new(),
            events: Vec::new(),
            wall_ns: 0,
            fabric_cell: Cell::new(0),
        }
    }

    fn charge(&mut self, component: usize, total_ns: u64, fabric_ns: u64) {
        if component >= self.events.len() {
            self.self_ns.resize(component + 1, 0);
            self.fabric_ns.resize(component + 1, 0);
            self.events.resize(component + 1, 0);
        }
        self.self_ns[component] += total_ns.saturating_sub(fabric_ns);
        self.fabric_ns[component] += fabric_ns;
        self.events[component] += 1;
    }

    fn into_profile(self) -> HostProfile {
        let components = self
            .events
            .iter()
            .enumerate()
            .filter(|&(_, &events)| events > 0)
            .map(|(i, &events)| ComponentProfile {
                label: self
                    .labels
                    .get(i)
                    .cloned()
                    .unwrap_or_else(|| format!("component{i}")),
                events,
                self_ns: self.self_ns[i],
                fabric_ns: self.fabric_ns[i],
            })
            .collect();
        HostProfile {
            wall_ns: self.wall_ns,
            events: self.events.iter().sum(),
            components,
        }
    }
}

impl<M: 'static> Default for Engine<M> {
    fn default() -> Self {
        Engine::new()
    }
}

impl<M: 'static> Engine<M> {
    /// An engine in [`CostModel::Fixed`] mode (legacy constant costs).
    pub fn new() -> Self {
        Engine::with_cost_model(CostModel::Fixed)
    }

    /// An engine whose remote traffic traverses `transport`
    /// ([`CostModel::Fabric`]).
    pub fn with_transport(transport: Box<dyn Transport>) -> Self {
        Engine::with_cost_model(CostModel::Fabric(transport))
    }

    /// An engine with an explicit cost model.
    pub fn with_cost_model(cost: CostModel) -> Self {
        Engine {
            queue: EventQueue::new(),
            components: Vec::new(),
            cost,
            causal: None,
            blame_buf: Vec::new(),
            profiler: None,
        }
    }

    /// Enables host-time profiling: every subsequent dispatch is timed
    /// with the wall clock and attributed to its component (`labels` by
    /// registration order), with time inside [`Transport`] calls split
    /// out per component. Profiling observes the host, not the
    /// simulation — event history is identical with it on or off — and
    /// without this call dispatch does no timing work at all.
    pub fn enable_profiler(&mut self, labels: &[&str]) {
        self.profiler = Some(ProfilerState::new(labels));
    }

    /// Takes the accumulated [`HostProfile`], disabling the profiler.
    /// `None` if [`Engine::enable_profiler`] was never called.
    pub fn take_profile(&mut self) -> Option<HostProfile> {
        self.profiler.take().map(ProfilerState::into_profile)
    }

    /// Enables causal tracing: every event scheduled from here on gets a
    /// [`CausalRecord`] (provenance link, trace id, blame) delivered to
    /// `sink`. Without a sink the engine does no causal work at all —
    /// no records, no allocation, identical event history.
    pub fn set_causal_sink(&mut self, sink: Arc<dyn CausalSink>) {
        self.set_causal_sink_sampled(sink, 1);
    }

    /// Enables causal tracing with 1-in-N trace sampling: only chains
    /// whose trace id is a multiple of `sample_every` are recorded
    /// (blame, provenance, and marks for other chains are skipped
    /// entirely). Trace ids are assigned in deterministic scheduling
    /// order, so sampling is a pure function of the workload — runs stay
    /// byte-identical — and, crucially, *which events fire and when is
    /// identical at every sampling rate*: observation never feeds back
    /// into the simulation. `sample_every` of 0 is treated as 1.
    pub fn set_causal_sink_sampled(&mut self, sink: Arc<dyn CausalSink>, sample_every: u64) {
        self.causal = Some(CausalState {
            sink,
            next_trace: 0,
            next_mark: 0,
            sample_every: sample_every.max(1),
            seq_offset: 0,
        });
    }

    /// Shifts every causal id this engine emits (seqs, trace ids, mark
    /// seqs, and the parent links between them) by `offset`, so several
    /// partition engines can share one sink without id collisions. Must
    /// be called after enabling a sink and before scheduling anything;
    /// a no-op without a sink. Partitions use `p << 44`.
    pub fn set_causal_seq_offset(&mut self, offset: u64) {
        if let Some(causal) = &mut self.causal {
            causal.seq_offset = offset;
        }
    }

    /// Registers a component and returns its routing id.
    pub fn register<C: Component<M>>(&mut self, component: C) -> ComponentId {
        self.components.push(Some(Box::new(component)));
        ComponentId(self.components.len() - 1)
    }

    /// Claims the next id without homing a component here: the component
    /// with this id lives in another partition's engine. Keeps the id
    /// spaces of all partition engines congruent so `ComponentId`s route
    /// globally (see `partition.rs`).
    pub(crate) fn register_gap(&mut self) -> ComponentId {
        self.components.push(None);
        ComponentId(self.components.len() - 1)
    }

    /// Number of registered component ids (including, in a partitioned
    /// engine, ids homed in other partitions).
    pub fn components(&self) -> usize {
        self.components.len()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Pending (non-cancelled) events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Which cost model the engine is running under.
    pub fn cost_mode(&self) -> CostMode {
        match self.cost {
            CostModel::Fixed => CostMode::Fixed,
            CostModel::Fabric(_) => CostMode::Fabric,
        }
    }

    /// Seeds an event for `dst` at absolute time `time` (used to start a
    /// simulation before [`Engine::run`]).
    ///
    /// # Panics
    ///
    /// Panics if `time` is in the past.
    pub fn schedule_at(&mut self, dst: ComponentId, time: SimTime, event: M) -> EventId {
        // Seeds root fresh traces: no parent, no source component.
        let trace = match &mut self.causal {
            Some(causal) => {
                causal.next_trace += 1;
                causal.global_seq(causal.next_trace)
            }
            None => 0,
        };
        let id = self.queue.schedule_at(time, Envelope { dst, trace, event });
        if let Some(causal) = self.causal.as_ref().filter(|c| c.sampled(trace)) {
            causal.sink.record(CausalRecord {
                seq: causal.global_seq(id.seq()),
                parent: None,
                trace,
                src: None,
                dst,
                scheduled_at: self.queue.now(),
                fires_at: time,
                label: "",
                blame: Vec::new(),
            });
        }
        id
    }

    /// Runs until the queue is empty, dispatching each event to its
    /// component in deterministic order (timestamp, then FIFO).
    ///
    /// # Panics
    ///
    /// Panics if an event addresses an unregistered component.
    pub fn run(&mut self) {
        let run_start = self.profiler.as_ref().map(|_| Instant::now());
        while let Some((_, id, envelope)) = self.queue.pop_with_id() {
            self.dispatch(id, envelope, None);
        }
        if let (Some(start), Some(profiler)) = (run_start, self.profiler.as_mut()) {
            profiler.wall_ns += start.elapsed().as_nanos() as u64;
        }
    }

    /// Delivers one event to its component. `remote` is the window
    /// routing of a partitioned run (`None` for serial runs).
    fn dispatch(
        &mut self,
        id: EventId,
        envelope: Envelope<M>,
        remote: Option<&mut WindowRouting<M>>,
    ) {
        let component = match self.components.get_mut(envelope.dst.0) {
            Some(Some(c)) => c,
            Some(None) => panic!(
                "event addressed to component {:?} not homed in this partition \
                 (partition-map routing bug)",
                envelope.dst
            ),
            None => panic!(
                "event addressed to unregistered component {:?}",
                envelope.dst
            ),
        };
        let timing = self.profiler.as_ref().map(|p| {
            p.fabric_cell.set(0);
            Instant::now()
        });
        let mut ctx = Ctx {
            queue: &mut self.queue,
            cost: &mut self.cost,
            self_id: envelope.dst,
            causal: self.causal.as_mut(),
            current_seq: id.seq(),
            current_trace: envelope.trace,
            pending_blame: &mut self.blame_buf,
            remote,
            fabric_ns: self.profiler.as_ref().map(|p| &p.fabric_cell),
        };
        component.on_event(&mut ctx, envelope.event);
        // Blame not drained by a schedule/mark is discarded, as the
        // Ctx contract states; clearing here keeps the shared buffer
        // from leaking one event's segments into the next.
        self.blame_buf.clear();
        if let Some(start) = timing {
            let total = start.elapsed().as_nanos() as u64;
            let profiler = self
                .profiler
                .as_mut()
                .expect("profiler vanished mid-dispatch");
            let fabric = profiler.fabric_cell.get();
            profiler.charge(envelope.dst.0, total, fabric);
        }
    }

    /// The timestamp of the next pending event, if any — the input to
    /// window negotiation in a partitioned run.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Runs one conservative window: dispatches events strictly before
    /// `edge` (all events when `edge` is `None`), diverting cross-
    /// partition sends into `routing`'s outbox. Events processed here can
    /// only schedule remote events at or past the edge (the lookahead
    /// contract enforced in [`Ctx`]), so every partition draining to the
    /// same edge in parallel observes exactly the history a serial run
    /// would produce.
    pub(crate) fn run_window(&mut self, edge: Option<SimTime>, routing: &mut WindowRouting<M>) {
        loop {
            match (self.queue.peek_time(), edge) {
                (None, _) => break,
                (Some(t), Some(edge)) if t >= edge => break,
                _ => {}
            }
            let (_, id, envelope) = self
                .queue
                .pop_with_id()
                .expect("peeked event vanished before pop");
            self.dispatch(id, envelope, Some(routing));
        }
    }

    /// Injects a cross-partition envelope at a window barrier. The
    /// envelope draws a fresh seq from *this* queue (see the single-
    /// consumer notes on the queue's pending set); its provenance record
    /// links back to the sender via the already-globalized parent seq.
    ///
    /// # Panics
    ///
    /// Panics if the envelope fires before this partition's clock — that
    /// means a window drained past the lookahead edge, a protocol bug.
    pub(crate) fn inject_remote(&mut self, env: RemoteEnvelope<M>) {
        let RemoteEnvelope {
            dst,
            fires_at,
            sent_at,
            src,
            parent_seq,
            trace,
            blame,
            event,
        } = env;
        let id = self
            .queue
            .schedule_at(fires_at, Envelope { dst, trace, event });
        if let Some(causal) = self.causal.as_ref().filter(|c| c.sampled(trace)) {
            causal.sink.record(CausalRecord {
                seq: causal.global_seq(id.seq()),
                parent: Some(parent_seq),
                trace,
                src: Some(src),
                dst,
                scheduled_at: sent_at,
                fires_at,
                label: "",
                blame,
            });
        }
    }

    /// Borrows a registered component as its concrete type, typically to
    /// read results after [`Engine::run`].
    ///
    /// # Panics
    ///
    /// Panics if `id` is unregistered or the component is not a `C`.
    pub fn component<C: Component<M>>(&self, id: ComponentId) -> &C {
        let boxed = self.components[id.0]
            .as_ref()
            .expect("component homed in another partition");
        let component: &dyn Component<M> = &**boxed;
        let any: &dyn Any = component;
        any.downcast_ref::<C>()
            .expect("component type mismatch: wrong ComponentId for this type")
    }

    /// Mutably borrows a registered component as its concrete type.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unregistered or the component is not a `C`.
    pub fn component_mut<C: Component<M>>(&mut self, id: ComponentId) -> &mut C {
        let boxed = self.components[id.0]
            .as_mut()
            .expect("component homed in another partition");
        let component: &mut dyn Component<M> = &mut **boxed;
        let any: &mut dyn Any = component;
        any.downcast_mut::<C>()
            .expect("component type mismatch: wrong ComponentId for this type")
    }

    /// The cost model, e.g. to inspect a fabric's state after a run.
    pub fn cost_model_mut(&mut self) -> &mut CostModel {
        &mut self.cost
    }
}

impl<M> std::fmt::Debug for Engine<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("components", &self.components.len())
            .field("pending", &self.queue.len())
            .field("now", &self.queue.now())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Ev {
        Ping(u32),
        Echo(u32),
    }

    struct Pinger {
        target: ComponentId,
        sent: u32,
        echoes: Vec<u32>,
    }

    impl Component<Ev> for Pinger {
        fn on_event(&mut self, ctx: &mut Ctx<'_, Ev>, ev: Ev) {
            match ev {
                Ev::Ping(n) => {
                    self.sent += 1;
                    ctx.send_to(self.target, Ev::Ping(n));
                }
                Ev::Echo(n) => self.echoes.push(n),
            }
        }
    }

    struct Echoer {
        heard: Vec<(SimTime, u32)>,
    }

    impl Component<Ev> for Echoer {
        fn on_event(&mut self, ctx: &mut Ctx<'_, Ev>, ev: Ev) {
            let Ev::Ping(n) = ev else {
                panic!("echoer only receives pings")
            };
            self.heard.push((ctx.now(), n));
            let origin = ComponentId(0);
            ctx.send_to(origin, Ev::Echo(n));
        }
    }

    #[test]
    fn routed_messages_round_trip() {
        let mut engine = Engine::new();
        let echoer = ComponentId(1);
        let pinger = engine.register(Pinger {
            target: echoer,
            sent: 0,
            echoes: Vec::new(),
        });
        engine.register(Echoer { heard: Vec::new() });
        engine.schedule_at(pinger, SimTime::from_micros(5), Ev::Ping(7));
        engine.run();
        assert_eq!(engine.component::<Pinger>(pinger).echoes, vec![7]);
        let heard = &engine.component::<Echoer>(echoer).heard;
        assert_eq!(heard, &[(SimTime::from_micros(5), 7)]);
    }

    #[test]
    fn same_timestamp_bus_delivery_is_fifo() {
        struct Recorder {
            log: Vec<u32>,
        }
        impl Component<u32> for Recorder {
            fn on_event(&mut self, _: &mut Ctx<'_, u32>, ev: u32) {
                self.log.push(ev);
            }
        }
        let mut engine = Engine::new();
        let id = engine.register(Recorder { log: Vec::new() });
        for n in 0..50 {
            engine.schedule_at(id, SimTime::from_micros(3), n);
        }
        engine.run();
        assert_eq!(
            engine.component::<Recorder>(id).log,
            (0..50).collect::<Vec<_>>()
        );
    }

    #[test]
    #[should_panic(expected = "unregistered component")]
    fn unregistered_destination_panics() {
        let mut engine: Engine<u32> = Engine::new();
        engine.schedule_at(ComponentId(3), SimTime::ZERO, 1);
        engine.run();
    }

    #[test]
    #[should_panic(expected = "CostModel::Fixed")]
    fn fixed_mode_rejects_fabric_transfers() {
        struct Greedy;
        impl Component<u32> for Greedy {
            fn on_event(&mut self, ctx: &mut Ctx<'_, u32>, _: u32) {
                ctx.transfer(0, 1, 4_096);
            }
        }
        let mut engine = Engine::new();
        let id = engine.register(Greedy);
        engine.schedule_at(id, SimTime::ZERO, 1);
        engine.run();
    }

    #[test]
    fn fabric_mode_charges_the_transport() {
        struct WireDelay;
        impl Transport for WireDelay {
            fn transfer(&mut self, src: u32, dst: u32, bytes: u64, now: SimTime) -> SimTime {
                if src == dst {
                    return now;
                }
                now + SimDuration::from_nanos(bytes)
            }
        }
        struct Sender {
            delivered: Option<SimTime>,
        }
        impl Component<u32> for Sender {
            fn on_event(&mut self, ctx: &mut Ctx<'_, u32>, _: u32) {
                self.delivered = Some(ctx.transfer(0, 1, 1_000));
            }
        }
        let mut engine = Engine::with_transport(Box::new(WireDelay));
        assert_eq!(engine.cost_mode(), CostMode::Fabric);
        let id = engine.register(Sender { delivered: None });
        engine.schedule_at(id, SimTime::from_micros(2), 0);
        engine.run();
        assert_eq!(
            engine.component::<Sender>(id).delivered,
            Some(SimTime::from_micros(3))
        );
    }

    use std::sync::Mutex;

    #[derive(Default)]
    struct VecSink(Mutex<Vec<CausalRecord>>);

    impl CausalSink for VecSink {
        fn record(&self, record: CausalRecord) {
            self.0.lock().unwrap().push(record);
        }
    }

    struct Chainer {
        hops: u32,
        peer: ComponentId,
    }

    impl Component<u32> for Chainer {
        fn on_event(&mut self, ctx: &mut Ctx<'_, u32>, hop: u32) {
            ctx.blame("compute", SimDuration::from_micros(3));
            if hop < self.hops {
                ctx.send_to_at(self.peer, ctx.now() + SimDuration::from_micros(5), hop + 1);
            } else {
                ctx.mark("chain.done", ctx.now());
            }
        }
    }

    #[test]
    fn causal_records_link_children_to_parents() {
        let sink = Arc::new(VecSink::default());
        let mut engine = Engine::new();
        engine.set_causal_sink(sink.clone());
        let b = ComponentId(1);
        let a = engine.register(Chainer { hops: 3, peer: b });
        engine.register(Chainer { hops: 3, peer: a });
        engine.schedule_at(a, SimTime::from_micros(1), 1);
        engine.run();

        let records = sink.0.lock().unwrap();
        // Seed + 2 hops + terminal mark.
        assert_eq!(records.len(), 4);
        let seed = &records[0];
        assert_eq!(seed.parent, None);
        assert_eq!(seed.src, None);
        assert_eq!(seed.dst, a);
        for pair in records.windows(2) {
            let (parent, child) = (&pair[0], &pair[1]);
            assert_eq!(child.parent, Some(parent.seq), "chain is fully linked");
            assert_eq!(child.trace, seed.trace, "descendants inherit the trace");
            assert_eq!(child.scheduled_at, parent.fires_at);
        }
        let mark = records.last().unwrap();
        assert_eq!(mark.label, "chain.done");
        assert!(mark.seq >= MARK_SEQ_BASE, "marks use a disjoint seq space");
        // Every non-seed record carries the blame queued before scheduling.
        for child in &records[1..] {
            assert_eq!(child.blame, vec![("compute", SimDuration::from_micros(3))]);
        }
    }

    #[test]
    fn seeds_start_fresh_traces() {
        let sink = Arc::new(VecSink::default());
        let mut engine: Engine<u32> = Engine::new();
        engine.set_causal_sink(sink.clone());
        struct Quiet;
        impl Component<u32> for Quiet {
            fn on_event(&mut self, _: &mut Ctx<'_, u32>, _: u32) {}
        }
        let id = engine.register(Quiet);
        engine.schedule_at(id, SimTime::ZERO, 0);
        engine.schedule_at(id, SimTime::ZERO, 1);
        engine.run();
        let records = sink.0.lock().unwrap();
        assert_eq!(records.len(), 2);
        assert_ne!(records[0].trace, records[1].trace);
    }

    #[test]
    fn disabled_engine_runs_identically_to_traced_engine() {
        fn history(traced: bool) -> Vec<(u64, u32)> {
            struct Log {
                peer: ComponentId,
                seen: Vec<(u64, u32)>,
            }
            impl Component<u32> for Log {
                fn on_event(&mut self, ctx: &mut Ctx<'_, u32>, n: u32) {
                    self.seen.push((ctx.now().as_nanos(), n));
                    ctx.blame("x", SimDuration::from_micros(1));
                    if n > 0 {
                        ctx.send_to_at(self.peer, ctx.now() + SimDuration::from_micros(2), n - 1);
                    }
                }
            }
            let mut engine = Engine::new();
            if traced {
                engine.set_causal_sink(Arc::new(VecSink::default()));
            }
            let id = engine.register(Log {
                peer: ComponentId(0),
                seen: Vec::new(),
            });
            engine.schedule_at(id, SimTime::ZERO, 5);
            engine.run();
            std::mem::take(&mut engine.component_mut::<Log>(id).seen)
        }
        assert_eq!(history(false), history(true));
    }

    /// An open-loop generator: each firing roots the next request chain
    /// via `schedule_root_at`, blames some compute, and marks completion.
    struct OpenLoop {
        remaining: u32,
        fired_at: Vec<u64>,
    }

    impl Component<u32> for OpenLoop {
        fn on_event(&mut self, ctx: &mut Ctx<'_, u32>, n: u32) {
            self.fired_at.push(ctx.now().as_nanos());
            if self.remaining > 0 {
                self.remaining -= 1;
                ctx.schedule_root_at(ctx.now() + SimDuration::from_micros(10), n + 1);
            }
            ctx.blame("compute", SimDuration::from_micros(4));
            ctx.mark("req.done", ctx.now() + SimDuration::from_micros(4));
        }
    }

    #[test]
    fn sampled_sink_records_one_in_n_chains_end_to_end() {
        let sink = Arc::new(VecSink::default());
        let mut engine = Engine::new();
        engine.set_causal_sink_sampled(sink.clone(), 3);
        let id = engine.register(OpenLoop {
            remaining: 8,
            fired_at: Vec::new(),
        });
        engine.schedule_at(id, SimTime::ZERO, 0);
        engine.run();

        let records = sink.0.lock().unwrap();
        // 9 chains rooted (traces 1..=9); only 3, 6, 9 are sampled.
        let mut traces: Vec<u64> = records.iter().map(|r| r.trace).collect();
        traces.dedup();
        assert_eq!(traces, vec![3, 6, 9]);
        // Each sampled chain is complete: its root plus its blamed mark.
        for t in [3u64, 6, 9] {
            let chain: Vec<_> = records.iter().filter(|r| r.trace == t).collect();
            assert_eq!(chain.len(), 2, "root + mark for trace {t}");
            assert_eq!(chain[0].parent, None);
            assert_eq!(chain[1].label, "req.done");
            assert_eq!(
                chain[1].blame,
                vec![("compute", SimDuration::from_micros(4))]
            );
        }
    }

    #[test]
    fn sampling_rate_does_not_change_event_history() {
        let history = |sample: Option<u64>| -> Vec<u64> {
            let mut engine = Engine::new();
            if let Some(n) = sample {
                engine.set_causal_sink_sampled(Arc::new(VecSink::default()), n);
            }
            let id = engine.register(OpenLoop {
                remaining: 20,
                fired_at: Vec::new(),
            });
            engine.schedule_at(id, SimTime::ZERO, 0);
            engine.run();
            std::mem::take(&mut engine.component_mut::<OpenLoop>(id).fired_at)
        };
        let untraced = history(None);
        assert_eq!(untraced, history(Some(1)));
        assert_eq!(untraced, history(Some(7)));
    }

    #[test]
    fn default_sink_samples_every_trace() {
        let sink = Arc::new(VecSink::default());
        let mut engine = Engine::new();
        engine.set_causal_sink(sink.clone());
        let id = engine.register(OpenLoop {
            remaining: 3,
            fired_at: Vec::new(),
        });
        engine.schedule_at(id, SimTime::ZERO, 0);
        engine.run();
        let records = sink.0.lock().unwrap();
        let roots = records.iter().filter(|r| r.parent.is_none()).count();
        assert_eq!(roots, 4, "sampling of 1 keeps every chain");
    }

    #[test]
    fn profiler_attributes_events_without_changing_history() {
        struct SlowWire;
        impl Transport for SlowWire {
            fn transfer(&mut self, src: u32, dst: u32, bytes: u64, now: SimTime) -> SimTime {
                if src == dst {
                    return now;
                }
                now + SimDuration::from_nanos(bytes)
            }
        }
        struct Talker {
            peer: ComponentId,
            hops_left: u32,
            seen: Vec<u64>,
        }
        impl Component<u32> for Talker {
            fn on_event(&mut self, ctx: &mut Ctx<'_, u32>, n: u32) {
                self.seen.push(ctx.now().as_nanos());
                let delivered = ctx.transfer(0, 1, 1_000);
                if self.hops_left > 0 {
                    self.hops_left -= 1;
                    ctx.send_to_at(self.peer, delivered, n + 1);
                }
            }
        }
        let run = |profiled: bool| {
            let mut engine = Engine::with_transport(Box::new(SlowWire));
            if profiled {
                engine.enable_profiler(&["talker-a", "talker-b"]);
            }
            let b = ComponentId(1);
            let a = engine.register(Talker {
                peer: b,
                hops_left: 6,
                seen: Vec::new(),
            });
            engine.register(Talker {
                peer: a,
                hops_left: 6,
                seen: Vec::new(),
            });
            engine.schedule_at(a, SimTime::ZERO, 0);
            engine.run();
            let history = engine.component::<Talker>(a).seen.clone();
            (history, engine.take_profile())
        };
        let (plain_history, no_profile) = run(false);
        assert!(no_profile.is_none());
        let (profiled_history, profile) = run(true);
        assert_eq!(
            plain_history, profiled_history,
            "profiling is pure observation"
        );
        let profile = profile.unwrap();
        // 13 events total: the seed plus 6 hops from each side.
        assert_eq!(profile.events, 13);
        assert_eq!(profile.components.len(), 2);
        assert_eq!(profile.components[0].label, "talker-a");
        assert_eq!(profile.components[0].events, 7);
        assert_eq!(profile.components[1].label, "talker-b");
        assert_eq!(profile.components[1].events, 6);
        // Taking the profile disabled the profiler.
        let collapsed = profile.collapsed();
        for line in collapsed.lines() {
            let (_, count) = line.rsplit_once(' ').unwrap();
            count.parse::<u64>().unwrap();
        }
    }

    #[test]
    fn profiler_labels_default_past_the_given_list() {
        struct Quiet;
        impl Component<u32> for Quiet {
            fn on_event(&mut self, _: &mut Ctx<'_, u32>, _: u32) {}
        }
        let mut engine = Engine::new();
        engine.enable_profiler(&["only"]);
        let a = engine.register(Quiet);
        let b = engine.register(Quiet);
        engine.schedule_at(a, SimTime::ZERO, 0);
        engine.schedule_at(b, SimTime::ZERO, 0);
        engine.run();
        let profile = engine.take_profile().unwrap();
        let labels: Vec<_> = profile
            .components
            .iter()
            .map(|c| c.label.as_str())
            .collect();
        assert_eq!(labels, ["only", "component1"]);
    }

    #[test]
    fn transfer_cost_breakdown_partitions_the_interval() {
        let opaque = TransferCost::opaque(SimTime::from_micros(2), SimTime::from_micros(9));
        assert_eq!(opaque.total(), SimDuration::from_micros(7));
        assert_eq!(opaque.wire, SimDuration::from_micros(7));
        let free = TransferCost::free(SimTime::from_micros(4));
        assert_eq!(free.total(), SimDuration::ZERO);
        assert_eq!(free.delivered, SimTime::from_micros(4));
    }

    #[test]
    fn default_rpc_is_request_then_response() {
        struct WireDelay;
        impl Transport for WireDelay {
            fn transfer(&mut self, _: u32, _: u32, bytes: u64, now: SimTime) -> SimTime {
                now + SimDuration::from_nanos(bytes)
            }
        }
        let mut t = WireDelay;
        let done = t.rpc(0, 1, 100, 900, SimTime::ZERO);
        assert_eq!(done, SimTime::from_micros(1));
    }
}
