//! The composable simulation engine: typed components over one
//! [`EventQueue`].
//!
//! Every simulator in this workspace used to hand-roll the same loop:
//! `while let Some((now, ev)) = q.pop() { ... }`. That shape made each
//! subsystem its own closed world — paging, cooperative caching, and
//! parallel jobs could never contend for the same wires because each loop
//! owned a private clock and charged *constant* costs for remote traffic.
//!
//! The [`Engine`] keeps the queue's determinism (timestamp order, FIFO
//! among equal timestamps) and adds two things:
//!
//! * **Routing** — events carry a destination [`ComponentId`]; registered
//!   [`Component`]s receive their events through [`Component::on_event`]
//!   and schedule follow-ups or message other components through [`Ctx`].
//!   Delivery order among equal timestamps is the order the events were
//!   scheduled, regardless of component registration order.
//! * **A cost model** — components ask [`Ctx::transfer`] / [`Ctx::rpc`]
//!   what remote traffic costs. Under [`CostModel::Fixed`] there is no
//!   shared fabric and components charge their own constants (the legacy
//!   behaviour, bit-for-bit). Under [`CostModel::Fabric`] every transfer
//!   reserves real occupancy on one shared [`Transport`], so independent
//!   workloads slow each other down — the composition the paper argues
//!   for.
//!
//! Heterogeneous engines (several subsystems on one fabric) wrap each
//! subsystem's event enum in one routed enum via [`EventCast`]; a
//! component written against its own event type then drops into any engine
//! whose event type embeds it.

use std::any::Any;

use crate::{EventId, EventQueue, SimDuration, SimTime};

/// Identifies a component registered with an [`Engine`], in registration
/// order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ComponentId(pub usize);

/// Lossless embedding of a component's event type `E` into an engine's
/// routed event type `M`.
///
/// The identity embedding (`M = E`) is provided for every type, so a
/// single-component engine needs no wrapper enum. A coupled engine defines
/// one variant per subsystem and implements `EventCast` per variant;
/// [`EventCast::downcast`] may panic when handed the wrong variant — that
/// only happens when an event was routed to the wrong component, which is
/// a simulation bug.
pub trait EventCast<E>: Sized {
    /// Wraps a component-level event for the engine's queue.
    fn upcast(ev: E) -> Self;
    /// Unwraps an event delivered to the component.
    ///
    /// # Panics
    ///
    /// Implementations panic if `self` does not hold an `E` — the event
    /// was routed to the wrong component.
    fn downcast(self) -> E;
}

impl<E> EventCast<E> for E {
    fn upcast(ev: E) -> E {
        ev
    }
    fn downcast(self) -> E {
        self
    }
}

/// A shared communication fabric the engine charges remote traffic
/// against.
///
/// Implementations are occupancy models: each call reserves wire and
/// software time and returns when the payload is *delivered*, so back-to-
/// back calls from competing components queue behind each other.
pub trait Transport {
    /// Moves `bytes` from node `src` to node `dst`, requested at `now`,
    /// and returns the delivery time. `src == dst` is a local copy and
    /// must cost nothing (return `now`).
    fn transfer(&mut self, src: u32, dst: u32, bytes: u64, now: SimTime) -> SimTime;

    /// A request/response pair: `request_bytes` to `dst`, then
    /// `response_bytes` back. Returns when the response is delivered.
    fn rpc(
        &mut self,
        src: u32,
        dst: u32,
        request_bytes: u64,
        response_bytes: u64,
        now: SimTime,
    ) -> SimTime {
        let there = self.transfer(src, dst, request_bytes, now);
        self.transfer(dst, src, response_bytes, there)
    }
}

/// How an [`Engine`] prices remote traffic.
pub enum CostModel {
    /// No shared fabric: components charge their own constant costs.
    /// Legacy single-subsystem runs use this mode and reproduce the
    /// pre-engine results byte-for-byte.
    Fixed,
    /// All traffic traverses one live fabric and contends for its
    /// occupancy.
    Fabric(Box<dyn Transport>),
}

/// The cost-model discriminant, for components that branch on it without
/// needing the transport itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostMode {
    /// See [`CostModel::Fixed`].
    Fixed,
    /// See [`CostModel::Fabric`].
    Fabric,
}

/// A simulated subsystem driven by an [`Engine`].
///
/// The `Any` supertrait lets callers recover the concrete component (and
/// its accumulated results) after a run via [`Engine::component`].
pub trait Component<M>: Any {
    /// Handles one event addressed to this component.
    fn on_event(&mut self, ctx: &mut Ctx<'_, M>, event: M);
}

struct Envelope<M> {
    dst: ComponentId,
    event: M,
}

/// The view a component gets of the engine while handling an event:
/// the clock, scheduling, the message bus, and the cost model.
pub struct Ctx<'a, M> {
    queue: &'a mut EventQueue<Envelope<M>>,
    cost: &'a mut CostModel,
    self_id: ComponentId,
}

impl<M> Ctx<'_, M> {
    /// Current simulated time (the timestamp of the event being handled).
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// The id of the component handling the current event.
    pub fn self_id(&self) -> ComponentId {
        self.self_id
    }

    /// Which cost model the engine is running under.
    pub fn cost_mode(&self) -> CostMode {
        match self.cost {
            CostModel::Fixed => CostMode::Fixed,
            CostModel::Fabric(_) => CostMode::Fabric,
        }
    }

    /// Schedules an event to this component at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is in the past (see [`EventQueue::schedule_at`]).
    pub fn schedule_at(&mut self, time: SimTime, event: M) -> EventId {
        let dst = self.self_id;
        self.queue.schedule_at(time, Envelope { dst, event })
    }

    /// Schedules an event to this component `delay` from now.
    pub fn schedule_after(&mut self, delay: SimDuration, event: M) -> EventId {
        self.schedule_at(self.queue.now() + delay, event)
    }

    /// Sends an event to another component, delivered at the current
    /// timestamp after everything already scheduled for it (FIFO).
    pub fn send_to(&mut self, dst: ComponentId, event: M) -> EventId {
        self.send_to_at(dst, self.queue.now(), event)
    }

    /// Sends an event to another component at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is in the past.
    pub fn send_to_at(&mut self, dst: ComponentId, time: SimTime, event: M) -> EventId {
        self.queue.schedule_at(time, Envelope { dst, event })
    }

    /// Cancels a previously scheduled event. Returns `true` if it was
    /// still pending.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }

    /// Charges a one-way transfer of `bytes` from node `src` to node
    /// `dst` against the shared fabric, returning the delivery time.
    ///
    /// # Panics
    ///
    /// Panics under [`CostModel::Fixed`]: fixed-mode components charge
    /// their own constants instead of consulting a fabric.
    pub fn transfer(&mut self, src: u32, dst: u32, bytes: u64) -> SimTime {
        let now = self.queue.now();
        self.transfer_at(src, dst, bytes, now)
    }

    /// [`Ctx::transfer`] starting at an explicit time `at` (at or after
    /// now) — for chaining the hops of a multi-hop exchange, where each
    /// leg departs when the previous one delivered.
    ///
    /// # Panics
    ///
    /// Panics under [`CostModel::Fixed`] (see [`Ctx::transfer`]).
    pub fn transfer_at(&mut self, src: u32, dst: u32, bytes: u64, at: SimTime) -> SimTime {
        match self.cost {
            CostModel::Fixed => panic!(
                "fabric transfer requested under CostModel::Fixed; \
                 fixed-mode components charge their own constants"
            ),
            CostModel::Fabric(t) => t.transfer(src, dst, bytes, at),
        }
    }

    /// Charges a request/response exchange against the shared fabric,
    /// returning when the response is delivered.
    ///
    /// # Panics
    ///
    /// Panics under [`CostModel::Fixed`] (see [`Ctx::transfer`]).
    pub fn rpc(&mut self, src: u32, dst: u32, request_bytes: u64, response_bytes: u64) -> SimTime {
        let now = self.queue.now();
        match self.cost {
            CostModel::Fixed => panic!(
                "fabric rpc requested under CostModel::Fixed; \
                 fixed-mode components charge their own constants"
            ),
            CostModel::Fabric(t) => t.rpc(src, dst, request_bytes, response_bytes, now),
        }
    }
}

/// A deterministic discrete-event engine routing typed events to
/// registered [`Component`]s.
///
/// # Example
///
/// ```
/// use now_sim::{Component, Ctx, Engine, SimDuration, SimTime};
///
/// struct Counter {
///     left: u32,
///     fired: u32,
/// }
///
/// impl Component<u32> for Counter {
///     fn on_event(&mut self, ctx: &mut Ctx<'_, u32>, ev: u32) {
///         self.fired += ev;
///         if self.left > 0 {
///             self.left -= 1;
///             ctx.schedule_after(SimDuration::from_micros(10), 1);
///         }
///     }
/// }
///
/// let mut engine = Engine::new();
/// let id = engine.register(Counter { left: 3, fired: 0 });
/// engine.schedule_at(id, SimTime::ZERO, 1);
/// engine.run();
/// assert_eq!(engine.component::<Counter>(id).fired, 4);
/// assert_eq!(engine.now(), SimTime::from_micros(30));
/// ```
pub struct Engine<M> {
    queue: EventQueue<Envelope<M>>,
    components: Vec<Box<dyn Component<M>>>,
    cost: CostModel,
}

impl<M: 'static> Default for Engine<M> {
    fn default() -> Self {
        Engine::new()
    }
}

impl<M: 'static> Engine<M> {
    /// An engine in [`CostModel::Fixed`] mode (legacy constant costs).
    pub fn new() -> Self {
        Engine::with_cost_model(CostModel::Fixed)
    }

    /// An engine whose remote traffic traverses `transport`
    /// ([`CostModel::Fabric`]).
    pub fn with_transport(transport: Box<dyn Transport>) -> Self {
        Engine::with_cost_model(CostModel::Fabric(transport))
    }

    /// An engine with an explicit cost model.
    pub fn with_cost_model(cost: CostModel) -> Self {
        Engine {
            queue: EventQueue::new(),
            components: Vec::new(),
            cost,
        }
    }

    /// Registers a component and returns its routing id.
    pub fn register<C: Component<M>>(&mut self, component: C) -> ComponentId {
        self.components.push(Box::new(component));
        ComponentId(self.components.len() - 1)
    }

    /// Number of registered components.
    pub fn components(&self) -> usize {
        self.components.len()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Pending (non-cancelled) events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Which cost model the engine is running under.
    pub fn cost_mode(&self) -> CostMode {
        match self.cost {
            CostModel::Fixed => CostMode::Fixed,
            CostModel::Fabric(_) => CostMode::Fabric,
        }
    }

    /// Seeds an event for `dst` at absolute time `time` (used to start a
    /// simulation before [`Engine::run`]).
    ///
    /// # Panics
    ///
    /// Panics if `time` is in the past.
    pub fn schedule_at(&mut self, dst: ComponentId, time: SimTime, event: M) -> EventId {
        self.queue.schedule_at(time, Envelope { dst, event })
    }

    /// Runs until the queue is empty, dispatching each event to its
    /// component in deterministic order (timestamp, then FIFO).
    ///
    /// # Panics
    ///
    /// Panics if an event addresses an unregistered component.
    pub fn run(&mut self) {
        while let Some((_, envelope)) = self.queue.pop() {
            let component = match self.components.get_mut(envelope.dst.0) {
                Some(c) => c,
                None => panic!(
                    "event addressed to unregistered component {:?}",
                    envelope.dst
                ),
            };
            let mut ctx = Ctx {
                queue: &mut self.queue,
                cost: &mut self.cost,
                self_id: envelope.dst,
            };
            component.on_event(&mut ctx, envelope.event);
        }
    }

    /// Borrows a registered component as its concrete type, typically to
    /// read results after [`Engine::run`].
    ///
    /// # Panics
    ///
    /// Panics if `id` is unregistered or the component is not a `C`.
    pub fn component<C: Component<M>>(&self, id: ComponentId) -> &C {
        let component: &dyn Component<M> = &*self.components[id.0];
        let any: &dyn Any = component;
        any.downcast_ref::<C>()
            .expect("component type mismatch: wrong ComponentId for this type")
    }

    /// Mutably borrows a registered component as its concrete type.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unregistered or the component is not a `C`.
    pub fn component_mut<C: Component<M>>(&mut self, id: ComponentId) -> &mut C {
        let component: &mut dyn Component<M> = &mut *self.components[id.0];
        let any: &mut dyn Any = component;
        any.downcast_mut::<C>()
            .expect("component type mismatch: wrong ComponentId for this type")
    }

    /// The cost model, e.g. to inspect a fabric's state after a run.
    pub fn cost_model_mut(&mut self) -> &mut CostModel {
        &mut self.cost
    }
}

impl<M> std::fmt::Debug for Engine<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("components", &self.components.len())
            .field("pending", &self.queue.len())
            .field("now", &self.queue.now())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Ev {
        Ping(u32),
        Echo(u32),
    }

    struct Pinger {
        target: ComponentId,
        sent: u32,
        echoes: Vec<u32>,
    }

    impl Component<Ev> for Pinger {
        fn on_event(&mut self, ctx: &mut Ctx<'_, Ev>, ev: Ev) {
            match ev {
                Ev::Ping(n) => {
                    self.sent += 1;
                    ctx.send_to(self.target, Ev::Ping(n));
                }
                Ev::Echo(n) => self.echoes.push(n),
            }
        }
    }

    struct Echoer {
        heard: Vec<(SimTime, u32)>,
    }

    impl Component<Ev> for Echoer {
        fn on_event(&mut self, ctx: &mut Ctx<'_, Ev>, ev: Ev) {
            let Ev::Ping(n) = ev else {
                panic!("echoer only receives pings")
            };
            self.heard.push((ctx.now(), n));
            let origin = ComponentId(0);
            ctx.send_to(origin, Ev::Echo(n));
        }
    }

    #[test]
    fn routed_messages_round_trip() {
        let mut engine = Engine::new();
        let echoer = ComponentId(1);
        let pinger = engine.register(Pinger {
            target: echoer,
            sent: 0,
            echoes: Vec::new(),
        });
        engine.register(Echoer { heard: Vec::new() });
        engine.schedule_at(pinger, SimTime::from_micros(5), Ev::Ping(7));
        engine.run();
        assert_eq!(engine.component::<Pinger>(pinger).echoes, vec![7]);
        let heard = &engine.component::<Echoer>(echoer).heard;
        assert_eq!(heard, &[(SimTime::from_micros(5), 7)]);
    }

    #[test]
    fn same_timestamp_bus_delivery_is_fifo() {
        struct Recorder {
            log: Vec<u32>,
        }
        impl Component<u32> for Recorder {
            fn on_event(&mut self, _: &mut Ctx<'_, u32>, ev: u32) {
                self.log.push(ev);
            }
        }
        let mut engine = Engine::new();
        let id = engine.register(Recorder { log: Vec::new() });
        for n in 0..50 {
            engine.schedule_at(id, SimTime::from_micros(3), n);
        }
        engine.run();
        assert_eq!(
            engine.component::<Recorder>(id).log,
            (0..50).collect::<Vec<_>>()
        );
    }

    #[test]
    #[should_panic(expected = "unregistered component")]
    fn unregistered_destination_panics() {
        let mut engine: Engine<u32> = Engine::new();
        engine.schedule_at(ComponentId(3), SimTime::ZERO, 1);
        engine.run();
    }

    #[test]
    #[should_panic(expected = "CostModel::Fixed")]
    fn fixed_mode_rejects_fabric_transfers() {
        struct Greedy;
        impl Component<u32> for Greedy {
            fn on_event(&mut self, ctx: &mut Ctx<'_, u32>, _: u32) {
                ctx.transfer(0, 1, 4_096);
            }
        }
        let mut engine = Engine::new();
        let id = engine.register(Greedy);
        engine.schedule_at(id, SimTime::ZERO, 1);
        engine.run();
    }

    #[test]
    fn fabric_mode_charges_the_transport() {
        struct WireDelay;
        impl Transport for WireDelay {
            fn transfer(&mut self, src: u32, dst: u32, bytes: u64, now: SimTime) -> SimTime {
                if src == dst {
                    return now;
                }
                now + SimDuration::from_nanos(bytes)
            }
        }
        struct Sender {
            delivered: Option<SimTime>,
        }
        impl Component<u32> for Sender {
            fn on_event(&mut self, ctx: &mut Ctx<'_, u32>, _: u32) {
                self.delivered = Some(ctx.transfer(0, 1, 1_000));
            }
        }
        let mut engine = Engine::with_transport(Box::new(WireDelay));
        assert_eq!(engine.cost_mode(), CostMode::Fabric);
        let id = engine.register(Sender { delivered: None });
        engine.schedule_at(id, SimTime::from_micros(2), 0);
        engine.run();
        assert_eq!(
            engine.component::<Sender>(id).delivered,
            Some(SimTime::from_micros(3))
        );
    }

    #[test]
    fn default_rpc_is_request_then_response() {
        struct WireDelay;
        impl Transport for WireDelay {
            fn transfer(&mut self, _: u32, _: u32, bytes: u64, now: SimTime) -> SimTime {
                now + SimDuration::from_nanos(bytes)
            }
        }
        let mut t = WireDelay;
        let done = t.rpc(0, 1, 100, 900, SimTime::ZERO);
        assert_eq!(done, SimTime::from_micros(1));
    }
}
