//! Deterministic fan-out over independent simulation runs.
//!
//! The paper's whole argument is that a building of workstations wins by
//! exploiting embarrassing parallelism across cheap nodes; this module
//! applies the same argument to the harness itself. Every sweep point,
//! Monte-Carlo trial, and table row in the workspace is an *independent*
//! deterministic computation — each derives all of its randomness from
//! its own seed — so a work list can be fanned out across OS threads and
//! still produce output byte-identical to the serial loop:
//!
//! * [`run_indexed`] hands items to scoped worker threads but returns the
//!   results **in input order**, so any reduction the caller performs
//!   (rendering rows, summing floats) visits them exactly as the serial
//!   path would. Floating-point reductions in particular stay exact:
//!   addition order never depends on which worker finished first.
//! * Work items must not share mutable state; each worker only reads the
//!   shared slice. Determinism is then a theorem, not a hope: the value
//!   of result `i` is a pure function of `items[i]`.
//!
//! The worker count comes from the caller, usually via [`resolve_jobs`]:
//! an explicit `--jobs N` wins, then the `NOW_JOBS` environment variable,
//! then the machine's available parallelism. `jobs = 1` is exactly the
//! legacy serial loop — no threads are spawned at all.
//!
//! # Example
//!
//! ```
//! use now_sim::parallel::run_indexed;
//!
//! let squares = run_indexed(4, &[1u64, 2, 3, 4, 5], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16, 25]);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};

/// The machine's available parallelism (1 if it cannot be determined).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// The worker count requested through the `NOW_JOBS` environment
/// variable, if set to a positive integer.
pub fn jobs_from_env() -> Option<usize> {
    std::env::var("NOW_JOBS")
        .ok()?
        .trim()
        .parse::<usize>()
        .ok()
        .filter(|&jobs| jobs >= 1)
}

/// Resolves a worker count: an explicit request (e.g. a `--jobs` flag)
/// wins, then `NOW_JOBS`, then [`default_jobs`]. Never returns 0.
pub fn resolve_jobs(explicit: Option<usize>) -> usize {
    explicit
        .filter(|&jobs| jobs >= 1)
        .or_else(jobs_from_env)
        .unwrap_or_else(default_jobs)
}

/// Runs `f(i, &items[i])` for every item, fanning the work out over up to
/// `jobs` scoped threads, and returns the results **in input order**.
///
/// Items are claimed dynamically (an atomic cursor), so heterogeneous
/// item costs balance across workers; results are slotted back by index,
/// so the returned `Vec` — and any order-sensitive reduction over it —
/// is byte-identical to the serial loop regardless of `jobs` or of how
/// the OS schedules the workers. With `jobs <= 1` (or fewer than two
/// items) no threads are spawned: that *is* the legacy serial path.
///
/// # Panics
///
/// Propagates a panic from any invocation of `f`.
pub fn run_indexed<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = jobs.clamp(1, items.len().max(1));
    if workers == 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }
    let cursor = AtomicUsize::new(0);
    let buckets: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut claimed = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        claimed.push((i, f(i, item)));
                    }
                    claimed
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| match handle.join() {
                Ok(results) => results,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    for (i, result) in buckets.into_iter().flatten() {
        slots[i] = Some(result);
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every index was claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let items: Vec<u64> = (0..100).collect();
        // Make later items cheaper so workers finish out of order.
        let out = run_indexed(8, &items, |i, &x| {
            if i < 4 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            x * 10
        });
        assert_eq!(out, (0..100).map(|x| x * 10).collect::<Vec<_>>());
    }

    #[test]
    fn output_is_independent_of_job_count() {
        let items: Vec<u64> = (0..257).collect();
        let f = |i: usize, x: &u64| -> f64 { (*x as f64).sqrt() + i as f64 };
        let serial = run_indexed(1, &items, f);
        for jobs in [2, 3, 8, 64] {
            assert_eq!(serial, run_indexed(jobs, &items, f), "jobs={jobs}");
        }
    }

    #[test]
    fn empty_and_single_item_lists_work() {
        let none: Vec<i32> = run_indexed(8, &[], |_, x: &i32| *x);
        assert!(none.is_empty());
        assert_eq!(run_indexed(8, &[7], |_, x| x + 1), vec![8]);
    }

    #[test]
    fn zero_jobs_is_treated_as_serial() {
        assert_eq!(run_indexed(0, &[1, 2, 3], |_, x| x * 2), vec![2, 4, 6]);
    }

    #[test]
    fn resolve_jobs_prefers_explicit_over_default() {
        assert_eq!(resolve_jobs(Some(3)), 3);
        assert!(resolve_jobs(None) >= 1);
        assert!(resolve_jobs(Some(0)) >= 1, "0 falls through to a default");
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        run_indexed(4, &[1, 2, 3, 4, 5, 6, 7, 8], |i, _: &i32| {
            if i == 5 {
                panic!("boom");
            }
            i
        });
    }
}
