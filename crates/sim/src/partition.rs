//! Conservative parallel execution: one run sharded across cores.
//!
//! A [`PartitionedEngine`] runs N [`Engine`]s — one per partition, each
//! owning a disjoint set of component ids with its own event queue — and
//! synchronizes them with a conservative window protocol:
//!
//! 1. **Window negotiation.** The next window starts at the earliest
//!    pending event across all partitions and extends one *lookahead* `L`
//!    into the future. `L` is a hard lower bound on the delay of any
//!    cross-partition event: in this workspace it comes from the priced
//!    fabric — software overhead plus wire time of the smallest message is
//!    the least any remote delivery can cost, so an event a partition
//!    sends while processing time `t < start + L` fires at
//!    `t + L >= start + L`, past the window edge.
//! 2. **Parallel drain.** Every partition processes its own events
//!    *strictly before* the edge on its own thread (scoped threads, no
//!    locks — each engine is moved to a worker for the window). Sends to
//!    components homed elsewhere are diverted into a per-partition outbox
//!    instead of any queue.
//! 3. **Barrier merge.** Back on the coordinating thread, the outboxes
//!    are concatenated in partition order and stably sorted by
//!    `(fires_at, sender)`. A component lives in exactly one partition
//!    and its sends sit in one outbox in emission order, so this total
//!    order is independent of the partition count: the same stream of
//!    envelopes is injected in the same order whether the run used 1, 2,
//!    or 8 partitions. Injection draws fresh seqs from each destination
//!    queue, preserving FIFO among equal timestamps.
//!
//! Safety of the edge: a partition's clock never passes the last event it
//! processed, which is `< edge`; injected envelopes fire `>= edge`, so the
//! queue's schedule-into-past panic can never trip at a window boundary —
//! and if a protocol bug ever drained past the edge, that panic is the
//! backstop that turns silent history corruption into a loud failure.
//!
//! [`Lookahead::Closed`] is the degenerate — and fastest — case: the
//! partition map promises *no* cross-partition traffic at all (the
//! scenario layer's replicated cells, which share nothing but the causal
//! log). One unbounded window drains everything in parallel with a single
//! barrier, and any remote send panics as a partitioning bug.

use std::sync::Arc;

use crate::engine::{Component, CostModel, RemoteEnvelope, WindowRouting};
use crate::{CausalSink, ComponentId, Engine, EventId, SimDuration, SimTime};

/// The cross-partition synchronization contract of a [`PartitionedEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookahead {
    /// Conservative window of this width: every cross-partition event
    /// must fire at least this long after the moment it is scheduled.
    /// Use the minimum cross-partition delivery latency of the cost
    /// model (e.g. `Network::min_remote_latency`).
    Window(SimDuration),
    /// The partition map is event-closed: no cross-partition events
    /// exist, so the whole run is one unbounded window with a single
    /// barrier. Remote sends panic.
    Closed,
}

/// N partition engines coordinated by conservative windows (see the
/// module docs for the protocol and its determinism argument).
///
/// Component ids are global: every partition's engine shares one id
/// space, with gaps where a component is homed elsewhere, so components
/// address each other exactly as they would on a serial [`Engine`] and
/// need no logic changes. With one partition the coordinator degenerates
/// to the serial engine — no threads are spawned — which is the baseline
/// the speedup harness times against.
pub struct PartitionedEngine<M> {
    parts: Vec<Engine<M>>,
    /// `home[c]` = partition owning component `c`.
    home: Vec<u32>,
    lookahead: Lookahead,
    /// Per-partition outbox buffers, recycled across windows (and runs):
    /// each window borrows its partition's buffer, drains it at the
    /// barrier, and hands the empty allocation back, so the window loop
    /// allocates nothing once the buffers are warm.
    outboxes: Vec<Vec<RemoteEnvelope<M>>>,
    /// The barrier merge buffer, recycled the same way.
    merge: Vec<RemoteEnvelope<M>>,
}

impl<M: Send + 'static> PartitionedEngine<M> {
    /// One engine per cost model, under the given lookahead contract.
    /// Each partition prices its own traffic on its own cost model; a
    /// fabric shared *across* partitions cannot be priced deterministically
    /// in parallel, so partition maps must cut along cost-model seams.
    ///
    /// # Panics
    ///
    /// Panics on an empty cost-model list.
    pub fn new(cost_models: Vec<CostModel>, lookahead: Lookahead) -> Self {
        assert!(!cost_models.is_empty(), "need at least one partition");
        let partitions = cost_models.len();
        PartitionedEngine {
            parts: cost_models
                .into_iter()
                .map(Engine::with_cost_model)
                .collect(),
            home: Vec::new(),
            lookahead,
            outboxes: (0..partitions).map(|_| Vec::new()).collect(),
            merge: Vec::new(),
        }
    }

    /// `partitions` engines in [`CostModel::Fixed`] mode — the shape unit
    /// and property tests use.
    pub fn with_fixed(partitions: usize, lookahead: Lookahead) -> Self {
        PartitionedEngine::new(
            (0..partitions).map(|_| CostModel::Fixed).collect(),
            lookahead,
        )
    }

    /// Number of partitions.
    pub fn partitions(&self) -> usize {
        self.parts.len()
    }

    /// Registers `component` homed in `partition` and returns its global
    /// routing id. Every other partition records a gap so the id spaces
    /// stay congruent.
    ///
    /// # Panics
    ///
    /// Panics if `partition` is out of range.
    pub fn register<C: Component<M>>(&mut self, partition: u32, component: C) -> ComponentId {
        assert!(
            (partition as usize) < self.parts.len(),
            "partition {partition} out of range ({} partitions)",
            self.parts.len()
        );
        let id = self.parts[partition as usize].register(component);
        for (p, engine) in self.parts.iter_mut().enumerate() {
            if p != partition as usize {
                let gap = engine.register_gap();
                debug_assert_eq!(gap, id, "partition id spaces diverged");
            }
        }
        self.home.push(partition);
        debug_assert_eq!(self.home.len() - 1, id.0);
        id
    }

    /// The partition a component is homed in.
    pub fn home_of(&self, id: ComponentId) -> u32 {
        self.home[id.0]
    }

    /// Seeds an event for `dst` at absolute time `time` into `dst`'s home
    /// partition, rooting a fresh trace exactly like
    /// [`Engine::schedule_at`].
    pub fn schedule_at(&mut self, dst: ComponentId, time: SimTime, event: M) -> EventId {
        self.parts[self.home[dst.0] as usize].schedule_at(dst, time, event)
    }

    /// Enables causal tracing on every partition, sharing one sink. Each
    /// partition writes seqs and trace ids offset by `p << 44` so the
    /// shared log never collides; provenance links across partition
    /// boundaries are expressed in the same offset space.
    pub fn set_causal_sink(&mut self, sink: Arc<dyn CausalSink>) {
        self.set_causal_sink_sampled(sink, 1);
    }

    /// [`PartitionedEngine::set_causal_sink`] with 1-in-N trace sampling
    /// (see [`Engine::set_causal_sink_sampled`]; sampling applies to
    /// per-partition offset trace ids, so rates other than 1 sample
    /// *different* chains than a serial run would — the byte-diffed
    /// scenario paths use 1).
    pub fn set_causal_sink_sampled(&mut self, sink: Arc<dyn CausalSink>, sample_every: u64) {
        for (p, engine) in self.parts.iter_mut().enumerate() {
            engine.set_causal_sink_sampled(sink.clone(), sample_every);
            engine.set_causal_seq_offset((p as u64) << 44);
        }
    }

    /// Runs every partition to completion under the window protocol.
    ///
    /// # Panics
    ///
    /// Panics if a component violates the lookahead contract (see
    /// [`Lookahead`]), if an event addresses a component not homed where
    /// the partition map says, or if a worker thread panics (the panic is
    /// propagated).
    pub fn run(&mut self) {
        let home: Arc<[u32]> = self.home.clone().into();
        let lookahead = match self.lookahead {
            Lookahead::Window(l) => Some(l),
            Lookahead::Closed => None,
        };
        // Window negotiation: the earliest pending event anywhere opens
        // the window; the lookahead closes it. No events left anywhere
        // means the run is complete.
        while let Some(start) = self.parts.iter().filter_map(Engine::next_event_time).min() {
            // A `None` edge (closed map, or a window reaching past the
            // end of representable time) drains everything in one pass.
            let edge = lookahead.and_then(|l| start.checked_add(l));
            if self.parts.len() == 1 {
                let mut routing = WindowRouting {
                    home: home.clone(),
                    my_partition: 0,
                    lookahead,
                    outbox: std::mem::take(&mut self.outboxes[0]),
                };
                self.parts[0].run_window(edge, &mut routing);
                self.merge.append(&mut routing.outbox);
                self.outboxes[0] = routing.outbox;
            } else {
                let home = &home;
                let merge = &mut self.merge;
                let outboxes = &mut self.outboxes;
                std::thread::scope(|scope| {
                    let workers: Vec<_> = self
                        .parts
                        .iter_mut()
                        .zip(outboxes.iter_mut())
                        .enumerate()
                        .map(|(p, (engine, slot))| {
                            let outbox = std::mem::take(slot);
                            scope.spawn(move || {
                                let mut routing = WindowRouting {
                                    home: home.clone(),
                                    my_partition: p as u32,
                                    lookahead,
                                    outbox,
                                };
                                engine.run_window(edge, &mut routing);
                                routing.outbox
                            })
                        })
                        .collect();
                    for (w, slot) in workers.into_iter().zip(outboxes.iter_mut()) {
                        match w.join() {
                            Ok(mut outbox) => {
                                merge.append(&mut outbox);
                                *slot = outbox;
                            }
                            Err(payload) => std::panic::resume_unwind(payload),
                        }
                    }
                });
            }
            // Deterministic merge: stable sort by (time, sender). Each
            // sender's envelopes live in exactly one outbox in emission
            // order, so the resulting total order — and therefore the
            // seqs the destination queues assign — does not depend on
            // how components were divided into partitions.
            self.merge.sort_by_key(|env| (env.fires_at, env.src.0));
            for env in self.merge.drain(..) {
                let dst_part = home[env.dst.0] as usize;
                self.parts[dst_part].inject_remote(env);
            }
        }
    }

    /// Borrows a component as its concrete type from its home partition
    /// (see [`Engine::component`]).
    pub fn component<C: Component<M>>(&self, id: ComponentId) -> &C {
        self.parts[self.home[id.0] as usize].component(id)
    }

    /// Mutably borrows a component as its concrete type from its home
    /// partition (see [`Engine::component_mut`]).
    pub fn component_mut<C: Component<M>>(&mut self, id: ComponentId) -> &mut C {
        self.parts[self.home[id.0] as usize].component_mut(id)
    }

    /// The latest partition clock — after [`PartitionedEngine::run`],
    /// when the whole simulation has ended.
    pub fn now(&self) -> SimTime {
        self.parts
            .iter()
            .map(Engine::now)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Pending events across all partitions.
    pub fn pending(&self) -> usize {
        self.parts.iter().map(Engine::pending).sum()
    }
}

impl<M> std::fmt::Debug for PartitionedEngine<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PartitionedEngine")
            .field("partitions", &self.parts.len())
            .field("components", &self.home.len())
            .field("lookahead", &self.lookahead)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Ctx;

    /// Forwards each received value around a ring with a fixed delay,
    /// recording (time, value) — the canonical cross-partition workload.
    struct RingHop {
        next: ComponentId,
        delay: SimDuration,
        hops_left: u32,
        seen: Vec<(u64, u64)>,
    }

    impl Component<u64> for RingHop {
        fn on_event(&mut self, ctx: &mut Ctx<'_, u64>, v: u64) {
            self.seen.push((ctx.now().as_nanos(), v));
            if self.hops_left > 0 {
                self.hops_left -= 1;
                ctx.send_to_at(self.next, ctx.now() + self.delay, v + 1);
            }
        }
    }

    fn ring_histories(partitions: usize, components: usize, hops: u32) -> Vec<Vec<(u64, u64)>> {
        let delay = SimDuration::from_micros(50);
        let mut engine = PartitionedEngine::with_fixed(partitions, Lookahead::Window(delay));
        let ids: Vec<ComponentId> = (0..components)
            .map(|i| {
                engine.register(
                    (i % partitions) as u32,
                    RingHop {
                        next: ComponentId((i + 1) % components),
                        delay,
                        hops_left: hops,
                        seen: Vec::new(),
                    },
                )
            })
            .collect();
        engine.schedule_at(ids[0], SimTime::from_micros(1), 0);
        engine.run();
        ids.iter()
            .map(|&id| engine.component::<RingHop>(id).seen.clone())
            .collect()
    }

    #[test]
    fn ring_is_identical_at_any_partition_count() {
        let serial = ring_histories(1, 6, 40);
        assert_eq!(serial, ring_histories(2, 6, 40));
        assert_eq!(serial, ring_histories(3, 6, 40));
        assert_eq!(serial, ring_histories(6, 6, 40));
        // The ring actually ran: every component saw hops.
        assert!(serial.iter().all(|h| !h.is_empty()));
    }

    #[test]
    fn closed_partitions_drain_in_one_window() {
        // Two disjoint rings, one per partition: a closed map.
        let delay = SimDuration::from_micros(10);
        let mut engine = PartitionedEngine::with_fixed(2, Lookahead::Closed);
        let mut ids = Vec::new();
        for p in 0..2u32 {
            let base = ids.len();
            for i in 0..3usize {
                ids.push(engine.register(
                    p,
                    RingHop {
                        next: ComponentId(base + (i + 1) % 3),
                        delay,
                        hops_left: 9,
                        seen: Vec::new(),
                    },
                ));
            }
        }
        engine.schedule_at(ids[0], SimTime::ZERO, 0);
        engine.schedule_at(ids[3], SimTime::ZERO, 100);
        engine.run();
        // Each of the 3 ring members forwards 9 times, so the chain makes
        // 27 hops after the seed; member 2 is visited on every third hop.
        assert_eq!(engine.component::<RingHop>(ids[2]).seen.len(), 9);
        assert_eq!(engine.component::<RingHop>(ids[5]).seen.len(), 9);
        assert_eq!(engine.pending(), 0);
    }

    #[test]
    #[should_panic(expected = "closed partitioning")]
    fn remote_send_under_closed_map_panics() {
        let mut engine = PartitionedEngine::with_fixed(2, Lookahead::Closed);
        let b = ComponentId(1);
        let a = engine.register(
            0,
            RingHop {
                next: b,
                delay: SimDuration::from_micros(1),
                hops_left: 1,
                seen: Vec::new(),
            },
        );
        engine.register(
            1,
            RingHop {
                next: a,
                delay: SimDuration::from_micros(1),
                hops_left: 1,
                seen: Vec::new(),
            },
        );
        engine.schedule_at(a, SimTime::ZERO, 0);
        engine.run();
    }

    #[test]
    #[should_panic(expected = "violates the lookahead")]
    fn undercutting_the_lookahead_panics() {
        // Components promise 50µs lookahead but send with a 10µs delay.
        let mut engine =
            PartitionedEngine::with_fixed(2, Lookahead::Window(SimDuration::from_micros(50)));
        let b = ComponentId(1);
        let a = engine.register(
            0,
            RingHop {
                next: b,
                delay: SimDuration::from_micros(10),
                hops_left: 1,
                seen: Vec::new(),
            },
        );
        engine.register(
            1,
            RingHop {
                next: a,
                delay: SimDuration::from_micros(10),
                hops_left: 1,
                seen: Vec::new(),
            },
        );
        engine.schedule_at(a, SimTime::ZERO, 0);
        engine.run();
    }

    #[test]
    fn single_partition_matches_the_serial_engine() {
        let delay = SimDuration::from_micros(5);
        let run_serial = || {
            let mut engine = Engine::new();
            let b = ComponentId(1);
            let a = engine.register(RingHop {
                next: b,
                delay,
                hops_left: 20,
                seen: Vec::new(),
            });
            engine.register(RingHop {
                next: a,
                delay,
                hops_left: 20,
                seen: Vec::new(),
            });
            engine.schedule_at(a, SimTime::ZERO, 0);
            engine.run();
            (
                engine.component::<RingHop>(a).seen.clone(),
                engine.component::<RingHop>(b).seen.clone(),
            )
        };
        let mut engine = PartitionedEngine::with_fixed(1, Lookahead::Window(delay));
        let b = ComponentId(1);
        let a = engine.register(
            0,
            RingHop {
                next: b,
                delay,
                hops_left: 20,
                seen: Vec::new(),
            },
        );
        engine.register(
            0,
            RingHop {
                next: a,
                delay,
                hops_left: 20,
                seen: Vec::new(),
            },
        );
        engine.schedule_at(a, SimTime::ZERO, 0);
        engine.run();
        assert_eq!(
            run_serial(),
            (
                engine.component::<RingHop>(a).seen.clone(),
                engine.component::<RingHop>(b).seen.clone(),
            )
        );
    }
}
