//! The event queue at the heart of every simulator in this workspace.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use crate::{SimDuration, SimTime};

/// Identifier of a scheduled event, returned by
/// [`EventQueue::schedule_at`] and usable with [`EventQueue::cancel`].
///
/// Ids are unique within one queue for its whole lifetime (they are never
/// reused), so a stale id held after its event fired is harmless.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(u64);

impl EventId {
    /// The queue sequence number behind this id. Unique for the queue's
    /// lifetime, so it doubles as a stable event identity for provenance
    /// tracking (see `Engine`'s causal log).
    pub const fn seq(self) -> u64 {
        self.0
    }

    /// Sentinel id returned for events handed across a partition boundary:
    /// the event lives in *another* partition's queue, so there is no local
    /// seq to name. `u64::MAX` can never be a live local seq (the pending
    /// window would need 2^64 events), so cancelling this id is a
    /// deterministic no-op — exactly the semantics a stale id has.
    pub(crate) const CROSS_PARTITION: EventId = EventId(u64::MAX);
}

struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

// Order: earliest time first; FIFO (lowest sequence number) among equal
// times. `BinaryHeap` is a max-heap, so the comparisons are reversed.
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

/// Dense pending-event tracker: one bit per sequence number.
///
/// Sequence numbers are allocated monotonically and never reused, so the
/// set of seqs that can still be pending at any moment is a contiguous
/// window `[base, base + 64 * words.len())`. Membership, insertion, and
/// removal are single bit operations on that window — no hashing — which
/// is what takes per-event SipHash churn off the schedule/cancel/pop hot
/// path. Fully dead words at the front of the window are trimmed as they
/// appear, so memory tracks the span between the oldest live event and
/// the newest, not the queue's lifetime event count.
///
/// # Single-consumer invariants (partitioned execution)
///
/// The monotone-insert assumption and the front-trim both presume exactly
/// one consumer driving this queue. Partitioned runs preserve that: each
/// partition's queue is owned by one worker thread inside a window, and
/// cross-partition envelopes are injected *between* windows, on the
/// coordinating thread, through the same `&mut` the worker just released.
/// Injection goes through [`EventQueue::schedule_at`], so an injected
/// envelope draws a fresh seq from *this* queue's counter — the sender's
/// seq never enters this window, `base` never has to move backwards, and
/// the "seqs are allocated monotonically" debug assertion holds at window
/// boundaries exactly as it does mid-window. The only cross-partition
/// requirement is temporal: an injected envelope must fire at or after
/// this queue's `now`, which the conservative lookahead window guarantees
/// (see `partition.rs`).
#[derive(Default)]
struct PendingSet {
    /// Seq mapped to bit 0 of `words[0]`; always a multiple of 64.
    base: u64,
    words: VecDeque<u64>,
    live: usize,
}

impl PendingSet {
    /// Marks `seq` pending. Seqs arrive in strictly increasing order
    /// (they come off the queue's monotonic counter), so inserts only
    /// ever extend the window to the right.
    fn insert(&mut self, seq: u64) {
        debug_assert!(seq >= self.base, "seqs are allocated monotonically");
        let offset = seq - self.base;
        let idx = (offset / 64) as usize;
        while self.words.len() <= idx {
            self.words.push_back(0);
        }
        self.words[idx] |= 1 << (offset % 64);
        self.live += 1;
    }

    fn contains(&self, seq: u64) -> bool {
        if seq < self.base {
            return false;
        }
        let offset = seq - self.base;
        let idx = (offset / 64) as usize;
        idx < self.words.len() && self.words[idx] & (1 << (offset % 64)) != 0
    }

    /// Clears `seq` if it was pending, returning whether it was. Trims
    /// dead words off the window's front so `base` chases the oldest
    /// live event. The last word is always kept: `base` must never
    /// overtake the counter the next insert will use.
    fn remove(&mut self, seq: u64) -> bool {
        if seq < self.base {
            return false;
        }
        let offset = seq - self.base;
        let idx = (offset / 64) as usize;
        if idx >= self.words.len() {
            return false;
        }
        let bit = 1 << (offset % 64);
        if self.words[idx] & bit == 0 {
            return false;
        }
        self.words[idx] &= !bit;
        self.live -= 1;
        while self.words.len() > 1 && self.words.front() == Some(&0) {
            self.words.pop_front();
            self.base += 64;
        }
        true
    }

    fn len(&self) -> usize {
        self.live
    }
}

/// A deterministic discrete-event queue.
///
/// Events are popped in timestamp order; events with equal timestamps are
/// popped in the order they were scheduled (FIFO). This total order is what
/// makes every simulation in the workspace reproducible from a seed alone.
///
/// The queue also tracks the current simulated time: [`EventQueue::now`]
/// returns the timestamp of the most recently popped event. Scheduling in the
/// past is rejected with a panic, which catches causality bugs at their
/// source rather than at a confusing downstream assertion.
///
/// # Example
///
/// ```
/// use now_sim::{EventQueue, SimDuration};
///
/// let mut q = EventQueue::new();
/// let a = q.schedule_after(SimDuration::from_micros(5), "a");
/// let _b = q.schedule_after(SimDuration::from_micros(5), "b");
/// q.cancel(a);
/// assert_eq!(q.pop().unwrap().1, "b");
/// ```
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    /// Seqs of events that are scheduled, not yet fired, and not cancelled.
    /// Heap entries absent from this set are tombstones left by `cancel`.
    ///
    /// Invariant: the heap's top entry is never a tombstone (`pop` and
    /// `cancel` drain dead tops eagerly), so [`EventQueue::peek_time`]
    /// can read the next firing time without mutating anything.
    pending: PendingSet,
    now: SimTime,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            pending: PendingSet::default(),
            now: SimTime::ZERO,
            next_seq: 0,
        }
    }

    /// The current simulated time: the timestamp of the most recently popped
    /// event (or [`SimTime::ZERO`] before any pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `payload` to fire at absolute time `time`.
    ///
    /// Returns an [`EventId`] that can be used to cancel the event.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than [`EventQueue::now`] — an event
    /// scheduled in the past is always a simulation bug.
    pub fn schedule_at(&mut self, time: SimTime, payload: E) -> EventId {
        assert!(
            time >= self.now,
            "cannot schedule event in the past: {time} < now {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, payload });
        self.pending.insert(seq);
        EventId(seq)
    }

    /// Schedules `payload` to fire `delay` after the current time.
    pub fn schedule_after(&mut self, delay: SimDuration, payload: E) -> EventId {
        self.schedule_at(self.now + delay, payload)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event was still pending (it will now never be
    /// delivered), `false` if it had already fired or been cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        // Lazy deletion: drop the id from the pending set and leave the heap
        // entry behind as a tombstone that later pops discard. Ids of fired
        // or already-cancelled events are simply absent from the set.
        if self.pending.remove(id.0) {
            // Tombstones would otherwise sit in the heap until their
            // timestamp is reached, so a cancel-heavy workload (schedule,
            // cancel, reschedule — the mixed-workload simulator's finish
            // events) grows storage without bound. Rebuild the heap without
            // them once they exceed half of it.
            if self.heap.len() > 2 * self.pending.len() {
                let pending = &self.pending;
                self.heap.retain(|s| pending.contains(s.seq));
            }
            self.drain_dead_top();
            true
        } else {
            false
        }
    }

    /// Restores the live-top invariant: pops tombstones sitting at the
    /// top of the heap so `peek` always sees a pending event.
    fn drain_dead_top(&mut self) {
        while let Some(top) = self.heap.peek() {
            if self.pending.contains(top.seq) {
                break;
            }
            self.heap.pop();
        }
    }

    /// Removes and returns the next event as `(time, payload)`, advancing the
    /// clock to its timestamp. Returns `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.pop_with_id().map(|(time, _, payload)| (time, payload))
    }

    /// [`EventQueue::pop`] that also returns the event's [`EventId`], so a
    /// dispatcher can tie follow-up scheduling back to the event being
    /// handled (provenance links in the `Engine`'s causal log).
    pub fn pop_with_id(&mut self) -> Option<(SimTime, EventId, E)> {
        while let Some(ev) = self.heap.pop() {
            if !self.pending.remove(ev.seq) {
                continue; // tombstone of a cancelled event
            }
            self.now = ev.time;
            self.drain_dead_top();
            return Some((ev.time, EventId(ev.seq), ev.payload));
        }
        None
    }

    /// The timestamp of the next pending event without removing it or
    /// mutating the queue; cancelled entries never surface (the heap's top
    /// is kept live by `cancel` and `pop`). `None` when empty.
    pub fn peek_time(&self) -> Option<SimTime> {
        let top = self.heap.peek()?;
        if self.pending.contains(top.seq) {
            return Some(top.time);
        }
        // Defensive fallback should the live-top invariant ever lapse:
        // the earliest live entry, found by a full scan.
        self.heap
            .iter()
            .filter(|s| self.pending.contains(s.seq))
            .map(|s| (s.time, s.seq))
            .min()
            .map(|(time, _)| time)
    }

    /// [`EventQueue::peek_time`] that also discards any tombstones sitting
    /// at the top of the heap, reclaiming their storage immediately. The
    /// live-top invariant makes this equivalent to `peek_time` in normal
    /// operation; it exists for callers that want compaction on a borrow
    /// they already hold mutably.
    ///
    /// Like every `&mut` method here, this assumes a single consumer; the
    /// partitioned engine only calls it between windows, when the owning
    /// worker thread has been joined (see [`PendingSet`]'s invariant
    /// notes). Compaction never reorders live events — it only drops
    /// tombstones — so peeking the window edge through this method and
    /// then injecting envelopes at or past that edge is safe.
    pub fn peek_time_compacting(&mut self) -> Option<SimTime> {
        self.drain_dead_top();
        self.peek_time()
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Heap slots currently allocated, including cancelled events that have
    /// not yet been compacted away. Every [`EventQueue::cancel`] re-establishes
    /// `storage_len() <= 2 * len()`: the heap is rebuilt without tombstoned
    /// entries whenever they exceed half of it. Exposed so memory-bound
    /// regression tests can observe the compaction.
    pub fn storage_len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Advances the clock to `time` without popping anything.
    ///
    /// Useful when a simulator reaches a quiescent point and wants later
    /// scheduling to be relative to wall-clock progress.
    ///
    /// # Panics
    ///
    /// Panics if `time` is before the current time, or before the next
    /// pending event (which would reorder history).
    pub fn advance_to(&mut self, time: SimTime) {
        assert!(time >= self.now, "cannot rewind the clock");
        if let Some(next) = self.peek_time() {
            assert!(
                time <= next,
                "cannot advance past a pending event at {next}"
            );
        }
        self.now = time;
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("pending", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_micros(30), 3);
        q.schedule_at(SimTime::from_micros(10), 1);
        q.schedule_at(SimTime::from_micros(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5);
        for i in 0..100 {
            q.schedule_at(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule_after(SimDuration::from_micros(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_micros(7));
        // schedule_after is now relative to the new time
        q.schedule_after(SimDuration::from_micros(3), ());
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_micros(10));
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_micros(10), ());
        q.pop();
        q.schedule_at(SimTime::from_micros(5), ());
    }

    #[test]
    fn cancel_prevents_delivery() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_micros(1), "a");
        q.schedule_at(SimTime::from_micros(2), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double-cancel reports false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().1, "b");
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventId(42)));
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_micros(1), "a");
        q.schedule_at(SimTime::from_micros(2), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(2)));
    }

    #[test]
    fn len_accounts_for_cancellations() {
        let mut q = EventQueue::new();
        let ids: Vec<_> = (0..10)
            .map(|i| q.schedule_at(SimTime::from_micros(i), i))
            .collect();
        for id in &ids[..4] {
            q.cancel(*id);
        }
        assert_eq!(q.len(), 6);
        assert!(!q.is_empty());
    }

    #[test]
    fn advance_to_moves_clock_when_safe() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.advance_to(SimTime::from_micros(50));
        assert_eq!(q.now(), SimTime::from_micros(50));
        q.schedule_after(SimDuration::from_micros(10), ());
        q.advance_to(SimTime::from_micros(60)); // exactly at the pending event: ok
    }

    #[test]
    #[should_panic(expected = "pending event")]
    fn advance_past_pending_event_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_micros(10), ());
        q.advance_to(SimTime::from_micros(11));
    }

    #[test]
    fn mass_cancellation_does_not_leak_marks() {
        let mut q = EventQueue::new();
        for round in 0..100u64 {
            let ids: Vec<_> = (0..20)
                .map(|i| q.schedule_after(SimDuration::from_micros(i + 1), round))
                .collect();
            for id in ids {
                q.cancel(id);
            }
        }
        assert!(q.is_empty());
        assert_eq!(
            q.storage_len(),
            0,
            "an all-cancelled queue compacts to nothing"
        );
    }

    #[test]
    fn cancel_of_fired_event_leaves_len_exact() {
        let mut q = EventQueue::new();
        let id = q.schedule_at(SimTime::from_micros(1), ());
        q.pop();
        q.cancel(id);
        assert_eq!(q.len(), 0);
        q.schedule_at(SimTime::from_micros(2), ());
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().0, SimTime::from_micros(2));
    }

    #[test]
    fn storage_stays_within_twice_live_under_churn() {
        let mut q = EventQueue::new();
        // Long-lived events keep the heap non-trivial while short-lived
        // ones are scheduled and immediately cancelled.
        for i in 0..50u64 {
            q.schedule_at(SimTime::from_secs(1_000 + i), i);
        }
        for round in 0..10_000u64 {
            let id = q.schedule_after(SimDuration::from_micros(1), round);
            q.cancel(id);
            assert!(
                q.storage_len() <= 2 * q.len().max(1),
                "round {round}: storage {} vs live {}",
                q.storage_len(),
                q.len()
            );
        }
        assert_eq!(q.len(), 50);
    }

    #[test]
    fn peek_time_is_non_mutating() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_micros(1), "a");
        q.schedule_at(SimTime::from_micros(2), "b");
        q.cancel(a);
        // A shared borrow suffices, and repeated peeks agree.
        let shared: &EventQueue<_> = &q;
        assert_eq!(shared.peek_time(), Some(SimTime::from_micros(2)));
        assert_eq!(shared.peek_time(), Some(SimTime::from_micros(2)));
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn peek_time_compacting_agrees_with_peek_time() {
        let mut q = EventQueue::new();
        let ids: Vec<_> = (0..10)
            .map(|i| q.schedule_at(SimTime::from_micros(i), i))
            .collect();
        for id in &ids[..5] {
            q.cancel(*id);
        }
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(5)));
        assert_eq!(q.peek_time_compacting(), Some(SimTime::from_micros(5)));
        assert_eq!(q.len(), 5);
    }

    #[test]
    fn cancelled_top_never_surfaces_through_peek() {
        let mut q = EventQueue::new();
        // Cancel the earliest events in a different order than scheduled,
        // so tombstones would sit at the top without the live-top drain.
        let ids: Vec<_> = (0..8)
            .map(|i| q.schedule_at(SimTime::from_micros(i), i))
            .collect();
        q.cancel(ids[2]);
        q.cancel(ids[0]);
        q.cancel(ids[1]);
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(3)));
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn pending_window_survives_front_trimming() {
        // Regression for the windowed bitset: cancelling every early event
        // trims dead words off the window's front, after which newly
        // scheduled (higher) seqs must still insert and cancel correctly.
        let mut q = EventQueue::new();
        for round in 0..5u64 {
            let ids: Vec<_> = (0..200)
                .map(|i| q.schedule_after(SimDuration::from_micros(i + 1), round))
                .collect();
            for id in ids {
                assert!(q.cancel(id));
            }
            assert!(q.is_empty(), "round {round}");
        }
        let keep = q.schedule_after(SimDuration::from_micros(1), 99);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().map(|(_, e)| e), Some(99));
        assert!(!q.cancel(keep), "already fired");
    }

    #[test]
    fn window_edge_injection_is_never_in_the_past() {
        // Regression for partitioned execution: a partition drains events
        // *strictly* before the window edge, so its clock ends at most one
        // event short of the edge; envelopes injected at the barrier fire
        // at or after the edge and must schedule cleanly (no
        // schedule-into-past panic), keep FIFO order, and survive the
        // bitset's front-trim kicking in mid-run.
        let mut q = EventQueue::new();
        let edge = SimTime::from_micros(100);
        // A churny first window so the pending window front-trims: many
        // schedule+cancel pairs, then live events just below the edge.
        for round in 0..300u64 {
            let id = q.schedule_after(SimDuration::from_micros(1), round);
            q.cancel(id);
        }
        q.schedule_at(SimTime::from_micros(98), 1_000);
        q.schedule_at(SimTime::from_micros(99), 1_001);
        // Drain the window: everything strictly before `edge`.
        while q.peek_time_compacting().is_some_and(|t| t < edge) {
            q.pop();
        }
        assert_eq!(q.now(), SimTime::from_micros(99));
        // Barrier: inject cross-partition envelopes at exactly the edge
        // and just past it. Both are >= now by the lookahead argument.
        q.schedule_at(edge, 2_000);
        q.schedule_at(edge, 2_001);
        q.schedule_at(edge + SimDuration::from_micros(3), 2_002);
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![2_000, 2_001, 2_002], "injection stays FIFO");
        assert_eq!(q.now(), SimTime::from_micros(103));
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn injection_before_the_drained_edge_still_panics() {
        // The guard satellite-audited here must keep firing: if a window
        // ever drained *through* the edge (a lookahead bug), injecting at
        // the edge would rewrite history and must panic loudly.
        let mut q = EventQueue::new();
        let edge = SimTime::from_micros(100);
        q.schedule_at(edge, 1); // wrongly processed at the edge itself
        q.pop();
        q.schedule_at(SimTime::from_micros(99), 2);
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_deterministic() {
        // Two runs with identical operations produce identical histories.
        fn run() -> Vec<(u64, u32)> {
            let mut q = EventQueue::new();
            let mut log = Vec::new();
            for i in 0..50u32 {
                q.schedule_after(SimDuration::from_micros((i as u64 * 7) % 13 + 1), i);
                if i % 3 == 0 {
                    if let Some((t, e)) = q.pop() {
                        log.push((t.as_nanos(), e));
                    }
                }
            }
            while let Some((t, e)) = q.pop() {
                log.push((t.as_nanos(), e));
            }
            log
        }
        assert_eq!(run(), run());
    }
}
