//! Simulated time: [`SimTime`] instants and [`SimDuration`] spans.
//!
//! Both are nanosecond counters under the hood. Nanosecond resolution matters
//! because the paper's communication constants span five orders of magnitude:
//! a CM-5 Active Message costs 1.7 µs of processor overhead while a disk
//! access costs 14,800 µs, and sub-microsecond rounding would distort the
//! small end.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// An instant in simulated time, measured in nanoseconds since the start of
/// the simulation.
///
/// `SimTime` is ordered and supports the natural arithmetic with
/// [`SimDuration`]: `time + duration -> time`, `time - time -> duration`.
///
/// # Example
///
/// ```
/// use now_sim::{SimTime, SimDuration};
///
/// let t0 = SimTime::ZERO;
/// let t1 = t0 + SimDuration::from_millis(3);
/// assert_eq!(t1 - t0, SimDuration::from_micros(3_000));
/// assert!(t1 > t0);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, measured in nanoseconds.
///
/// # Example
///
/// ```
/// use now_sim::SimDuration;
///
/// let per_byte = SimDuration::from_nanos(100); // 10 MB/s
/// let transfer = per_byte * 8_192;
/// assert_eq!(transfer.as_micros_f64(), 819.2);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; useful as an "infinitely far"
    /// sentinel when computing the minimum of a set of deadlines.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `nanos` nanoseconds after simulation start.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant `micros` microseconds after simulation start.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros * 1_000)
    }

    /// Creates an instant `millis` milliseconds after simulation start.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000_000)
    }

    /// Creates an instant `secs` seconds after simulation start.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Microseconds since simulation start, as a float (for reporting).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// The duration since an earlier instant, saturating to zero if `earlier`
    /// is actually later (useful when comparing racing deadlines).
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration; `None` on overflow.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The longest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration of `nanos` nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a duration of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a duration of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// nanosecond. Negative and non-finite inputs clamp to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((secs * 1e9).round().min(u64::MAX as f64) as u64)
    }

    /// Creates a duration from fractional microseconds, rounding to the
    /// nearest nanosecond. Negative and non-finite inputs clamp to zero.
    pub fn from_micros_f64(micros: f64) -> Self {
        Self::from_secs_f64(micros / 1e6)
    }

    /// Nanoseconds in this duration.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds, as a float (for reporting).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Milliseconds, as a float (for reporting).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Seconds, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction: `self - other`, or zero if `other` is larger.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Scales the duration by a non-negative factor, rounding to the nearest
    /// nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or NaN.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor >= 0.0 && factor.is_finite(),
            "duration scale factor must be a non-negative finite number, got {factor}"
        );
        SimDuration((self.0 as f64 * factor).round().min(u64::MAX as f64) as u64)
    }

    /// The ratio of two durations, as a float.
    ///
    /// # Panics
    ///
    /// Panics if `other` is zero.
    pub fn ratio(self, other: SimDuration) -> f64 {
        assert!(
            !other.is_zero(),
            "cannot take ratio against a zero duration"
        );
        self.0 as f64 / other.0 as f64
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// # Panics
    /// Panics (in debug builds, via integer underflow) if `rhs` is later than
    /// `self`; use [`SimTime::saturating_since`] when order is uncertain.
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0 - d.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, n: u64) -> SimDuration {
        SimDuration(self.0 * n)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, n: u64) -> SimDuration {
        SimDuration(self.0 / n)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    /// Formats with a human-scale unit: `ns`, `µs`, `ms`, or `s`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns < 1_000 {
            write!(f, "{ns}ns")
        } else if ns < 1_000_000 {
            write!(f, "{:.2}µs", ns as f64 / 1e3)
        } else if ns < 1_000_000_000 {
            write!(f, "{:.2}ms", ns as f64 / 1e6)
        } else {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree_on_scale() {
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1_000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1_000));
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1_000));
        assert_eq!(
            SimDuration::from_secs(2),
            SimDuration::from_nanos(2_000_000_000)
        );
    }

    #[test]
    fn time_duration_arithmetic() {
        let t = SimTime::from_micros(100);
        let d = SimDuration::from_micros(50);
        assert_eq!(t + d, SimTime::from_micros(150));
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
        let mut t2 = t;
        t2 += d;
        assert_eq!(t2, SimTime::from_micros(150));
    }

    #[test]
    fn saturating_since_never_underflows() {
        let early = SimTime::from_micros(10);
        let late = SimTime::from_micros(20);
        assert_eq!(late.saturating_since(early), SimDuration::from_micros(10));
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
    }

    #[test]
    fn from_secs_f64_rounds_and_clamps() {
        assert_eq!(
            SimDuration::from_secs_f64(1.5),
            SimDuration::from_millis(1_500)
        );
        assert_eq!(SimDuration::from_secs_f64(-3.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_micros_f64(2.5),
            SimDuration::from_nanos(2_500)
        );
    }

    #[test]
    fn mul_f64_scales() {
        let d = SimDuration::from_micros(100);
        assert_eq!(d.mul_f64(0.5), SimDuration::from_micros(50));
        assert_eq!(d.mul_f64(2.0), SimDuration::from_micros(200));
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn mul_f64_rejects_negative() {
        SimDuration::from_micros(1).mul_f64(-1.0);
    }

    #[test]
    fn ratio_computes_factor() {
        let a = SimDuration::from_micros(300);
        let b = SimDuration::from_micros(100);
        assert!((a.ratio(b) - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero duration")]
    fn ratio_rejects_zero_denominator() {
        SimDuration::from_micros(1).ratio(SimDuration::ZERO);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimDuration::from_nanos(5).to_string(), "5ns");
        assert_eq!(SimDuration::from_micros(5).to_string(), "5.00µs");
        assert_eq!(SimDuration::from_millis(5).to_string(), "5.00ms");
        assert_eq!(SimDuration::from_secs(5).to_string(), "5.000s");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_micros).sum();
        assert_eq!(total, SimDuration::from_micros(10));
    }

    #[test]
    fn duration_scalar_ops() {
        assert_eq!(
            SimDuration::from_micros(3) * 4,
            SimDuration::from_micros(12)
        );
        assert_eq!(
            SimDuration::from_micros(12) / 4,
            SimDuration::from_micros(3)
        );
        assert_eq!(
            SimDuration::from_micros(5).saturating_sub(SimDuration::from_micros(9)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert!(SimTime::MAX
            .checked_add(SimDuration::from_nanos(1))
            .is_none());
        assert_eq!(
            SimTime::ZERO.checked_add(SimDuration::from_nanos(7)),
            Some(SimTime::from_nanos(7))
        );
    }
}
