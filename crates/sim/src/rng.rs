//! Seeded randomness for workload generation.
//!
//! All synthetic traces in the reproduction (file accesses, workstation
//! idle/active cycles, parallel job arrivals, NFS op mixes) draw from
//! [`SimRng`]. The distributions are implemented here, on top of `rand`'s
//! uniform source, so that the exact sequence of variates is pinned by this
//! crate rather than by an external distributions crate.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A deterministic random source for simulations.
///
/// Two `SimRng`s built with the same seed produce identical streams, and a
/// simulation that derives all randomness from one `SimRng` is replayable.
/// Use [`SimRng::fork`] to give independent components independent streams
/// that are still fully determined by the root seed.
///
/// # Example
///
/// ```
/// use now_sim::SimRng;
///
/// let mut a = SimRng::new(42);
/// let mut b = SimRng::new(42);
/// assert_eq!(a.gen_range(0..100), b.gen_range(0..100));
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child generator.
    ///
    /// The child's stream is a deterministic function of the parent's state,
    /// so forking N children in a fixed order is reproducible. Use one fork
    /// per simulated component to keep components' randomness decoupled (a
    /// new draw in one does not perturb the others).
    pub fn fork(&mut self) -> SimRng {
        SimRng::new(self.fork_seed())
    }

    /// Draws a seed for an independent child generator.
    ///
    /// `SimRng::new(rng.fork_seed())` is identical to `rng.fork()`; the split
    /// form lets a caller materialise the seed list up front (always in the
    /// same serial order) and construct the children later — possibly on
    /// other threads — so child *i* draws the same stream no matter how the
    /// work is scheduled.
    pub fn fork_seed(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform integer in `range` (half-open, like `rand`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        self.inner.gen_range(range)
    }

    /// Uniform `usize` in `[0, n)`, for indexing.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot pick an index from an empty collection");
        self.inner.gen_range(0..n)
    }

    /// Uniform float in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Bernoulli trial: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Exponentially distributed variate with the given mean.
    ///
    /// Used for memoryless arrival processes (job arrivals, user think
    /// times).
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not positive and finite.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(
            mean > 0.0 && mean.is_finite(),
            "exponential mean must be positive and finite, got {mean}"
        );
        // Inverse-CDF; 1-u avoids ln(0).
        -mean * (1.0 - self.f64()).ln()
    }

    /// Pareto-distributed variate with scale `x_min` and shape `alpha`.
    ///
    /// Heavy-tailed: used for file sizes and parallel-job service times,
    /// whose empirical distributions are long-tailed.
    ///
    /// # Panics
    ///
    /// Panics unless `x_min > 0` and `alpha > 0`.
    pub fn pareto(&mut self, x_min: f64, alpha: f64) -> f64 {
        assert!(x_min > 0.0, "pareto scale must be positive, got {x_min}");
        assert!(alpha > 0.0, "pareto shape must be positive, got {alpha}");
        x_min / (1.0 - self.f64()).powf(1.0 / alpha)
    }

    /// Normal variate (Box–Muller) with the given mean and standard
    /// deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0, "standard deviation must be non-negative");
        let u1 = 1.0 - self.f64(); // (0, 1]
        let u2 = self.f64();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        mean + std_dev * z
    }

    /// Log-uniform variate in `[lo, hi]`: uniform in log-space.
    ///
    /// Matches how parallel-job runtimes are distributed in MPP logs (the
    /// LANL CM-5 trace mixes seconds-long development runs with hours-long
    /// production runs).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < lo <= hi`.
    pub fn log_uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo > 0.0 && lo <= hi, "need 0 < lo <= hi, got [{lo}, {hi}]");
        (lo.ln() + self.f64() * (hi.ln() - lo.ln())).exp()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }
}

/// A Zipf(θ) sampler over ranks `0..n`, rank 0 most popular.
///
/// File popularity in the Berkeley traces — and in file-system traces
/// generally — is highly skewed: a few executables and font files account for
/// most accesses. The cooperative-caching trace generator uses this sampler
/// to reproduce that skew.
///
/// Sampling is O(log n) by binary search over the precomputed CDF.
///
/// # Example
///
/// ```
/// use now_sim::{SimRng, stats::Accumulator};
/// use now_sim::ZipfSampler;
///
/// let mut rng = SimRng::new(7);
/// let zipf = ZipfSampler::new(1_000, 0.8);
/// let mut hits_rank0 = 0;
/// for _ in 0..10_000 {
///     if zipf.sample(&mut rng) == 0 { hits_rank0 += 1; }
/// }
/// assert!(hits_rank0 > 500, "rank 0 should be heavily favoured");
/// ```
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds a sampler over `n` ranks with skew `theta`.
    ///
    /// `theta = 0` is uniform; `theta` near 1 is the classic Zipf curve.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `theta` is negative.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "zipf sampler needs at least one rank");
        assert!(theta >= 0.0, "zipf skew must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 0..n {
            total += 1.0 / ((rank + 1) as f64).powf(theta);
            cdf.push(total);
        }
        for v in &mut cdf {
            *v /= total;
        }
        ZipfSampler { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True if the sampler has exactly one rank (always sampled).
    pub fn is_empty(&self) -> bool {
        false // constructor guarantees n > 0; method provided for symmetry
    }

    /// Approximate heap + inline footprint in bytes (the CDF table).
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.cdf.capacity() * std::mem::size_of::<f64>()
    }

    /// Draws a rank in `[0, n)`.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let u = rng.f64();
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(123);
        let mut b = SimRng::new(123);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000), b.gen_range(0..1_000_000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64)
            .filter(|_| a.gen_range(0..u64::MAX) == b.gen_range(0..u64::MAX))
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_is_deterministic_and_independent() {
        let mut root1 = SimRng::new(9);
        let mut root2 = SimRng::new(9);
        let mut c1 = root1.fork();
        let mut c2 = root2.fork();
        assert_eq!(c1.gen_range(0..u64::MAX), c2.gen_range(0..u64::MAX));
        // Drawing from the child does not perturb the parent.
        assert_eq!(root1.gen_range(0..u64::MAX), root2.gen_range(0..u64::MAX));
    }

    #[test]
    fn exponential_mean_converges() {
        let mut rng = SimRng::new(5);
        let n = 20_000;
        let mean = 3.0;
        let sum: f64 = (0..n).map(|_| rng.exponential(mean)).sum();
        let sample_mean = sum / n as f64;
        assert!(
            (sample_mean - mean).abs() < 0.1,
            "sample mean {sample_mean} too far from {mean}"
        );
    }

    #[test]
    fn exponential_is_positive() {
        let mut rng = SimRng::new(6);
        assert!((0..1000).all(|_| rng.exponential(1.0) > 0.0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn exponential_rejects_bad_mean() {
        SimRng::new(0).exponential(0.0);
    }

    #[test]
    fn pareto_respects_scale() {
        let mut rng = SimRng::new(7);
        assert!((0..1000).all(|_| rng.pareto(2.0, 1.5) >= 2.0));
    }

    #[test]
    fn normal_mean_and_spread() {
        let mut rng = SimRng::new(8);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn log_uniform_in_bounds() {
        let mut rng = SimRng::new(9);
        for _ in 0..1000 {
            let x = rng.log_uniform(1.0, 10_000.0);
            assert!((1.0..=10_000.0).contains(&x));
        }
    }

    #[test]
    fn log_uniform_median_is_geometric_mean() {
        let mut rng = SimRng::new(10);
        let mut xs: Vec<f64> = (0..9_999).map(|_| rng.log_uniform(1.0, 100.0)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[xs.len() / 2];
        assert!(
            (median - 10.0).abs() < 1.5,
            "median {median} should be near 10"
        );
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::new(11);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "100 elements should move");
    }

    #[test]
    fn zipf_rank0_dominates() {
        let mut rng = SimRng::new(12);
        let z = ZipfSampler::new(100, 1.0);
        let mut counts = vec![0u32; 100];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(
            counts[0] > counts[50] * 10,
            "rank 0 ({}) should dwarf rank 50 ({})",
            counts[0],
            counts[50]
        );
        // All samples in range (vec indexing would already have panicked).
        assert_eq!(counts.iter().map(|&c| c as u64).sum::<u64>(), 50_000);
    }

    #[test]
    fn zipf_theta_zero_is_uniform() {
        let mut rng = SimRng::new(13);
        let z = ZipfSampler::new(10, 0.0);
        let mut counts = vec![0u32; 10];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "uniform bucket {c}");
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(14);
        assert!((0..100).all(|_| !rng.chance(0.0)));
        assert!((0..100).all(|_| rng.chance(1.0)));
    }

    #[test]
    fn pick_returns_member() {
        let mut rng = SimRng::new(15);
        let items = [10, 20, 30];
        for _ in 0..50 {
            assert!(items.contains(rng.pick(&items)));
        }
    }
}
