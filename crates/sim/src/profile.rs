//! Host-time (wall-clock) profiling of the engine dispatch loop.
//!
//! The trace ring and causal layer answer "where did *simulated* time
//! go"; this module answers "where did the *host CPU* go while producing
//! it" — the question every optimisation PR against the ROADMAP's
//! as-fast-as-the-hardware-allows goal has to measure. The engine, with
//! [`crate::Engine::enable_profiler`], attributes each dispatched event's
//! wall time to its component, and splits out time spent inside the cost
//! model (the shared-fabric [`crate::Transport`]) so "the job component is
//! slow" and "the fabric pricing under the job component is slow" stay
//! distinguishable.
//!
//! The result exports two ways: a plain-text occupancy table
//! ([`HostProfile::render_text`]) and collapsed stacks
//! ([`HostProfile::collapsed`], `frame;frame count` lines) that drop
//! straight into flamegraph tooling — the host-time sibling of the
//! Chrome-trace sim-time export.
//!
//! Profiling is wall-clock measurement of the host, so its numbers are
//! *not* deterministic and never feed back into the simulation: with the
//! profiler disabled the dispatch path does no timing work at all and the
//! event history is byte-identical.

use crate::report::TextTable;

/// Host time attributed to one engine component.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ComponentProfile {
    /// Display label (see [`crate::Engine::enable_profiler`]).
    pub label: String,
    /// Events dispatched to this component.
    pub events: u64,
    /// Wall nanoseconds inside the component's handler, excluding the
    /// cost model.
    pub self_ns: u64,
    /// Wall nanoseconds inside [`crate::Transport`] calls made while
    /// handling this component's events.
    pub fabric_ns: u64,
}

impl ComponentProfile {
    /// Handler time including the cost model.
    pub fn total_ns(&self) -> u64 {
        self.self_ns + self.fabric_ns
    }
}

/// Host-time attribution for one or more engine runs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HostProfile {
    /// Wall nanoseconds spent inside [`crate::Engine::run`].
    pub wall_ns: u64,
    /// Events dispatched in total.
    pub events: u64,
    /// Per-component attribution, in registration order (merged profiles
    /// keep the order of first appearance).
    pub components: Vec<ComponentProfile>,
}

impl HostProfile {
    /// Folds `other` into `self`, summing wall time, events, and
    /// per-component time by label. Report sweeps merge each run's
    /// profile into one scenario-level digest this way.
    pub fn merge(&mut self, other: &HostProfile) {
        self.wall_ns += other.wall_ns;
        self.events += other.events;
        for theirs in &other.components {
            match self
                .components
                .iter_mut()
                .find(|ours| ours.label == theirs.label)
            {
                Some(ours) => {
                    ours.events += theirs.events;
                    ours.self_ns += theirs.self_ns;
                    ours.fabric_ns += theirs.fabric_ns;
                }
                None => self.components.push(theirs.clone()),
            }
        }
    }

    /// Dispatch-loop time not attributed to any component (queue
    /// operations, routing, the loop itself).
    pub fn unattributed_ns(&self) -> u64 {
        let attributed: u64 = self.components.iter().map(|c| c.total_ns()).sum();
        self.wall_ns.saturating_sub(attributed)
    }

    /// The profile as collapsed stacks — one `frame;frame count` line per
    /// stack, counts in nanoseconds — the input format of flamegraph
    /// tooling (`flamegraph.pl`, inferno, speedscope). Lines are sorted,
    /// so equal profiles render identical files.
    pub fn collapsed(&self) -> String {
        let mut lines = Vec::new();
        for c in &self.components {
            if c.self_ns > 0 {
                lines.push(format!("engine;{} {}", c.label, c.self_ns));
            }
            if c.fabric_ns > 0 {
                lines.push(format!("engine;{};fabric {}", c.label, c.fabric_ns));
            }
        }
        let unattributed = self.unattributed_ns();
        if unattributed > 0 {
            lines.push(format!("engine;dispatch {unattributed}"));
        }
        lines.sort_unstable();
        let mut out = lines.join("\n");
        if !out.is_empty() {
            out.push('\n');
        }
        out
    }

    /// The profile as a host-occupancy table: per-component self and
    /// fabric time with each component's share of the run's wall time.
    pub fn render_text(&self) -> String {
        let mut t = TextTable::new(&[
            "component",
            "events",
            "self_ms",
            "fabric_ms",
            "total_ms",
            "wall_%",
        ]);
        t.title(&format!(
            "Host-time profile ({} events, {:.3} ms wall)",
            self.events,
            self.wall_ns as f64 / 1e6
        ));
        let share = |ns: u64| {
            if self.wall_ns == 0 {
                "-".to_string()
            } else {
                format!("{:.1}", ns as f64 * 100.0 / self.wall_ns as f64)
            }
        };
        for c in &self.components {
            t.row_owned(vec![
                c.label.clone(),
                c.events.to_string(),
                fmt_ms(c.self_ns),
                fmt_ms(c.fabric_ns),
                fmt_ms(c.total_ns()),
                share(c.total_ns()),
            ]);
        }
        t.row_owned(vec![
            "(dispatch)".to_string(),
            "-".to_string(),
            fmt_ms(self.unattributed_ns()),
            "-".to_string(),
            fmt_ms(self.unattributed_ns()),
            share(self.unattributed_ns()),
        ]);
        t.render()
    }
}

fn fmt_ms(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> HostProfile {
        HostProfile {
            wall_ns: 10_000,
            events: 30,
            components: vec![
                ComponentProfile {
                    label: "job".to_string(),
                    events: 20,
                    self_ns: 4_000,
                    fabric_ns: 2_000,
                },
                ComponentProfile {
                    label: "traffic".to_string(),
                    events: 10,
                    self_ns: 1_000,
                    fabric_ns: 0,
                },
            ],
        }
    }

    #[test]
    fn merge_sums_by_label_and_keeps_new_components() {
        let mut a = sample();
        let mut other = sample();
        other.components[1].label = "recorder".to_string();
        a.merge(&other);
        assert_eq!(a.wall_ns, 20_000);
        assert_eq!(a.events, 60);
        assert_eq!(a.components.len(), 3);
        let job = &a.components[0];
        assert_eq!(job.self_ns, 8_000);
        assert_eq!(job.fabric_ns, 4_000);
        assert_eq!(a.components[2].label, "recorder");
    }

    #[test]
    fn collapsed_stacks_match_frame_semicolon_count() {
        let stacks = sample().collapsed();
        for line in stacks.lines() {
            let (frames, count) = line.rsplit_once(' ').expect("`frames count` shape");
            assert!(!frames.is_empty() && frames.starts_with("engine"));
            count.parse::<u64>().expect("count is an integer");
        }
        assert!(stacks.contains("engine;job 4000\n"));
        assert!(stacks.contains("engine;job;fabric 2000\n"));
        assert!(stacks.contains("engine;dispatch 3000\n"));
        // Sorted and stable.
        let lines: Vec<_> = stacks.lines().collect();
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted);
        assert_eq!(stacks, sample().collapsed());
    }

    #[test]
    fn unattributed_never_underflows() {
        let mut p = sample();
        p.wall_ns = 1; // attributed exceeds wall (clock skew)
        assert_eq!(p.unattributed_ns(), 0);
    }

    #[test]
    fn text_render_reports_occupancy_shares() {
        let text = sample().render_text();
        assert!(text.contains("Host-time profile"));
        assert!(text.contains("job"));
        assert!(text.contains("60.0")); // job: 6000/10000 of wall
        assert!(text.contains("(dispatch)"));
        // Empty profiles render without dividing by zero.
        assert!(HostProfile::default().render_text().contains("0.000"));
    }
}
