//! Online statistics for summarising simulation output.
//!
//! Three flavours cover everything the experiments report:
//!
//! * [`Accumulator`] — streaming count/mean/variance/min/max (Welford's
//!   algorithm), for quantities where only moments are needed.
//! * [`Percentiles`] — stores samples and answers quantile queries, for
//!   response-time distributions ("95% of NFS messages are under 200 bytes").
//! * [`Histogram`] — fixed linear buckets, for shape plots.
//! * [`TimeWeighted`] — integrates a step function over simulated time, for
//!   utilization and occupancy ("more than 60% of workstations available").

use crate::{SimDuration, SimTime};

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
///
/// # Example
///
/// ```
/// use now_sim::stats::Accumulator;
///
/// let mut acc = Accumulator::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     acc.add(x);
/// }
/// assert_eq!(acc.count(), 8);
/// assert!((acc.mean() - 5.0).abs() < 1e-12);
/// assert!((acc.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Accumulator {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Accumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Accumulator {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Adds a duration observation in microseconds (common unit here).
    pub fn add_duration_micros(&mut self, d: SimDuration) {
        self.add(d.as_micros_f64());
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean; zero if empty.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean * self.count as f64
    }

    /// Population variance (divide by n); zero if fewer than one sample.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample standard deviation (divide by n−1); zero if fewer than two
    /// samples.
    pub fn std_dev(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / (self.count - 1) as f64).sqrt()
        }
    }

    /// Smallest observation; `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation; `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one (parallel-sweep friendly).
    pub fn merge(&mut self, other: &Accumulator) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let new_mean = self.mean + delta * other.count as f64 / total as f64;
        self.m2 += other.m2 + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.mean = new_mean;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Stores samples for exact quantile queries.
///
/// Memory is O(samples); the experiments here collect at most a few million
/// samples, which is fine. Use [`Accumulator`] when only moments matter.
#[derive(Debug, Clone, Default)]
pub struct Percentiles {
    samples: Vec<f64>,
    sorted: bool,
}

impl Percentiles {
    /// Creates an empty collection.
    pub fn new() -> Self {
        Percentiles {
            samples: Vec::new(),
            sorted: true,
        }
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        self.samples.push(x);
        self.sorted = false;
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// The `q`-quantile (`q` in `[0, 1]`) by nearest-rank; `None` if empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]` or any sample is NaN.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        assert!(
            (0.0..=1.0).contains(&q),
            "quantile must be in [0,1], got {q}"
        );
        if self.samples.is_empty() {
            return None;
        }
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("samples must not be NaN"));
            self.sorted = true;
        }
        let rank = ((q * self.samples.len() as f64).ceil() as usize).clamp(1, self.samples.len());
        Some(self.samples[rank - 1])
    }

    /// Median, i.e. `quantile(0.5)`.
    pub fn median(&mut self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Fraction of samples `<= threshold`; zero if empty.
    pub fn fraction_at_most(&self, threshold: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let n = self.samples.iter().filter(|&&x| x <= threshold).count();
        n as f64 / self.samples.len() as f64
    }
}

/// Fixed-width linear histogram over `[lo, hi)`, with underflow/overflow
/// buckets.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `buckets` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics unless `lo < hi` and `buckets > 0`.
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Self {
        assert!(lo < hi, "histogram needs lo < hi");
        assert!(buckets > 0, "histogram needs at least one bucket");
        Histogram {
            lo,
            hi,
            buckets: vec![0; buckets],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.buckets.len() as f64;
            let idx = (((x - self.lo) / width) as usize).min(self.buckets.len() - 1);
            self.buckets[idx] += 1;
        }
    }

    /// Bucket counts, in order from `lo` to `hi`.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Observations below `lo`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above `hi`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations, including out-of-range ones.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum::<u64>() + self.underflow + self.overflow
    }
}

/// Integrates a piecewise-constant value over simulated time.
///
/// Feed it `(time, new_value)` transitions; it reports the time-weighted
/// average, which is how utilization ("fraction of workstations idle") is
/// computed from a state trace.
///
/// # Example
///
/// ```
/// use now_sim::stats::TimeWeighted;
/// use now_sim::SimTime;
///
/// let mut u = TimeWeighted::new(SimTime::ZERO, 0.0);
/// u.set(SimTime::from_secs(10), 1.0);  // value was 0.0 for 10 s
/// u.set(SimTime::from_secs(30), 0.0);  // value was 1.0 for 20 s
/// assert!((u.average(SimTime::from_secs(40)) - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct TimeWeighted {
    last_time: SimTime,
    current: f64,
    integral: f64,
    start: SimTime,
}

impl TimeWeighted {
    /// Starts integrating at `start` with initial value `value`.
    pub fn new(start: SimTime, value: f64) -> Self {
        TimeWeighted {
            last_time: start,
            current: value,
            integral: 0.0,
            start,
        }
    }

    /// Records that the value changed to `value` at time `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes the previous transition.
    pub fn set(&mut self, t: SimTime, value: f64) {
        assert!(
            t >= self.last_time,
            "time-weighted updates must be monotone"
        );
        self.integral += self.current * (t - self.last_time).as_secs_f64();
        self.last_time = t;
        self.current = value;
    }

    /// Adds `delta` to the current value at time `t` (occupancy counters).
    pub fn add(&mut self, t: SimTime, delta: f64) {
        let next = self.current + delta;
        self.set(t, next);
    }

    /// The current (most recently set) value.
    pub fn current(&self) -> f64 {
        self.current
    }

    /// Time-weighted average from the start through `end`.
    ///
    /// # Panics
    ///
    /// Panics if `end` precedes the last transition or equals the start.
    pub fn average(&self, end: SimTime) -> f64 {
        assert!(
            end >= self.last_time,
            "average endpoint precedes last update"
        );
        assert!(end > self.start, "empty integration interval");
        let integral = self.integral + self.current * (end - self.last_time).as_secs_f64();
        integral / (end - self.start).as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulator_basics() {
        let mut a = Accumulator::new();
        assert_eq!(a.count(), 0);
        assert_eq!(a.mean(), 0.0);
        assert!(a.min().is_none());
        a.add(1.0);
        a.add(3.0);
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean(), 2.0);
        assert_eq!(a.sum(), 4.0);
        assert_eq!(a.min(), Some(1.0));
        assert_eq!(a.max(), Some(3.0));
    }

    #[test]
    fn accumulator_min_max_edge_cases() {
        let empty = Accumulator::new();
        assert_eq!(empty.min(), None);
        assert_eq!(empty.max(), None);
        // A single observation is both extremes, even when negative.
        let mut one = Accumulator::new();
        one.add(-7.25);
        assert_eq!(one.min(), Some(-7.25));
        assert_eq!(one.max(), Some(-7.25));
        // Merging an empty into an empty stays empty (the sentinel
        // infinities never leak out through the Option API).
        let mut merged = Accumulator::new();
        merged.merge(&Accumulator::new());
        assert_eq!(merged.min(), None);
        assert_eq!(merged.max(), None);
        // Merging a populated accumulator into an empty one adopts its
        // extremes.
        merged.merge(&one);
        assert_eq!(merged.min(), Some(-7.25));
        assert_eq!(merged.max(), Some(-7.25));
    }

    #[test]
    fn accumulator_variance_matches_naive() {
        let xs = [1.5, 2.5, 2.5, 2.75, 3.25, 4.75];
        let mut a = Accumulator::new();
        for &x in &xs {
            a.add(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((a.population_variance() - var).abs() < 1e-12);
    }

    #[test]
    fn accumulator_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Accumulator::new();
        for &x in &xs {
            whole.add(x);
        }
        let mut left = Accumulator::new();
        let mut right = Accumulator::new();
        for &x in &xs[..37] {
            left.add(x);
        }
        for &x in &xs[37..] {
            right.add(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-10);
        assert!((left.population_variance() - whole.population_variance()).abs() < 1e-10);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Accumulator::new();
        a.add(5.0);
        let before = a.clone();
        a.merge(&Accumulator::new());
        assert_eq!(a.count(), before.count());
        assert_eq!(a.mean(), before.mean());

        let mut empty = Accumulator::new();
        empty.merge(&before);
        assert_eq!(empty.count(), 1);
        assert_eq!(empty.mean(), 5.0);
    }

    #[test]
    fn percentiles_quantiles() {
        let mut p = Percentiles::new();
        for x in 1..=100 {
            p.add(x as f64);
        }
        assert_eq!(p.quantile(0.5), Some(50.0));
        assert_eq!(p.quantile(0.95), Some(95.0));
        assert_eq!(p.quantile(1.0), Some(100.0));
        assert_eq!(p.quantile(0.0), Some(1.0));
    }

    #[test]
    fn percentiles_empty_is_none() {
        let mut p = Percentiles::new();
        assert_eq!(p.quantile(0.5), None);
        assert_eq!(p.median(), None);
    }

    #[test]
    fn percentiles_fraction_at_most() {
        let mut p = Percentiles::new();
        for x in [50.0, 100.0, 150.0, 200.0, 1000.0] {
            p.add(x);
        }
        assert!((p.fraction_at_most(200.0) - 0.8).abs() < 1e-12);
        assert_eq!(p.fraction_at_most(10.0), 0.0);
        assert_eq!(p.fraction_at_most(2000.0), 1.0);
    }

    #[test]
    fn percentiles_interleaved_add_and_query() {
        let mut p = Percentiles::new();
        p.add(3.0);
        p.add(1.0);
        assert_eq!(p.median(), Some(1.0));
        p.add(2.0); // must re-sort after new sample
        assert_eq!(p.median(), Some(2.0));
    }

    #[test]
    fn histogram_buckets_and_edges() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.add(-1.0); // underflow
        h.add(0.0); // first bucket (inclusive lo)
        h.add(9.99); // last bucket
        h.add(10.0); // overflow (exclusive hi)
        h.add(5.0); // middle
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.buckets(), &[1, 0, 1, 0, 1]);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn time_weighted_average() {
        let mut u = TimeWeighted::new(SimTime::ZERO, 2.0);
        u.set(SimTime::from_secs(5), 4.0);
        // 2.0 for 5 s, then 4.0 for 5 s => average 3.0
        assert!((u.average(SimTime::from_secs(10)) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn time_weighted_add_tracks_occupancy() {
        let mut occ = TimeWeighted::new(SimTime::ZERO, 0.0);
        occ.add(SimTime::from_secs(1), 1.0); // one job from t=1
        occ.add(SimTime::from_secs(2), 1.0); // two jobs from t=2
        occ.add(SimTime::from_secs(3), -2.0); // idle from t=3
        assert_eq!(occ.current(), 0.0);
        // integral = 0*1 + 1*1 + 2*1 + 0*1 = 3 over 4 s
        assert!((occ.average(SimTime::from_secs(4)) - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn time_weighted_rejects_time_travel() {
        let mut u = TimeWeighted::new(SimTime::from_secs(10), 1.0);
        u.set(SimTime::from_secs(5), 2.0);
    }
}
