//! Property-based tests for the simulation kernel's core invariants.

use now_sim::stats::{Accumulator, Percentiles};
use now_sim::{EventQueue, SimDuration, SimRng, SimTime, ZipfSampler};
use proptest::prelude::*;

proptest! {
    /// Popping yields events in non-decreasing time order regardless of the
    /// insertion order.
    #[test]
    fn queue_pops_monotone(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(SimTime::from_nanos(t), i);
        }
        let mut last = SimTime::ZERO;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
        }
    }

    /// Events scheduled at the same timestamp come out in insertion order.
    #[test]
    fn queue_equal_times_fifo(n in 1usize..300, t in 0u64..1_000) {
        let mut q = EventQueue::new();
        for i in 0..n {
            q.schedule_at(SimTime::from_nanos(t), i);
        }
        let mut expect = 0;
        while let Some((_, i)) = q.pop() {
            prop_assert_eq!(i, expect);
            expect += 1;
        }
        prop_assert_eq!(expect, n);
    }

    /// Cancelling an arbitrary subset removes exactly that subset.
    #[test]
    fn queue_cancellation_is_exact(
        times in prop::collection::vec(0u64..10_000, 1..100),
        cancel_mask in prop::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut q = EventQueue::new();
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| (i, q.schedule_at(SimTime::from_nanos(t), i)))
            .collect();
        let mut kept = Vec::new();
        for (i, id) in &ids {
            if cancel_mask.get(*i).copied().unwrap_or(false) {
                q.cancel(*id);
            } else {
                kept.push(*i);
            }
        }
        let mut delivered: Vec<usize> = Vec::new();
        while let Some((_, i)) = q.pop() {
            delivered.push(i);
        }
        delivered.sort_unstable();
        kept.sort_unstable();
        prop_assert_eq!(delivered, kept);
    }

    /// len() always equals the number of events that will still be delivered.
    #[test]
    fn queue_len_matches_deliveries(
        ops in prop::collection::vec((0u64..1000, any::<bool>()), 1..100)
    ) {
        let mut q = EventQueue::new();
        let mut ids = Vec::new();
        for (delay, do_cancel) in &ops {
            let id = q.schedule_after(SimDuration::from_nanos(*delay + 1), ());
            ids.push(id);
            if *do_cancel {
                // Cancel a pseudo-arbitrary earlier event.
                let victim = ids[ids.len() / 2];
                q.cancel(victim);
            }
        }
        let expected = q.len();
        let mut actual = 0;
        while q.pop().is_some() {
            actual += 1;
        }
        prop_assert_eq!(actual, expected);
    }

    /// A cancel-heavy workload never holds more than twice the live events
    /// in heap storage: tombstoned entries are compacted away once they
    /// exceed half the heap (regression test for unbounded tombstone
    /// growth).
    #[test]
    fn queue_storage_bounded_under_cancellation(
        keepers in 1usize..40,
        churn in prop::collection::vec(1u64..1_000, 1..400),
    ) {
        let mut q = EventQueue::new();
        for i in 0..keepers {
            q.schedule_at(SimTime::from_secs(10_000 + i as u64), usize::MAX);
        }
        for (round, delay) in churn.iter().enumerate() {
            let id = q.schedule_after(SimDuration::from_micros(*delay), round);
            q.cancel(id);
            prop_assert!(
                q.storage_len() <= 2 * q.len().max(1),
                "round {}: storage {} exceeds twice the {} live events",
                round,
                q.storage_len(),
                q.len()
            );
        }
        prop_assert_eq!(q.len(), keepers);
    }

    /// Welford accumulator agrees with the two-pass computation.
    #[test]
    fn accumulator_matches_two_pass(xs in prop::collection::vec(-1e6f64..1e6, 1..500)) {
        let mut acc = Accumulator::new();
        for &x in &xs {
            acc.add(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        prop_assert!((acc.mean() - mean).abs() <= 1e-6 * (1.0 + mean.abs()));
        prop_assert!((acc.population_variance() - var).abs() <= 1e-4 * (1.0 + var));
    }

    /// Merging accumulators over any split equals accumulating the whole.
    #[test]
    fn accumulator_merge_any_split(
        xs in prop::collection::vec(-1e3f64..1e3, 2..200),
        split_frac in 0.0f64..1.0,
    ) {
        let split = ((xs.len() as f64 * split_frac) as usize).min(xs.len());
        let mut whole = Accumulator::new();
        for &x in &xs { whole.add(x); }
        let mut a = Accumulator::new();
        let mut b = Accumulator::new();
        for &x in &xs[..split] { a.add(x); }
        for &x in &xs[split..] { b.add(x); }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-8);
        prop_assert!((a.population_variance() - whole.population_variance()).abs() < 1e-6);
    }

    /// Quantiles are members of the sample and are monotone in q.
    #[test]
    fn quantiles_monotone_and_members(xs in prop::collection::vec(-1e6f64..1e6, 1..300)) {
        let mut p = Percentiles::new();
        for &x in &xs { p.add(x); }
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0];
        let mut last = f64::NEG_INFINITY;
        for &q in &qs {
            let v = p.quantile(q).unwrap();
            prop_assert!(xs.contains(&v), "quantile must be an observed sample");
            prop_assert!(v >= last);
            last = v;
        }
    }

    /// Zipf samples are always in range and the rank-frequency curve is
    /// non-increasing (statistically) from rank 0 to the midpoint.
    #[test]
    fn zipf_in_range(n in 1usize..500, theta in 0.0f64..1.5, seed in any::<u64>()) {
        let z = ZipfSampler::new(n, theta);
        let mut rng = SimRng::new(seed);
        for _ in 0..200 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }

    /// Replays from the same seed are identical across all distributions.
    #[test]
    fn rng_replay_identical(seed in any::<u64>()) {
        let draw = |seed: u64| {
            let mut r = SimRng::new(seed);
            (
                r.gen_range(0..1_000_000),
                r.exponential(2.0),
                r.pareto(1.0, 1.2),
                r.normal(0.0, 1.0),
                r.log_uniform(1.0, 100.0),
                r.fork().gen_range(0..1_000_000),
            )
        };
        prop_assert_eq!(draw(seed), draw(seed));
    }

    /// Time arithmetic round-trips: (t + d) - t == d and (t + d) - d == t.
    #[test]
    fn time_roundtrip(t in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
        let t = SimTime::from_nanos(t);
        let d = SimDuration::from_nanos(d);
        prop_assert_eq!((t + d) - t, d);
        prop_assert_eq!((t + d) - d, t);
    }
}

proptest! {
    /// `run_indexed` returns results in input order with any worker count:
    /// byte-identical (here: bit-identical f64s) for jobs in {1, 2, 8},
    /// and identical across repeated runs at the same jobs count.
    #[test]
    fn run_indexed_output_is_worker_count_independent(
        items in prop::collection::vec(any::<u64>(), 0..300),
    ) {
        use now_sim::parallel::run_indexed;
        let f = |i: usize, x: &u64| {
            let mut rng = SimRng::new(x.wrapping_add(i as u64));
            rng.exponential(1.0) + rng.normal(0.0, 1.0)
        };
        let serial: Vec<f64> = run_indexed(1, &items, f);
        for jobs in [2usize, 8] {
            let parallel = run_indexed(jobs, &items, f);
            prop_assert_eq!(serial.len(), parallel.len());
            for (a, b) in serial.iter().zip(&parallel) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "jobs={}", jobs);
            }
        }
        let repeat = run_indexed(8, &items, f);
        for (a, b) in serial.iter().zip(&repeat) {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "repeat at jobs=8");
        }
    }

    /// Under arbitrary schedule/cancel/pop interleavings, the non-mutating
    /// peek always reports the time the next pop delivers, and storage
    /// never exceeds twice the live count after a cancel.
    #[test]
    fn queue_peek_matches_pop_under_churn(
        ops in prop::collection::vec((0u8..3, 0u64..1_000), 1..300),
    ) {
        let mut q = EventQueue::new();
        let mut ids = Vec::new();
        for &(op, x) in &ops {
            match op {
                0 => ids.push(q.schedule_after(SimDuration::from_nanos(x + 1), x)),
                1 => {
                    if !ids.is_empty() && q.cancel(ids[(x as usize) % ids.len()]) {
                        // A successful cancel re-establishes the
                        // compaction bound (a stale id changes nothing).
                        prop_assert!(q.storage_len() <= 2 * q.len().max(1));
                    }
                }
                _ => {
                    let peeked = q.peek_time();
                    let popped = q.pop();
                    prop_assert_eq!(peeked, popped.map(|(t, _)| t));
                }
            }
        }
        while let Some(next) = q.peek_time() {
            let (t, _) = q.pop().expect("peeked event exists");
            prop_assert_eq!(next, t);
        }
        prop_assert!(q.is_empty());
    }
}
