//! Property tests for the engine's routed event bus.

use std::sync::{Arc, Mutex};

use now_sim::{Component, ComponentId, Ctx, Engine, SimTime};
use proptest::prelude::*;

/// Appends every delivered event to a log shared across components, so a
/// test can observe the global delivery order.
struct Recorder {
    label: usize,
    log: Arc<Mutex<Vec<(usize, u32)>>>,
}

impl Component<u32> for Recorder {
    fn on_event(&mut self, _: &mut Ctx<'_, u32>, ev: u32) {
        self.log.lock().unwrap().push((self.label, ev));
    }
}

/// Registers `labels` in the given order, schedules `sends` (all at one
/// timestamp) addressed by label, and returns the delivery order.
fn delivery_order(labels: &[usize], sends: &[(usize, u32)], t: SimTime) -> Vec<(usize, u32)> {
    let log = Arc::new(Mutex::new(Vec::new()));
    let mut engine = Engine::new();
    let mut id_of = vec![ComponentId(usize::MAX); labels.len()];
    for &label in labels {
        id_of[label] = engine.register(Recorder {
            label,
            log: log.clone(),
        });
    }
    for &(dst, tag) in sends {
        engine.schedule_at(id_of[dst], t, tag);
    }
    engine.run();
    let order = log.lock().unwrap().clone();
    order
}

proptest! {
    /// Bus delivery among equal timestamps is FIFO in scheduling order,
    /// no matter how the receiving components were registered.
    #[test]
    fn equal_timestamp_delivery_is_fifo_regardless_of_registration(
        k in 2usize..8,
        raw_sends in prop::collection::vec((0usize..8, any::<u32>()), 1..100),
        rotation in 0usize..8,
        t in 0u64..1_000_000,
    ) {
        let sends: Vec<(usize, u32)> =
            raw_sends.iter().map(|&(d, tag)| (d % k, tag)).collect();
        let t = SimTime::from_nanos(t);
        let forward: Vec<usize> = (0..k).collect();
        let mut rotated: Vec<usize> = (0..k).map(|i| (i + rotation) % k).collect();
        let a = delivery_order(&forward, &sends, t);
        prop_assert_eq!(&a, &sends, "delivery must follow scheduling order");
        let b = delivery_order(&rotated, &sends, t);
        prop_assert_eq!(&a, &b, "registration order must not matter");
        rotated.reverse();
        let c = delivery_order(&rotated, &sends, t);
        prop_assert_eq!(&a, &c, "reversed registration must not matter");
    }
}

/// A component that violates causality by scheduling behind the clock.
struct TimeTraveller;

impl Component<u32> for TimeTraveller {
    fn on_event(&mut self, ctx: &mut Ctx<'_, u32>, _: u32) {
        ctx.schedule_at(SimTime::from_micros(5), 0);
    }
}

#[test]
#[should_panic(expected = "cannot schedule event in the past")]
fn component_scheduling_into_the_past_panics_with_causality_message() {
    let mut engine = Engine::new();
    let id = engine.register(TimeTraveller);
    engine.schedule_at(id, SimTime::from_micros(10), 0);
    engine.run();
}
