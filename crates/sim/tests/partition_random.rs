//! Property tests for the partitioned engine's core contract: for *any*
//! component-to-partition map and *any* event stream the conservative
//! protocol can legally run, the partitioned execution replays the serial
//! engine's history bit-for-bit.
//!
//! Two regimes are exercised: finite fabric-latency lookahead windows
//! (components send anywhere, but never sooner than the lookahead) and
//! event-closed maps (components send only within their own group, at any
//! delay, and the whole run drains in one unbounded window).

use now_sim::{
    Component, ComponentId, Ctx, Engine, Lookahead, PartitionedEngine, SimDuration, SimRng, SimTime,
};
use proptest::prelude::*;

/// A component driving a random-but-deterministic event cascade: on every
/// delivery it logs `(time, payload)`, then fans out 0..=2 sends to
/// targets drawn from its own seeded [`SimRng`]. The rng advances only on
/// deliveries, so two runs that deliver the same events in the same order
/// make identical choices — which is exactly what the test asserts.
struct Hopper {
    rng: SimRng,
    targets: Vec<ComponentId>,
    /// Every send is delayed at least this much — the remote-safety floor
    /// under a lookahead window (and simply a floor under a closed map).
    min_delay: SimDuration,
    /// Sends remaining to this component, so every cascade terminates.
    budget: u32,
    seen: Vec<(u64, u64)>,
}

impl Component<u64> for Hopper {
    fn on_event(&mut self, ctx: &mut Ctx<'_, u64>, v: u64) {
        self.seen.push((ctx.now().as_nanos(), v));
        let fanout = self.rng.gen_range(0..3);
        for _ in 0..fanout {
            if self.budget == 0 {
                return;
            }
            self.budget -= 1;
            let dst = *self.rng.pick(&self.targets);
            let extra = self.rng.gen_range(0..100);
            let at = ctx.now() + self.min_delay + SimDuration::from_micros(extra);
            ctx.send_to_at(dst, at, v.wrapping_mul(31).wrapping_add(extra));
        }
    }
}

/// One randomized workload: component count, per-component rng seeds and
/// send budgets, initial events, and a target list per component.
struct Workload {
    seeds: Vec<u64>,
    budget: u32,
    min_delay: SimDuration,
    /// `(component, time µs, payload)` seed events.
    initial: Vec<(usize, u64, u64)>,
    /// Target pool of component `i` (indices; identical across engines).
    targets: Vec<Vec<usize>>,
}

impl Workload {
    fn hopper(&self, i: usize) -> Hopper {
        Hopper {
            rng: SimRng::new(self.seeds[i]),
            targets: self.targets[i].iter().map(|&t| ComponentId(t)).collect(),
            min_delay: self.min_delay,
            budget: self.budget,
            seen: Vec::new(),
        }
    }
}

/// Runs the workload on the plain serial engine.
fn serial_histories(w: &Workload) -> Vec<Vec<(u64, u64)>> {
    let mut engine: Engine<u64> = Engine::new();
    let ids: Vec<ComponentId> = (0..w.seeds.len())
        .map(|i| engine.register(w.hopper(i)))
        .collect();
    for &(c, t, v) in &w.initial {
        engine.schedule_at(ids[c], SimTime::from_micros(t), v);
    }
    engine.run();
    ids.iter()
        .map(|&id| engine.component::<Hopper>(id).seen.clone())
        .collect()
}

/// Runs the workload partitioned under `map` (component -> partition).
fn partitioned_histories(
    w: &Workload,
    partitions: usize,
    map: &[u32],
    lookahead: Lookahead,
) -> Vec<Vec<(u64, u64)>> {
    let mut engine: PartitionedEngine<u64> = PartitionedEngine::with_fixed(partitions, lookahead);
    let ids: Vec<ComponentId> = (0..w.seeds.len())
        .map(|i| engine.register(map[i], w.hopper(i)))
        .collect();
    for &(c, t, v) in &w.initial {
        engine.schedule_at(ids[c], SimTime::from_micros(t), v);
    }
    engine.run();
    ids.iter()
        .map(|&id| engine.component::<Hopper>(id).seen.clone())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Window regime: any component may send to any other, delayed at
    /// least the lookahead. Whatever the partition map, every partition
    /// count replays the serial history exactly.
    #[test]
    fn random_maps_and_streams_replay_the_serial_history(
        seeds in prop::collection::vec(any::<u64>(), 2..10),
        raw_map in prop::collection::vec(0u32..4, 10),
        raw_initial in prop::collection::vec((0usize..10, 0u64..500, any::<u64>()), 1..8),
        budget in 1u32..32,
    ) {
        let n = seeds.len();
        let w = Workload {
            seeds,
            budget,
            min_delay: SimDuration::from_micros(50),
            initial: raw_initial.iter().map(|&(c, t, v)| (c % n, t, v)).collect(),
            targets: (0..n).map(|_| (0..n).collect()).collect(),
        };
        let serial = serial_histories(&w);
        prop_assert!(
            serial.iter().any(|h| !h.is_empty()),
            "the workload must deliver something"
        );
        for partitions in 2..=4usize {
            let map: Vec<u32> = raw_map[..n].iter().map(|&p| p % partitions as u32).collect();
            let sharded = partitioned_histories(
                &w,
                partitions,
                &map,
                Lookahead::Window(w.min_delay),
            );
            prop_assert_eq!(
                &serial, &sharded,
                "history diverged at {} partitions under map {:?}", partitions, map
            );
        }
    }

    /// Closed regime: components are clustered into groups that never
    /// exchange events, so any delay is legal — including zero — and the
    /// engine runs with no synchronization windows at all. Any map that
    /// keeps groups whole replays the serial history exactly.
    #[test]
    fn random_closed_groups_replay_the_serial_history(
        group_sizes in prop::collection::vec(1usize..4, 2..5),
        seeds in prop::collection::vec(any::<u64>(), 16),
        raw_initial in prop::collection::vec((0usize..16, 0u64..500, any::<u64>()), 2..8),
        budget in 1u32..32,
        rotation in 0u32..4,
    ) {
        // Component i belongs to the group covering its index.
        let n: usize = group_sizes.iter().sum();
        let mut group_of = Vec::with_capacity(n);
        let mut members: Vec<Vec<usize>> = Vec::new();
        for (g, &size) in group_sizes.iter().enumerate() {
            let start = group_of.len();
            group_of.extend(std::iter::repeat_n(g, size));
            members.push((start..start + size).collect());
        }
        let w = Workload {
            seeds: seeds[..n].to_vec(),
            budget,
            // Zero floor: closed maps need no lookahead at all.
            min_delay: SimDuration::ZERO,
            initial: raw_initial.iter().map(|&(c, t, v)| (c % n, t, v)).collect(),
            targets: (0..n).map(|i| members[group_of[i]].clone()).collect(),
        };
        let serial = serial_histories(&w);
        for partitions in 2..=4usize {
            // Groups stay whole; rotation varies which partition is whose.
            let map: Vec<u32> = (0..n)
                .map(|i| (group_of[i] as u32 + rotation) % partitions as u32)
                .collect();
            let sharded = partitioned_histories(&w, partitions, &map, Lookahead::Closed);
            prop_assert_eq!(
                &serial, &sharded,
                "closed history diverged at {} partitions under map {:?}", partitions, map
            );
        }
    }
}
