//! Steady-state allocation accounting for the engine's hot path.
//!
//! The contract under test: once the event queue, pending-set ring, and
//! component table are warm, `schedule` / dispatch / `advance` touch the
//! allocator zero times. A counting `GlobalAlloc` wrapper (legal here —
//! `#![forbid(unsafe_code)]` guards the library, not its integration
//! tests) runs a workload twice and asserts the second, warm pass
//! performs no allocations at all.
//!
//! This file holds exactly ONE `#[test]`: the counter is process-global,
//! and a sibling test allocating on another thread would pollute it.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use now_sim::{Component, ComponentId, Ctx, Engine, SimDuration, SimTime};

struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);
static REALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            REALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Bounces a counter between two components with a fixed delay — the
/// densest schedule/dispatch pattern the engine sees, with every event
/// spawning the next.
struct PingPong {
    peer: ComponentId,
    remaining: u32,
}

impl Component<u64> for PingPong {
    fn on_event(&mut self, ctx: &mut Ctx<'_, u64>, v: u64) {
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.send_to_at(self.peer, ctx.now() + SimDuration::from_micros(1), v + 1);
        }
    }
}

const ROUNDS: u32 = 10_000;

#[test]
fn warm_dispatch_loop_allocates_nothing() {
    let mut engine = Engine::new();
    let b = ComponentId(1);
    let a = engine.register(PingPong {
        peer: b,
        remaining: ROUNDS,
    });
    engine.register(PingPong {
        peer: a,
        remaining: ROUNDS,
    });

    // Cold pass: grow the heap, the pending-set ring, and whatever else
    // to steady-state capacity.
    engine.schedule_at(a, SimTime::ZERO, 0);
    engine.run();

    // Re-seed the same workload on the warm engine.
    engine.component_mut::<PingPong>(a).remaining = ROUNDS;
    engine.component_mut::<PingPong>(b).remaining = ROUNDS;
    let restart = engine.now() + SimDuration::from_micros(1);
    engine.schedule_at(a, restart, 0);

    ARMED.store(true, Ordering::SeqCst);
    engine.run();
    ARMED.store(false, Ordering::SeqCst);

    let allocs = ALLOCS.load(Ordering::SeqCst);
    let reallocs = REALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        (allocs, reallocs),
        (0, 0),
        "warm engine run hit the allocator: {allocs} allocs, {reallocs} reallocs \
         over {} dispatches",
        2 * ROUNDS
    );
    assert_eq!(engine.pending(), 0);
}
