//! CSMA/CD contention: why shared Ethernet is even worse than
//! serialisation.
//!
//! The [`SharedBus`](crate::SharedBus) model queues transfers perfectly —
//! an idealisation. Real 10-Mbps Ethernet arbitrates by carrier sense with
//! collision detection and binary exponential backoff, and its *useful*
//! utilisation collapses as stations contend: classic measurements put the
//! knee near 60–80 percent offered load for small frames. This module
//! models that effect, sharpening the paper's argument that the baseline
//! NOW's shared medium cannot scale.

use now_probe::Probe;
use now_sim::{SimDuration, SimRng, SimTime};

use crate::fabric::{Fabric, WireTiming};
use crate::NodeId;

/// Ethernet slot time (512 bit times at 10 Mbps).
pub const SLOT: SimDuration = SimDuration::from_micros(51);

/// A shared bus with CSMA/CD arbitration: before each frame, the sender
/// contends with the currently backlogged stations; collisions burn slot
/// times per binary exponential backoff before the frame wins the medium.
#[derive(Debug, Clone)]
pub struct CsmaBus {
    nodes: u32,
    bits_per_sec: f64,
    frame_overhead: SimDuration,
    propagation: SimDuration,
    free_at: SimTime,
    /// Stations estimated to be waiting for the medium right now, decayed
    /// as the medium drains. Drives the collision probability.
    backlog: u32,
    rng: SimRng,
    collisions: u64,
    frames: u64,
    probe: Probe,
}

impl CsmaBus {
    /// Classic 10-Mbps Ethernet with CSMA/CD arbitration.
    ///
    /// # Panics
    ///
    /// Panics with fewer than two nodes.
    pub fn ethernet_10(nodes: u32, seed: u64) -> Self {
        assert!(nodes >= 2, "a network needs at least two nodes");
        CsmaBus {
            nodes,
            bits_per_sec: 10e6,
            frame_overhead: SimDuration::from_micros(10),
            propagation: SimDuration::from_micros(5),
            free_at: SimTime::ZERO,
            backlog: 0,
            rng: SimRng::new(seed),
            collisions: 0,
            frames: 0,
            probe: Probe::disabled(),
        }
    }

    /// Attaches a telemetry probe. Every subsequent frame bumps
    /// `csma.frames` / `csma.collisions` and records the
    /// `csma.acquire_wait.ns` histogram (arbitration + queueing delay).
    pub fn set_probe(&mut self, probe: Probe) {
        self.probe = probe;
    }

    /// Collisions observed so far.
    pub fn collisions(&self) -> u64 {
        self.collisions
    }

    /// Frames carried so far.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Mean collisions per frame — the contention health metric.
    pub fn collisions_per_frame(&self) -> f64 {
        if self.frames == 0 {
            0.0
        } else {
            self.collisions as f64 / self.frames as f64
        }
    }
}

impl Fabric for CsmaBus {
    fn transfer(&mut self, src: NodeId, dst: NodeId, bytes: u64, now: SimTime) -> WireTiming {
        assert_ne!(src, dst, "local transfers do not use the fabric");
        assert!(
            src.0 < self.nodes && dst.0 < self.nodes,
            "node out of range"
        );
        // If we arrive while the medium is busy, we join the backlog;
        // otherwise contention has drained.
        if now >= self.free_at {
            self.backlog = 0;
        } else {
            self.backlog = (self.backlog + 1).min(self.nodes - 1);
        }
        let mut start = now.max(self.free_at);

        // Binary exponential backoff: with k backlogged stations wanting
        // the idle medium, a given attempt collides with probability
        // roughly k/(k+1); each collision costs a slot plus a random
        // backoff drawn from a doubling window.
        let mut attempt: u32 = 0;
        let collisions_before = self.collisions;
        while self.backlog > 0 {
            let p_collide = f64::from(self.backlog) / f64::from(self.backlog + 1);
            if !self.rng.chance(p_collide) {
                break;
            }
            self.collisions += 1;
            attempt = (attempt + 1).min(10);
            let window = 1u64 << attempt.min(10);
            let backoff = SLOT * self.rng.gen_range(0..window);
            start = start + SLOT + backoff;
            // Some contenders win earlier slots and drain.
            self.backlog = self.backlog.saturating_sub(1);
        }

        let wire = SimDuration::from_secs_f64(bytes as f64 * 8.0 / self.bits_per_sec);
        let tx_done = start + self.frame_overhead + wire;
        self.free_at = tx_done;
        self.frames += 1;
        if self.probe.is_enabled() {
            self.probe.count("csma.frames", 1);
            self.probe
                .count("csma.collisions", self.collisions - collisions_before);
            self.probe
                .record("csma.acquire_wait.ns", start.saturating_since(now));
        }
        WireTiming {
            tx_start: start,
            tx_done,
            rx_done: tx_done + self.propagation,
        }
    }

    fn nodes(&self) -> u32 {
        self.nodes
    }

    fn link_bits_per_sec(&self) -> f64 {
        self.bits_per_sec
    }

    fn base_latency(&self) -> SimDuration {
        self.frame_overhead + self.propagation
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SharedBus;

    /// Saturates the bus: all frames are offered essentially at once (as
    /// stations with full queues would), so every arrival finds the medium
    /// busy and joins the contention. Returns goodput in Mbps.
    fn saturated_goodput(fabric: &mut dyn Fabric, stations: u32, frames: u32, bytes: u64) -> f64 {
        let mut last = SimTime::ZERO;
        for i in 0..frames {
            let src = NodeId(i % stations);
            let dst = NodeId((i + 1) % stations);
            let out = fabric.transfer(src, dst, bytes, SimTime::from_nanos(u64::from(i)));
            last = last.max(out.rx_done);
        }
        frames as f64 * bytes as f64 * 8.0 / last.as_secs_f64().max(1e-12) / 1e6
    }

    #[test]
    fn uncontended_frame_matches_ideal_bus() {
        let mut csma = CsmaBus::ethernet_10(4, 1);
        let mut ideal = SharedBus::ethernet_10(4);
        // A single isolated frame sees no backlog: identical timing.
        let a = csma.transfer(NodeId(0), NodeId(1), 1_000, SimTime::ZERO);
        let b = ideal.transfer(NodeId(0), NodeId(1), 1_000, SimTime::ZERO);
        assert_eq!(a.rx_done, b.rx_done);
        assert_eq!(csma.collisions(), 0);
    }

    #[test]
    fn contention_burns_goodput_below_the_ideal_bus() {
        let stations = 16;
        let mut csma = CsmaBus::ethernet_10(stations, 7);
        let mut ideal = SharedBus::ethernet_10(stations);
        let g_csma = saturated_goodput(&mut csma, stations, 2_000, 200);
        let g_ideal = saturated_goodput(&mut ideal, stations, 2_000, 200);
        assert!(
            g_csma < g_ideal * 0.9,
            "CSMA {g_csma} Mbps should trail ideal {g_ideal} Mbps"
        );
        assert!(csma.collisions() > 0);
    }

    #[test]
    fn small_frames_collide_more_than_large_ones() {
        // Per byte carried, small frames spend far more time arbitrating.
        let mut small = CsmaBus::ethernet_10(16, 3);
        let mut large = CsmaBus::ethernet_10(16, 3);
        saturated_goodput(&mut small, 16, 2_000, 64);
        saturated_goodput(&mut large, 16, 2_000, 1_500);
        let per_byte_small = small.collisions() as f64 / (2_000.0 * 64.0);
        let per_byte_large = large.collisions() as f64 / (2_000.0 * 1_500.0);
        assert!(
            per_byte_small > per_byte_large * 2.0,
            "small {per_byte_small} vs large {per_byte_large}"
        );
    }

    #[test]
    fn deterministic_under_a_seed() {
        let run = |seed| {
            let mut bus = CsmaBus::ethernet_10(8, seed);
            saturated_goodput(&mut bus, 8, 500, 200);
            (bus.collisions(), bus.frames())
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9).0, run(10).0);
    }

    #[test]
    fn collision_rate_grows_with_stations() {
        let rate = |stations| {
            let mut bus = CsmaBus::ethernet_10(stations, 5);
            saturated_goodput(&mut bus, stations, 2_000, 200);
            bus.collisions_per_frame()
        };
        assert!(
            rate(32) > rate(4),
            "32 stations {} vs 4 {}",
            rate(32),
            rate(4)
        );
    }
}
