//! The [`Network`]: fabric + protocol stack + NIC placement, as one
//! accountable transfer primitive.

use now_probe::Probe;
use now_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::fabric::Fabric;
use crate::{HierarchicalFabric, LogP, NodeId, SharedBus, SoftwareCosts, SwitchedFabric};

/// Where the network interface attaches to the node — one of the design
/// dimensions the Berkeley project evaluated (PCI/I/O bus, graphics bus, or
/// memory bus). Closer to the processor means less overhead per message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NicAttachment {
    /// Standard peripheral I/O bus (SBus/ISA-era): cheapest, slowest path.
    IoBus,
    /// Graphics bus, as in the Medusa FDDI prototype: much closer.
    GraphicsBus,
    /// Processor-memory bus, as on MPP nodes: closest.
    MemoryBus,
}

impl NicAttachment {
    /// Extra fixed CPU cost per message crossing this attachment point.
    pub fn extra_overhead(self) -> SimDuration {
        match self {
            NicAttachment::IoBus => SimDuration::from_micros(30),
            NicAttachment::GraphicsBus => SimDuration::from_micros(1),
            NicAttachment::MemoryBus => SimDuration::from_nanos(300),
        }
    }
}

/// The two fabric families, type-erased for storage inside [`Network`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum FabricKind {
    Shared(SharedBus),
    Switched(SwitchedFabric),
    Hierarchical(HierarchicalFabric),
}

impl FabricKind {
    fn as_fabric_mut(&mut self) -> &mut dyn Fabric {
        match self {
            FabricKind::Shared(f) => f,
            FabricKind::Switched(f) => f,
            FabricKind::Hierarchical(f) => f,
        }
    }

    fn as_fabric(&self) -> &dyn Fabric {
        match self {
            FabricKind::Shared(f) => f,
            FabricKind::Switched(f) => f,
            FabricKind::Hierarchical(f) => f,
        }
    }
}

/// Complete accounting for one message transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransferOutcome {
    /// CPU time consumed at the sender (overhead: unavailable for
    /// computation).
    pub send_cpu: SimDuration,
    /// CPU time consumed at the receiver on delivery.
    pub recv_cpu: SimDuration,
    /// When the sender's CPU is free again (it can overlap the wire time).
    pub sender_free_at: SimTime,
    /// When the first byte hit the wire. The gap between `sender_free_at`
    /// and this is contention wait: the NIC had the message but the fabric
    /// was busy with competing traffic.
    pub wire_start: SimTime,
    /// When the last byte reaches the receiver's NIC.
    pub wire_done_at: SimTime,
    /// When the receiving *process* has the data (wire + receive overhead).
    pub delivered_at: SimTime,
}

impl TransferOutcome {
    /// End-to-end one-way time from the request.
    pub fn one_way(&self, requested_at: SimTime) -> SimDuration {
        self.delivered_at.saturating_since(requested_at)
    }
}

/// A simulated cluster interconnect: a wire fabric, a software stack, and a
/// NIC attachment point.
///
/// All the higher-level NOW subsystems (remote paging, cooperative caching,
/// RAID striping, parallel jobs) move their bytes through
/// [`Network::transfer`], so contention between subsystems is modelled for
/// free: they share the same occupancy state.
///
/// # Example
///
/// ```
/// use now_net::{presets, NodeId};
/// use now_sim::SimTime;
///
/// let mut net = presets::am_atm(16);
/// let out = net.transfer(NodeId(0), NodeId(9), 8_192, SimTime::ZERO);
/// assert!(out.delivered_at > SimTime::ZERO);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Network {
    fabric: FabricKind,
    stack: SoftwareCosts,
    nic: NicAttachment,
    /// Telemetry tap; disabled by default and free when disabled. Probes
    /// compare equal regardless of state, so this does not affect the
    /// derived `PartialEq`.
    probe: Probe,
}

impl Network {
    /// Builds a network from a shared-bus fabric.
    pub fn shared(fabric: SharedBus, stack: SoftwareCosts, nic: NicAttachment) -> Self {
        Network {
            fabric: FabricKind::Shared(fabric),
            stack,
            nic,
            probe: Probe::disabled(),
        }
    }

    /// Builds a network from a switched fabric.
    pub fn switched(fabric: SwitchedFabric, stack: SoftwareCosts, nic: NicAttachment) -> Self {
        Network {
            fabric: FabricKind::Switched(fabric),
            stack,
            nic,
            probe: Probe::disabled(),
        }
    }

    /// Builds a network from a two-level building fabric.
    pub fn hierarchical(
        fabric: HierarchicalFabric,
        stack: SoftwareCosts,
        nic: NicAttachment,
    ) -> Self {
        Network {
            fabric: FabricKind::Hierarchical(fabric),
            stack,
            nic,
            probe: Probe::disabled(),
        }
    }

    /// Number of attached nodes.
    pub fn nodes(&self) -> u32 {
        self.fabric.as_fabric().nodes()
    }

    /// The software stack in use.
    pub fn stack(&self) -> SoftwareCosts {
        self.stack
    }

    /// The NIC attachment point.
    pub fn nic(&self) -> NicAttachment {
        self.nic
    }

    /// Attaches a telemetry probe. Every subsequent [`Network::transfer`]
    /// bumps the `net.transfers` / `net.bytes` counters and records the
    /// `net.queue_wait.ns` and `net.wire.ns` histograms.
    pub fn set_probe(&mut self, probe: Probe) {
        self.probe = probe;
    }

    /// Moves `bytes` from `src` to `dst`, requested at `now`, accounting
    /// CPU overhead and wire occupancy.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst` or either node is out of range (see
    /// [`Fabric::transfer`]).
    pub fn transfer(
        &mut self,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        now: SimTime,
    ) -> TransferOutcome {
        let send_cpu = self.stack.send_cost(bytes) + self.nic.extra_overhead();
        let recv_cpu = self.stack.recv_cost(bytes) + self.nic.extra_overhead();
        // The NIC gets the message after send-side software runs.
        let wire_request = now + send_cpu;
        let timing = self
            .fabric
            .as_fabric_mut()
            .transfer(src, dst, bytes, wire_request);
        if self.probe.is_enabled() {
            let queue_wait = timing.tx_start.saturating_since(wire_request);
            self.probe.count("net.transfers", 1);
            self.probe.count("net.bytes", bytes);
            self.probe.record("net.queue_wait.ns", queue_wait);
            self.probe.record(
                "net.wire.ns",
                timing.rx_done.saturating_since(timing.tx_start),
            );
            // Last-observed contention wait, sampled by the flight
            // recorder as a fabric-occupancy signal.
            self.probe
                .gauge_set("net.queue_wait_us", queue_wait.as_micros_f64());
            // Utilization ledgers: the sender's NIC is busy running the
            // software stack, its link direction while clocking bytes
            // out, and the receiver's link direction for the same
            // serialization window ending at delivery.
            self.probe
                .busy(&format!("net.nic.{}", src.0), now, wire_request);
            self.probe.busy(
                &format!("net.link.tx.{}", src.0),
                timing.tx_start,
                timing.tx_done,
            );
            let rx_window = timing.tx_done.saturating_since(timing.tx_start);
            self.probe.busy(
                &format!("net.link.rx.{}", dst.0),
                SimTime::from_nanos(
                    timing
                        .rx_done
                        .as_nanos()
                        .saturating_sub(rx_window.as_nanos()),
                ),
                timing.rx_done,
            );
        }
        TransferOutcome {
            send_cpu,
            recv_cpu,
            sender_free_at: wire_request,
            wire_start: timing.tx_start,
            wire_done_at: timing.rx_done,
            delivered_at: timing.rx_done + recv_cpu,
        }
    }

    /// One-way time for a minimal (64-byte) message on an idle network,
    /// in microseconds — the paper's headline comparison metric.
    ///
    /// Leaves occupancy state untouched.
    pub fn one_way_small_message_us(&mut self) -> f64 {
        let saved = self.clone();
        self.probe = Probe::disabled(); // measurement traffic is not telemetry
        let far = SimTime::from_secs(1_000_000); // idle by then
        let out = self.transfer(NodeId(0), NodeId(1), 64, far);
        *self = saved;
        out.one_way(far).as_micros_f64()
    }

    /// A hard lower bound on the one-way delivery time of *any* message
    /// through this network: a minimal 1-byte transfer on an idle fabric.
    ///
    /// Contention, larger payloads, and NIC queueing only ever add to this,
    /// so a partitioned simulation may use it as conservative lookahead —
    /// no event sent "now" over this network can be delivered earlier than
    /// `now + min_remote_latency()`. Leaves occupancy state untouched.
    pub fn min_remote_latency(&mut self) -> SimDuration {
        let saved = self.clone();
        self.probe = Probe::disabled(); // measurement traffic is not telemetry
        let far = SimTime::from_secs(1_000_000); // idle by then
        let out = self.transfer(NodeId(0), NodeId(1), 1, far);
        *self = saved;
        out.one_way(far)
    }

    /// Achieved bandwidth for back-to-back transfers of `bytes`-byte
    /// messages, in megabits per second. Leaves occupancy state untouched.
    pub fn bandwidth_at_mbps(&mut self, bytes: u64, messages: u32) -> f64 {
        assert!(messages > 0, "need at least one message");
        let saved = self.clone();
        self.probe = Probe::disabled(); // measurement traffic is not telemetry
        let start = SimTime::from_secs(1_000_000);
        let mut t = start;
        let mut last_delivery = start;
        for _ in 0..messages {
            let out = self.transfer(NodeId(0), NodeId(1), bytes, t);
            // Next send can start when the sender's CPU frees.
            t = out.sender_free_at;
            last_delivery = out.delivered_at;
        }
        *self = saved;
        let total_bits = bytes as f64 * 8.0 * messages as f64;
        total_bits / last_delivery.saturating_since(start).as_secs_f64() / 1e6
    }

    /// The message size at which achieved bandwidth reaches half its
    /// large-message value — the "half-power point" the paper quotes (175
    /// bytes for AM vs 760/1,350 bytes for TCP variants).
    pub fn half_power_point_bytes(&mut self) -> u64 {
        let peak = self.bandwidth_at_mbps(1 << 20, 4);
        let mut lo = 1u64;
        let mut hi = 1 << 20;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.bandwidth_at_mbps(mid, 8) >= peak / 2.0 {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        lo
    }

    /// Summarises this network as LogP parameters for a small message.
    pub fn logp(&self) -> LogP {
        let f = self.fabric.as_fabric();
        let small = 64;
        LogP {
            latency: f.base_latency()
                + SimDuration::from_secs_f64(small as f64 * 8.0 / f.link_bits_per_sec()),
            overhead: (self.stack.send_cost(small)
                + self.stack.recv_cost(small)
                + self.nic.extra_overhead() * 2)
                / 2,
            gap: SimDuration::from_secs_f64(small as f64 * 8.0 / f.link_bits_per_sec()),
            processors: f.nodes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn tcp_ethernet_one_way_matches_measured_456us() {
        // Paper: "we measured 456 µs of processor overhead plus (unloaded)
        // network latency on a single message" for TCP on Ethernet.
        let mut net = presets::tcp_ethernet(4);
        let t = net.one_way_small_message_us();
        assert!((400.0..520.0).contains(&t), "got {t} µs");
    }

    #[test]
    fn tcp_atm_one_way_matches_measured_626us() {
        let mut net = presets::tcp_atm(4);
        let t = net.one_way_small_message_us();
        assert!((560.0..700.0).contains(&t), "got {t} µs");
    }

    #[test]
    fn hpam_one_way_is_about_16us() {
        // 8 µs processor overhead + 8 µs network/adapter latency.
        let mut net = presets::am_fddi(4);
        let t = net.one_way_small_message_us();
        assert!((12.0..25.0).contains(&t), "got {t} µs");
    }

    #[test]
    fn sockets_over_am_one_way_is_about_25us() {
        let mut net = presets::sockets_am_fddi(4);
        let t = net.one_way_small_message_us();
        assert!((20.0..35.0).contains(&t), "got {t} µs");
        // "nearly an order of magnitude faster than TCP... on the same
        // hardware."
        let mut tcp = presets::tcp_ethernet(4);
        assert!(tcp.one_way_small_message_us() / t > 8.0);
    }

    #[test]
    fn cm5_meets_the_10us_target_scale() {
        // The NOW target: small-message user-to-user in 10 µs; the CM-5
        // already achieves overhead+latency in that range.
        let mut net = presets::cm5(64);
        let t = net.one_way_small_message_us();
        assert!(t < 12.0, "got {t} µs");
    }

    #[test]
    fn tcp_bandwidth_on_ethernet_is_about_9mbps() {
        let mut net = presets::tcp_ethernet(4);
        let bw = net.bandwidth_at_mbps(64 * 1024, 4);
        assert!((6.0..11.0).contains(&bw), "got {bw} Mbps");
    }

    #[test]
    fn tcp_bandwidth_on_atm_is_about_78mbps() {
        let mut net = presets::tcp_atm(4);
        let bw = net.bandwidth_at_mbps(1 << 20, 4);
        assert!((60.0..95.0).contains(&bw), "got {bw} Mbps");
    }

    #[test]
    fn am_half_power_point_is_far_below_tcp() {
        // Paper: half of peak at 175-byte messages for AM vs 760 bytes for
        // single-copy TCP and 1,350 for standard TCP.
        let mut am = presets::am_fddi(4);
        let mut sc_tcp = presets::single_copy_tcp_fddi(4);
        let mut tcp = presets::tcp_ethernet(4);
        let am_hp = am.half_power_point_bytes();
        let sc_hp = sc_tcp.half_power_point_bytes();
        let tcp_hp = tcp.half_power_point_bytes();
        assert!(am_hp < 400, "AM half-power {am_hp}");
        assert!(sc_hp > am_hp, "single-copy TCP {sc_hp} vs AM {am_hp}");
        assert!((400..4_000).contains(&sc_hp), "single-copy TCP {sc_hp}");
        // Standard TCP on Ethernet is wire-limited, not overhead-limited,
        // so compare it on the same FDDI wire instead (paper: 1,350 bytes
        // for standard TCP vs 760 for single-copy).
        let mut tcp_fddi = presets::tcp_fddi(4);
        let tcp_fddi_hp = tcp_fddi.half_power_point_bytes();
        assert!(
            tcp_fddi_hp > sc_hp,
            "standard TCP {tcp_fddi_hp} vs single-copy {sc_hp}"
        );
        let _ = tcp_hp;
    }

    #[test]
    fn min_remote_latency_lower_bounds_real_transfers() {
        for mut net in [
            presets::am_atm(8),
            presets::tcp_ethernet(8),
            presets::cm5(8),
        ] {
            let floor = net.min_remote_latency();
            assert!(floor > SimDuration::ZERO);
            // Busy fabric, bigger payloads: never faster than the floor.
            let mut t = SimTime::ZERO;
            for i in 0..16u64 {
                let out = net.transfer(NodeId(0), NodeId(1), 1 + i * 4_096, t);
                assert!(out.one_way(t) >= floor, "transfer undercut the floor");
                t = out.sender_free_at;
            }
        }
    }

    #[test]
    fn nic_attachment_ordering() {
        let io = NicAttachment::IoBus.extra_overhead();
        let gfx = NicAttachment::GraphicsBus.extra_overhead();
        let mem = NicAttachment::MemoryBus.extra_overhead();
        assert!(mem < gfx && gfx < io);
    }

    #[test]
    fn transfer_accounts_cpu_and_wire_separately() {
        let mut net = presets::am_atm(4);
        let out = net.transfer(NodeId(0), NodeId(1), 8_192, SimTime::ZERO);
        assert!(
            out.sender_free_at < out.wire_done_at,
            "sender overlaps wire"
        );
        assert!(
            out.delivered_at > out.wire_done_at,
            "receive overhead after wire"
        );
        assert_eq!(out.delivered_at - out.wire_done_at, out.recv_cpu);
    }

    #[test]
    fn transfers_feed_utilization_ledgers_that_telescope() {
        use now_probe::Registry;
        let r = Registry::new();
        let mut net = presets::am_atm(4);
        net.set_probe(r.probe());
        let mut t = SimTime::ZERO;
        for _ in 0..4 {
            let out = net.transfer(NodeId(0), NodeId(1), 8_192, t);
            t = out.sender_free_at;
        }
        let s = r.snapshot();
        for resource in ["net.nic.0", "net.link.tx.0", "net.link.rx.1"] {
            let u = s
                .util(resource)
                .unwrap_or_else(|| panic!("{resource} ledger missing"));
            assert!(u.busy_ns > 0, "{resource} recorded busy time");
            assert_eq!(u.busy_ns + u.idle_ns(), u.wall_ns, "{resource} telescopes");
            assert_eq!(u.intervals, 4);
        }
        // Node 1 only received: no send-side ledgers for it.
        assert!(s.util("net.nic.1").is_none());
        assert!(s.util("net.link.tx.1").is_none());
    }

    #[test]
    fn probes_do_not_disturb_occupancy() {
        let mut a = presets::am_atm(4);
        let b = a.clone();
        let _ = a.one_way_small_message_us();
        let _ = a.bandwidth_at_mbps(4_096, 4);
        let _ = a.half_power_point_bytes();
        assert_eq!(a, b, "probe methods must restore state");
    }

    #[test]
    fn logp_summary_is_consistent() {
        let net = presets::cm5(32);
        let p = net.logp();
        assert_eq!(p.processors, 32);
        assert!(p.overhead < SimDuration::from_micros(3));
        assert!(p.latency >= SimDuration::from_micros(4));
    }
}
