//! Building-scale topology: floor switches under a backbone.
//!
//! A 100-node NOW does not hang off one switch: machines connect to
//! per-floor (leaf) switches whose uplinks join a backbone. The paper's
//! enterprise ambitions ("scale to an entire enterprise") live or die on
//! whether the uplinks become the new shared Ethernet. This fabric makes
//! that trade-off measurable: intra-group traffic sees only the leaf
//! switch, while inter-group traffic also queues on the two groups'
//! uplinks.

use now_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::fabric::{Fabric, WireTiming};
use crate::NodeId;

/// A two-level switched fabric: `groups` leaf switches of `per_group`
/// nodes each, joined by a backbone.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HierarchicalFabric {
    groups: u32,
    per_group: u32,
    /// Node link bandwidth, bits/s.
    node_bits_per_sec: f64,
    /// Uplink bandwidth per leaf switch, bits/s.
    uplink_bits_per_sec: f64,
    /// One-hop switch latency (leaf or backbone).
    hop_latency: SimDuration,
    tx_free: Vec<SimTime>,
    rx_free: Vec<SimTime>,
    /// Occupancy of each group's uplink, in each direction.
    up_free: Vec<SimTime>,
    down_free: Vec<SimTime>,
}

impl HierarchicalFabric {
    /// Creates a fabric of `groups * per_group` nodes.
    ///
    /// # Panics
    ///
    /// Panics unless there are at least 2 nodes overall and bandwidths are
    /// positive.
    pub fn new(
        groups: u32,
        per_group: u32,
        node_bits_per_sec: f64,
        uplink_bits_per_sec: f64,
        hop_latency: SimDuration,
    ) -> Self {
        let nodes = groups * per_group;
        assert!(nodes >= 2, "a network needs at least two nodes");
        assert!(
            node_bits_per_sec > 0.0 && uplink_bits_per_sec > 0.0,
            "bandwidths must be positive"
        );
        HierarchicalFabric {
            groups,
            per_group,
            node_bits_per_sec,
            uplink_bits_per_sec,
            hop_latency,
            tx_free: vec![SimTime::ZERO; nodes as usize],
            rx_free: vec![SimTime::ZERO; nodes as usize],
            up_free: vec![SimTime::ZERO; groups as usize],
            down_free: vec![SimTime::ZERO; groups as usize],
        }
    }

    /// A building of ATM floor switches: 155-Mbps node links, 622-Mbps
    /// (OC-12) uplinks, 20 µs per hop.
    pub fn atm_building(groups: u32, per_group: u32) -> Self {
        HierarchicalFabric::new(
            groups,
            per_group,
            155e6,
            622e6,
            SimDuration::from_micros(20),
        )
    }

    /// The group a node belongs to.
    pub fn group_of(&self, node: NodeId) -> u32 {
        node.0 / self.per_group
    }

    fn wire(&self, bytes: u64, bits_per_sec: f64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 * 8.0 / bits_per_sec)
    }
}

impl Fabric for HierarchicalFabric {
    fn transfer(&mut self, src: NodeId, dst: NodeId, bytes: u64, now: SimTime) -> WireTiming {
        assert_ne!(src, dst, "local transfers do not use the fabric");
        let nodes = self.groups * self.per_group;
        assert!(src.0 < nodes && dst.0 < nodes, "node out of range");
        let node_wire = self.wire(bytes, self.node_bits_per_sec);

        // Source link.
        let tx_start = now.max(self.tx_free[src.0 as usize]);
        let tx_done = tx_start + node_wire;
        self.tx_free[src.0 as usize] = tx_done;

        let sg = self.group_of(src);
        let dg = self.group_of(dst);
        let mut head = tx_start + self.hop_latency; // leaf switch
        if sg != dg {
            // Up the source group's uplink, across the backbone, down the
            // destination group's uplink; both uplinks are occupancy-
            // tracked resources.
            let up_wire = self.wire(bytes, self.uplink_bits_per_sec);
            let up_start = head.max(self.up_free[sg as usize]);
            let up_done = up_start + up_wire;
            self.up_free[sg as usize] = up_done;
            head = up_start + self.hop_latency; // backbone switch

            let down_start = head.max(self.down_free[dg as usize]).max(up_done - up_wire);
            let down_done = down_start + up_wire;
            self.down_free[dg as usize] = down_done;
            head = down_start + self.hop_latency; // destination leaf
        }

        let rx_start = head.max(self.rx_free[dst.0 as usize]);
        let rx_done = rx_start + node_wire;
        self.rx_free[dst.0 as usize] = rx_done;
        WireTiming {
            tx_start,
            tx_done,
            rx_done,
        }
    }

    fn nodes(&self) -> u32 {
        self.groups * self.per_group
    }

    fn link_bits_per_sec(&self) -> f64 {
        self.node_bits_per_sec
    }

    fn base_latency(&self) -> SimDuration {
        self.hop_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn building() -> HierarchicalFabric {
        HierarchicalFabric::atm_building(4, 25) // a 100-node building
    }

    #[test]
    fn intra_group_is_one_hop() {
        let mut f = building();
        let t = f.transfer(NodeId(0), NodeId(1), 64, SimTime::ZERO);
        let us = t.rx_done.as_micros_f64();
        // one leaf hop + two short serialisations
        assert!((20.0..30.0).contains(&us), "got {us}");
    }

    #[test]
    fn inter_group_is_three_hops() {
        let mut f = building();
        let t = f.transfer(NodeId(0), NodeId(99), 64, SimTime::ZERO);
        let us = t.rx_done.as_micros_f64();
        assert!((60.0..80.0).contains(&us), "got {us}");
        // Strictly slower than intra-group.
        let mut g = building();
        let local = g.transfer(NodeId(0), NodeId(1), 64, SimTime::ZERO);
        assert!(t.rx_done > local.rx_done);
    }

    #[test]
    fn group_arithmetic() {
        let f = building();
        assert_eq!(f.group_of(NodeId(0)), 0);
        assert_eq!(f.group_of(NodeId(24)), 0);
        assert_eq!(f.group_of(NodeId(25)), 1);
        assert_eq!(f.group_of(NodeId(99)), 3);
    }

    #[test]
    fn uplink_is_a_shared_resource() {
        // Many cross-group flows from group 0 queue on its one uplink;
        // intra-group flows at the same instant are unaffected.
        let mut f = building();
        let big = 1_000_000;
        let first = f.transfer(NodeId(0), NodeId(50), big, SimTime::ZERO);
        let second = f.transfer(NodeId(1), NodeId(51), big, SimTime::ZERO);
        assert!(
            second.rx_done > first.rx_done,
            "uplink contention must serialise cross-group bulk"
        );
        let local = f.transfer(NodeId(2), NodeId(3), big, SimTime::ZERO);
        assert!(
            local.rx_done < second.rx_done,
            "local traffic bypasses the uplink"
        );
    }

    #[test]
    fn disjoint_group_pairs_do_not_interfere() {
        let mut f = building();
        let a = f.transfer(NodeId(0), NodeId(30), 10_000, SimTime::ZERO);
        let b = f.transfer(NodeId(50), NodeId(80), 10_000, SimTime::ZERO);
        assert_eq!(a.rx_done, b.rx_done, "0→1 and 2→3 use disjoint uplinks");
    }

    #[test]
    fn fat_uplinks_keep_cross_traffic_respectable() {
        // The design question the topology answers: with OC-12 uplinks, a
        // cross-group 8-KB page fetch is still far closer than a disk.
        let mut f = building();
        let t = f.transfer(NodeId(0), NodeId(99), 8_192, SimTime::ZERO);
        let us = t.rx_done.as_micros_f64();
        assert!(us < 1_000.0, "cross-building page in {us} µs");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        building().transfer(NodeId(0), NodeId(100), 1, SimTime::ZERO);
    }
}
