//! The LogP abstract machine model (Culler et al., PPoPP 1993).
//!
//! The paper cites LogP as the vocabulary for its communication analysis:
//! **L**atency in the network, **o**verhead on the processor, **g**ap
//! between message injections, and **P** processors. The distinction the
//! paper leans on — latency can overlap computation, overhead cannot — is
//! expressed directly in [`LogP::round_trip`] and friends.

use now_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// LogP parameters for a network and stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogP {
    /// `L`: wire + switch latency for a small message.
    pub latency: SimDuration,
    /// `o`: processor overhead per send or receive.
    pub overhead: SimDuration,
    /// `g`: minimum interval between consecutive message injections
    /// (reciprocal of per-node message bandwidth).
    pub gap: SimDuration,
    /// `P`: number of processors.
    pub processors: u32,
}

impl LogP {
    /// Time for a single small message, send to delivery: `o + L + o`.
    pub fn one_way(&self) -> SimDuration {
        self.overhead + self.latency + self.overhead
    }

    /// Request-reply round trip: `2(o + L + o)`.
    pub fn round_trip(&self) -> SimDuration {
        self.one_way() * 2
    }

    /// Time for one node to inject `n` messages: the first costs `o`, each
    /// subsequent one waits `max(o, g)`.
    pub fn inject_n(&self, n: u64) -> SimDuration {
        if n == 0 {
            return SimDuration::ZERO;
        }
        self.overhead + self.overhead.max(self.gap) * (n - 1)
    }

    /// CPU time lost to communication when sending `n` messages — the
    /// overhead component only, since latency overlaps computation.
    pub fn cpu_cost(&self, n: u64) -> SimDuration {
        self.overhead * n
    }

    /// The minimum time to broadcast a small message to all `P-1` other
    /// processors using the optimal LogP broadcast tree.
    ///
    /// Each informed processor repeatedly sends to uninformed ones; this is
    /// the classic LogP broadcast recurrence, computed by simulation of the
    /// greedy schedule.
    pub fn broadcast(&self) -> SimDuration {
        if self.processors <= 1 {
            return SimDuration::ZERO;
        }
        // Each informed node can inject a new message every max(o, g); a
        // message informs its target o + L + o after injection starts.
        // Greedy: simulate informed nodes' next-free times.
        let step = self.overhead.max(self.gap);
        let mut informed: Vec<SimDuration> = vec![SimDuration::ZERO]; // time each node becomes free to send
        let mut remaining = self.processors - 1;
        let mut finish = SimDuration::ZERO;
        while remaining > 0 {
            // Pick the sender that can inject earliest.
            let (idx, &free) = informed
                .iter()
                .enumerate()
                .min_by_key(|(_, &t)| t)
                .expect("informed set is non-empty");
            let arrive = free + self.overhead + self.latency + self.overhead;
            informed[idx] = free + step;
            informed.push(arrive);
            finish = finish.max(arrive);
            remaining -= 1;
        }
        finish
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cm5ish() -> LogP {
        LogP {
            latency: SimDuration::from_micros(4),
            overhead: SimDuration::from_nanos(1_700),
            gap: SimDuration::from_micros(4),
            processors: 64,
        }
    }

    #[test]
    fn one_way_and_round_trip() {
        let p = cm5ish();
        assert_eq!(p.one_way(), SimDuration::from_nanos(4_000 + 2 * 1_700));
        assert_eq!(p.round_trip(), p.one_way() * 2);
    }

    #[test]
    fn injection_rate_limited_by_gap() {
        let p = cm5ish();
        // gap > overhead here, so injections pace at g.
        let t = p.inject_n(11);
        assert_eq!(t, p.overhead + p.gap * 10);
    }

    #[test]
    fn injection_rate_limited_by_overhead_when_larger() {
        let p = LogP {
            overhead: SimDuration::from_micros(10),
            gap: SimDuration::from_micros(1),
            ..cm5ish()
        };
        assert_eq!(p.inject_n(5), p.overhead * 5);
    }

    #[test]
    fn inject_zero_is_free() {
        assert_eq!(cm5ish().inject_n(0), SimDuration::ZERO);
    }

    #[test]
    fn cpu_cost_counts_only_overhead() {
        let p = cm5ish();
        assert_eq!(p.cpu_cost(100), p.overhead * 100);
        assert!(
            p.cpu_cost(100) < p.inject_n(100),
            "latency/gap not CPU time"
        );
    }

    #[test]
    fn broadcast_is_logarithmic_not_linear() {
        let p = cm5ish();
        let t64 = p.broadcast();
        let linear = p.one_way() * 63;
        assert!(
            t64 < linear / 4,
            "broadcast {t64} should beat linear {linear}"
        );
        // And grows with P.
        let mut bigger = p;
        bigger.processors = 1_024;
        assert!(bigger.broadcast() > t64);
    }

    #[test]
    fn broadcast_trivial_cases() {
        let mut p = cm5ish();
        p.processors = 1;
        assert_eq!(p.broadcast(), SimDuration::ZERO);
        p.processors = 2;
        assert_eq!(p.broadcast(), p.one_way());
    }
}
