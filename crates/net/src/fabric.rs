//! Wire-level fabric models: who waits for whom, and for how long.
//!
//! Both fabrics are *occupancy* models: instead of simulating individual
//! packets, each resource (the shared medium; each node's transmit and
//! receive link) remembers when it next becomes free, and a transfer
//! reserves the resources it needs. This is exact for FIFO resources and
//! lets the discrete-event simulators above treat a transfer as a single
//! event with a computed arrival time.

use now_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::NodeId;

/// When a transfer's bytes move on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireTiming {
    /// When the sender's NIC starts clocking bytes out (after any queueing).
    pub tx_start: SimTime,
    /// When the sender's link is free again for its next transfer.
    pub tx_done: SimTime,
    /// When the last byte lands in the receiver's NIC.
    pub rx_done: SimTime,
}

/// A network fabric: computes wire timing for transfers, tracking
/// occupancy.
///
/// Implementations are deterministic: the same sequence of calls yields the
/// same timings.
pub trait Fabric {
    /// Reserves the wire for a `bytes`-byte transfer from `src` to `dst`,
    /// requested at `now`, and returns its timing.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst` (local transfers never touch the fabric) or a
    /// node id is out of range.
    fn transfer(&mut self, src: NodeId, dst: NodeId, bytes: u64, now: SimTime) -> WireTiming;

    /// Number of nodes attached.
    fn nodes(&self) -> u32;

    /// Raw link bandwidth in bits per second (per link for switched
    /// fabrics, total for shared media).
    fn link_bits_per_sec(&self) -> f64;

    /// Wire propagation plus switching latency for a minimal message.
    fn base_latency(&self) -> SimDuration;
}

fn wire_time(bytes: u64, bits_per_sec: f64) -> SimDuration {
    SimDuration::from_secs_f64(bytes as f64 * 8.0 / bits_per_sec)
}

/// A shared medium (classic 10-Mbps Ethernet): one transfer at a time,
/// everyone queues.
///
/// The paper's baseline NOW configuration suffers exactly this: 256
/// processors sharing 10 Mbps makes the Gator transport phase take three
/// orders of magnitude longer than on an MPP.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SharedBus {
    nodes: u32,
    bits_per_sec: f64,
    /// Fixed per-frame cost (preamble, inter-frame gap, arbitration).
    frame_overhead: SimDuration,
    /// Propagation delay across the segment.
    propagation: SimDuration,
    free_at: SimTime,
}

impl SharedBus {
    /// Creates a shared bus with `nodes` stations.
    ///
    /// # Panics
    ///
    /// Panics unless `nodes >= 2` and the bandwidth is positive.
    pub fn new(
        nodes: u32,
        bits_per_sec: f64,
        frame_overhead: SimDuration,
        propagation: SimDuration,
    ) -> Self {
        assert!(nodes >= 2, "a network needs at least two nodes");
        assert!(bits_per_sec > 0.0, "bandwidth must be positive");
        SharedBus {
            nodes,
            bits_per_sec,
            frame_overhead,
            propagation,
            free_at: SimTime::ZERO,
        }
    }

    /// Classic 10-Mbps Ethernet.
    pub fn ethernet_10(nodes: u32) -> Self {
        SharedBus::new(
            nodes,
            10e6,
            SimDuration::from_micros(10),
            SimDuration::from_micros(5),
        )
    }
}

impl Fabric for SharedBus {
    fn transfer(&mut self, src: NodeId, dst: NodeId, bytes: u64, now: SimTime) -> WireTiming {
        assert_ne!(src, dst, "local transfers do not use the fabric");
        assert!(
            src.0 < self.nodes && dst.0 < self.nodes,
            "node out of range"
        );
        let tx_start = now.max(self.free_at);
        let occupy = self.frame_overhead + wire_time(bytes, self.bits_per_sec);
        let tx_done = tx_start + occupy;
        self.free_at = tx_done;
        WireTiming {
            tx_start,
            tx_done,
            rx_done: tx_done + self.propagation,
        }
    }

    fn nodes(&self) -> u32 {
        self.nodes
    }

    fn link_bits_per_sec(&self) -> f64 {
        self.bits_per_sec
    }

    fn base_latency(&self) -> SimDuration {
        self.frame_overhead + self.propagation
    }
}

/// A switched, full-duplex fabric: each node owns a transmit and a receive
/// link; distinct pairs communicate in parallel.
///
/// Models ATM, switched FDDI, Myrinet, and MPP interconnects; they differ
/// only in link speed and switching latency.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SwitchedFabric {
    nodes: u32,
    bits_per_sec: f64,
    /// Cut-through switching plus propagation latency.
    switch_latency: SimDuration,
    tx_free: Vec<SimTime>,
    rx_free: Vec<SimTime>,
}

impl SwitchedFabric {
    /// Creates a switched fabric of `nodes` full-duplex links.
    ///
    /// # Panics
    ///
    /// Panics unless `nodes >= 2` and the bandwidth is positive.
    pub fn new(nodes: u32, bits_per_sec: f64, switch_latency: SimDuration) -> Self {
        assert!(nodes >= 2, "a network needs at least two nodes");
        assert!(bits_per_sec > 0.0, "bandwidth must be positive");
        SwitchedFabric {
            nodes,
            bits_per_sec,
            switch_latency,
            tx_free: vec![SimTime::ZERO; nodes as usize],
            rx_free: vec![SimTime::ZERO; nodes as usize],
        }
    }

    /// 155-Mbps ATM with tens of microseconds of switch latency.
    pub fn atm_155(nodes: u32) -> Self {
        SwitchedFabric::new(nodes, 155e6, SimDuration::from_micros(20))
    }

    /// The Medusa FDDI prototype: 100 Mbps, ~8 µs network+adapter latency.
    pub fn fddi_medusa(nodes: u32) -> Self {
        SwitchedFabric::new(nodes, 100e6, SimDuration::from_micros(8))
    }

    /// Myrinet: 640 Mbps with single-microsecond cut-through switches.
    pub fn myrinet(nodes: u32) -> Self {
        SwitchedFabric::new(nodes, 640e6, SimDuration::from_micros(1))
    }

    /// The CM-5 data network: 20 MB/s per link, ~4 µs latency across a
    /// large machine.
    pub fn cm5(nodes: u32) -> Self {
        SwitchedFabric::new(nodes, 160e6, SimDuration::from_micros(4))
    }
}

impl Fabric for SwitchedFabric {
    fn transfer(&mut self, src: NodeId, dst: NodeId, bytes: u64, now: SimTime) -> WireTiming {
        assert_ne!(src, dst, "local transfers do not use the fabric");
        assert!(
            src.0 < self.nodes && dst.0 < self.nodes,
            "node out of range"
        );
        let wire = wire_time(bytes, self.bits_per_sec);
        // Sender clocks out when its TX link frees.
        let tx_start = now.max(self.tx_free[src.0 as usize]);
        let tx_done = tx_start + wire;
        self.tx_free[src.0 as usize] = tx_done;
        // Head reaches the receiver's link after the switch; the receive
        // link must also be free (cut-through with per-port FIFO).
        let head_at_rx = tx_start + self.switch_latency;
        let rx_start = head_at_rx.max(self.rx_free[dst.0 as usize]);
        let rx_done = rx_start + wire;
        self.rx_free[dst.0 as usize] = rx_done;
        WireTiming {
            tx_start,
            tx_done,
            rx_done,
        }
    }

    fn nodes(&self) -> u32 {
        self.nodes
    }

    fn link_bits_per_sec(&self) -> f64 {
        self.bits_per_sec
    }

    fn base_latency(&self) -> SimDuration {
        self.switch_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KB8: u64 = 8_192;

    #[test]
    fn shared_bus_serialises_everyone() {
        let mut bus = SharedBus::ethernet_10(4);
        let t0 = SimTime::ZERO;
        let a = bus.transfer(NodeId(0), NodeId(1), KB8, t0);
        let b = bus.transfer(NodeId(2), NodeId(3), KB8, t0);
        // Disjoint pairs still queue on the medium.
        assert!(b.tx_start >= a.tx_done);
    }

    #[test]
    fn shared_bus_8kb_takes_about_6550us() {
        // 8,192 B at 10 Mbps = 6,553.6 µs on the wire, plus frame overhead.
        let mut bus = SharedBus::ethernet_10(2);
        let t = bus.transfer(NodeId(0), NodeId(1), KB8, SimTime::ZERO);
        let us = (t.rx_done - SimTime::ZERO).as_micros_f64();
        assert!((6_500.0..6_700.0).contains(&us), "got {us}");
    }

    #[test]
    fn switched_fabric_disjoint_pairs_run_in_parallel() {
        let mut sw = SwitchedFabric::atm_155(4);
        let t0 = SimTime::ZERO;
        let a = sw.transfer(NodeId(0), NodeId(1), KB8, t0);
        let b = sw.transfer(NodeId(2), NodeId(3), KB8, t0);
        assert_eq!(a.tx_start, b.tx_start, "no queueing between disjoint pairs");
        assert_eq!(a.rx_done, b.rx_done);
    }

    #[test]
    fn switched_fabric_same_sender_serialises() {
        let mut sw = SwitchedFabric::atm_155(4);
        let t0 = SimTime::ZERO;
        let a = sw.transfer(NodeId(0), NodeId(1), KB8, t0);
        let b = sw.transfer(NodeId(0), NodeId(2), KB8, t0);
        assert!(b.tx_start >= a.tx_done, "one TX link per node");
    }

    #[test]
    fn switched_fabric_same_receiver_serialises_rx() {
        let mut sw = SwitchedFabric::atm_155(4);
        let t0 = SimTime::ZERO;
        let a = sw.transfer(NodeId(0), NodeId(3), KB8, t0);
        let b = sw.transfer(NodeId(1), NodeId(3), KB8, t0);
        // Both senders transmit in parallel, but node 3's receive link
        // accepts one message at a time: b drains only after a.
        assert_eq!(a.tx_start, b.tx_start);
        let wire = a.rx_done - a.tx_start - sw.base_latency();
        assert_eq!(b.rx_done, a.rx_done + wire, "receive link shared");
    }

    #[test]
    fn atm_8kb_wire_time_is_about_420us() {
        let mut sw = SwitchedFabric::atm_155(2);
        let t = sw.transfer(NodeId(0), NodeId(1), KB8, SimTime::ZERO);
        let us = (t.rx_done - SimTime::ZERO).as_micros_f64();
        // 8,192 B at 155 Mbps = 422.8 µs, plus 20 µs switch.
        assert!((430.0..460.0).contains(&us), "got {us}");
    }

    #[test]
    fn faster_fabrics_order_correctly() {
        let small = 256;
        let time_on = |mut f: SwitchedFabric| {
            let t = f.transfer(NodeId(0), NodeId(1), small, SimTime::ZERO);
            t.rx_done.as_nanos()
        };
        let atm = time_on(SwitchedFabric::atm_155(2));
        let fddi = time_on(SwitchedFabric::fddi_medusa(2));
        let myrinet = time_on(SwitchedFabric::myrinet(2));
        assert!(myrinet < fddi);
        assert!(fddi < atm);
    }

    #[test]
    fn transfers_never_start_before_request() {
        let mut sw = SwitchedFabric::myrinet(3);
        let later = SimTime::from_micros(100);
        let t = sw.transfer(NodeId(0), NodeId(1), 64, later);
        assert!(t.tx_start >= later);
    }

    #[test]
    fn busy_link_delays_only_its_owner() {
        let mut sw = SwitchedFabric::atm_155(4);
        // Node 0 sends a huge transfer.
        sw.transfer(NodeId(0), NodeId(1), 10_000_000, SimTime::ZERO);
        // Node 2 is unaffected.
        let t = sw.transfer(NodeId(2), NodeId(3), 64, SimTime::ZERO);
        assert_eq!(t.tx_start, SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "local transfers")]
    fn self_transfer_panics() {
        SharedBus::ethernet_10(2).transfer(NodeId(0), NodeId(0), 1, SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_node_panics() {
        SwitchedFabric::atm_155(2).transfer(NodeId(0), NodeId(5), 1, SimTime::ZERO);
    }

    #[test]
    fn aggregate_bandwidth_scales_only_when_switched() {
        // N/2 disjoint pairs each move 1 MB starting at t=0. On the shared
        // bus total time is N/2 transfers back-to-back; on the switch it is
        // one transfer time.
        let n = 8;
        let bytes = 1_000_000;
        let mut bus = SharedBus::new(n, 155e6, SimDuration::ZERO, SimDuration::ZERO);
        let mut sw = SwitchedFabric::new(n, 155e6, SimDuration::ZERO);
        let mut bus_done = SimTime::ZERO;
        let mut sw_done = SimTime::ZERO;
        for i in 0..n / 2 {
            let (s, d) = (NodeId(2 * i), NodeId(2 * i + 1));
            bus_done = bus_done.max(bus.transfer(s, d, bytes, SimTime::ZERO).rx_done);
            sw_done = sw_done.max(sw.transfer(s, d, bytes, SimTime::ZERO).rx_done);
        }
        let ratio =
            (bus_done - SimTime::ZERO).as_secs_f64() / (sw_done - SimTime::ZERO).as_secs_f64();
        assert!((ratio - (n / 2) as f64).abs() < 0.01, "ratio {ratio}");
    }
}
