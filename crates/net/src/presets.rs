//! Ready-made network configurations matching the systems the paper
//! measures or proposes.

use crate::{HierarchicalFabric, Network, NicAttachment, SharedBus, SoftwareCosts, SwitchedFabric};

/// Kernel TCP/IP over shared 10-Mbps Ethernet (SparcStation-10 measurement:
/// 456 µs overhead+latency, 9 Mbps through TCP).
pub fn tcp_ethernet(nodes: u32) -> Network {
    Network::shared(
        SharedBus::ethernet_10(nodes),
        SoftwareCosts::tcp_kernel(),
        NicAttachment::IoBus,
    )
}

/// Kernel TCP/IP over switched 155-Mbps Synoptics ATM (626 µs, 78 Mbps).
pub fn tcp_atm(nodes: u32) -> Network {
    Network::switched(
        SwitchedFabric::atm_155(nodes),
        SoftwareCosts::tcp_kernel_atm(),
        NicAttachment::IoBus,
    )
}

/// Kernel TCP/IP on the Medusa FDDI wire — for like-for-like half-power
/// comparisons with the AM stacks below.
pub fn tcp_fddi(nodes: u32) -> Network {
    Network::switched(
        SwitchedFabric::fddi_medusa(nodes),
        SoftwareCosts::tcp_kernel(),
        NicAttachment::IoBus,
    )
}

/// Single-copy TCP on the Medusa FDDI wire (half-power at ~760 bytes).
pub fn single_copy_tcp_fddi(nodes: u32) -> Network {
    Network::switched(
        SwitchedFabric::fddi_medusa(nodes),
        SoftwareCosts::single_copy_tcp(),
        NicAttachment::GraphicsBus,
    )
}

/// HPAM: user-level Active Messages on HP 735s with the Medusa FDDI board
/// on the graphics bus (8 µs overhead, 8 µs latency, half-power at 175
/// bytes).
pub fn am_fddi(nodes: u32) -> Network {
    Network::switched(
        SwitchedFabric::fddi_medusa(nodes),
        SoftwareCosts::am_hpam(),
        NicAttachment::GraphicsBus,
    )
}

/// Conventional sockets built over Active Messages on the same prototype
/// (~25 µs one-way).
pub fn sockets_am_fddi(nodes: u32) -> Network {
    Network::switched(
        SwitchedFabric::fddi_medusa(nodes),
        SoftwareCosts::sockets_over_am(),
        NicAttachment::GraphicsBus,
    )
}

/// Active Messages over second-generation ATM — the NOW demonstration
/// target configuration.
pub fn am_atm(nodes: u32) -> Network {
    Network::switched(
        SwitchedFabric::atm_155(nodes),
        SoftwareCosts::am_hpam(),
        NicAttachment::GraphicsBus,
    )
}

/// Active Messages over Myrinet — the retargeted-MPP-network alternative.
pub fn am_myrinet(nodes: u32) -> Network {
    Network::switched(
        SwitchedFabric::myrinet(nodes),
        SoftwareCosts::am_hpam(),
        NicAttachment::MemoryBus,
    )
}

/// The CM-5 with its native Active Messages (1.7 µs overhead, 4 µs
/// latency): the MPP yardstick.
pub fn cm5(nodes: u32) -> Network {
    Network::switched(
        SwitchedFabric::cm5(nodes),
        SoftwareCosts::am_cm5(),
        NicAttachment::MemoryBus,
    )
}

/// PVM over kernel sockets on shared Ethernet — the baseline NOW of
/// Table 4.
pub fn pvm_ethernet(nodes: u32) -> Network {
    Network::shared(
        SharedBus::ethernet_10(nodes),
        SoftwareCosts::pvm(),
        NicAttachment::IoBus,
    )
}

/// Active Messages across a multi-floor ATM building (floor switches
/// under an OC-12 backbone) — the enterprise-scale NOW.
pub fn am_atm_building(floors: u32, per_floor: u32) -> Network {
    Network::hierarchical(
        HierarchicalFabric::atm_building(floors, per_floor),
        SoftwareCosts::am_hpam(),
        NicAttachment::GraphicsBus,
    )
}

/// PVM over kernel sockets on switched ATM — Table 4's "+ ATM" row.
pub fn pvm_atm(nodes: u32) -> Network {
    Network::switched(
        SwitchedFabric::atm_155(nodes),
        SoftwareCosts::pvm(),
        NicAttachment::IoBus,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    #[test]
    fn all_presets_construct_and_probe() {
        let mut nets = [
            tcp_ethernet(4),
            tcp_atm(4),
            tcp_fddi(4),
            single_copy_tcp_fddi(4),
            am_fddi(4),
            sockets_am_fddi(4),
            am_atm(4),
            am_myrinet(4),
            cm5(4),
            pvm_ethernet(4),
            pvm_atm(4),
        ];
        for net in &mut nets {
            let t = net.one_way_small_message_us();
            assert!(t > 0.0 && t < 5_000.0, "one-way {t} µs out of range");
            assert_eq!(net.nodes(), 4);
        }
    }

    #[test]
    fn building_preset_pays_for_the_backbone() {
        let mut flat = am_atm(100);
        let mut building = am_atm_building(4, 25);
        // Same-floor cost is comparable; the building's far corner pays
        // two more hops.
        let flat_t = flat.one_way_small_message_us();
        let near = {
            let t0 = now_sim::SimTime::from_secs(1_000_000);
            let out = building.transfer(NodeId(0), NodeId(1), 64, t0);
            out.one_way(t0).as_micros_f64()
        };
        let far = {
            let t0 = now_sim::SimTime::from_secs(2_000_000);
            let out = building.transfer(NodeId(0), NodeId(99), 64, t0);
            out.one_way(t0).as_micros_f64()
        };
        assert!((near - flat_t).abs() < 10.0, "near {near} vs flat {flat_t}");
        assert!(far > near + 30.0, "far {far} vs near {near}");
    }

    #[test]
    fn pvm_is_the_slowest_stack() {
        let mut pvm = pvm_atm(4);
        let mut tcp = tcp_atm(4);
        assert!(pvm.one_way_small_message_us() > tcp.one_way_small_message_us());
    }

    #[test]
    fn am_over_myrinet_approaches_the_10us_goal() {
        // "Our target is to perform user-to-user communication of a small
        // message among one hundred processors in 10 µs."
        let mut net = am_myrinet(100);
        let t = net.one_way_small_message_us();
        assert!(t < 12.0, "got {t} µs");
    }
}
