//! # now-net — the interconnect substrate of the simulated NOW
//!
//! *A Case for NOW* turns on one technological claim: switched local-area
//! networks with low-overhead software put another workstation's memory an
//! order of magnitude closer than any disk, and make a building of
//! workstations behave like an MPP. This crate models the networks the
//! paper measures, at the granularity its arguments need:
//!
//! * [`SharedBus`] — 10-Mbps shared Ethernet: every transfer serialises on
//!   one medium, so aggregate bandwidth does not scale with nodes.
//! * [`SwitchedFabric`] — ATM / FDDI / Myrinet / MPP networks: each node
//!   owns its link, transfers between distinct pairs proceed in parallel,
//!   and only per-link occupancy causes queueing.
//! * [`SoftwareCosts`] — the processor-overhead side: kernel TCP vs PVM vs
//!   user-level Active Messages. The paper's point is that this term, not
//!   bandwidth, dominates real communication performance.
//! * [`Network`] — a fabric plus a stack plus NIC placement, exposing one
//!   call ([`Network::transfer`]) that accounts wire occupancy and CPU
//!   overhead; every higher-level simulator (paging, caching, scheduling)
//!   goes through it.
//! * [`LogP`] — the four-parameter abstract model (latency, overhead, gap,
//!   processors) that the Berkeley group used to reason about these
//!   networks; convertible from any [`Network`] preset.
//!
//! # Example
//!
//! The in-text measurement this crate reproduces: on the same hosts, TCP
//! over 155-Mbps ATM is *slower* for small messages than TCP over 10-Mbps
//! Ethernet, because fixed overhead went up:
//!
//! ```
//! use now_net::{Network, presets};
//!
//! let mut eth = presets::tcp_ethernet(4);
//! let mut atm = presets::tcp_atm(4);
//! let t_eth = eth.one_way_small_message_us();
//! let t_atm = atm.one_way_small_message_us();
//! assert!(t_atm > t_eth, "ATM {t_atm}µs vs Ethernet {t_eth}µs");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod csma;
mod fabric;
mod logp;
mod network;
mod stack;
mod topology;

pub mod presets;

pub use csma::{CsmaBus, SLOT};
pub use fabric::{Fabric, SharedBus, SwitchedFabric, WireTiming};
pub use logp::LogP;
pub use network::{Network, NicAttachment, TransferOutcome};
pub use stack::SoftwareCosts;
pub use topology::HierarchicalFabric;

use serde::{Deserialize, Serialize};

/// Identifies a workstation (node) within one simulated cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}
